"""Ablation — contribution of each optimization pass (DESIGN.md §5).

The paper's optimizer interleaves identity-partition removal and circuit
identities inside one cost-guarded loop.  This bench isolates each pass
on the mapped Table 5/7 workloads to show where the 17-40% recovery
comes from:

* cancel  — inverse-pair cancellation alone,
* +merge  — plus phase-run merging,
* +templates — the full optimizer.
"""

import pytest

from repro.backend import map_circuit
from repro.benchlib import revlib, table7
from repro.core import transmon_cost
from repro.devices import IBMQX3, PROPOSED96
from repro.optimize import (
    LocalOptimizer,
    merge_phases,
    remove_identities,
)
from repro.reporting import Table


def _variants(mapped, coupling_map):
    cancel_only = remove_identities(mapped)
    with_merge = merge_phases(cancel_only)
    full = LocalOptimizer(coupling_map=coupling_map).run(mapped)
    return cancel_only, with_merge, full


def test_print_ablation():
    workloads = [
        ("fred6 @ qx3", revlib.build_benchmark("fred6"), IBMQX3),
        ("4_49_17 @ qx3", revlib.build_benchmark("4_49_17"), IBMQX3),
        ("4gt13-v1_93 @ qx3", revlib.build_benchmark("4gt13-v1_93"), IBMQX3),
        ("T6_b @ 96q", table7.build_benchmark("T6_b"), PROPOSED96),
    ]
    table = Table(
        "Ablation — cost after each optimizer stage",
        ["workload", "mapped", "cancel", "+merge", "+templates (full)",
         "full %dec"],
    )
    for label, circuit, device in workloads:
        mapped = map_circuit(circuit, device)
        cancel_only, with_merge, full = _variants(mapped, device.coupling_map)
        base = transmon_cost(mapped)
        full_cost = transmon_cost(full)
        table.add_row(
            label,
            f"{base:g}",
            f"{transmon_cost(cancel_only):g}",
            f"{transmon_cost(with_merge):g}",
            f"{full_cost:g}",
            f"{100 * (base - full_cost) / base:.1f}",
        )
        # Each stage can only help, and the full loop is at least as good.
        assert transmon_cost(cancel_only) <= base
        assert transmon_cost(with_merge) <= transmon_cost(cancel_only)
        assert full_cost <= transmon_cost(with_merge)
    table.print()


def test_cancellation_dominates_on_routed_circuits():
    """Most of the recovery on routed circuits comes from identity
    partitions (adjacent H pairs and CNOT pairs created by reversal and
    swap chains)."""
    mapped = map_circuit(revlib.build_benchmark("4gt13-v1_93"), IBMQX3)
    cancel_only, _, full = _variants(mapped, IBMQX3.coupling_map)
    base = transmon_cost(mapped)
    recovered_total = base - transmon_cost(full)
    recovered_by_cancel = base - transmon_cost(cancel_only)
    if recovered_total > 0:
        share = recovered_by_cancel / recovered_total
        print(f"Cancellation share of recovery: {share:.0%}")
        assert share > 0.5


def test_benchmark_cancel_pass(benchmark):
    mapped = map_circuit(table7.build_benchmark("T6_b"), PROPOSED96)
    reduced = benchmark.pedantic(remove_identities, args=(mapped,), rounds=2,
                                 iterations=1)
    assert len(reduced) <= len(mapped)


def test_benchmark_full_optimizer(benchmark):
    mapped = map_circuit(revlib.build_benchmark("4_49_17"), IBMQX3)
    optimizer = LocalOptimizer(coupling_map=IBMQX3.coupling_map)
    result = benchmark(optimizer.run, mapped)
    assert transmon_cost(result) <= transmon_cost(mapped)
