"""Vector-DD simulation scaling (beyond the paper).

The vector decision diagram simulates structured states exactly far past
dense (2^n amplitudes) and sparse-dict (all-nonzero states) limits.
This bench prints node counts and runtimes for QFT and GHZ families up
to 40 qubits and times representative runs.
"""

import time

import pytest

from repro.benchlib.qft import qft
from repro.core import CNOT, H, QuantumCircuit
from repro.qmdd import VectorDDManager, count_nodes
from repro.reporting import Table


def ghz(n: int) -> QuantumCircuit:
    return QuantumCircuit(n, [H(0)] + [CNOT(0, q) for q in range(1, n)])


def test_print_vector_scaling():
    table = Table(
        "Vector-DD simulation scaling",
        ["state", "qubits", "dense amplitudes", "DD nodes", "time"],
    )
    for n in (10, 20, 30):
        manager = VectorDDManager(n)
        start = time.perf_counter()
        state = manager.run(qft(n), basis_index=(1 << (n - 1)) | 5)
        elapsed = time.perf_counter() - start
        nodes = count_nodes(state)
        table.add_row(f"QFT|x>", n, f"2^{n}", nodes, f"{elapsed:.2f}s")
        assert manager.norm_squared(state) == pytest.approx(1.0)
        assert nodes <= 2 * n  # product state: linear DD
    for n in (20, 40):
        manager = VectorDDManager(n)
        start = time.perf_counter()
        state = manager.run(ghz(n))
        elapsed = time.perf_counter() - start
        table.add_row("GHZ", n, f"2^{n}", count_nodes(state), f"{elapsed:.2f}s")
        assert manager.norm_squared(state) == pytest.approx(1.0)
    table.print()


def test_benchmark_qft20_vector(benchmark):
    circuit = qft(20)

    def run():
        return VectorDDManager(20).run(circuit, basis_index=777)

    state = benchmark.pedantic(run, rounds=3, iterations=1)
    assert state is not None


def test_benchmark_ghz40_vector(benchmark):
    circuit = ghz(40)

    def run():
        return VectorDDManager(40).run(circuit)

    state = benchmark.pedantic(run, rounds=3, iterations=1)
    assert state is not None
