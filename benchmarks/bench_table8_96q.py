"""Table 8 — 96-qubit compilation results on the Fig. 7 machine.

Compiles every Table 7 cascade to the reconstructed 96-qubit device and
prints unoptimized/optimized metrics with the paper's reference values.
T-counts must match the paper exactly (they are fixed by the Barenco
V-chain); gate totals depend on the Fig. 7 reconstruction and routing
choices, so the comparison is about the percent-decrease shape.
"""

import pytest

from harness import table8_results
from repro.benchlib import table7
from repro.reporting import Table, average


def test_print_table8():
    results = table8_results()
    table = Table(
        "Table 8 — 96-qubit compilation (ours vs paper)",
        ["name", "unopt (ours)", "opt (ours)", "%dec (ours)",
         "unopt (paper)", "opt (paper)", "%dec (paper)"],
    )
    decreases = []
    for name in table7.PAPER_96Q_BENCHMARKS:
        result = results[name]
        paper_unopt, paper_opt, paper_pct = table7.PAPER_TABLE8[name]
        pct = result.percent_cost_decrease
        decreases.append(pct)
        table.add_row(
            name,
            str(result.unoptimized_metrics),
            str(result.optimized_metrics),
            f"{pct:.2f}",
            f"{paper_unopt[0]}/{paper_unopt[1]}/{paper_unopt[2]:g}",
            f"{paper_opt[0]}/{paper_opt[1]}/{paper_opt[2]:g}",
            f"{paper_pct:.2f}",
        )
    ours_avg = average(decreases)
    table.add_row("Average", "", "", f"{ours_avg:.2f}", "", "", "39.54")
    table.print()
    assert ours_avg > 20.0  # paper: 39.54%


def test_t_counts_exact():
    results = table8_results()
    for name in table7.PAPER_96Q_BENCHMARKS:
        paper_t = table7.PAPER_TABLE8[name][0][0]
        assert results[name].unoptimized_metrics.t_count == paper_t, name


def test_optimization_never_hurts_and_scales():
    results = table8_results()
    for name in table7.PAPER_96Q_BENCHMARKS:
        result = results[name]
        assert result.optimized_metrics.cost < result.unoptimized_metrics.cost
        # Table 8 scale: tens of thousands of gates before optimization.
        assert result.unoptimized_metrics.gate_volume > 10_000


def test_synthesis_time_bound():
    """Paper: the largest 96-qubit benchmark took ~6.5 s; ours must stay
    in the same order of magnitude (< 30 s) on a laptop-class machine."""
    results = table8_results()
    worst = max(r.synthesis_seconds for r in results.values())
    print(f"Worst 96-qubit synthesis time: {worst:.2f}s (paper: ~6.5s)")
    assert worst < 30.0


def test_benchmark_compile_t6(benchmark):
    from repro import compile_circuit
    from repro.devices import PROPOSED96

    circuit = table7.build_benchmark("T6_b")
    result = benchmark.pedantic(
        compile_circuit, args=(circuit, PROPOSED96),
        kwargs={"verify": False}, rounds=2, iterations=1,
    )
    assert result.unoptimized_metrics.t_count == 336


def test_benchmark_verify_t6_sampled(benchmark):
    """Time the sampled verification path used for 96-qubit outputs."""
    from repro.verify import sampled_equivalence

    results = table8_results()
    result = results["T6_b"]
    source = result.original.widened(96)

    def check():
        return sampled_equivalence(source, result.optimized, samples=4)

    assert benchmark.pedantic(check, rounds=2, iterations=1)
