"""Stage-contract analysis must stay effectively free in default mode.

Compiles a Table-3-style grid (single-target gates x IBM devices) twice
— once with the stage contracts on (the default) and once with
``analyze=False`` — and asserts the analysis adds less than 5% to
compile wall-clock.  Each configuration is timed min-of-3 to shed
scheduler noise; for sub-millisecond grids a small absolute epsilon
applies instead (relative overhead is meaningless at that scale).

The measured overhead is recorded into ``BENCH_runtime.json`` under the
``analysis_overhead`` suite, giving future PRs a trajectory for the
analyzer hot path.
"""

import time

from harness import RUNTIME
from repro.benchlib import single_target
from repro.compiler import compile_circuit
from repro.devices import PAPER_DEVICES

#: Wall-clock fraction the default-mode analyzers may add.
MAX_OVERHEAD = 0.05

#: Grids faster than this are judged by absolute slack instead: timer
#: granularity and allocator noise dominate below a few milliseconds.
ABSOLUTE_EPSILON_SECONDS = 0.050

#: Interleaved (off, on) measurement pairs; min-of-N per side rejects
#: scheduler noise, and interleaving cancels slow machine-load drift
#: that back-to-back blocks would attribute to one side.
REPEATS = 5


def _grid_jobs():
    from repro.core.exceptions import NotSynthesizableError

    jobs = []
    for name, qubits in single_target.PAPER_STG_BENCHMARKS[:6]:
        circuit = single_target.build_benchmark(name, qubits)
        for device in PAPER_DEVICES:
            if circuit.num_qubits > device.num_qubits:
                continue
            try:  # drop the paper's N/A cells (e.g. full-width MCX)
                compile_circuit(circuit, device, verify=False)
            except NotSynthesizableError:
                continue
            jobs.append((circuit, device))
    return jobs


def _time_pass(jobs, analyze):
    started = time.perf_counter()
    for circuit, device in jobs:
        compile_circuit(circuit, device, verify=False, analyze=analyze)
    return time.perf_counter() - started


def _time_grid(jobs):
    """Interleaved min-of-N for both configurations."""
    without = with_analysis = None
    for _ in range(REPEATS):
        off = _time_pass(jobs, analyze=False)
        on = _time_pass(jobs, analyze=True)
        without = off if without is None else min(without, off)
        with_analysis = (
            on if with_analysis is None else min(with_analysis, on)
        )
    return without, with_analysis


def test_analysis_overhead_under_five_percent():
    jobs = _grid_jobs()  # building the grid also warms every memo cache
    assert jobs, "benchmark grid is empty"

    without, with_analysis = _time_grid(jobs)
    overhead = with_analysis - without
    relative = overhead / without if without > 0 else 0.0

    RUNTIME["analysis_overhead"] = {
        "cells": len(jobs),
        "repeats": REPEATS,
        "seconds_without_analysis": round(without, 6),
        "seconds_with_analysis": round(with_analysis, 6),
        "overhead_seconds": round(overhead, 6),
        "overhead_relative": round(relative, 6),
    }
    print(
        f"\nanalysis overhead: {without * 1e3:.1f} ms -> "
        f"{with_analysis * 1e3:.1f} ms over {len(jobs)} cells "
        f"({relative * 100:+.2f}%)"
    )

    assert (
        relative < MAX_OVERHEAD or overhead < ABSOLUTE_EPSILON_SECONDS
    ), (
        f"default-mode analysis added {relative * 100:.1f}% "
        f"({overhead * 1e3:.1f} ms) to the grid compile"
    )


#: Budget for the *opt-in* dataflow pass (``known_zero`` facts).
#: Looser than the default-mode budget because facts mode does real
#: rewriting work the plain path skips: on cells where the fact
#: survives mapping, propagation sweeps the whole circuit, deletes
#: gates, and re-cleans — measured ~20% on this grid (the fact dies
#: within a few gates on the other cells and the sweep bails out).
MAX_DATAFLOW_OVERHEAD = 0.35


def _time_pass_facts(jobs):
    started = time.perf_counter()
    for circuit, device in jobs:
        compile_circuit(
            circuit, device, verify=False,
            known_zero=[circuit.num_qubits - 1],
        )
    return time.perf_counter() - started


def test_dataflow_pass_overhead_budget():
    """The default path pays nothing for the dataflow machinery (covered
    by the assert above — no facts, no analysis); this leg times the
    opt-in facts mode and keeps its cost proportionate."""
    jobs = _grid_jobs()
    assert jobs, "benchmark grid is empty"

    plain = facts = None
    for _ in range(REPEATS):
        off = _time_pass(jobs, analyze=True)
        on = _time_pass_facts(jobs)
        plain = off if plain is None else min(plain, off)
        facts = on if facts is None else min(facts, on)

    overhead = facts - plain
    relative = overhead / plain if plain > 0 else 0.0

    deleted = demoted = reduced_cells = 0
    for circuit, device in jobs:
        result = compile_circuit(
            circuit, device, verify=False,
            known_zero=[circuit.num_qubits - 1],
        )
        baseline = compile_circuit(circuit, device, verify=False)
        stats = (result.dataflow or {}).get("constant_propagation") or {}
        deleted += stats.get("deleted", 0)
        demoted += stats.get("demoted", 0)
        if result.optimized_metrics.cost < baseline.optimized_metrics.cost:
            reduced_cells += 1

    RUNTIME["dataflow_overhead"] = {
        "cells": len(jobs),
        "repeats": REPEATS,
        "seconds_plain": round(plain, 6),
        "seconds_with_facts": round(facts, 6),
        "overhead_seconds": round(overhead, 6),
        "overhead_relative": round(relative, 6),
        "gates_deleted": deleted,
        "gates_demoted": demoted,
        "cells_cost_reduced": reduced_cells,
    }
    print(
        f"\ndataflow facts overhead: {plain * 1e3:.1f} ms -> "
        f"{facts * 1e3:.1f} ms over {len(jobs)} cells "
        f"({relative * 100:+.2f}%); {deleted} deleted, {demoted} demoted, "
        f"{reduced_cells} cells cheaper"
    )

    assert (
        relative < MAX_DATAFLOW_OVERHEAD or overhead < ABSOLUTE_EPSILON_SECONDS
    ), (
        f"dataflow facts mode added {relative * 100:.1f}% "
        f"({overhead * 1e3:.1f} ms) to the grid compile"
    )
