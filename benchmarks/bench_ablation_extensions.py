"""Ablations for the extension features (paper future-work items).

* **Placement** — the paper uses identity placement and lists cost-aware
  placement as future work.  Compare identity / greedy / refined on
  workloads whose logical neighbours are physically distant.
* **MCX lowering** — the paper's pure-Toffoli dirty V-chain vs the
  Margolus relative-phase ladder (exact, ~35% fewer T): re-run the
  Table 8 workloads under both.
"""

import pytest

from repro import compile_circuit
from repro.benchlib import table7
from repro.core import CNOT, QuantumCircuit, T, TOFFOLI
from repro.devices import IBMQX3, PROPOSED96
from repro.reporting import Table


def _distant_workload() -> QuantumCircuit:
    """Logical pairs that are far apart under identity placement on qx3."""
    gates = []
    for _ in range(3):
        gates += [CNOT(5, 10), T(10), TOFFOLI(0, 8, 13), T(13)]
    return QuantumCircuit(16, gates, name="distant")


def test_print_placement_ablation():
    workload = _distant_workload()
    table = Table(
        "Ablation — placement strategy (ibmqx3)",
        ["strategy", "unopt cost", "opt cost", "gates"],
    )
    costs = {}
    for strategy in ("identity", "greedy", "refined"):
        result = compile_circuit(
            workload, IBMQX3, placement=strategy, verify=False
        )
        costs[strategy] = result.optimized_metrics.cost
        table.add_row(
            strategy,
            f"{result.unoptimized_metrics.cost:g}",
            f"{result.optimized_metrics.cost:g}",
            result.optimized_metrics.gate_volume,
        )
    table.print()
    assert costs["greedy"] <= costs["identity"]
    assert costs["refined"] <= costs["greedy"] * 1.05  # refinement never ruins


def test_print_mcx_mode_ablation():
    table = Table(
        "Ablation — MCX lowering mode on the 96-qubit workloads",
        ["workload", "barenco T", "rel-phase T", "barenco cost", "rel-phase cost"],
    )
    for name in table7.PAPER_96Q_BENCHMARKS[:3]:  # T6..T8 keep it quick
        circuit = table7.build_benchmark(name)
        barenco = compile_circuit(circuit, PROPOSED96, verify=False)
        relative = compile_circuit(
            circuit, PROPOSED96, verify=False, mcx_mode="relative_phase"
        )
        table.add_row(
            name,
            barenco.optimized_metrics.t_count,
            relative.optimized_metrics.t_count,
            f"{barenco.optimized_metrics.cost:g}",
            f"{relative.optimized_metrics.cost:g}",
        )
        assert relative.optimized_metrics.t_count < barenco.optimized_metrics.t_count
    table.print()


def test_benchmark_greedy_placement(benchmark):
    from repro.backend import greedy_placement

    workload = _distant_workload()
    placement = benchmark(greedy_placement, workload, IBMQX3)
    assert len(set(placement.values())) == len(placement)


def test_benchmark_relative_phase_lowering(benchmark):
    from repro.backend import mcx_relative_phase

    gates = benchmark(
        mcx_relative_phase, list(range(9)), 9, list(range(10, 24))
    )
    assert gates
