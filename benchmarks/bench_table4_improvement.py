"""Table 4 — percent cost decrease of the Table 3 mappings.

Prints the per-function, per-device percent decrease and the per-device
averages, side by side with the paper's averages (5.85 / 7.65 / 4.92 /
8.04 / 8.48, overall ~7%).
"""

import pytest

from harness import percent_decrease, table3_grid
from repro.benchlib import single_target
from repro.devices import PAPER_DEVICES
from repro.optimize import LocalOptimizer
from repro.reporting import Table, average, percent

DEVICE_NAMES = [d.name for d in PAPER_DEVICES]

#: Paper Table 4 per-device average percent decreases.
PAPER_AVERAGES = {
    "ibmqx2": 5.85,
    "ibmqx3": 7.65,
    "ibmqx4": 4.92,
    "ibmqx5": 8.04,
    "ibmq_16": 8.48,
}


def test_print_table4():
    grid = table3_grid()
    table = Table(
        "Table 4 — % cost decrease after optimization (reproduced)",
        ["ftn"] + DEVICE_NAMES,
    )
    per_device = {name: [] for name in DEVICE_NAMES}
    for name, _ in single_target.PAPER_STG_BENCHMARKS:
        decreases = []
        for device in DEVICE_NAMES:
            value = percent_decrease(grid[name][device])
            decreases.append(percent(value))
            if value is not None:
                per_device[device].append(value)
        table.add_row(f"#{name}", *decreases)
    ours = [average(per_device[d]) for d in DEVICE_NAMES]
    table.add_row("Average (ours)", *[percent(v) for v in ours])
    table.add_row(
        "Average (paper)", *[f"{PAPER_AVERAGES[d]:.2f}" for d in DEVICE_NAMES]
    )
    table.print()

    overall = average([v for vs in per_device.values() for v in vs])
    print(f"Overall average decrease: ours {overall:.2f}% vs paper ~7%")

    # Shape assertions: optimization always helps on average, and the
    # sparser 16-qubit devices recover at least as much as the 5-qubit
    # ones (the paper's ordering qx4 < qx2 < qx3 < qx5 < qx_16).
    for device in DEVICE_NAMES:
        assert average(per_device[device]) >= 0
    assert overall > 2.0


def test_majority_of_mappings_improve():
    """Paper: 74 of 94 mapped designs (~79%) improved post-optimization."""
    grid = table3_grid()
    improved = total = 0
    for name, _ in single_target.PAPER_STG_BENCHMARKS:
        for device in DEVICE_NAMES:
            value = percent_decrease(grid[name][device])
            if value is None:
                continue
            total += 1
            if value > 0:
                improved += 1
    fraction = improved / total
    print(f"Improved mappings: {improved}/{total} = {fraction:.0%} (paper: 79%)")
    assert fraction > 0.5


def test_benchmark_optimizer_pass(benchmark):
    """Time one optimizer fixpoint run on a mapped Table 3 circuit."""
    from repro.backend import map_circuit
    from repro.devices import IBMQX3

    circuit = single_target.build_benchmark("013f", 6)
    mapped = map_circuit(circuit, IBMQX3)
    optimizer = LocalOptimizer(coupling_map=IBMQX3.coupling_map)
    result = benchmark.pedantic(optimizer.run, args=(mapped,), rounds=3, iterations=1)
    assert len(result) <= len(mapped)
