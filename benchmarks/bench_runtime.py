"""Section 5 runtime claims.

The paper reports: "Most technology-dependent specifications in Table 3
and Table 5 were generated in approximately 10^-2 seconds ... none
exceeding 5 seconds"; on 96 qubits "most ... under a second ... the
largest taking approximately 6.5 seconds".  This bench regenerates the
synthesis-time distribution and checks the same bounds.
"""

import pytest

from harness import table3_grid, table5_grid, table8_results
from repro.reporting import Table


def _times(grid):
    return [
        cell[2]
        for row in grid.values()
        for cell in row.values()
        if cell is not None
    ]


def test_print_runtime_distribution():
    times3 = _times(table3_grid())
    times5 = _times(table5_grid())
    times8 = [r.synthesis_seconds for r in table8_results().values()]

    table = Table(
        "Section 5 — synthesis runtime distribution (seconds)",
        ["suite", "n", "median", "mean", "max", "paper bound"],
    )
    for label, times, bound in [
        ("Table 3 (STG x devices)", times3, "< 5 s"),
        ("Table 5 (RevLib x devices)", times5, "< 5 s"),
        ("Table 8 (96-qubit)", times8, "~6.5 s max"),
    ]:
        ordered = sorted(times)
        median = ordered[len(ordered) // 2]
        table.add_row(
            label,
            len(times),
            f"{median:.4f}",
            f"{sum(times) / len(times):.4f}",
            f"{max(times):.4f}",
            bound,
        )
    table.print()

    # The paper's bounds, with headroom for slower hosts:
    assert max(times3) < 10.0
    assert max(times5) < 10.0
    assert max(times8) < 30.0


def test_typical_case_is_hundredths_of_a_second():
    """Median Table 3/5 synthesis stays in the paper's ~10^-2 s regime."""
    times = sorted(_times(table3_grid()) + _times(table5_grid()))
    median = times[len(times) // 2]
    print(f"Median synthesis time: {median * 1e3:.1f} ms (paper: ~10 ms)")
    assert median < 0.5


def test_benchmark_end_to_end_with_verification(benchmark):
    """Full pipeline including QMDD verification on a small benchmark —
    the complete Fig. 2 flow the paper times."""
    from repro import compile_circuit
    from repro.benchlib import revlib
    from repro.devices import IBMQX4

    circuit = revlib.build_benchmark("3_17_14")
    result = benchmark(compile_circuit, circuit, IBMQX4, verify=True)
    assert result.verification.equivalent


def test_benchmark_qmdd_verification_only(benchmark):
    """Isolate the formal-verification stage's cost."""
    from repro import compile_circuit
    from repro.benchlib import single_target
    from repro.devices import IBMQX3
    from repro.verify import verify_equivalent

    circuit = single_target.build_benchmark("000f", 5)
    result = compile_circuit(circuit, IBMQX3, verify=False)
    source = circuit.widened(16)

    report = benchmark.pedantic(
        verify_equivalent, args=(source, result.optimized),
        kwargs={"method": "qmdd"}, rounds=3, iterations=1,
    )
    assert report.equivalent
