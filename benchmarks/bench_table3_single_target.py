"""Table 3 — "Optimal Single-target Gates" compiled to the IBM devices.

Regenerates the full grid: every function x every device, unoptimized and
optimized (T-count / gates / cost), with the technology-independent
(simulator) column, N/A where the device is too small — the same rows
the paper reports.  Absolute gate counts differ from the paper because
the technology-independent inputs are re-synthesized by our front-end
(see DESIGN.md §4.2); expansion and recovery shapes are compared in
EXPERIMENTS.md.
"""

import pytest

from harness import format_cell, table3_grid
from repro import compile_circuit
from repro.benchlib import single_target
from repro.devices import IBMQX3, PAPER_DEVICES
from repro.reporting import Table

DEVICE_NAMES = [d.name for d in PAPER_DEVICES]


def test_print_table3():
    grid = table3_grid()
    table = Table(
        "Table 3 — single-target gates mapped to IBM devices "
        "(unopt T/gates/cost  opt T/gates/cost)",
        ["ftn", "qubits", "tech.ind."] + DEVICE_NAMES,
    )
    for name, qubits in single_target.PAPER_STG_BENCHMARKS:
        row = grid[name]
        sim = row["simulator"]
        cells = [format_cell(row[d]) for d in DEVICE_NAMES]
        table.add_row(f"#{name}", qubits, str(sim[1]), *cells)
    table.print()

    # Structural assertions on the regenerated grid:
    for name, qubits in single_target.PAPER_STG_BENCHMARKS:
        row = grid[name]
        for device in PAPER_DEVICES:
            cell = row[device.name]
            if single_target.expected_na(name, qubits, device.num_qubits):
                assert cell is None, (name, device.name)
            else:
                assert cell is not None
                unopt, opt, _ = cell
                assert opt.cost <= unopt.cost


def test_na_pattern():
    """All 6-qubit functions are N/A on the 5-qubit devices (as in the
    paper); additionally #01 and #07 — full-degree control functions —
    are N/A there because a full-width MCX has no spare line (our inputs
    are MCX cascades, not [23]'s pre-decomposed relative-phase circuits;
    see EXPERIMENTS.md)."""
    grid = table3_grid()
    deviations = []
    for name, qubits in single_target.PAPER_STG_BENCHMARKS:
        for dev_name, dev_qubits in (("ibmqx2", 5), ("ibmqx4", 5)):
            expected = single_target.expected_na(name, qubits, dev_qubits)
            assert (grid[name][dev_name] is None) == expected, (name, dev_name)
            if expected and qubits <= dev_qubits:
                deviations.append((name, dev_name))
        for dev in ("ibmqx3", "ibmqx5", "ibmq_16"):
            assert grid[name][dev] is not None
    print(f"Cells N/A here but filled in the paper: {deviations} "
          f"(4 of 94 outputs; full-degree parity obstruction)")
    assert deviations == [("01", "ibmqx2"), ("01", "ibmqx4"),
                          ("07", "ibmqx2"), ("07", "ibmqx4")]


def test_expansion_shape():
    """Mapping to real devices expands circuits (often ~10x for the
    multi-qubit-heavy functions) — Section 5's observation."""
    grid = table3_grid()
    expanded = 0
    for name, qubits in single_target.PAPER_STG_BENCHMARKS:
        sim = grid[name]["simulator"][1]
        cell = grid[name]["ibmqx3"]
        if cell and cell[0].gate_volume > sim.gate_volume:
            expanded += 1
    assert expanded >= 20  # all but the trivial 3-gate functions


def test_benchmark_compile_small(benchmark):
    circuit = single_target.build_benchmark("033f", 5)
    result = benchmark(compile_circuit, circuit, IBMQX3, verify=False)
    assert result.optimized_metrics.cost > 0


def test_benchmark_compile_large(benchmark):
    circuit = single_target.build_benchmark("0117", 6)
    result = benchmark.pedantic(
        compile_circuit, args=(circuit, IBMQX3),
        kwargs={"verify": False}, rounds=3, iterations=1,
    )
    assert result.optimized_metrics.cost > 0
