"""Benchmark-suite configuration: make `harness` importable and emit the
machine-readable perf record at session end."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_runtime.json`` whenever at least one grid was built."""
    import harness

    path = harness.write_runtime_json()
    if path:
        print(f"\nwrote {path}")
