"""QMDD scalability — supports the paper's formal-verification claims.

The paper verifies every output (Tables 3/5 at 5-16 qubits) by building
QMDDs.  This bench measures node counts and check times across widths
and circuit sizes, and demonstrates the compactness property (Section
2.4): structured transfer matrices stay polynomial-sized in the DD even
as the dense matrix grows as 4^n.
"""

import pytest

from repro import compile_circuit
from repro.benchlib import revlib, single_target
from repro.core import CNOT, H, MCX, QuantumCircuit, TOFFOLI
from repro.devices import IBMQX3, IBMQX5
from repro.qmdd import QMDDManager, check_equivalence, count_nodes
from repro.reporting import Table


def test_print_qmdd_compactness():
    """Node counts vs dense matrix size for characteristic functions."""
    table = Table(
        "QMDD compactness (Section 2.4)",
        ["function", "qubits", "dense entries", "QMDD nodes"],
    )
    cases = []
    for n in (4, 8, 12, 16):
        cases.append((f"identity_{n}", QuantumCircuit(n), n))
        cnots = QuantumCircuit(n, [CNOT(i, i + 1) for i in range(n - 1)])
        cases.append((f"cnot_chain_{n}", cnots, n))
        mcx = QuantumCircuit(n, [MCX(*range(n - 1), n - 1)])
        cases.append((f"T{n}", mcx, n))
    for label, circuit, n in cases:
        manager = QMDDManager(n)
        nodes = count_nodes(manager.circuit_edge(circuit))
        table.add_row(label, n, f"4^{n} = {4 ** n}", nodes)
        # Compactness: nodes grow polynomially for these families.
        assert nodes <= 4 * n * n
    table.print()


def test_verification_at_table_scale():
    """Verify representative Table 3/5 outputs by QMDD and report sizes,
    mirroring 'all outputs were confirmed ... by building the QMDD'."""
    table = Table(
        "QMDD verification of compiled benchmarks",
        ["benchmark", "device", "mapped gates", "nodes", "verdict"],
    )
    cases = [
        (single_target.build_benchmark("033f", 5), IBMQX3),
        (single_target.build_benchmark("000f", 5), IBMQX5),
        (revlib.build_benchmark("4gt13-v1_93"), IBMQX5),
    ]
    for circuit, device in cases:
        result = compile_circuit(circuit, device, verify=False)
        report = check_equivalence(
            circuit.widened(device.num_qubits), result.optimized
        )
        table.add_row(
            circuit.name,
            device.name,
            result.optimized_metrics.gate_volume,
            f"{report.nodes_first}/{report.nodes_second}",
            "equivalent" if report.equivalent else "MISMATCH",
        )
        assert report.equivalent
    table.print()


def test_full_qmdd_verification_at_96_qubits():
    """Formally verify a complete Table 8 output by QMDD — beyond the
    paper, which verified Tables 3/5 formally and 96-qubit outputs by
    construction.  ~1 minute; enabled with REPRO_BENCH_VERIFY=1."""
    import os

    if os.environ.get("REPRO_BENCH_VERIFY") != "1":
        pytest.skip("set REPRO_BENCH_VERIFY=1 for the 96-qubit QMDD check")
    from repro.benchlib import table7
    from repro.devices import PROPOSED96
    from repro.qmdd import compare_edges

    circuit = table7.build_benchmark("T6_b")
    result = compile_circuit(circuit, PROPOSED96, verify=False)
    manager = QMDDManager(96)
    source = manager.circuit_edge(circuit.widened(96))
    mapped = manager.circuit_edge(result.optimized)
    verdict = compare_edges(manager, source, mapped)
    print(f"96-qubit QMDD equivalence: {verdict.equivalent} "
          f"({verdict.nodes_first}/{verdict.nodes_second} nodes)")
    assert verdict.equivalent


def test_benchmark_qmdd_build_16q(benchmark):
    """Build the QMDD of a mapped 16-qubit circuit (the verification
    workload for every Table 3 cell)."""
    result = compile_circuit(
        single_target.build_benchmark("0356", 5), IBMQX3, verify=False
    )

    def build():
        manager = QMDDManager(16)
        return manager.circuit_edge(result.optimized)

    edge = benchmark.pedantic(build, rounds=3, iterations=1)
    assert not edge.is_zero


def test_benchmark_qmdd_toffoli_equivalence(benchmark):
    """The classic check: Toffoli vs its 15-gate network."""
    from repro.backend import toffoli_network

    a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
    b = QuantumCircuit(3, toffoli_network(0, 1, 2))
    result = benchmark(check_equivalence, a, b)
    assert result.equivalent
