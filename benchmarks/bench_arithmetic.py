"""Arithmetic workload sweep — device comparison beyond the paper.

Compiles the arithmetic suite (Cuccaro adders, incrementers, ESOP
majority voters) to every IBM target and the 96-qubit machine, printing
the full metric grid.  Demonstrates the tool on the classical-algorithm
workloads its front-end was built for, and shows the coupling-complexity
trend (sparser devices -> more expansion) on a second, independent
workload family.
"""

import pytest

from repro import NotSynthesizableError, compile_circuit
from repro.benchlib.arithmetic import ARITHMETIC_SUITE
from repro.devices import PAPER_DEVICES, PROPOSED96
from repro.reporting import Table

TARGETS = list(PAPER_DEVICES) + [PROPOSED96]


def _grid():
    rows = {}
    for name, factory in ARITHMETIC_SUITE:
        circuit = factory()
        cells = {}
        for device in TARGETS:
            try:
                result = compile_circuit(circuit, device, verify=False)
            except NotSynthesizableError:
                cells[device.name] = None
                continue
            cells[device.name] = result
        rows[name] = (circuit, cells)
    return rows


def test_print_arithmetic_grid():
    rows = _grid()
    table = Table(
        "Arithmetic workloads mapped to all targets (opt T/gates/cost)",
        ["workload", "qubits", "gates"] + [d.name for d in TARGETS],
    )
    for name, (circuit, cells) in rows.items():
        formatted = []
        for device in TARGETS:
            result = cells[device.name]
            formatted.append(
                "N/A" if result is None else str(result.optimized_metrics)
            )
        table.add_row(name, circuit.num_qubits, circuit.gate_volume, *formatted)
    table.print()

    # Every synthesizable cell must have optimized without cost increase.
    for name, (_, cells) in rows.items():
        for result in cells.values():
            if result is not None:
                assert (
                    result.optimized_metrics.cost
                    <= result.unoptimized_metrics.cost
                ), name


def test_sparser_devices_expand_more():
    """The Table 2 complexity trend on an independent workload family:
    qx3 (complexity 0.083) needs more gates than qx2 (0.3) for the same
    4-bit incrementer."""
    rows = _grid()
    _, cells = rows["increment4"]
    assert (
        cells["ibmqx3"].optimized_metrics.gate_volume
        >= cells["ibmqx2"].optimized_metrics.gate_volume
    )


def test_incrementer_uses_ancillas_on_big_machines():
    """increment6's MCX tower is N/A on 5-qubit devices... actually it
    fits (6 qubits > 5): verify the N/A pattern is exactly the
    too-small devices."""
    rows = _grid()
    _, cells = rows["increment6"]
    assert cells["ibmqx2"] is None and cells["ibmqx4"] is None
    for dev in ("ibmqx3", "ibmqx5", "ibmq_16", "proposed96"):
        assert cells[dev] is not None


def test_benchmark_compile_adder(benchmark):
    from repro.benchlib.arithmetic import cuccaro_adder
    from repro.devices import IBMQX5

    circuit = cuccaro_adder(3)
    result = benchmark(compile_circuit, circuit, IBMQX5, verify=False)
    assert result.optimized_metrics.cost > 0
