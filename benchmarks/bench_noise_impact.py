"""Noise-impact experiment — closing the paper's §2.2 motivation loop.

The paper reduces the Eqn. 2 cost because more gates mean more
decoherence, but never quantifies the payoff.  This bench does: each
Table 5 benchmark is compiled to ibmqx3, and both the unoptimized and
optimized mappings run under the calibrated stochastic Pauli error
model.  The optimized mapping's higher success probability is the
experimental justification for the whole optimization stage.
"""

import pytest

from repro import compile_circuit
from repro.benchlib import revlib
from repro.devices import IBMQX3, synthetic_calibration
from repro.reporting import Table
from repro.verify import compare_under_noise

#: Mild error rates so several-hundred-gate circuits retain fidelity.
CALIBRATION = synthetic_calibration(IBMQX3, single_qubit_base=1e-4,
                                    cnot_base=2e-3)


def test_print_noise_impact():
    table = Table(
        "Noise impact — success probability of unoptimized vs optimized "
        "mappings (ibmqx3, calibrated Pauli errors)",
        ["benchmark", "gates un/opt", "analytic un/opt", "sampled un/opt"],
    )
    for name in ("3_17_14", "fred6", "4_49_17"):
        circuit = revlib.build_benchmark(name)
        result = compile_circuit(circuit, IBMQX3, verify=False)
        p_unopt = CALIBRATION.success_probability(result.unoptimized)
        p_opt = CALIBRATION.success_probability(result.optimized)
        rates = compare_under_noise(
            result.unoptimized, result.optimized, CALIBRATION,
            input_basis=0, trials=250,
        )
        table.add_row(
            name,
            f"{result.unoptimized_metrics.gate_volume}/"
            f"{result.optimized_metrics.gate_volume}",
            f"{p_unopt:.3f}/{p_opt:.3f}",
            f"{rates['unoptimized']:.3f}/{rates['optimized']:.3f}",
        )
        assert p_opt > p_unopt
    table.print()


def test_optimization_gain_scales_with_recovery():
    """The benchmark with the biggest cost recovery gains the most
    analytic fidelity."""
    gains = {}
    for name in ("3_17_14", "4_49_17"):
        circuit = revlib.build_benchmark(name)
        result = compile_circuit(circuit, IBMQX3, verify=False)
        p_unopt = CALIBRATION.success_probability(result.unoptimized)
        p_opt = CALIBRATION.success_probability(result.optimized)
        gains[name] = (p_opt / p_unopt, result.percent_cost_decrease)
    ratio_small, pct_small = gains["3_17_14"]
    ratio_large, pct_large = gains["4_49_17"]
    assert pct_large > pct_small
    assert ratio_large > ratio_small


def test_benchmark_noisy_trials(benchmark):
    from repro.verify import noisy_success_rate

    circuit = revlib.build_benchmark("3_17_14")
    result = compile_circuit(circuit, IBMQX3, verify=False)

    def run():
        return noisy_success_rate(
            result.optimized, CALIBRATION, trials=50, seed=11
        )

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert 0 <= report.success_rate <= 1
