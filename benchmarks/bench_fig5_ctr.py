"""Figs. 3-5 — CTR rerouting on ibmqx3 (CNOT q5 -> q10).

Reproduces the paper's worked example: the connectivity tree finds the
q5 -> q12 -> q11 -> q10 SWAP route, executes the CNOT from q11, and swaps
back.  Also checks the Fig. 3 bound (every SWAP <= 7 gates).
"""

import pytest

from repro.backend import cnot_with_ctr, find_swap_path, swap_gates
from repro.devices import IBMQX3
from repro.reporting import Table


def test_print_fig5_walkthrough():
    coupling = IBMQX3.coupling_map
    path = find_swap_path(5, 10, coupling)
    gates = cnot_with_ctr(5, 10, coupling)
    table = Table(
        "Fig. 5 — CTR for CNOT(q5 -> q10) on ibmqx3 (reproduced)",
        ["quantity", "ours", "paper"],
    )
    table.add_row("SWAP route", " -> ".join(f"q{q}" for q in path), "q5 q12 q11 q10")
    table.add_row("swaps each way", len(path) - 2, 2)
    table.add_row("total gates emitted", len(gates), "(not stated)")
    table.add_row(
        "CNOTs emitted", sum(1 for g in gates if g.name == "CNOT"), "(not stated)"
    )
    table.print()
    assert path == [5, 12, 11, 10]


def test_print_fig3_swap_bound():
    """Every SWAP on every ibmqx3 link compiles to at most 7 gates."""
    coupling = IBMQX3.coupling_map
    worst = 0
    for control, target in coupling.directed_edges:
        worst = max(worst, len(swap_gates(control, target, coupling)))
    print(f"Fig. 3 check: worst SWAP gate count on ibmqx3 = {worst} (paper bound: 7)")
    assert worst <= 7


def test_benchmark_ctr_fig5(benchmark):
    coupling = IBMQX3.coupling_map
    gates = benchmark(cnot_with_ctr, 5, 10, coupling)
    assert gates


def test_benchmark_ctr_worst_case_96q(benchmark):
    """Longest reroute on the 96-qubit machine (corner to corner)."""
    from repro.devices import PROPOSED96

    coupling = PROPOSED96.coupling_map
    gates = benchmark(cnot_with_ctr, 0, 95, coupling)
    assert gates
