"""Cross-platform sweep — transmon vs trapped ion (beyond the paper).

The paper's conclusion targets "other quantum technology platforms" as
future work.  This bench compiles the RevLib and arithmetic workloads to
ibmqx5 (transmon) and an equal-sized ion trap and compares the
two-qubit-interaction budgets — the quantity that dominates error on
both platforms.
"""

import pytest

from repro import NotSynthesizableError, compile_circuit
from repro.benchlib import revlib
from repro.benchlib.arithmetic import cuccaro_adder, incrementer
from repro.devices import IBMQX5, ion_device
from repro.reporting import Table

ION16 = ion_device(16, name="ion16-bench")


def _workloads():
    yield "3_17_14", revlib.build_benchmark("3_17_14")
    yield "fred6", revlib.build_benchmark("fred6")
    yield "4_49_17", revlib.build_benchmark("4_49_17")
    yield "cuccaro3", cuccaro_adder(3)
    yield "increment5", incrementer(5)


def test_print_cross_platform():
    table = Table(
        "Transmon (ibmqx5) vs trapped ion — optimized mappings",
        ["workload", "qx5 gates", "qx5 2q", "ion gates", "ion 2q (RXX)",
         "2q ratio"],
    )
    for name, circuit in _workloads():
        transmon = compile_circuit(circuit, IBMQX5, verify=False)
        ion = compile_circuit(circuit, ION16, verify=False)
        qx5_two = transmon.optimized.cnot_count
        ion_two = ion.optimized.count("RXX")
        table.add_row(
            name,
            transmon.optimized_metrics.gate_volume,
            qx5_two,
            ion.optimized_metrics.gate_volume,
            ion_two,
            f"{qx5_two / max(1, ion_two):.1f}x",
        )
        # Routing-free all-to-all coupling never needs more entanglers.
        assert ion_two <= qx5_two
    table.print()


def test_ion_outputs_native_and_verified():
    for name, circuit in _workloads():
        result = compile_circuit(circuit, ION16)
        assert result.verification.equivalent, name
        assert all(
            gate.name in ("RX", "RY", "RZ", "RXX", "I")
            for gate in result.optimized
        ), name


def test_benchmark_compile_to_ion(benchmark):
    circuit = revlib.build_benchmark("4_49_17")
    result = benchmark(compile_circuit, circuit, ION16, verify=False)
    assert result.optimized.count("RXX") > 0
