"""Table 6 — percent cost decrease of the Table 5 mappings.

Paper averages: qx2 5.48, qx3 29.56, qx4 6.40, qx5 26.51, ibmq_16 19.08
(overall ~17.4%) — the 16-qubit devices recover far more because their
mapped forms carry more rerouting redundancy.
"""

import pytest

from harness import percent_decrease, table5_grid
from repro.benchlib import revlib
from repro.devices import PAPER_DEVICES
from repro.reporting import Table, average, percent

DEVICE_NAMES = [d.name for d in PAPER_DEVICES]

PAPER_AVERAGES = {
    "ibmqx2": 5.48,
    "ibmqx3": 29.56,
    "ibmqx4": 6.40,
    "ibmqx5": 26.51,
    "ibmq_16": 19.08,
}


def test_print_table6():
    grid = table5_grid()
    table = Table(
        "Table 6 — % cost decrease after optimization (reproduced)",
        ["ftn"] + DEVICE_NAMES,
    )
    per_device = {name: [] for name in DEVICE_NAMES}
    for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS:
        row = []
        for device in DEVICE_NAMES:
            value = percent_decrease(grid[name][device])
            row.append(percent(value))
            if value is not None:
                per_device[device].append(value)
        table.add_row(name, *row)
    ours = [average(per_device[d]) for d in DEVICE_NAMES]
    table.add_row("Average (ours)", *[percent(v) for v in ours])
    table.add_row(
        "Average (paper)", *[f"{PAPER_AVERAGES[d]:.2f}" for d in DEVICE_NAMES]
    )
    table.print()

    overall = average([v for vs in per_device.values() for v in vs])
    print(f"Overall average decrease: ours {overall:.2f}% vs paper ~17.4%")
    assert overall > 5.0


def test_every_entry_positive():
    """Table 6's striking fact: every synthesizable cell improved."""
    grid = table5_grid()
    for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS:
        for device in DEVICE_NAMES:
            value = percent_decrease(grid[name][device])
            if value is not None:
                assert value > 0, (name, device)


def test_recovery_band():
    """Recovery magnitudes sit in the paper's double-digit regime for the
    routing-heavy benchmarks.  (The paper's strict per-device ordering
    qx3/qx5 >> qx2/qx4 does not transfer exactly because our optimizer
    recovers more than the paper's on the 5-qubit devices — see
    EXPERIMENTS.md for the cell-level comparison.)"""
    grid = table5_grid()
    per_device = {}
    for device in DEVICE_NAMES:
        values = [
            percent_decrease(grid[name][device])
            for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS
        ]
        per_device[device] = average([v for v in values if v is not None])
    # qx3 recovers more than qx2 on average, as in the paper.
    assert per_device["ibmqx3"] > per_device["ibmqx2"]
    # Every device shows double-digit-capable recovery on some benchmark.
    for device in DEVICE_NAMES:
        best = max(
            v
            for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS
            if (v := percent_decrease(grid[name][device])) is not None
        )
        assert best > 7.0, device


def test_benchmark_percent_decrease_computation(benchmark):
    grid = table5_grid()

    def compute():
        return [
            percent_decrease(grid[name][device])
            for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS
            for device in DEVICE_NAMES
        ]

    values = benchmark(compute)
    assert len(values) == 25
