"""Table 2 — IBM Q device details and coupling complexity.

Prints the reproduced Table 2 and times the coupling-complexity
computation (which backs the paper's device-selection guidance).
"""

import pytest

from repro.devices import PAPER_DEVICES, PROPOSED96, SIMULATOR
from repro.devices.coupling import CouplingMap
from repro.reporting import Table

#: Paper Table 2 reference values.
PAPER_TABLE2 = {
    "ibmqx2": (5, 0.3),
    "ibmqx3": (16, 0.0833),
    "ibmqx4": (5, 0.3),
    "ibmqx5": (16, 0.0917),
    "ibmq_16": (14, 0.098901),
}


def test_print_table2():
    table = Table(
        "Table 2 — IBM Q device details (reproduced)",
        ["device", "qubits", "complexity (ours)", "complexity (paper)", "match"],
    )
    for device in PAPER_DEVICES:
        qubits, paper_value = PAPER_TABLE2[device.name]
        ours = device.coupling_complexity
        table.add_row(
            device.name,
            device.num_qubits,
            f"{ours:.6f}",
            f"{paper_value:.6f}",
            "yes" if abs(ours - paper_value) < 5e-5 else "NO",
        )
        assert device.num_qubits == qubits
        assert abs(ours - paper_value) < 5e-5
    table.add_row("simulator", SIMULATOR.num_qubits, "1.000000", "1.0 (defn)", "yes")
    table.add_row(
        "proposed96", 96, f"{PROPOSED96.coupling_complexity:.6f}", "(Fig. 7)", "-"
    )
    table.print()


def bench_complexity_all_devices():
    return [d.coupling_complexity for d in PAPER_DEVICES]


def test_benchmark_coupling_complexity(benchmark):
    values = benchmark(bench_complexity_all_devices)
    assert len(values) == 5


def test_benchmark_distance_matrix_96q(benchmark):
    """All-pairs-from-one-source BFS on the 96-qubit machine: the routing
    primitive CTR leans on."""
    coupling = PROPOSED96.coupling_map

    def sweep():
        return [coupling.distance(0, q) for q in range(96)]

    distances = benchmark(sweep)
    assert all(d is not None for d in distances)
