"""Table 5 — RevLib Toffoli cascades compiled to the IBM devices.

The T-counts of these rows are structural (Toffoli = 7 T, dirty V-chain
= 4(k-2) Toffolis) and must match the paper *exactly*; gate totals and
costs depend on routing details and are compared as shapes.
"""

import pytest

from harness import format_cell, table5_grid
from repro import compile_circuit
from repro.benchlib import revlib
from repro.devices import IBMQX5, PAPER_DEVICES
from repro.reporting import Table

DEVICE_NAMES = [d.name for d in PAPER_DEVICES]

#: Paper Table 5 unoptimized T-counts (identical across devices where
#: synthesizable).
PAPER_T_COUNTS = {
    "3_17_14": 14,
    "fred6": 21,
    "4_49_17": 35,
    "4gt12-v0_88": 70,
    "4gt13-v1_93": 28,
}

#: Paper N/A cells: benchmark -> devices where it cannot synthesize.
PAPER_NA = {"4gt12-v0_88": {"ibmqx2", "ibmqx4"}}


def test_print_table5():
    grid = table5_grid()
    table = Table(
        "Table 5 — RevLib Toffoli cascades mapped to IBM devices "
        "(unopt T/gates/cost  opt T/gates/cost)",
        ["ftn", "qubits", "largest", "count"] + DEVICE_NAMES,
    )
    for name, largest, count in revlib.PAPER_REVLIB_BENCHMARKS:
        circuit = revlib.build_benchmark(name)
        cells = [format_cell(grid[name][d]) for d in DEVICE_NAMES]
        table.add_row(name, circuit.num_qubits, largest, count, *cells)
    table.print()


def test_t_counts_match_paper_exactly():
    grid = table5_grid()
    for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS:
        for device in DEVICE_NAMES:
            cell = grid[name][device]
            if device in PAPER_NA.get(name, set()):
                assert cell is None, (name, device)
                continue
            assert cell is not None, (name, device)
            unopt, _, _ = cell
            assert unopt.t_count == PAPER_T_COUNTS[name], (name, device)


def test_expansion_up_to_two_orders():
    """Section 5: Toffoli decomposition + mapping expands cascades by up
    to ~10^2 x their original gate count."""
    grid = table5_grid()
    worst = 0.0
    for name, _, original_count in revlib.PAPER_REVLIB_BENCHMARKS:
        for device in DEVICE_NAMES:
            cell = grid[name][device]
            if cell:
                worst = max(worst, cell[0].gate_volume / original_count)
    print(f"Worst expansion factor: {worst:.0f}x (paper: up to ~10^2)")
    assert worst > 30


def test_all_cascades_improve():
    """Table 6 precondition: 100% of mapped cascades optimize smaller."""
    grid = table5_grid()
    for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS:
        for device in DEVICE_NAMES:
            cell = grid[name][device]
            if cell is None:
                continue
            unopt, opt, _ = cell
            assert opt.cost < unopt.cost, (name, device)


def test_benchmark_compile_fred6(benchmark):
    circuit = revlib.build_benchmark("fred6")
    result = benchmark(compile_circuit, circuit, IBMQX5, verify=False)
    assert result.unoptimized_metrics.t_count == 21


def test_benchmark_compile_4gt12(benchmark):
    circuit = revlib.build_benchmark("4gt12-v0_88")
    result = benchmark.pedantic(
        compile_circuit, args=(circuit, IBMQX5), kwargs={"verify": False},
        rounds=3, iterations=1,
    )
    assert result.unoptimized_metrics.t_count == 70
