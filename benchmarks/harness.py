"""Shared computation for the benchmark suite.

The Table 3/4 and Table 5/6 benches consume the same compilation grid, so
the grid is computed once per pytest session and cached here.  Every
entry mirrors one cell of the paper's tables: the unoptimized and
optimized (T-count / gates / cost) triples for one benchmark on one
device, or ``None`` for the paper's N/A cells.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro import NotSynthesizableError, compile_circuit
from repro.benchlib import revlib, single_target, table7
from repro.compiler import CompilationResult
from repro.core.cost import CircuitMetrics
from repro.devices import PAPER_DEVICES, PROPOSED96, SIMULATOR

#: Set REPRO_BENCH_VERIFY=1 to formally verify every compiled benchmark
#: (QMDD / sampled); adds minutes to the run but mirrors the paper's
#: "all outputs were confirmed" claim end to end.
VERIFY = os.environ.get("REPRO_BENCH_VERIFY", "0") == "1"

Cell = Optional[Tuple[CircuitMetrics, CircuitMetrics, float]]


def _compile_cell(circuit, device) -> Cell:
    try:
        result = compile_circuit(
            circuit, device, verify="auto" if VERIFY else False
        )
    except NotSynthesizableError:
        return None
    return (
        result.unoptimized_metrics,
        result.optimized_metrics,
        result.synthesis_seconds,
    )


@lru_cache(maxsize=1)
def table3_grid():
    """name -> {device name -> Cell}, plus the simulator reference."""
    grid: Dict[str, Dict[str, Cell]] = {}
    for name, qubits in single_target.PAPER_STG_BENCHMARKS:
        circuit = single_target.build_benchmark(name, qubits)
        row: Dict[str, Cell] = {"simulator": _compile_cell(circuit, SIMULATOR)}
        for device in PAPER_DEVICES:
            row[device.name] = _compile_cell(circuit, device)
        grid[name] = row
    return grid


@lru_cache(maxsize=1)
def table5_grid():
    grid: Dict[str, Dict[str, Cell]] = {}
    for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS:
        circuit = revlib.build_benchmark(name)
        grid[name] = {
            device.name: _compile_cell(circuit, device) for device in PAPER_DEVICES
        }
    return grid


@lru_cache(maxsize=1)
def table8_results():
    """name -> full CompilationResult on the proposed 96-qubit machine."""
    results: Dict[str, CompilationResult] = {}
    for name in table7.PAPER_96Q_BENCHMARKS:
        circuit = table7.build_benchmark(name)
        results[name] = compile_circuit(
            circuit, PROPOSED96, verify="sampled" if VERIFY else False
        )
    return results


def percent_decrease(cell: Cell) -> Optional[float]:
    """The Tables 4/6/8 metric for one grid cell."""
    if cell is None:
        return None
    unopt, opt, _ = cell
    return unopt.percent_decrease_to(opt)


def format_cell(cell: Cell) -> str:
    if cell is None:
        return "N/A"
    unopt, opt, _ = cell
    return f"{unopt}  {opt}"
