"""Shared computation for the benchmark suite.

The Table 3/4 and Table 5/6 benches consume the same compilation grid, so
the grid is computed once per pytest session and cached here.  Every
entry mirrors one cell of the paper's tables: the unoptimized and
optimized (T-count / gates / cost) triples for one benchmark on one
device, or ``None`` for the paper's N/A cells.

Grids are compiled through the batch engine (:mod:`repro.batch`):

* ``REPRO_BENCH_WORKERS=N`` fans the grid across N worker processes
  (default 1 — serial in-process compilation).
* A content-addressed result cache is shared by all suites, so cells
  repeated across tables compile once.  ``REPRO_BENCH_CACHE_DIR=path``
  adds a persistent on-disk tier (e.g. ``.repro_cache``) that makes the
  *next* run start warm.
* Every suite's wall-clock, per-cell triples, and cache hit rates are
  recorded and written to ``BENCH_runtime.json`` at session end (see
  :func:`write_runtime_json`), giving future PRs a perf trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import time
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.batch import CompilationCache, CompileJob, compile_many
from repro.compiler import CompilationResult
from repro.core.cost import CircuitMetrics
from repro.benchlib import revlib, single_target, table7
from repro.devices import PAPER_DEVICES, PROPOSED96, SIMULATOR

#: Set REPRO_BENCH_VERIFY=1 to formally verify every compiled benchmark
#: (QMDD / sampled); adds minutes to the run but mirrors the paper's
#: "all outputs were confirmed" claim end to end.
VERIFY = os.environ.get("REPRO_BENCH_VERIFY", "0") == "1"

#: Worker processes for grid compilation (1 = serial, no pool).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1") or "1")

#: Optional persistent cache directory; empty disables the disk tier.
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR", "")

#: One shared content-addressed cache for every suite in the session —
#: grid cells repeated across tables (3 vs 4, 5 vs 6) compile once.
CACHE = CompilationCache(max_entries=2048, directory=CACHE_DIR or None)

#: Per-suite runtime records, dumped by :func:`write_runtime_json`.
RUNTIME: Dict[str, Dict] = {}

#: Default output path of the machine-readable perf record (repo root).
RUNTIME_JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_runtime.json",
)

Cell = Optional[Tuple[CircuitMetrics, CircuitMetrics, float]]


def _options() -> Dict:
    return {"verify": "auto" if VERIFY else False}


def _run_grid(
    suite: str, jobs: List[CompileJob], cells: List[Tuple[str, str]]
) -> Dict[str, Dict[str, CompilationResult]]:
    """Compile ``jobs`` as one batch; return name -> device -> result.

    ``cells`` pairs each job with its (benchmark, device) coordinates.
    N/A cells (NotSynthesizableError) come back as missing entries; any
    other per-job failure is re-raised — a broken compiler should fail
    the bench loudly, not silently drop cells.
    """
    started = time.perf_counter()
    report = compile_many(jobs, workers=WORKERS, cache=CACHE)
    grid: Dict[str, Dict[str, CompilationResult]] = {}
    benchmarks: Dict[str, Dict[str, Dict]] = {}
    not_available = 0
    for entry, (name, device_name) in zip(report, cells):
        row = grid.setdefault(name, {})
        record = benchmarks.setdefault(name, {})
        if entry.ok:
            result = entry.result
            row[device_name] = result
            record[device_name] = {
                "seconds": round(result.synthesis_seconds, 6),
                "from_cache": entry.from_cache,
                "unoptimized": _triple(result.unoptimized_metrics),
                "optimized": _triple(result.optimized_metrics),
            }
        elif entry.error.not_synthesizable:
            not_available += 1
            record[device_name] = None
        else:
            entry.unwrap()  # re-raises with the job label attached
    RUNTIME[suite] = {
        "wall_seconds": round(time.perf_counter() - started, 4),
        "workers": report.workers,
        "cells": len(jobs),
        "compiled": sum(1 for entry in report if entry.ok),
        "not_available": not_available,
        "cache_hits": report.cache_hits,
        # Per-run cache delta (schema 2): hits/misses/hit_rate are what
        # THIS suite did, not the session's cumulative counters; the
        # session totals live under its "lifetime" sub-key.
        "cache": report.cache_stats,
        "metrics": report.metrics,
        "sum_synthesis_seconds": round(
            sum(e.result.synthesis_seconds for e in report.successes()), 4
        ),
        "benchmarks": benchmarks,
    }
    return grid


def _triple(metrics: CircuitMetrics) -> List[float]:
    return [metrics.t_count, metrics.gate_volume, metrics.cost]


def _cell(result: Optional[CompilationResult]) -> Cell:
    if result is None:
        return None
    return (
        result.unoptimized_metrics,
        result.optimized_metrics,
        result.synthesis_seconds,
    )


@lru_cache(maxsize=1)
def table3_grid():
    """name -> {device name -> Cell}, plus the simulator reference."""
    jobs: List[CompileJob] = []
    cells: List[Tuple[str, str]] = []
    options = _options()
    for name, qubits in single_target.PAPER_STG_BENCHMARKS:
        circuit = single_target.build_benchmark(name, qubits)
        for device in (SIMULATOR, *PAPER_DEVICES):
            jobs.append(CompileJob.make(circuit, device, options))
            cells.append((name, device.name))
    results = _run_grid("table3", jobs, cells)
    return {
        name: {
            device: _cell(results.get(name, {}).get(device))
            for device in ("simulator", *(d.name for d in PAPER_DEVICES))
        }
        for name, _ in single_target.PAPER_STG_BENCHMARKS
    }


@lru_cache(maxsize=1)
def table5_grid():
    jobs: List[CompileJob] = []
    cells: List[Tuple[str, str]] = []
    options = _options()
    for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS:
        circuit = revlib.build_benchmark(name)
        for device in PAPER_DEVICES:
            jobs.append(CompileJob.make(circuit, device, options))
            cells.append((name, device.name))
    results = _run_grid("table5", jobs, cells)
    return {
        name: {
            device.name: _cell(results.get(name, {}).get(device.name))
            for device in PAPER_DEVICES
        }
        for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS
    }


@lru_cache(maxsize=1)
def table8_results():
    """name -> full CompilationResult on the proposed 96-qubit machine."""
    jobs: List[CompileJob] = []
    cells: List[Tuple[str, str]] = []
    options = {"verify": "sampled" if VERIFY else False}
    for name in table7.PAPER_96Q_BENCHMARKS:
        circuit = table7.build_benchmark(name)
        jobs.append(CompileJob.make(circuit, PROPOSED96, options))
        cells.append((name, PROPOSED96.name))
    results = _run_grid("table8", jobs, cells)
    return {
        name: results[name][PROPOSED96.name]
        for name in table7.PAPER_96Q_BENCHMARKS
    }


def write_runtime_json(path: Optional[str] = None) -> Optional[str]:
    """Dump the session's perf record; returns the path (None if no suite
    ran).  Called automatically at pytest session end (see conftest)."""
    if not RUNTIME:
        return None
    path = path or RUNTIME_JSON_PATH
    # Schema 3: adds the "verify" suite (bench_verify.py) — per-cell
    # two-sided vs miter wall times, peak unique-table nodes, and the
    # overall speedup; its shape differs from the compile-grid suites
    # (no batch-engine cache/metrics keys).  Schema 2 made per-suite
    # "cache" a per-run delta (session totals under "lifetime") and
    # added per-suite "metrics"; the top-level "cache" stays the
    # session-lifetime view.
    document = {
        "schema": 3,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "workers": WORKERS,
        "verify": VERIFY,
        "cache": CACHE.stats(),
        "suites": RUNTIME,
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return path


def percent_decrease(cell: Cell) -> Optional[float]:
    """The Tables 4/6/8 metric for one grid cell."""
    if cell is None:
        return None
    unopt, opt, _ = cell
    return unopt.percent_decrease_to(opt)


def format_cell(cell: Cell) -> str:
    if cell is None:
        return "N/A"
    unopt, opt, _ = cell
    return f"{unopt}  {opt}"
