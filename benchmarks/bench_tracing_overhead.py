"""Default-off tracing must stay effectively free on the hot path.

The observability layer (:mod:`repro.obs`) instruments every pipeline
stage, but when no tracer is passed each instrumented site costs one
attribute access and a no-op context enter/exit on the shared
:data:`~repro.obs.NULL_TRACER` span.  This bench compiles a
Table-3-style grid twice — tracing off (the default) and tracing on —
and asserts:

* default-off adds less than 2% versus a pre-observability baseline.
  There is no such baseline left to time, so the bound is enforced the
  only honest way available: the *fully traced* run may cost at most
  10% (or a small absolute epsilon) over the untraced run, and the
  untraced run's per-site cost is additionally measured directly via a
  null-span microbenchmark and extrapolated over the grid's span count.
* the measured numbers are recorded into ``BENCH_runtime.json`` under
  the ``tracing_overhead`` suite so future PRs inherit a trajectory.

Timing protocol mirrors ``bench_analysis_overhead``: interleaved
min-of-N pairs to cancel machine-load drift, with an absolute epsilon
for sub-millisecond grids where relative overhead is noise.
"""

import time

from harness import RUNTIME
from repro.benchlib import single_target
from repro.compiler import compile_circuit
from repro.devices import PAPER_DEVICES
from repro.obs import NULL_TRACER, Tracer

#: Wall-clock fraction *enabled* tracing may add over default-off.
MAX_TRACED_OVERHEAD = 0.10

#: Budget for the default-off path itself, checked by extrapolating the
#: measured per-null-span cost across the grid's instrumented sites.
MAX_DEFAULT_OFF_OVERHEAD = 0.02

#: Grids faster than this are judged by absolute slack instead.
ABSOLUTE_EPSILON_SECONDS = 0.050

#: Interleaved (off, on) measurement pairs, min-of-N per side.
REPEATS = 5

#: Null-span microbenchmark iterations.
NULL_SPAN_ITERATIONS = 200_000


def _grid_jobs():
    from repro.core.exceptions import NotSynthesizableError

    jobs = []
    for name, qubits in single_target.PAPER_STG_BENCHMARKS[:6]:
        circuit = single_target.build_benchmark(name, qubits)
        for device in PAPER_DEVICES:
            if circuit.num_qubits > device.num_qubits:
                continue
            try:  # drop the paper's N/A cells (e.g. full-width MCX)
                compile_circuit(circuit, device, verify=False)
            except NotSynthesizableError:
                continue
            jobs.append((circuit, device))
    return jobs


def _time_pass(jobs, trace):
    started = time.perf_counter()
    for circuit, device in jobs:
        compile_circuit(circuit, device, verify=False, trace=trace)
    return time.perf_counter() - started


def _time_grid(jobs):
    """Interleaved min-of-N for both configurations."""
    untraced = traced = None
    for _ in range(REPEATS):
        off = _time_pass(jobs, trace=False)
        on = _time_pass(jobs, trace=True)
        untraced = off if untraced is None else min(untraced, off)
        traced = on if traced is None else min(traced, on)
    return untraced, traced


def _count_spans(jobs):
    """Spans one traced compile of the grid records (= the number of
    instrumented sites the default-off path pays a null-span at)."""
    total = 0
    for circuit, device in jobs:
        tracer = Tracer()
        compile_circuit(circuit, device, verify=False, tracer=tracer)

        def count(node):
            return 1 + sum(count(child) for child in node.get("children", ()))

        total += sum(count(root) for root in tracer.to_summary()["spans"])
    return total


def _null_span_seconds_each():
    """Measured cost of one disabled instrumentation site."""
    best = None
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(NULL_SPAN_ITERATIONS):
            with NULL_TRACER.span("x"):
                pass
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best / NULL_SPAN_ITERATIONS


def test_enabled_tracing_overhead_bounded():
    jobs = _grid_jobs()  # building the grid also warms every memo cache
    assert jobs, "benchmark grid is empty"

    untraced, traced = _time_grid(jobs)
    overhead = traced - untraced
    relative = overhead / untraced if untraced > 0 else 0.0

    spans = _count_spans(jobs)
    null_each = _null_span_seconds_each()
    # What the default-off path pays for instrumentation, extrapolated
    # from the measured per-site null-span cost over the grid's spans.
    default_off_seconds = spans * null_each
    default_off_relative = (
        default_off_seconds / untraced if untraced > 0 else 0.0
    )

    RUNTIME["tracing_overhead"] = {
        "cells": len(jobs),
        "repeats": REPEATS,
        "seconds_untraced": round(untraced, 6),
        "seconds_traced": round(traced, 6),
        "traced_overhead_seconds": round(overhead, 6),
        "traced_overhead_relative": round(relative, 6),
        "spans_per_grid": spans,
        "null_span_nanoseconds": round(null_each * 1e9, 2),
        "default_off_overhead_seconds": round(default_off_seconds, 9),
        "default_off_overhead_relative": round(default_off_relative, 9),
    }
    print(
        f"\ntracing overhead: {untraced * 1e3:.1f} ms -> "
        f"{traced * 1e3:.1f} ms over {len(jobs)} cells "
        f"({relative * 100:+.2f}% traced); default-off "
        f"{spans} spans x {null_each * 1e9:.0f} ns = "
        f"{default_off_seconds * 1e6:.1f} us "
        f"({default_off_relative * 100:.4f}%)"
    )

    assert (
        relative < MAX_TRACED_OVERHEAD or overhead < ABSOLUTE_EPSILON_SECONDS
    ), (
        f"enabled tracing added {relative * 100:.1f}% "
        f"({overhead * 1e3:.1f} ms) to the grid compile"
    )
    assert default_off_relative < MAX_DEFAULT_OFF_OVERHEAD, (
        f"default-off instrumentation costs "
        f"{default_off_relative * 100:.2f}% of the grid compile "
        f"({spans} spans x {null_each * 1e9:.0f} ns)"
    )
