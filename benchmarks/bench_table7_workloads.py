"""Table 7 — 96-qubit benchmark definitions.

Prints the reproduced workload table (gates, controls, targets) and
times workload construction + the Barenco lowering planning step.
"""

import pytest

from repro.backend import toffoli_count
from repro.benchlib import table7
from repro.reporting import Table


def test_print_table7():
    table = Table(
        "Table 7 — 96-qubit QC benchmark details (reproduced)",
        ["name", "gate", "controls", "target"],
    )
    for name in table7.PAPER_96Q_BENCHMARKS:
        circuit = table7.build_benchmark(name)
        for index, gate in enumerate(circuit, start=1):
            controls = ", ".join(f"q{q}" for q in gate.controls)
            table.add_row(
                name if index == 1 else "",
                f"{index}: T{gate.num_qubits}",
                controls,
                f"q{gate.target}",
            )
    table.print()


def test_workload_structure():
    for name in table7.PAPER_96Q_BENCHMARKS:
        n = int(name[1:-2])
        circuit = table7.build_benchmark(name)
        assert len(circuit) == 4
        for gate in circuit:
            assert gate.num_qubits == n


def test_expected_toffoli_budget():
    """Planning math: each Tn lowers to 4(n-3) Toffolis with dirty
    ancillas, fixing Table 8's T-counts before any compilation."""
    for name, expected_t in [("T6_b", 336), ("T7_b", 448), ("T8_b", 560),
                             ("T9_b", 672), ("T10_b", 784)]:
        n = int(name[1:-2])
        toffolis = toffoli_count(n - 1, 96)  # ancillas abundant
        assert 4 * toffolis * 7 == expected_t


def test_benchmark_build_workloads(benchmark):
    def build_all():
        return [table7.build_benchmark(n) for n in table7.PAPER_96Q_BENCHMARKS]

    circuits = benchmark(build_all)
    assert len(circuits) == 5
