"""Verification fast path: miter vs two-sided equivalence (Section 4).

The paper verifies every compiled specification by building both QMDDs
and comparing canonical root pointers.  This bench times that reference
``two_sided`` strategy against the ``miter`` fast path (inverse-first
telescoping product over a fused <=2-wire block stream) on mapped
Table 3 circuits, asserting:

* both strategies return the same verdict on every cell, and
* the miter is no slower overall (``REPRO_BENCH_VERIFY_MIN_SPEEDUP``
  raises the bar; the recorded speedup on the full grid is ~3.5x), and
* the miter's peak unique-table footprint is smaller.

Each leg runs in a *fresh* manager (no pool, no warm caches) so the
comparison isolates the strategy itself.  Results land in the
``verify`` suite of ``BENCH_runtime.json`` (schema 3).
"""

from __future__ import annotations

import os
import time
from functools import lru_cache
from typing import Dict, List

from harness import RUNTIME
from repro import compile_circuit
from repro.benchlib import single_target
from repro.core.exceptions import ReproError
from repro.devices import PAPER_DEVICES
from repro.qmdd import QMDDManager, check_equivalence
from repro.reporting import Table

#: Mapped Table 3 cells exercised by the bench: medium-depth circuits on
#: the wide (14-16 qubit) devices, where verification cost is visible
#: but a CI smoke run stays in seconds.  All widths are <= 24.
CELLS = (
    ("000f", 5, "ibmqx3"),
    ("001f", 6, "ibmqx3"),
    ("0117", 6, "ibmqx5"),
    ("033f", 5, "ibmqx5"),
    ("00ff", 5, "ibmq_16"),
    ("0356", 5, "ibmq_16"),
)

#: The bench fails if overall miter speedup drops below this (default:
#: the miter must simply not be slower; the acceptance run on the full
#: Table 3 grid measures ~3.5x).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_VERIFY_MIN_SPEEDUP", "1.0"))

_DEVICES = {device.name: device for device in PAPER_DEVICES}


def _timed_check(original, mapped, width: int, strategy: str):
    """One equivalence check in a fresh manager; returns
    (seconds, result, peak unique-table nodes)."""
    manager = QMDDManager(width)
    started = time.perf_counter()
    result = check_equivalence(
        original, mapped, num_qubits=width, manager=manager,
        strategy=strategy,
    )
    seconds = time.perf_counter() - started
    return seconds, result, manager.stats()["peak_unique_nodes"]


@lru_cache(maxsize=1)
def verify_grid() -> List[Dict]:
    """Compile each cell and time both strategies; records the ``verify``
    suite into the shared RUNTIME ledger (dumped to BENCH_runtime.json)."""
    started = time.perf_counter()
    records: List[Dict] = []
    skipped = 0
    for name, qubits, device_name in CELLS:
        circuit = single_target.build_benchmark(name, qubits)
        try:
            compiled = compile_circuit(
                circuit, _DEVICES[device_name], verify=False
            )
        except ReproError:
            skipped += 1  # N/A cell on this device (no spare qubit)
            continue
        mapped = compiled.optimized
        width = mapped.num_qubits
        two_seconds, two_result, two_peak = _timed_check(
            circuit, mapped, width, "two_sided"
        )
        miter_seconds, miter_result, miter_peak = _timed_check(
            circuit, mapped, width, "miter"
        )
        records.append({
            "cell": f"{name}@{device_name}",
            "width": width,
            "two_sided": {
                "seconds": round(two_seconds, 6),
                "equivalent": bool(two_result.equivalent),
                "peak_unique_nodes": two_peak,
            },
            "miter": {
                "seconds": round(miter_seconds, 6),
                "equivalent": bool(miter_result.equivalent),
                "peak_unique_nodes": miter_peak,
                "peak_product_nodes": miter_result.peak_nodes,
            },
            "speedup": round(two_seconds / max(miter_seconds, 1e-9), 3),
        })
    two_total = sum(r["two_sided"]["seconds"] for r in records)
    miter_total = sum(r["miter"]["seconds"] for r in records)
    RUNTIME["verify"] = {
        "wall_seconds": round(time.perf_counter() - started, 4),
        "cells": len(records),
        "not_available": skipped,
        "two_sided_seconds": round(two_total, 4),
        "miter_seconds": round(miter_total, 4),
        "speedup": round(two_total / max(miter_total, 1e-9), 3),
        "peak_unique_nodes": {
            "two_sided": max(
                (r["two_sided"]["peak_unique_nodes"] for r in records),
                default=0,
            ),
            "miter": max(
                (r["miter"]["peak_unique_nodes"] for r in records),
                default=0,
            ),
        },
        "benchmarks": {r["cell"]: r for r in records},
    }
    return records


def test_print_verify_comparison():
    records = verify_grid()
    table = Table(
        "Verification strategies — two-sided vs miter (fresh managers)",
        ["cell", "width", "two-sided s", "miter s", "speedup",
         "peak nodes (2s)", "peak nodes (miter)"],
    )
    for r in records:
        table.add_row(
            r["cell"], r["width"],
            f"{r['two_sided']['seconds']:.4f}",
            f"{r['miter']['seconds']:.4f}",
            f"{r['speedup']:.2f}x",
            r["two_sided"]["peak_unique_nodes"],
            r["miter"]["peak_unique_nodes"],
        )
    suite = RUNTIME["verify"]
    table.add_row(
        "TOTAL", "-",
        f"{suite['two_sided_seconds']:.4f}",
        f"{suite['miter_seconds']:.4f}",
        f"{suite['speedup']:.2f}x", "-", "-",
    )
    table.print()
    assert records, "every bench cell was N/A — grid misconfigured"


def test_verdicts_agree():
    """Both strategies must call every compiled cell equivalent — the
    miter is a fast path, not a different oracle."""
    for r in verify_grid():
        assert r["two_sided"]["equivalent"], r["cell"]
        assert r["miter"]["equivalent"], r["cell"]


def test_miter_is_not_slower():
    """Overall miter wall time beats two-sided by MIN_SPEEDUP (>= 1.0:
    never slower; the acceptance measurement on the full grid is ~3.5x)."""
    verify_grid()
    suite = RUNTIME["verify"]
    assert suite["speedup"] >= MIN_SPEEDUP, (
        f"miter speedup {suite['speedup']}x below the "
        f"{MIN_SPEEDUP}x bar: {suite}"
    )


def test_miter_peak_footprint_is_smaller():
    """The telescoping product plus GC-able single-root build must not
    grow the unique table past the two-sided build's footprint."""
    verify_grid()
    peaks = RUNTIME["verify"]["peak_unique_nodes"]
    assert peaks["miter"] < peaks["two_sided"], peaks
