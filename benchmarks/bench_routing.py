"""Routing strategies — CTR (the paper's reroute) vs dynamic-layout sabre.

CTR legalizes each CNOT in isolation and swaps all the way back, paying
``2(d-1)`` SWAPs per distance-``d`` CNOT; the sabre-style router
(:mod:`repro.backend.router`) lets the layout drift and pays ``d-1``,
reporting the final wire permutation instead of restoring it.  This
bench regenerates the Table 3 mapped grid under both strategies and
asserts the structural claims the router is designed around:

* sabre's unoptimized mapped gate count is **never higher** than CTR's
  on any grid cell (the strict-improvement candidate rule caps sabre at
  ``d-1`` SWAPs per CNOT), and
* sabre is **strictly cheaper on every multi-hop cell** (any cell where
  CTR inserted at least one SWAP), and
* sabre-routed circuits — wires permuted — still **verify equivalent**
  against their technology-independent sources through the
  permutation-aware verifier, under both QMDD build strategies
  (``miter`` and ``two_sided``).

It also guards the incremental :func:`refine_placement` rewrite: on a
Tokyo-style 20-qubit lattice the delta-scored hill climb must produce
the *bit-identical* final placement of a naive full-rescore reference
while running measurably faster.

Results land in the ``routing`` suite of ``BENCH_runtime.json``.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache
from typing import Dict, List, Tuple

from harness import RUNTIME
from repro.backend.mapper import map_circuit_outcome
from repro.backend.placement import (
    greedy_placement,
    interaction_graph,
    placement_cost,
    refine_placement,
)
from repro.benchlib import single_target
from repro.core.circuit import QuantumCircuit
from repro.core.exceptions import ReproError
from repro.core.gates import CNOT, H
from repro.devices import PAPER_DEVICES
from repro.fuzz.harness import FUZZ_DEVICES
from repro.reporting import Table
from repro.verify import verify_equivalent

#: Cells whose sabre-routed circuit is verified through both QMDD build
#: strategies (permutation-aware).  A subset keeps the bench in smoke
#: range — the full 90-cell grid verifies too, in ~5 minutes — while
#: covering the 5-, 14- and 16-qubit devices and multi-hop routes.
VERIFY_CELLS = (
    ("3", 3, "ibmqx4"),
    ("17", 4, "ibmqx2"),
    ("000f", 5, "ibmqx3"),
    ("033f", 5, "ibmqx5"),
    ("00ff", 5, "ibmq_16"),
)

#: The placement guard fails if the incremental refine loop is not at
#: least this much faster than the naive full-rescore reference.  The
#: observed ratio on the tokyo20 workload is far higher; the default
#: bar only catches an accidental return to O(|weights|) per candidate.
MIN_REFINE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_REFINE_MIN_SPEEDUP", "1.3")
)

_DEVICES = {device.name: device for device in PAPER_DEVICES}


@lru_cache(maxsize=1)
def routing_grid() -> List[Dict]:
    """Map every Table 3 cell under both routing strategies.

    Returns one record per (function, device) cell with unoptimized
    mapped gate counts and SWAP counts; records the ``routing`` suite
    into the shared RUNTIME ledger.
    """
    started = time.perf_counter()
    records: List[Dict] = []
    skipped = 0
    for name, qubits in single_target.PAPER_STG_BENCHMARKS:
        circuit = single_target.build_benchmark(name, qubits)
        for device in PAPER_DEVICES:
            try:
                ctr = map_circuit_outcome(circuit, device, route="ctr")
            except ReproError:
                skipped += 1  # N/A cell (no spare qubit on this device)
                continue
            sabre = map_circuit_outcome(circuit, device, route="sabre")
            records.append({
                "cell": f"{name}@{device.name}",
                "function": name,
                "device": device.name,
                "ctr_gates": len(ctr.unoptimized),
                "sabre_gates": len(sabre.unoptimized),
                "ctr_swaps": ctr.swap_count,
                "sabre_swaps": sabre.swap_count,
                "multi_hop": ctr.swap_count > 0,
                "permuted_wires": len(sabre.output_permutation),
            })
    ctr_total = sum(r["ctr_gates"] for r in records)
    sabre_total = sum(r["sabre_gates"] for r in records)
    RUNTIME["routing"] = {
        "wall_seconds": round(time.perf_counter() - started, 4),
        "cells": len(records),
        "not_available": skipped,
        "multi_hop_cells": sum(r["multi_hop"] for r in records),
        "ctr_gates": ctr_total,
        "sabre_gates": sabre_total,
        "gate_reduction": round(1.0 - sabre_total / max(ctr_total, 1), 4),
        "ctr_swaps": sum(r["ctr_swaps"] for r in records),
        "sabre_swaps": sum(r["sabre_swaps"] for r in records),
        "benchmarks": {r["cell"]: r for r in records},
    }
    return records


def test_print_routing_comparison():
    records = routing_grid()
    table = Table(
        "Routing — CTR vs dynamic-layout sabre "
        "(unoptimized mapped gates / SWAPs)",
        ["device", "cells", "multi-hop", "ctr gates", "sabre gates",
         "saved", "ctr swaps", "sabre swaps"],
    )
    for device in PAPER_DEVICES:
        rows = [r for r in records if r["device"] == device.name]
        if not rows:
            continue
        ctr_gates = sum(r["ctr_gates"] for r in rows)
        sabre_gates = sum(r["sabre_gates"] for r in rows)
        table.add_row(
            device.name, len(rows),
            sum(r["multi_hop"] for r in rows),
            ctr_gates, sabre_gates,
            f"{100.0 * (1 - sabre_gates / max(ctr_gates, 1)):.1f}%",
            sum(r["ctr_swaps"] for r in rows),
            sum(r["sabre_swaps"] for r in rows),
        )
    suite = RUNTIME["routing"]
    table.add_row(
        "TOTAL", suite["cells"], suite["multi_hop_cells"],
        suite["ctr_gates"], suite["sabre_gates"],
        f"{100.0 * suite['gate_reduction']:.1f}%",
        suite["ctr_swaps"], suite["sabre_swaps"],
    )
    table.print()
    assert records, "every bench cell was N/A — grid misconfigured"


def test_sabre_never_costs_more_than_ctr():
    """The strict-improvement candidate rule caps sabre at d-1 SWAPs per
    CNOT where CTR pays 2(d-1): sabre can never map a cell bigger."""
    for r in routing_grid():
        assert r["sabre_gates"] <= r["ctr_gates"], r


def test_sabre_strictly_wins_every_multi_hop_cell():
    """Wherever CTR had to reroute at all, not swapping back must save
    gates outright."""
    multi_hop = [r for r in routing_grid() if r["multi_hop"]]
    assert multi_hop, "no multi-hop cells — grid misconfigured"
    for r in multi_hop:
        assert r["sabre_gates"] < r["ctr_gates"], r
        assert r["sabre_swaps"] < r["ctr_swaps"], r


def test_routed_circuits_verify_permutation_aware():
    """Sabre leaves wires permuted; the permutation-aware verifier must
    still prove every routed cell equivalent under both QMDD build
    strategies."""
    for name, qubits, device_name in VERIFY_CELLS:
        circuit = single_target.build_benchmark(name, qubits)
        outcome = map_circuit_outcome(
            circuit, _DEVICES[device_name], route="sabre"
        )
        for strategy in ("miter", "two_sided"):
            report = verify_equivalent(
                circuit,
                outcome.unoptimized,
                output_permutation=outcome.output_permutation,
                strategy=strategy,
                prescreen=False,
            )
            assert report.equivalent, (
                name, device_name, strategy, report
            )


# ---------------------------------------------------------------------------
# refine_placement guard: incremental delta scoring vs naive rescoring
# ---------------------------------------------------------------------------


def _refine_naive(placement, circuit, device, max_passes: int = 10):
    """The pre-optimization reference: identical hill climb, but every
    candidate move rescores the entire weights dict via
    :func:`placement_cost`."""
    weights = interaction_graph(circuit)
    current = dict(placement)
    logicals = list(current)
    free = [q for q in range(device.num_qubits) if q not in current.values()]
    best_cost = placement_cost(current, weights, device)
    for _ in range(max_passes):
        improved = False
        for i in range(len(logicals)):
            for j in range(i + 1, len(logicals)):
                a, b = logicals[i], logicals[j]
                current[a], current[b] = current[b], current[a]
                cost = placement_cost(current, weights, device)
                if cost < best_cost:
                    best_cost = cost
                    improved = True
                else:
                    current[a], current[b] = current[b], current[a]
        for a in logicals:
            for index, spare in enumerate(free):
                old_physical = current[a]
                current[a] = spare
                cost = placement_cost(current, weights, device)
                if cost < best_cost:
                    best_cost = cost
                    free[index] = old_physical
                    improved = True
                else:
                    current[a] = old_physical
        if not improved:
            break
    return current


@lru_cache(maxsize=1)
def _tokyo_workload() -> Tuple[QuantumCircuit, object]:
    """A deterministic 20-logical-qubit interaction-heavy circuit on the
    Tokyo-style lattice (the fuzz harness's ``tokyo20`` device)."""
    device = FUZZ_DEVICES["tokyo20"]()
    gates = []
    for step in range(6):
        for q in range(20):
            partner = (q * 7 + 3 + step * 5) % 20
            if partner != q:
                gates.append(CNOT(q, partner))
        gates.append(H(step))
    return QuantumCircuit(20, gates, name="tokyo-workload"), device


@lru_cache(maxsize=1)
def refine_records() -> Dict:
    """Run both refine implementations on the tokyo20 workload; best-of-3
    timing each, asserting nothing (tests below read the record)."""
    circuit, device = _tokyo_workload()
    seed = greedy_placement(circuit, device)

    def best_of(fn, runs: int = 3) -> Tuple[float, Dict[int, int]]:
        best = float("inf")
        result = None
        for _ in range(runs):
            started = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - started)
        return best, result

    naive_seconds, naive_result = best_of(
        lambda: _refine_naive(seed, circuit, device)
    )
    incr_seconds, incr_result = best_of(
        lambda: refine_placement(seed, circuit, device)
    )
    weights = interaction_graph(circuit)
    record = {
        "seed_cost": placement_cost(seed, weights, device),
        "refined_cost": placement_cost(incr_result, weights, device),
        "naive_seconds": round(naive_seconds, 6),
        "incremental_seconds": round(incr_seconds, 6),
        "speedup": round(naive_seconds / max(incr_seconds, 1e-9), 3),
        "identical": naive_result == incr_result,
    }
    RUNTIME.setdefault("routing", {})["refine_placement"] = record
    # Keep the raw placements for the identity assertion's message.
    record["_naive"] = naive_result
    record["_incremental"] = incr_result
    return record


def test_refine_placement_incremental_matches_naive():
    """Delta scoring is exact (integer contributions), so the hill climb
    must accept the same moves and land on the same placement."""
    record = refine_records()
    assert record["identical"], (
        record["_naive"], record["_incremental"]
    )
    assert record["refined_cost"] <= record["seed_cost"]


def test_refine_placement_incremental_is_faster():
    record = refine_records()
    print(
        f"refine_placement tokyo20: naive {record['naive_seconds']:.4f}s, "
        f"incremental {record['incremental_seconds']:.4f}s "
        f"({record['speedup']:.1f}x)"
    )
    assert record["speedup"] >= MIN_REFINE_SPEEDUP, record
