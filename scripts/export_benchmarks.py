"""Export every benchmark suite as circuit files.

Writes the reconstructed paper benchmarks (and the extra workload
families) into ``benchmarks/data/`` as ``.qc`` (technology-independent
quantum circuits, the paper's input format) and ``.real`` (RevLib) files,
so they can be fed back through the CLI::

    python scripts/export_benchmarks.py
    repro compile benchmarks/data/stg_033f.qc --device ibmqx3

Round-tripping through the parsers is covered by
``tests/integration/test_artifacts.py``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.benchlib import revlib, single_target, table7
from repro.benchlib.arithmetic import ARITHMETIC_SUITE
from repro.benchlib.qft import qft
from repro.io import write_qc, write_real


def export_all(target_dir: str) -> int:
    os.makedirs(target_dir, exist_ok=True)
    written = 0

    for name, qubits in single_target.PAPER_STG_BENCHMARKS:
        circuit = single_target.build_benchmark(name, qubits)
        write_qc(circuit, os.path.join(target_dir, f"stg_{name}.qc"))
        written += 1

    for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS:
        circuit = revlib.build_benchmark(name)
        safe = name.replace("-", "_")
        write_real(circuit, os.path.join(target_dir, f"{safe}.real"))
        write_qc(circuit, os.path.join(target_dir, f"{safe}.qc"))
        written += 2

    for name in table7.PAPER_96Q_BENCHMARKS:
        circuit = table7.build_benchmark(name)
        write_qc(circuit, os.path.join(target_dir, f"{name}.qc"))
        written += 1

    for name, factory in ARITHMETIC_SUITE:
        circuit = factory()
        write_qc(circuit, os.path.join(target_dir, f"{name}.qc"))
        written += 1

    # QFT carries rotations: .qc has no rotation mnemonics, use QASM.
    from repro.io import write_qasm

    for n in (3, 4, 5):
        write_qasm(qft(n), os.path.join(target_dir, f"qft{n}.qasm"))
        written += 1

    return written


def main() -> int:
    target = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "data"
    )
    count = export_all(target)
    print(f"wrote {count} benchmark files to {os.path.abspath(target)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
