"""Regenerate every paper table in one command.

Runs the same computations as the benchmark suite and writes a combined
text report plus machine-readable CSVs::

    python scripts/reproduce_all.py [output_dir]      # default: ./results

Formal verification of every compiled benchmark can be enabled with
``REPRO_BENCH_VERIFY=1`` (adds minutes).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

from harness import (  # noqa: E402
    format_cell,
    percent_decrease,
    table3_grid,
    table5_grid,
    table8_results,
)
from repro.benchlib import revlib, single_target, table7  # noqa: E402
from repro.devices import PAPER_DEVICES  # noqa: E402
from repro.reporting import Table, average, percent  # noqa: E402

DEVICE_NAMES = [d.name for d in PAPER_DEVICES]


def build_table2() -> Table:
    table = Table("Table 2 — coupling complexity", ["device", "qubits", "complexity"])
    for device in PAPER_DEVICES:
        table.add_row(device.name, device.num_qubits,
                      f"{device.coupling_complexity:.6f}")
    return table


def build_table3() -> Table:
    grid = table3_grid()
    table = Table("Table 3 — single-target gates",
                  ["ftn", "qubits", "tech.ind."] + DEVICE_NAMES)
    for name, qubits in single_target.PAPER_STG_BENCHMARKS:
        row = grid[name]
        table.add_row(
            f"#{name}", qubits, str(row["simulator"][1]),
            *[format_cell(row[d]) for d in DEVICE_NAMES],
        )
    return table


def build_table4() -> Table:
    grid = table3_grid()
    table = Table("Table 4 — % cost decrease", ["ftn"] + DEVICE_NAMES)
    per_device = {d: [] for d in DEVICE_NAMES}
    for name, _ in single_target.PAPER_STG_BENCHMARKS:
        cells = []
        for device in DEVICE_NAMES:
            value = percent_decrease(grid[name][device])
            cells.append(percent(value))
            if value is not None:
                per_device[device].append(value)
        table.add_row(f"#{name}", *cells)
    table.add_row("Average", *[percent(average(per_device[d])) for d in DEVICE_NAMES])
    return table


def build_table5() -> Table:
    grid = table5_grid()
    table = Table("Table 5 — RevLib cascades",
                  ["ftn", "largest", "count"] + DEVICE_NAMES)
    for name, largest, count in revlib.PAPER_REVLIB_BENCHMARKS:
        table.add_row(name, largest, count,
                      *[format_cell(grid[name][d]) for d in DEVICE_NAMES])
    return table


def build_table6() -> Table:
    grid = table5_grid()
    table = Table("Table 6 — % cost decrease", ["ftn"] + DEVICE_NAMES)
    for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS:
        table.add_row(name, *[
            percent(percent_decrease(grid[name][d])) for d in DEVICE_NAMES
        ])
    return table


def build_table8() -> Table:
    results = table8_results()
    table = Table("Table 8 — 96-qubit compilation",
                  ["name", "unopt", "opt", "%dec", "paper %dec", "time"])
    for name in table7.PAPER_96Q_BENCHMARKS:
        result = results[name]
        table.add_row(
            name,
            str(result.unoptimized_metrics),
            str(result.optimized_metrics),
            f"{result.percent_cost_decrease:.2f}",
            f"{table7.PAPER_TABLE8[name][2]:.2f}",
            f"{result.synthesis_seconds:.2f}s",
        )
    return table


def main() -> int:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else "results"
    os.makedirs(output_dir, exist_ok=True)
    start = time.time()
    builders = {
        "table2": build_table2,
        "table3": build_table3,
        "table4": build_table4,
        "table5": build_table5,
        "table6": build_table6,
        "table8": build_table8,
    }
    report_lines = []
    for key, builder in builders.items():
        table = builder()
        table.write_csv(os.path.join(output_dir, f"{key}.csv"))
        report_lines.append(table.render())
        print(table.render())
        print()
    report_path = os.path.join(output_dir, "report.txt")
    with open(report_path, "w") as handle:
        handle.write("\n\n".join(report_lines) + "\n")
    print(f"wrote {report_path} and per-table CSVs "
          f"({time.time() - start:.1f}s total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
