#!/usr/bin/env python
"""CI smoke for the ``repro serve`` daemon.

Boots a real daemon subprocess on an ephemeral port, fires two
identical concurrent waves of mixed compile requests through
:class:`repro.serve.client.ServeClient`, and asserts the contract the
service documents:

* every request in both waves answers 200 with a v5 result payload,
* the second wave is served >= 90% from the shared warm cache (and the
  ``/metrics`` per-scrape delta agrees),
* SIGTERM drains and exits 0, printing the drained summary.

Exit status is nonzero on any violated assertion, so this file can run
directly as a CI step::

    python scripts/serve_smoke.py
"""

import os
import re
import signal
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.serve import ServeClient  # noqa: E402

BELL = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
"""

TOFFOLI = """.v a b c
.i a b c
tof a b c
"""

#: (source, format, device, options) cells — mixed formats, devices,
#: and option sets so the waves exercise distinct cache keys.
WORKLOAD = [
    (BELL, "qasm", "ibmqx4", {}),
    (BELL, "qasm", "ibmqx5", {}),
    (BELL, "qasm", "ibmqx4", {"route": "sabre"}),
    (TOFFOLI, "qc", "ibmqx4", {}),
    (TOFFOLI, "qc", "ibmqx3", {"verify": "qmdd"}),
]

ANNOUNCE = re.compile(r"listening on http://([\d.]+):(\d+)")


def fire_wave(client, n):
    cells = [WORKLOAD[i % len(WORKLOAD)] for i in range(n)]

    def one(indexed):
        index, (source, fmt, device, options) = indexed
        return client.compile(
            source, device=device, fmt=fmt,
            name=f"cell{index % len(WORKLOAD)}", options=options,
        )

    with ThreadPoolExecutor(max_workers=8) as pool:
        return list(pool.map(one, enumerate(cells)))


def main():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "4", "--queue-depth", "64"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    try:
        line = process.stdout.readline()
        match = ANNOUNCE.search(line)
        assert match, f"no announce line: {line!r}"
        client = ServeClient(host=match.group(1), port=int(match.group(2)))
        client.wait_ready(timeout=20.0)

        first = fire_wave(client, 50)
        assert all(r["ok"] for r in first), "first wave had failures"
        assert all(r["result"]["version"] == 5 for r in first)
        client.metrics()  # close the cold window

        second = fire_wave(client, 50)
        assert all(r["ok"] for r in second), "second wave had failures"
        warm = sum(1 for r in second if r["from_cache"]) / len(second)
        assert warm >= 0.9, f"second wave only {warm:.0%} warm"
        scrape = client.metrics()
        assert scrape["cache"]["hit_rate"] >= 0.9, scrape["cache"]
        assert scrape["cache"]["stores"] == 0, scrape["cache"]
        print(f"serve smoke: wave 2 warm rate {warm:.0%}, "
              f"/metrics delta hit_rate {scrape['cache']['hit_rate']:.2f}")

        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=60)
        output = process.stdout.read()
        assert "repro serve: drained" in output, output
        assert code == 0, f"SIGTERM exit code {code}"
        print("serve smoke: clean SIGTERM drain, exit 0")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
        process.stdout.close()


if __name__ == "__main__":
    sys.exit(main())
