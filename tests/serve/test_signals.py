"""Signal-driven drain tests against a real ``repro serve`` subprocess.

These boot ``python -m repro serve --port 0`` the way an operator
would, read the announce line for the ephemeral port, and assert the
documented lifecycle: SIGTERM/SIGINT stop accepting, *complete* every
in-flight request, then exit 0 / 130.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve import ServeClient, ServeError

from .conftest import BELL_QASM

_ANNOUNCE = re.compile(r"listening on http://([\d.]+):(\d+)")
_REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


class Daemon:
    """A ``repro serve`` child process bound to an ephemeral port."""

    def __init__(self, *extra_args: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = _REPO_SRC
        env["REPRO_SERVE_TEST_DELAY"] = "1"
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", "0", "--workers", "2", *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = self.process.stdout.readline()
        match = _ANNOUNCE.search(line)
        if not match:
            self.process.kill()
            rest = self.process.stdout.read()
            raise AssertionError(f"no announce line, got: {line!r}{rest!r}")
        self.client = ServeClient(
            host=match.group(1), port=int(match.group(2)), timeout=30.0
        )
        self.client.wait_ready(timeout=15.0)

    def finish(self, timeout: float = 30.0) -> int:
        code = self.process.wait(timeout=timeout)
        self.process.stdout.close()
        return code

    def kill(self):
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait()
        self.process.stdout.close()


@pytest.mark.parametrize(
    "signum,expected_exit",
    [(signal.SIGTERM, 0), (signal.SIGINT, 130)],
    ids=["sigterm", "sigint"],
)
def test_signal_drains_in_flight_request(signum, expected_exit):
    daemon = Daemon()
    try:
        # Prove the daemon compiles before we wound it.
        warmup = daemon.client.compile(BELL_QASM, device="ibmqx4")
        assert warmup["ok"]

        outcome = {}

        def slow():
            try:
                outcome["response"] = daemon.client.compile(
                    BELL_QASM, device="ibmqx5", name="inflight",
                    extra={"test_delay_seconds": 1.5},
                )
            except ServeError as error:  # pragma: no cover - failure path
                outcome["error"] = error

        thread = threading.Thread(target=slow)
        thread.start()
        # Wait until the slow request is actually in flight.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if daemon.client.healthz()["in_flight"] > 0:
                break
            time.sleep(0.05)
        else:
            raise AssertionError("slow request never went in-flight")

        daemon.process.send_signal(signum)
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        # The in-flight request completed with a full 200 response —
        # the drain finished the work instead of dropping the socket.
        assert "error" not in outcome, f"drain dropped request: {outcome}"
        assert outcome["response"]["ok"]
        assert daemon.finish() == expected_exit
    finally:
        daemon.kill()


def test_idle_sigterm_exits_zero_with_drained_summary():
    daemon = Daemon()
    try:
        daemon.client.compile(BELL_QASM, device="ibmqx4")
        daemon.client.compile(BELL_QASM, device="ibmqx4")
        daemon.process.send_signal(signal.SIGTERM)
        assert daemon.process.wait(timeout=30.0) == 0
        output = daemon.process.stdout.read()
        assert "repro serve: drained" in output
        assert "2 requests" in output
        assert "1 compiled" in output
        assert "1 cache hits" in output
    finally:
        daemon.kill()
