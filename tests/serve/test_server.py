"""HTTP-layer tests: routes, status codes, storms, overload, scrapes."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import ServeConfig, ServeError
from repro.serve.server import MAX_BODY_BYTES

from .conftest import BELL_QASM, WORKLOAD, RunningServer


class TestRoutes:
    def test_healthz(self, running_server):
        document = running_server.client.healthz()
        assert document["status"] == "ok"
        assert document["workers"] == 2

    def test_unknown_route_404(self, running_server):
        with pytest.raises(ServeError) as info:
            running_server.client._checked("GET", "/nope")
        assert info.value.status == 404

    def test_get_compile_405(self, running_server):
        with pytest.raises(ServeError) as info:
            running_server.client._checked("GET", "/compile")
        assert info.value.status == 405

    def test_post_unknown_route_404(self, running_server):
        with pytest.raises(ServeError) as info:
            running_server.client._checked("POST", "/metrics", {})
        assert info.value.status == 404

    def test_non_json_body_400(self, running_server):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", running_server.server.port, timeout=10
        )
        try:
            connection.request(
                "POST", "/compile", body=b"not json{",
                headers={"Content-Type": "application/json"},
            )
            assert connection.getresponse().status == 400
        finally:
            connection.close()

    def test_oversized_body_413(self, running_server):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", running_server.server.port, timeout=10
        )
        try:
            connection.putrequest("POST", "/compile")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.putheader("Content-Type", "application/json")
            connection.endheaders()
            # The server answers from the headers alone.
            assert connection.getresponse().status == 413
        finally:
            connection.close()

    def test_bad_payload_400_with_structured_error(self, running_server):
        with pytest.raises(ServeError) as info:
            running_server.client.compile("not a circuit", device="ibmqx4")
        assert info.value.status == 400
        assert info.value.payload["error"]["type"] == "BadRequest"

    def test_profile_query_lands_spans(self, running_server):
        response = running_server.client.compile(
            BELL_QASM, device="ibmqx4", name="profiled", profile=True,
            options={"verify": "qmdd"},
        )
        assert response["result"]["trace"]["spans"]


class TestConcurrentStorm:
    def test_storm_shares_one_warm_cache(self):
        """Two identical waves of concurrent mixed requests: the first
        compiles each distinct cell once; the second is served ≥90%
        from the shared warm cache (here: 100%)."""
        box = RunningServer(ServeConfig(workers=4, queue_depth=64))
        try:
            requests = [
                (source, fmt, device, f"cell{index % len(WORKLOAD)}")
                for index, (source, fmt, device) in enumerate(WORKLOAD * 6)
            ]

            def fire(cell):
                source, fmt, device, name = cell
                return box.client.compile(
                    source, device=device, fmt=fmt, name=name
                )

            with ThreadPoolExecutor(max_workers=12) as pool:
                first_wave = list(pool.map(fire, requests))
            assert all(response["ok"] for response in first_wave)
            compiled = sum(
                1 for response in first_wave if not response["from_cache"]
            )
            # Concurrent identical requests may race-compile the same
            # cell, but never more than once per worker.
            assert len(WORKLOAD) <= compiled <= len(WORKLOAD) * 4

            box.client.metrics()  # close the first scrape window
            with ThreadPoolExecutor(max_workers=12) as pool:
                second_wave = list(pool.map(fire, requests))
            assert all(response["ok"] for response in second_wave)
            hit_rate = sum(
                1 for response in second_wave if response["from_cache"]
            ) / len(second_wave)
            assert hit_rate >= 0.9
            scrape = box.client.metrics()
            assert scrape["cache"]["hit_rate"] >= 0.9
            assert scrape["cache"]["stores"] == 0
        finally:
            box.stop()

    def test_warm_results_identical_to_cold(self):
        box = RunningServer(ServeConfig(workers=2, queue_depth=8))
        try:
            cold = box.client.compile(BELL_QASM, device="ibmqx4")
            warm = box.client.compile(BELL_QASM, device="ibmqx4")
            assert warm["from_cache"] and not cold["from_cache"]
            assert warm["result"]["optimized"] == cold["result"]["optimized"]
            assert (
                warm["result"]["optimized_metrics"]
                == cold["result"]["optimized_metrics"]
            )
        finally:
            box.stop()


class TestOverload:
    def test_full_admission_queue_answers_429(self):
        box = RunningServer(
            ServeConfig(workers=1, queue_depth=1, allow_test_delay=True)
        )
        try:
            slow_started = threading.Event()
            outcomes = []

            def slow(name):
                slow_started.set()
                outcomes.append(
                    box.client.compile(
                        BELL_QASM, device="ibmqx4", name=name,
                        extra={"test_delay_seconds": 3.0},
                    )
                )

            # Fill the one worker and the one queue slot.
            holders = [
                threading.Thread(target=slow, args=(f"hold{i}",))
                for i in range(2)
            ]
            for holder in holders:
                holder.start()
            slow_started.wait(timeout=5.0)
            # Generous window: under a loaded machine the holders can
            # take a while to both be admitted.
            deadline = time.monotonic() + 10.0
            status = None
            while time.monotonic() < deadline:
                try:
                    box.client.compile(
                        BELL_QASM, device="ibmqx4", name="overflow"
                    )
                except ServeError as error:
                    if error.status == 429:
                        status = 429
                        assert error.queue_full
                        break
                    raise
                time.sleep(0.02)
            assert status == 429, "never saw a 429 while saturated"
            for holder in holders:
                holder.join()
            # The held requests still completed — overload rejected the
            # overflow, it never cancelled admitted work.
            assert all(response["ok"] for response in outcomes)
            assert box.service.server_stats()["rejected_total"] >= 1
        finally:
            box.stop()


class TestMetricsOverHTTP:
    def test_two_scrapes_report_disjoint_intervals(self, running_server):
        client = running_server.client
        client.compile(BELL_QASM, device="ibmqx4")
        client.compile(BELL_QASM, device="ibmqx4")
        first = client.metrics()
        second = client.metrics()
        assert first["cache"]["hits"] == 1
        assert first["cache"]["misses"] == 1
        assert second["cache"]["hits"] == 0
        assert second["cache"]["misses"] == 0
        assert second["scrape"] == first["scrape"] + 1
        assert second["cache"]["lifetime"]["hits"] == 1
        assert second["server"]["requests_total"] == 2
        counters = first["metrics"]["delta"]["counters"]
        assert counters["serve.requests"] == 2
        assert counters["serve.compiles"] == 1
        assert counters["compile.calls"] == 1
