"""CompileService unit tests (no HTTP): parsing, caching, admission."""

import threading
import time

import pytest

from repro.io import to_qasm
from repro.serve import (
    CompileService,
    QueueFullError,
    RequestError,
    ServeConfig,
)
from repro.serve.service import _FORBIDDEN_OPTIONS

from .conftest import BELL_QASM, TOFFOLI_QC


def _payload(**overrides):
    payload = {"circuit": BELL_QASM, "format": "qasm", "device": "ibmqx4"}
    payload.update(overrides)
    return payload


@pytest.fixture
def service():
    box = CompileService(ServeConfig(workers=2, queue_depth=1,
                                     allow_test_delay=True))
    yield box
    box.drain()


class TestCompileRequest:
    def test_cold_then_warm(self, service):
        first = service.compile_request(_payload(name="bell"))
        assert first["ok"] and not first["from_cache"]
        assert first["result"]["device"] == "ibmqx4"
        assert first["result"]["version"] == 5  # the batch serialization
        second = service.compile_request(_payload(name="bell"))
        assert second["from_cache"]
        assert second["result"]["optimized"] == first["result"]["optimized"]
        stats = service.server_stats()
        assert stats["compiled_total"] == 1
        assert stats["cache_hits_total"] == 1

    def test_qc_format_and_options(self, service):
        response = service.compile_request(
            {
                "circuit": TOFFOLI_QC,
                "format": "qc",
                "device": "ibmqx4",
                "options": {"verify": "qmdd", "route": "sabre"},
            }
        )
        assert response["ok"]
        assert response["result"]["route"] == "sabre"
        assert response["result"]["verification"]["equivalent"] is True

    def test_options_change_the_cache_key(self, service):
        base = service.compile_request(_payload())
        routed = service.compile_request(
            _payload(options={"route": "sabre"})
        )
        assert base["cache_key"] != routed["cache_key"]
        assert not routed["from_cache"]

    def test_profile_records_spans_on_a_cold_compile(self, service):
        response = service.compile_request(
            _payload(options={"verify": "qmdd"}), profile=True
        )
        trace = response["result"]["trace"]
        assert trace and trace["spans"]
        names = {span["name"] for span in trace["spans"]}
        assert "compile" in names

    def test_profile_on_warm_unprofiled_hit_is_honest(self, service):
        service.compile_request(_payload())
        warm = service.compile_request(_payload(), profile=True)
        assert warm["from_cache"]
        assert "no trace recorded" in warm["profile_note"]

    def test_result_payload_round_trips_to_identical_qasm(self, service):
        from repro import compile_circuit, get_device
        from repro.batch.serialize import result_from_payload
        from repro.io import parse_qasm

        response = service.compile_request(_payload())
        served = result_from_payload(response["result"])
        local = compile_circuit(
            parse_qasm(BELL_QASM), get_device("ibmqx4")
        )
        assert to_qasm(served.optimized) == to_qasm(local.optimized)


class TestRequestValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            {},
            {"circuit": "", "device": "ibmqx4"},
            {"circuit": 7, "device": "ibmqx4"},
            _payload(format="verilog"),
            _payload(device=None),
            _payload(device="not-a-device"),
            _payload(circuit="definitely not qasm"),
            _payload(options={"bogus_option": 1}),
            _payload(options=[1, 2]),
            _payload(name=1),
        ],
    )
    def test_malformed_payloads_raise_request_error(self, service, payload):
        with pytest.raises(RequestError):
            service.compile_request(payload)

    @pytest.mark.parametrize("option", sorted(_FORBIDDEN_OPTIONS))
    def test_wire_forbidden_options_rejected(self, service, option):
        with pytest.raises(RequestError, match="not accepted over the wire"):
            service.compile_request(_payload(options={option: True}))

    def test_errors_are_counted(self, service):
        with pytest.raises(RequestError):
            service.compile_request({})
        assert service.server_stats()["errors_total"] == 1


class TestAdmissionQueue:
    def test_queue_full_rejects_immediately(self):
        service = CompileService(
            ServeConfig(workers=1, queue_depth=0, allow_test_delay=True)
        )
        try:
            release = threading.Event()
            started = threading.Event()

            def slow():
                started.set()
                # Holds the single worker until released.
                service.compile_request(
                    _payload(test_delay_seconds=3.0, name="slow")
                )

            holder = threading.Thread(target=slow)
            holder.start()
            started.wait()
            deadline = time.monotonic() + 10.0
            while (
                service.server_stats()["in_flight"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            began = time.monotonic()
            with pytest.raises(QueueFullError):
                service.compile_request(_payload(name="rejected"))
            # The rejection is immediate, not queued-then-failed.
            assert time.monotonic() - began < 1.0
            assert service.server_stats()["rejected_total"] == 1
            release.set()
            holder.join()
        finally:
            service.drain()

    def test_drain_completes_in_flight_then_rejects(self):
        service = CompileService(
            ServeConfig(workers=1, queue_depth=2, allow_test_delay=True)
        )
        outcomes = {}

        def request():
            outcomes["slow"] = service.compile_request(
                _payload(test_delay_seconds=0.4, name="inflight")
            )

        thread = threading.Thread(target=request)
        thread.start()
        deadline = time.monotonic() + 10.0
        while (
            service.server_stats()["in_flight"] == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        service.drain()  # must block until the in-flight job is done
        thread.join()
        assert outcomes["slow"]["ok"]
        with pytest.raises(QueueFullError, match="draining"):
            service.compile_request(_payload())


class TestMetricsScrape:
    def test_scrape_deltas_are_honest(self, service):
        for _ in range(3):
            service.compile_request(_payload())
        first = service.metrics_scrape()
        assert first["cache"]["misses"] == 1
        assert first["cache"]["hits"] == 2
        assert first["cache"]["stores"] == 1
        # An immediate second scrape saw nothing happen.
        second = service.metrics_scrape()
        assert second["cache"]["hits"] == 0
        assert second["cache"]["misses"] == 0
        assert second["cache"]["hit_rate"] == 0.0
        assert second["scrape"] == first["scrape"] + 1
        # Lifetime keeps accumulating regardless of scrape cadence.
        assert second["cache"]["lifetime"]["hits"] == 2
        # A warm wave between scrapes shows up as a pure-hit delta.
        for _ in range(5):
            service.compile_request(_payload())
        third = service.metrics_scrape()
        assert third["cache"]["hits"] == 5
        assert third["cache"]["misses"] == 0
        assert third["cache"]["hit_rate"] == 1.0
        counters = third["metrics"]["delta"]["counters"]
        assert counters["serve.requests"] == 5
        assert counters["serve.cache_hits"] == 5
        assert "serve.compiles" not in counters  # zero deltas drop

    def test_healthz_is_cheap_and_accurate(self, service):
        document = service.healthz()
        assert document["status"] == "ok"
        assert document["workers"] == 2
        assert document["in_flight"] == 0
        service.compile_request(_payload())
        assert service.healthz()["cache_memory_entries"] == 1
