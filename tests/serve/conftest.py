"""Shared fixtures for the compile-service tests."""

import threading

import pytest

from repro.serve import CompileServer, CompileService, ServeClient, ServeConfig

BELL_QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
"""

TOFFOLI_QC = """.v a b c
.i a b c
tof a b c
"""

#: A small mixed workload: (source, format, device) cells.
WORKLOAD = [
    (BELL_QASM, "qasm", "ibmqx4"),
    (BELL_QASM, "qasm", "ibmqx5"),
    (TOFFOLI_QC, "qc", "ibmqx4"),
    (TOFFOLI_QC, "qc", "ibmqx3"),
]


class RunningServer:
    """An in-process daemon plus a bound client, torn down cleanly."""

    def __init__(self, config: ServeConfig):
        self.service = CompileService(config)
        self.server = CompileServer(("127.0.0.1", 0), self.service)
        self.thread = threading.Thread(
            target=self.server.serve_forever, kwargs={"poll_interval": 0.02}
        )
        self.thread.start()
        self.client = ServeClient(port=self.server.port, timeout=30.0)

    def stop(self):
        self.server.shutdown()
        self.service.drain()
        self.server.server_close()
        self.thread.join()


@pytest.fixture
def running_server(request):
    """Boot an in-process server; parametrize with a ServeConfig via
    ``@pytest.mark.parametrize('running_server', [config], indirect=True)``
    or take the default (2 workers, small queue, test delay allowed)."""
    config = getattr(
        request, "param",
        ServeConfig(workers=2, queue_depth=4, allow_test_delay=True),
    )
    box = RunningServer(config)
    yield box
    box.stop()
