""".real (RevLib) format tests."""

import pytest

from repro.core import CNOT, MCX, ParseError, QuantumCircuit, SWAP, TOFFOLI, X
from repro.io import parse_real, read_real, to_real, write_real
from repro.verify import permutations_equal


SAMPLE = """
.version 2.0
.numvars 3
.variables a b c
.constants ---
.garbage ---
.begin
t3 a b c
t2 a b
t1 a
.end
"""


class TestParsing:
    def test_sample(self):
        c = parse_real(SAMPLE, name="sample")
        assert c.num_qubits == 3
        assert c.gates == (TOFFOLI(0, 1, 2), CNOT(0, 1), X(0))

    def test_numvars_mismatch_raises(self):
        bad = ".numvars 2\n.variables a b c\n.begin\n.end"
        with pytest.raises(ParseError):
            parse_real(bad)

    def test_negative_controls_conjugated(self):
        c = parse_real(".numvars 2\n.variables a b\n.begin\nt2 -a b\n.end")
        assert c.gates == (X(0), CNOT(0, 1), X(0))

    def test_negative_control_semantics(self):
        """t2 -a b flips b iff a == 0."""
        c = parse_real(".numvars 2\n.variables a b\n.begin\nt2 -a b\n.end")
        from repro.verify import evaluate

        assert evaluate(c, 0b00) == 0b01
        assert evaluate(c, 0b10) == 0b10

    def test_fredkin(self):
        c = parse_real(".numvars 3\n.variables a b c\n.begin\nf3 a b c\n.end")
        from repro.verify import evaluate

        # control a=1 swaps b and c
        assert evaluate(c, 0b110) == 0b101
        assert evaluate(c, 0b010) == 0b010  # no control: unchanged

    def test_plain_f2_is_swap(self):
        c = parse_real(".numvars 2\n.variables a b\n.begin\nf2 a b\n.end")
        from repro.verify import evaluate

        assert evaluate(c, 0b10) == 0b01

    def test_unknown_gate_raises(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 1\n.variables a\n.begin\nv a\n.end")

    def test_unknown_variable_raises(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 1\n.variables a\n.begin\nt1 z\n.end")

    def test_wrong_operand_count_raises(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 2\n.variables a b\n.begin\nt3 a b\n.end")


class TestEmission:
    def test_roundtrip(self):
        c = QuantumCircuit(4, [X(0), CNOT(1, 2), TOFFOLI(0, 1, 3), MCX(0, 1, 2, 3)])
        back = parse_real(to_real(c))
        assert back.gates == c.gates

    def test_swap_roundtrips_functionally(self):
        c = QuantumCircuit(2, [SWAP(0, 1)])
        back = parse_real(to_real(c))
        assert permutations_equal(c, back)

    def test_non_reversible_rejected(self):
        from repro.core import H

        with pytest.raises(ParseError):
            to_real(QuantumCircuit(1, [H(0)]))

    def test_file_roundtrip(self, tmp_path):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        path = str(tmp_path / "ccx.real")
        write_real(c, path)
        assert read_real(path).gates == c.gates


class TestDispatch:
    def test_read_circuit_by_extension(self, tmp_path):
        from repro.io import read_circuit, write_qasm, write_qc

        c = QuantumCircuit(2, [CNOT(0, 1)])
        for writer, ext in [(write_qasm, "qasm"), (write_qc, "qc"), (write_real, "real")]:
            path = str(tmp_path / f"c.{ext}")
            writer(c, path)
            assert read_circuit(path).gates == c.gates

    def test_unknown_extension(self):
        from repro.io import read_circuit

        with pytest.raises(ParseError):
            read_circuit("circuit.xyz")
