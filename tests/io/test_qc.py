""".qc format tests."""

import pytest

from repro.core import CNOT, Gate, H, MCX, ParseError, QuantumCircuit, SWAP, T, X
from repro.io import parse_qc, read_qc, to_qc, write_qc


SAMPLE = """
.v a b c d
.i a b c
.o d
BEGIN
H a
T* d
tof a b d
cnot a d
t4 a b c d
swap b c
END
"""


class TestParsing:
    def test_sample(self):
        c = parse_qc(SAMPLE, name="sample")
        assert c.num_qubits == 4
        names = [g.name for g in c]
        assert names == ["H", "TDG", "TOFFOLI", "CNOT", "MCX", "SWAP"]

    def test_wire_order_follows_dot_v(self):
        c = parse_qc(".v x y\nBEGIN\ncnot y x\nEND")
        assert c.gates == (CNOT(1, 0),)

    def test_tof_arity_dispatch(self):
        c = parse_qc(".v a b c\nBEGIN\ntof a\ntof a b\ntof a b c\nEND")
        assert [g.name for g in c] == ["X", "CNOT", "TOFFOLI"]

    def test_tn_mnemonics(self):
        c = parse_qc(".v a b c d e\nBEGIN\nt1 a\nt2 a b\nt3 a b c\nt5 a b c d e\nEND")
        assert [g.name for g in c] == ["X", "CNOT", "TOFFOLI", "MCX"]

    def test_adjoint_gates(self):
        c = parse_qc(".v a\nBEGIN\nS* a\nT* a\nEND")
        assert [g.name for g in c] == ["SDG", "TDG"]

    def test_comments_ignored(self):
        c = parse_qc(".v a  # wires\nBEGIN\nX a  # flip\nEND")
        assert c.gates == (X(0),)

    def test_unknown_wire_raises(self):
        with pytest.raises(ParseError):
            parse_qc(".v a\nBEGIN\nX b\nEND")

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(ParseError):
            parse_qc(".v a\nBEGIN\nfrob a\nEND")

    def test_wrong_tn_arity_raises(self):
        with pytest.raises(ParseError):
            parse_qc(".v a b\nBEGIN\nt3 a b\nEND")

    def test_gates_outside_body_ignored(self):
        c = parse_qc(".v a\nX a\nBEGIN\nEND")
        assert len(c) == 0


class TestEmission:
    def test_roundtrip(self):
        c = QuantumCircuit(
            4, [H(0), T(1), CNOT(0, 1), MCX(0, 1, 2, 3), SWAP(2, 3), X(2)]
        )
        back = parse_qc(to_qc(c))
        assert back.gates == c.gates

    def test_cz_rejected(self):
        from repro.core import CZ

        with pytest.raises(ParseError):
            to_qc(QuantumCircuit(2, [CZ(0, 1)]))

    def test_file_roundtrip(self, tmp_path):
        c = QuantumCircuit(3, [MCX(0, 1, 2)])
        path = str(tmp_path / "cascade.qc")
        write_qc(c, path)
        assert read_qc(path).gates == c.gates
