"""Parser error paths: malformed inputs must raise located ParseErrors
carrying stable REPRO6xx diagnostic codes."""

import pytest

from repro.core.exceptions import ParseError
from repro.io.pla import parse_pla
from repro.io.qasm import parse_qasm
from repro.io.qc import parse_qc
from repro.io.real_fmt import parse_real


def raises_code(parse, text, code, line=None):
    with pytest.raises(ParseError) as excinfo:
        parse(text, filename="test-input")
    error = excinfo.value
    assert error.code == code, (
        f"expected {code}, got {error.code}: {error}"
    )
    assert error.filename == "test-input"
    if line is not None:
        assert error.line == line
    diagnostic = error.diagnostic
    assert diagnostic.code == code
    assert diagnostic.stage == "parse"
    assert diagnostic.filename == "test-input"
    return error


# -- QASM --------------------------------------------------------------------


def test_qasm_unknown_register():
    raises_code(parse_qasm, "qreg q[2];\ncx q[0], r[1];", "REPRO601", line=2)


def test_qasm_index_out_of_range():
    raises_code(parse_qasm, "qreg q[2];\nh q[5];", "REPRO601", line=2)


def test_qasm_register_redefinition():
    raises_code(parse_qasm, "qreg q[2];\nqreg q[3];", "REPRO602", line=2)


def test_qasm_unsupported_gate():
    raises_code(parse_qasm, "qreg q[2];\nfoo q[0];", "REPRO603", line=2)


def test_qasm_missing_operands():
    raises_code(parse_qasm, "qreg q[2];\nh", "REPRO604", line=2)


def test_qasm_bad_qubit_reference():
    raises_code(parse_qasm, "qreg q[2];\nh nonsense;", "REPRO604", line=2)


def test_qasm_bad_angle():
    raises_code(parse_qasm, "qreg q[1];\nrz(huh) q[0];", "REPRO605", line=2)


def test_qasm_duplicate_operands():
    raises_code(parse_qasm, "qreg q[2];\ncx q[0], q[0];", "REPRO607", line=2)


# -- .qc ---------------------------------------------------------------------


def test_qc_unknown_wire():
    raises_code(parse_qc, ".v a b\nBEGIN\ncnot a z\nEND", "REPRO601", line=3)


def test_qc_redeclared_wire():
    raises_code(parse_qc, ".v a b a\nBEGIN\nEND", "REPRO602", line=1)


def test_qc_unsupported_mnemonic():
    raises_code(parse_qc, ".v a\nBEGIN\nqqq a\nEND", "REPRO603", line=3)


def test_qc_wrong_arity():
    raises_code(parse_qc, ".v a b\nBEGIN\ncnot a\nEND", "REPRO604", line=3)


def test_qc_duplicate_operands():
    raises_code(parse_qc, ".v a b\nBEGIN\ncnot a a\nEND", "REPRO607", line=3)


# -- .real -------------------------------------------------------------------


def test_real_unknown_variable():
    raises_code(
        parse_real, ".numvars 2\n.variables a b\n.begin\nt2 a z\n.end",
        "REPRO601", line=4,
    )


def test_real_redeclared_variable():
    raises_code(
        parse_real, ".numvars 2\n.variables a a\n.begin\n.end",
        "REPRO602", line=2,
    )


def test_real_unsupported_gate():
    raises_code(
        parse_real, ".numvars 2\n.variables a b\n.begin\nv a b\n.end",
        "REPRO603", line=4,
    )


def test_real_wrong_arity():
    raises_code(
        parse_real, ".numvars 2\n.variables a b\n.begin\nt3 a b\n.end",
        "REPRO604", line=4,
    )


def test_real_bad_numvars_literal():
    raises_code(parse_real, ".numvars many\n.begin\n.end", "REPRO605", line=1)


def test_real_numvars_mismatch():
    raises_code(
        parse_real, ".numvars 3\n.variables a b\n.begin\n.end", "REPRO606"
    )


def test_real_duplicate_operands():
    raises_code(
        parse_real, ".numvars 2\n.variables a b\n.begin\nt2 a a\n.end",
        "REPRO607", line=4,
    )


# -- PLA ---------------------------------------------------------------------


def test_pla_bad_row():
    raises_code(parse_pla, ".i 2\n.o 1\n1 0 1\n.e", "REPRO604", line=3)


def test_pla_rows_before_declarations():
    raises_code(parse_pla, ".i 2\n10 1\n.e", "REPRO604", line=2)


def test_pla_bad_cube_character():
    raises_code(
        parse_pla, ".i 2\n.o 1\n.type esop\n1x 1\n.e", "REPRO605", line=4
    )


def test_pla_bad_output_character():
    raises_code(
        parse_pla, ".i 2\n.o 1\n.type esop\n10 z\n.e", "REPRO605", line=4
    )


def test_pla_bad_count_literal():
    raises_code(parse_pla, ".i two\n.o 1\n.e", "REPRO605", line=1)


def test_pla_cube_width_mismatch():
    raises_code(
        parse_pla, ".i 3\n.o 1\n.type esop\n10 1\n.e", "REPRO606", line=4
    )


def test_pla_missing_declarations():
    raises_code(parse_pla, ".type esop\n.e", "REPRO606")


def test_pla_overlapping_sop_cubes():
    raises_code(parse_pla, ".i 2\n.o 1\n1- 1\n-1 1\n.e", "REPRO606")


# -- diagnostic conversion ---------------------------------------------------


def test_parse_error_without_code_defaults_generic():
    error = ParseError("boom", filename="f", line=1)
    assert error.code == "REPRO600"
    assert error.diagnostic.code == "REPRO600"


def test_bare_message_excludes_location():
    error = ParseError("boom", filename="f.qasm", line=3)
    assert str(error) == "f.qasm:3: boom"
    assert error.bare_message == "boom"
    assert error.diagnostic.message == "boom"
    assert "f.qasm" in error.diagnostic.location()
