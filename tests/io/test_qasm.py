"""OpenQASM 2.0 parser/writer tests."""

import pytest

from repro.core import CNOT, Gate, H, ParseError, QuantumCircuit, T, TOFFOLI, X
from repro.io import parse_qasm, read_qasm, to_qasm, write_qasm


SAMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
t q[2];
ccx q[0], q[1], q[2];
barrier q[0];
measure q[0] -> c[0];
"""


class TestParsing:
    def test_sample_program(self):
        c = parse_qasm(SAMPLE, name="sample")
        assert c.num_qubits == 3
        assert [g.name for g in c] == ["H", "CNOT", "T", "TOFFOLI"]
        assert c.name == "sample"

    def test_headers_and_comments_skipped(self):
        c = parse_qasm("OPENQASM 2.0;\n// nothing\nqreg q[1];\nx q[0]; // flip\n")
        assert c.gates == (X(0),)

    def test_multiple_statements_per_line(self):
        c = parse_qasm("qreg q[2]; h q[0]; cx q[0],q[1];")
        assert len(c) == 2

    def test_multiple_registers_concatenate(self):
        c = parse_qasm("qreg a[2];\nqreg b[2];\ncx a[1], b[0];")
        assert c.num_qubits == 4
        assert c.gates == (CNOT(1, 2),)

    def test_all_supported_gates(self):
        source = "qreg q[3];\n" + "\n".join(
            f"{m} q[0];" for m in ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg"]
        ) + "\ncx q[0],q[1];\ncz q[0],q[1];\nswap q[1],q[2];\nccx q[0],q[1],q[2];"
        c = parse_qasm(source)
        assert len(c) == 13

    def test_unknown_gate_raises(self):
        with pytest.raises(ParseError):
            parse_qasm("qreg q[2];\nfrobnicate q[0];")
        with pytest.raises(ParseError):
            parse_qasm("qreg q[2];\ncu1(0.5) q[0], q[1];")

    def test_unknown_register_raises(self):
        with pytest.raises(ParseError):
            parse_qasm("qreg q[2];\nx r[0];")

    def test_index_out_of_range_raises(self):
        with pytest.raises(ParseError):
            parse_qasm("qreg q[2];\nx q[5];")

    def test_missing_operands_raises(self):
        with pytest.raises(ParseError):
            parse_qasm("qreg q[2];\nh;")


class TestEmission:
    def test_roundtrip(self):
        c = QuantumCircuit(3, [H(0), CNOT(0, 1), T(2), TOFFOLI(0, 1, 2)], name="rt")
        back = parse_qasm(to_qasm(c))
        assert back.gates == c.gates
        assert back.num_qubits == c.num_qubits

    def test_header_present(self):
        text = to_qasm(QuantumCircuit(1, [X(0)]))
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text

    def test_measure_block(self):
        text = to_qasm(QuantumCircuit(2, [H(0)]), include_measure=True)
        assert "creg c[2];" in text
        assert "measure q -> c;" in text

    def test_mcx_rejected(self):
        from repro.core import MCX

        c = QuantumCircuit(5, [MCX(0, 1, 2, 3, 4)])
        with pytest.raises(ParseError):
            to_qasm(c)

    def test_custom_register_name(self):
        text = to_qasm(QuantumCircuit(1, [X(0)]), register="phys")
        assert "qreg phys[1];" in text
        assert "x phys[0];" in text


class TestFiles:
    def test_file_roundtrip(self, tmp_path):
        c = QuantumCircuit(2, [H(0), CNOT(0, 1)])
        path = str(tmp_path / "bell.qasm")
        write_qasm(c, path)
        back = read_qasm(path)
        assert back.gates == c.gates
        assert back.name == "bell"
