"""PLA/ESOP cube-list format tests."""

import pytest

from repro.core import ParseError
from repro.io import Cube, CubeList, parse_pla, to_pla


class TestCube:
    def test_from_string(self):
        cube = Cube.from_string("1-0")
        assert cube.literals == (1, None, 0)
        assert str(cube) == "1-0"

    def test_bad_character(self):
        with pytest.raises(ParseError):
            Cube.from_string("1x0")

    def test_covers(self):
        cube = Cube.from_string("1-0")  # x0=1, x2=0 (x0 is MSB)
        assert cube.covers(0b100)
        assert cube.covers(0b110)
        assert not cube.covers(0b101)
        assert not cube.covers(0b000)

    def test_care_count(self):
        assert Cube.from_string("1-0").care_count == 2
        assert Cube.from_string("---").care_count == 0

    def test_equality_hash(self):
        assert Cube.from_string("01") == Cube.from_string("01")
        assert len({Cube.from_string("01"), Cube.from_string("01")}) == 1


class TestCubeList:
    def test_esop_evaluation_xor(self):
        cubes = CubeList(2, 1)
        cubes.add(Cube.from_string("1-"), 1)
        cubes.add(Cube.from_string("11"), 1)
        # 10 -> covered once -> 1; 11 -> covered twice -> XOR 0
        assert cubes.evaluate(0b10) == 1
        assert cubes.evaluate(0b11) == 0
        assert cubes.evaluate(0b00) == 0

    def test_multi_output_masks(self):
        cubes = CubeList(2, 2)
        cubes.add(Cube.from_string("1-"), 0b01)
        cubes.add(Cube.from_string("-1"), 0b10)
        assert cubes.evaluate(0b10) == 0b01
        assert cubes.evaluate(0b01) == 0b10
        assert cubes.evaluate(0b11) == 0b11

    def test_cubes_for_output(self):
        cubes = CubeList(2, 2)
        cubes.add(Cube.from_string("1-"), 0b11)
        cubes.add(Cube.from_string("-1"), 0b10)
        assert len(cubes.cubes_for_output(0)) == 1
        assert len(cubes.cubes_for_output(1)) == 2

    def test_width_mismatch(self):
        cubes = CubeList(3, 1)
        with pytest.raises(ParseError):
            cubes.add(Cube.from_string("1-"), 1)


class TestParse:
    def test_esop_file(self):
        cubes = parse_pla(".i 3\n.o 2\n.type esop\n1-0 10\n011 01\n.e\n")
        assert cubes.num_inputs == 3
        assert cubes.num_outputs == 2
        assert len(cubes) == 2

    def test_disjoint_sop_accepted(self):
        cubes = parse_pla(".i 2\n.o 1\n10 1\n01 1\n.e\n")
        assert cubes.evaluate(0b10) == 1

    def test_overlapping_sop_rejected(self):
        with pytest.raises(ParseError):
            parse_pla(".i 2\n.o 1\n1- 1\n11 1\n.e\n")

    def test_overlap_fine_in_esop_mode(self):
        cubes = parse_pla(".i 2\n.o 1\n.type esop\n1- 1\n11 1\n.e\n")
        assert cubes.evaluate(0b11) == 0

    def test_missing_declarations(self):
        with pytest.raises(ParseError):
            parse_pla("10 1\n.e\n")

    def test_cube_width_mismatch(self):
        with pytest.raises(ParseError):
            parse_pla(".i 3\n.o 1\n10 1\n.e\n")

    def test_comments_skipped(self):
        cubes = parse_pla("# header\n.i 1\n.o 1\n1 1 # cube\n.e\n")
        assert len(cubes) == 1


class TestEmit:
    def test_roundtrip(self):
        cubes = CubeList(3, 2)
        cubes.add(Cube.from_string("1-0"), 0b01)
        cubes.add(Cube.from_string("-11"), 0b11)
        back = parse_pla(to_pla(cubes))
        assert len(back) == 2
        for assignment in range(8):
            assert back.evaluate(assignment) == cubes.evaluate(assignment)
