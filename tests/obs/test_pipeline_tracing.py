"""End-to-end tracing through compile_circuit and the fuzz harness."""

from repro.compiler import compile_circuit
from repro.core.circuit import QuantumCircuit
from repro.core.gates import CNOT, H, TOFFOLI
from repro.devices import get_device
from repro.fuzz import FuzzConfig, run_fuzz
from repro.obs import optimizer_trajectory, stage_rows


def _compile(trace=True, verify=False):
    return compile_circuit(
        QuantumCircuit(3, [TOFFOLI(0, 1, 2), H(0), CNOT(0, 1)], name="ccx"),
        get_device("ibmqx4"), verify=verify, trace=trace,
    )


def test_trace_off_by_default():
    result = _compile(trace=False)
    assert result.trace is None


def test_traced_compile_records_pipeline_stages():
    result = _compile(verify="qmdd")
    (root,) = result.trace["spans"]
    assert root["name"] == "compile"
    assert root["attrs"]["device"] == "ibmqx4"
    stages = [child["name"] for child in root["children"]]
    for expected in ("placement", "map", "optimize", "verify"):
        assert expected in stages, stages
    mapping = next(c for c in root["children"] if c["name"] == "map")
    map_stages = [child["name"] for child in mapping["children"]]
    assert "map.lower" in map_stages and "map.route" in map_stages
    verify_span = next(c for c in root["children"] if c["name"] == "verify")
    assert verify_span["attrs"] == {"method": "qmdd", "equivalent": True}


def test_optimizer_rounds_carry_cost_deltas():
    result = _compile()
    rounds = optimizer_trajectory(result.trace)
    assert rounds, "no optimize.round spans recorded"
    first = rounds[0]
    assert first["round"] == 1
    assert first["cost_before"] >= first["cost_after"]
    assert "gates_before" in first and "accepted" in first
    # The final fixpoint round converges (no further improvement).
    assert rounds[-1]["accepted"] is False or len(rounds) == 1


def test_stage_rows_cover_whole_compile():
    rows = stage_rows(_compile().trace)
    assert rows[0]["name"] == "compile" and rows[0]["depth"] == 0
    assert any(row["depth"] == 2 for row in rows)  # map.* sub-stages
    assert abs(rows[0]["share"] - 1.0) < 1e-9


def test_fuzz_report_has_phase_timing_and_metrics():
    report = run_fuzz(
        FuzzConfig(seed=11, iterations=3, max_qubits=3, max_gates=4)
    )
    assert set(report.phase_seconds) >= {"generate", "compile", "oracle"}
    assert all(v >= 0.0 for v in report.phase_seconds.values())
    assert report.timing_line().startswith("generate ")
    counters = report.metrics["counters"]
    assert counters["compile.calls"] == report.compiles
    # Every oracle check is settled either by a QMDD build or by the
    # abstract-permutation prescreen (classical pairs never reach QMDD).
    settled = (
        counters.get("verify.qmdd_checks", 0)
        + counters.get("verify.prescreen.proofs", 0)
        + counters.get("verify.prescreen.rejects", 0)
    )
    assert settled >= report.oracle_checks
