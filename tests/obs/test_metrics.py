"""MetricsRegistry counters/gauges, snapshot/merge, and deltas."""

from concurrent.futures import ThreadPoolExecutor

from repro.obs import MetricsRegistry, get_metrics


def test_counters_accumulate_and_default_to_zero():
    registry = MetricsRegistry()
    assert registry.counter("missing") == 0
    registry.inc("compiles")
    registry.inc("compiles", 2)
    registry.inc("seconds", 0.25)
    assert registry.counter("compiles") == 3
    assert registry.counter("seconds") == 0.25


def test_gauges_set_and_max():
    registry = MetricsRegistry()
    registry.gauge("nodes", 10)
    registry.gauge("nodes", 4)
    assert registry.get_gauge("nodes") == 4
    registry.gauge_max("peak", 10)
    registry.gauge_max("peak", 4)
    assert registry.get_gauge("peak") == 10


def test_snapshot_merge_round_trip():
    source = MetricsRegistry()
    source.inc("a", 2)
    source.gauge_max("g", 5)
    snapshot = source.snapshot()
    target = MetricsRegistry()
    target.inc("a", 1)
    target.gauge_max("g", 3)
    target.merge(snapshot)
    assert target.counter("a") == 3  # counters merge by addition
    assert target.get_gauge("g") == 5  # gauges merge by max
    # Merging a snapshot never aliases the source's internals.
    source.inc("a", 100)
    assert target.counter("a") == 3


def test_snapshot_survives_json_style_round_trip():
    import json

    registry = MetricsRegistry()
    registry.inc("x", 1.5)
    registry.gauge("y", 7)
    snapshot = json.loads(json.dumps(registry.snapshot()))
    fresh = MetricsRegistry()
    fresh.merge(snapshot)
    assert fresh.counter("x") == 1.5
    assert fresh.get_gauge("y") == 7


def test_merge_tolerates_empty_and_none():
    registry = MetricsRegistry()
    registry.merge(None)
    registry.merge({})
    registry.inc("a")
    registry.merge({"counters": {}, "gauges": {}})
    assert registry.counter("a") == 1


def test_delta_reports_only_what_changed():
    registry = MetricsRegistry()
    registry.inc("a", 2)
    before = registry.snapshot()
    registry.inc("a", 3)
    registry.inc("b")
    registry.gauge("g", 9)
    delta = MetricsRegistry.delta(before, registry.snapshot())
    assert delta["counters"] == {"a": 3, "b": 1}
    assert delta["gauges"] == {"g": 9}


def test_clear_and_truthiness():
    registry = MetricsRegistry()
    assert not registry and len(registry) == 0
    registry.inc("a")
    assert registry and len(registry) == 1
    registry.clear()
    assert not registry


def test_global_registry_is_a_singleton():
    assert get_metrics() is get_metrics()


def test_thread_safe_increments():
    registry = MetricsRegistry()

    def bump():
        for _ in range(1000):
            registry.inc("n")

    with ThreadPoolExecutor(max_workers=4) as pool:
        for _ in range(4):
            pool.submit(bump)
    assert registry.counter("n") == 4000
