"""Tracer span nesting, summaries, Chrome export, and digests."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace_events,
    optimizer_trajectory,
    stage_rows,
    write_chrome_trace,
)


def test_spans_nest_lexically():
    tracer = Tracer()
    with tracer.span("compile"):
        with tracer.span("map"):
            with tracer.span("map.route"):
                pass
        with tracer.span("optimize"):
            pass
    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert root.name == "compile"
    assert [child.name for child in root.children] == ["map", "optimize"]
    assert [c.name for c in root.children[0].children] == ["map.route"]


def test_summary_is_json_safe_and_versioned():
    tracer = Tracer()
    with tracer.span("compile", device="ibmqx4") as span:
        span.set(gates=12)
        with tracer.span("verify"):
            pass
    summary = tracer.to_summary()
    assert summary["version"] == 1
    rebuilt = json.loads(json.dumps(summary))
    (root,) = rebuilt["spans"]
    assert root["attrs"] == {"device": "ibmqx4", "gates": 12}
    assert root["children"][0]["name"] == "verify"
    assert root["duration"] >= root["children"][0]["duration"] >= 0.0


def test_child_times_fall_within_parent():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer, = tracer.roots
    inner, = outer.children
    assert outer.start <= inner.start
    assert inner.end <= outer.end


def test_exception_closes_spans_and_marks_error():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("compile"):
            with tracer.span("map"):
                raise RuntimeError("boom")
    root = tracer.roots[0]
    assert root.end is not None
    assert root.children[0].end is not None
    assert root.children[0].attrs.get("error") is True
    assert root.attrs.get("error") is True


def test_null_tracer_is_free_and_silent():
    tracer = NullTracer()
    with tracer.span("anything", device="x") as span:
        assert span.set(foo=1) is span
    assert tracer.to_summary() == {"version": 1, "spans": []}
    assert not NULL_TRACER.enabled
    # The shared null span is a singleton: no per-call allocation.
    assert tracer.span("a") is tracer.span("b")


def test_chrome_events_flatten_tree_with_microseconds():
    tracer = Tracer()
    with tracer.span("compile"):
        with tracer.span("map", gates=5):
            pass
    events = chrome_trace_events(tracer.to_summary(), pid=7, tid=3)
    assert [event["name"] for event in events] == ["compile", "map"]
    for event in events:
        assert event["ph"] == "X"
        assert event["pid"] == 7 and event["tid"] == 3
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
    assert events[1]["args"] == {"gates": 5}


def test_write_chrome_trace_labels_lanes(tmp_path):
    summaries = []
    for _ in range(2):
        tracer = Tracer()
        with tracer.span("compile"):
            pass
        summaries.append(tracer.to_summary())
    path = tmp_path / "trace.json"
    count = write_chrome_trace(str(path), summaries, labels=["a", "b"])
    events = json.loads(path.read_text())
    assert count == len(events) == 4  # 2 spans + 2 thread_name records
    names = [e["args"]["name"] for e in events if e["ph"] == "M"]
    assert names == ["a", "b"]
    assert {e["tid"] for e in events} == {1, 2}


def test_stage_rows_carry_depth_and_share():
    tracer = Tracer()
    with tracer.span("compile"):
        with tracer.span("map"):
            pass
    rows = stage_rows(tracer.to_summary())
    assert [(row["name"], row["depth"]) for row in rows] == [
        ("compile", 0), ("map", 1),
    ]
    assert rows[0]["share"] == pytest.approx(1.0)
    assert 0.0 <= rows[1]["share"] <= 1.0


def test_optimizer_trajectory_collects_round_spans():
    tracer = Tracer()
    with tracer.span("compile"):
        with tracer.span("optimize"):
            with tracer.span("optimize.round", round=1, cost_before=10.0,
                             cost_after=8.0, accepted=True):
                pass
            with tracer.span("optimize.round", round=2, cost_before=8.0,
                             cost_after=8.0, accepted=False):
                pass
    rounds = optimizer_trajectory(tracer.to_summary())
    assert [r["round"] for r in rounds] == [1, 2]
    assert rounds[0]["accepted"] and not rounds[1]["accepted"]
    assert all(r["seconds"] >= 0.0 for r in rounds)
