"""Failure injection: the verifier must catch any broken transformation.

Each test sabotages one pipeline stage and confirms the compiler's
closing formal verification refuses to emit the wrong circuit — the
property that makes the paper's "formally-verified synthesis" claim
meaningful.
"""

import pytest

from repro import VerificationError, compile_circuit
from repro.core import CNOT, Gate, H, QuantumCircuit, T, TOFFOLI, X
from repro.devices import IBMQX4


@pytest.fixture
def workload():
    return QuantumCircuit(3, [TOFFOLI(0, 1, 2), CNOT(2, 0), T(1)], name="w")


class TestSabotagedStages:
    def test_broken_optimizer_caught(self, workload, monkeypatch):
        """An optimizer that drops a real gate must be detected."""
        import repro.compiler as compiler_module

        class BrokenOptimizer:
            def __init__(self, *args, **kwargs):
                pass

            def run(self, circuit):
                return circuit[:-1]  # silently drop the last gate

        monkeypatch.setattr(compiler_module, "LocalOptimizer", BrokenOptimizer)
        with pytest.raises(VerificationError):
            compile_circuit(workload, IBMQX4)

    def test_broken_toffoli_network_caught(self, workload, monkeypatch):
        """A subtly wrong decomposition (one T turned into T†) fails."""
        import repro.backend.toffoli as toffoli_module
        import repro.backend.mapper as mapper_module

        original = toffoli_module.toffoli_network

        def wrong_network(c1, c2, t):
            gates = original(c1, c2, t)
            return [
                Gate("TDG", g.qubits) if g.name == "T" and g.qubits == (t,)
                else g
                for g in gates
            ]

        monkeypatch.setattr(toffoli_module, "toffoli_network", wrong_network)
        # expand_non_native captured the name at import time inside the
        # backend module; patch at the consumer too.
        def wrong_expand(gate):
            if gate.name == "TOFFOLI":
                return wrong_network(*gate.qubits)
            return original_expand(gate)

        original_expand = mapper_module.expand_non_native
        monkeypatch.setattr(mapper_module, "expand_non_native", wrong_expand)
        with pytest.raises(VerificationError):
            compile_circuit(workload, IBMQX4)

    def test_swapped_cnot_orientation_caught(self, workload, monkeypatch):
        """Routing that flips a CNOT's direction without the Hadamard
        correction must never emit: either the conformance self-check or
        the formal verifier stops it."""
        from repro.core import SynthesisError
        import repro.backend.mapper as mapper_module

        original = mapper_module.legalize_cnots

        def wrong_legalize(circuit, device):
            legal = original(circuit, device)
            flipped = QuantumCircuit(legal.num_qubits, name=legal.name)
            swapped_one = False
            for gate in legal:
                if gate.name == "CNOT" and not swapped_one:
                    flipped.append(Gate("CNOT", (gate.qubits[1], gate.qubits[0])))
                    swapped_one = True
                    continue
                flipped.append(gate)
            return flipped

        monkeypatch.setattr(mapper_module, "legalize_cnots", wrong_legalize)
        with pytest.raises((VerificationError, SynthesisError)):
            compile_circuit(workload, IBMQX4)

    def test_clean_pipeline_passes(self, workload):
        """Control case: the unmodified pipeline verifies."""
        result = compile_circuit(workload, IBMQX4)
        assert result.verification.equivalent
