"""End-to-end compiler facade tests."""

import pytest

from repro import (
    CNOT,
    CostFunction,
    H,
    MCX,
    NotSynthesizableError,
    QuantumCircuit,
    T,
    TOFFOLI,
    VerificationError,
    compile_circuit,
    compile_classical_function,
)
from repro.core import Gate, X
from repro.backend import check_conformance
from repro.devices import IBMQX2, IBMQX3, IBMQX4, SIMULATOR, get_device
from repro.frontend import TruthTable
from repro.io import parse_qasm


class TestCompileCircuit:
    def test_toffoli_to_qx4(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")
        result = compile_circuit(c, IBMQX4)
        assert result.verification.equivalent
        assert result.optimized_metrics.cost <= result.unoptimized_metrics.cost
        assert check_conformance(result.optimized, IBMQX4) == []

    def test_device_by_name(self):
        c = QuantumCircuit(2, [CNOT(1, 0)])
        result = compile_circuit(c, "ibmqx2")
        assert result.device is IBMQX2

    def test_mapping_expands_gate_count(self):
        """The paper's central observation: real-device constraints make
        circuits grow (often ~10x for routed CNOTs)."""
        c = QuantumCircuit(16, [CNOT(5, 10)])  # Fig. 5 scenario
        result = compile_circuit(c, IBMQX3)
        assert result.unoptimized_metrics.gate_volume > 10 * c.gate_volume

    def test_simulator_no_expansion_for_native(self):
        c = QuantumCircuit(3, [H(0), CNOT(0, 1), T(2)])
        result = compile_circuit(c, SIMULATOR)
        assert result.optimized_metrics.gate_volume == 3

    def test_optimize_flag_off(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        result = compile_circuit(c, IBMQX4, optimize=False)
        assert result.optimized is result.unoptimized

    def test_verify_flag_off(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        result = compile_circuit(c, IBMQX4, verify=False)
        assert result.verification is None

    def test_explicit_verify_method(self):
        c = QuantumCircuit(2, [CNOT(0, 1)])
        result = compile_circuit(c, IBMQX2, verify="dense")
        assert result.verification.method == "dense"

    def test_custom_cost_function(self):
        only_cnots = CostFunction(name="cnots", base_weight=0.0,
                                  extra_weights={"CNOT": 1.0})
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        result = compile_circuit(c, IBMQX4, cost_function=only_cnots)
        assert result.optimized_metrics.cost == result.optimized.cnot_count

    def test_custom_placement_used(self):
        c = QuantumCircuit(2, [CNOT(0, 1)], name="pair")
        result = compile_circuit(c, IBMQX2, placement={0: 3, 1: 4})
        assert result.placement == {0: 3, 1: 4}
        assert result.verification.equivalent

    def test_too_large_raises_na(self):
        c = QuantumCircuit(6, [X(5)])
        with pytest.raises(NotSynthesizableError):
            compile_circuit(c, IBMQX2)

    def test_qasm_output_parses_back(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        result = compile_circuit(c, IBMQX4)
        reparsed = parse_qasm(result.qasm)
        assert reparsed.gates == result.optimized.gates

    def test_synthesis_time_recorded(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        result = compile_circuit(c, IBMQX4)
        assert result.synthesis_seconds > 0

    def test_row_and_str_render(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")
        result = compile_circuit(c, IBMQX4)
        assert "/" in result.row()
        assert "ccx" in str(result)
        assert "verified[qmdd]" in str(result)


class TestCompileClassical:
    def test_hex_function(self):
        result = compile_classical_function("e8", IBMQX4, num_inputs=3)
        assert result.verification.equivalent
        assert result.original.name == "#e8"

    def test_truth_table_object(self):
        table = TruthTable.from_hex("6", 2)
        result = compile_classical_function(table, "ibmqx2")
        assert result.verification.equivalent

    def test_hex_without_inputs_raises(self):
        from repro.core import SynthesisError

        with pytest.raises(SynthesisError):
            compile_classical_function("e8", IBMQX4)

    def test_effort_forwarded(self):
        """Both ESOP efforts compile and verify; they produce different
        cascades (NOR is 1 cube under FPRM, 4 under PPRM)."""
        table = TruthTable.from_hex("1", 2)
        fprm = compile_classical_function(table, SIMULATOR, effort="fprm")
        pprm = compile_classical_function(table, SIMULATOR, effort="pprm")
        assert fprm.verification.equivalent and pprm.verification.equivalent
        assert fprm.original.gates != pprm.original.gates


class TestVerificationCatchesBugs:
    def test_detects_injected_fault(self, monkeypatch):
        """If mapping were broken, verification must catch it."""
        import repro.compiler as compiler_module

        original_map = compiler_module.map_circuit_outcome

        def broken_map(circuit, device, placement=None, **kwargs):
            outcome = original_map(circuit, device, placement, **kwargs)
            sabotaged = outcome.unoptimized.copy()
            sabotaged.append(Gate("X", (0,)))
            outcome.unoptimized = sabotaged
            return outcome

        monkeypatch.setattr(
            compiler_module, "map_circuit_outcome", broken_map
        )
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        with pytest.raises(VerificationError):
            compile_circuit(c, IBMQX4)
