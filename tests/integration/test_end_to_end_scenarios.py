"""End-to-end scenario tests combining several features at once."""

import pytest

from repro import (
    CNOT,
    H,
    QuantumCircuit,
    T,
    TOFFOLI,
    compile_circuit,
    compile_classical_function,
    draw_circuit,
)
from repro.core import MCX, X
from repro.devices import IBMQX3, IBMQX5, ion_device, synthetic_calibration, fidelity_cost
from repro.frontend import synthesize_expressions
from repro.io import parse_qasm


class TestCombinedFeatureFlows:
    def test_expression_to_ion_with_greedy_placement(self):
        """Boolean expression -> cascade -> ion target, greedy placement,
        relative-phase MCX lowering, verified up to global phase."""
        cascade = synthesize_expressions(
            ["a & b & c | ~a & ~b & ~c"], name="agree3"
        )
        result = compile_circuit(
            cascade,
            ion_device(8),
            placement="greedy",
            mcx_mode="relative_phase",
        )
        assert result.verification.equivalent
        assert all(g.name in ("RX", "RY", "RZ", "RXX", "I")
                   for g in result.optimized)

    def test_hex_function_with_fidelity_cost_and_deep_esop(self):
        calibration = synthetic_calibration(IBMQX5)
        result = compile_classical_function(
            "6996", IBMQX5, num_inputs=4, effort="deep",
            cost_function=fidelity_cost(calibration),
        )
        assert result.verification.equivalent
        # fidelity cost is -log(success): must be positive and finite
        assert 0 < result.optimized_metrics.cost < 100

    def test_qasm_roundtrip_through_two_devices(self):
        """Compile to qx3, re-parse the QASM, re-verify, then retarget the
        mapped artifact to the simulator."""
        circuit = QuantumCircuit(4, [TOFFOLI(0, 1, 3), CNOT(3, 0), T(2)],
                                 name="chain")
        first = compile_circuit(circuit, IBMQX3)
        reparsed = parse_qasm(first.qasm)
        assert reparsed.gates == first.optimized.gates
        second = compile_circuit(reparsed, "simulator")
        assert second.verification.equivalent

    def test_relative_phase_and_greedy_compose_on_table8_workload(self):
        from repro.benchlib import table7
        from repro.devices import PROPOSED96

        circuit = table7.build_benchmark("T6_b")
        baseline = compile_circuit(circuit, PROPOSED96, verify=False)
        tuned = compile_circuit(
            circuit, PROPOSED96, verify=False, mcx_mode="relative_phase"
        )
        assert tuned.optimized_metrics.cost < baseline.optimized_metrics.cost

    def test_drawing_of_compiled_output(self):
        result = compile_circuit(
            QuantumCircuit(2, [H(0), CNOT(0, 1)]), "ibmqx2"
        )
        art = draw_circuit(result.optimized)
        assert "q0:" in art and "q4:" in art  # full device register drawn

    def test_mcx_ancilla_budget_interacts_with_placement(self):
        """A T6 gate on exactly-sized vs generous devices: the generous
        device admits the cheap V-chain; the exact-size device must split
        (more Toffolis) but still verifies."""
        from repro.devices import linear_device

        gate_circuit = QuantumCircuit(6, [MCX(0, 1, 2, 3, 4, 5)])
        small = compile_circuit(gate_circuit, linear_device(7), verify=False)
        large = compile_circuit(gate_circuit, linear_device(12), verify=False)
        assert small.unoptimized_metrics.t_count > large.unoptimized_metrics.t_count

    def test_verification_method_names_survive_facade(self):
        result = compile_circuit(
            QuantumCircuit(2, [CNOT(0, 1)]), "ibmqx2", verify="dense"
        )
        assert result.verification.method == "dense"
        result = compile_circuit(
            QuantumCircuit(2, [CNOT(0, 1)]), "ibmqx2", verify="sampled"
        )
        assert result.verification.method == "sampled"
