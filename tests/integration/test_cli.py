"""CLI tests (invoked in-process through cli.main)."""

import os

import pytest

from repro.cli import main
from repro.core import CNOT, H, MCX, QuantumCircuit, TOFFOLI
from repro.io import parse_qasm, read_circuit, write_qc


@pytest.fixture
def toffoli_file(tmp_path):
    path = str(tmp_path / "ccx.qc")
    write_qc(QuantumCircuit(3, [TOFFOLI(0, 1, 2)]), path)
    return path


class TestDevices:
    def test_lists_paper_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("ibmqx2", "ibmqx3", "ibmqx4", "ibmqx5", "ibmq_16",
                     "simulator", "proposed96"):
            assert name in out

    def test_shows_complexity(self, capsys):
        main(["devices"])
        out = capsys.readouterr().out
        assert "0.300000" in out  # qx2/qx4
        assert "0.098901" in out  # melbourne


class TestInfo:
    def test_metrics_printed(self, toffoli_file, capsys):
        assert main(["info", toffoli_file]) == 0
        out = capsys.readouterr().out
        assert "qubits    : 3" in out
        assert "gates     : 1" in out
        assert "TOFFOLI" in out

    def test_unknown_extension_errors(self, tmp_path, capsys):
        path = str(tmp_path / "circuit.xyz")
        with open(path, "w") as handle:
            handle.write("nonsense")
        assert main(["info", path]) == 1
        assert "error:" in capsys.readouterr().err


class TestCompile:
    def test_compile_to_stdout_qasm(self, toffoli_file, capsys):
        assert main(["compile", toffoli_file, "--device", "ibmqx4"]) == 0
        captured = capsys.readouterr()
        assert "OPENQASM 2.0;" in captured.out
        assert "EQUIVALENT" in captured.err

    def test_compile_to_file(self, toffoli_file, tmp_path, capsys):
        out_path = str(tmp_path / "mapped.qasm")
        assert main(
            ["compile", toffoli_file, "--device", "ibmqx4", "-o", out_path]
        ) == 0
        mapped = read_circuit(out_path)
        assert mapped.is_native_transmon
        assert len(mapped) > 15  # routing happened

    def test_compile_hex_function(self, capsys):
        code = main(
            ["compile", "--hex", "e8", "--inputs", "3", "--device", "simulator"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OPENQASM" in out

    def test_hex_without_inputs(self, capsys):
        assert main(["compile", "--hex", "e8", "--device", "simulator"]) == 2

    def test_no_input_at_all(self, capsys):
        assert main(["compile", "--device", "simulator"]) == 2

    def test_na_exit_code(self, tmp_path, capsys):
        path = str(tmp_path / "t5.qc")
        write_qc(QuantumCircuit(5, [MCX(0, 1, 2, 3, 4)]), path)
        assert main(["compile", path, "--device", "ibmqx2"]) == 3
        assert "N/A" in capsys.readouterr().err

    def test_no_optimize_flag(self, toffoli_file, capsys):
        assert main(
            ["compile", toffoli_file, "--device", "ibmqx4",
             "--no-optimize", "--verify", "none"]
        ) == 0
        err = capsys.readouterr().err
        assert "cost saved  : 0.00%" in err

    def test_greedy_placement_flag(self, toffoli_file, capsys):
        assert main(
            ["compile", toffoli_file, "--device", "ibmqx5",
             "--placement", "greedy"]
        ) == 0

    def test_output_format_by_extension(self, toffoli_file, tmp_path):
        out_path = str(tmp_path / "mapped.qc")
        main(["compile", toffoli_file, "--device", "ibmqx4", "-o", out_path])
        assert read_circuit(out_path).is_native_transmon


class TestDraw:
    def test_draws_wires(self, toffoli_file, capsys):
        assert main(["draw", toffoli_file]) == 0
        out = capsys.readouterr().out
        assert "q0:" in out and "●" in out and "X" in out

    def test_columns_flag_truncates(self, tmp_path, capsys):
        from repro.core import H

        path = str(tmp_path / "long.qc")
        write_qc(QuantumCircuit(1, [H(0)] * 30), path)
        assert main(["draw", path, "--columns", "4"]) == 0
        assert "…" in capsys.readouterr().out


class TestVerify:
    def test_equivalent_files(self, tmp_path, capsys):
        from repro.backend import toffoli_network

        a = str(tmp_path / "a.qc")
        b = str(tmp_path / "b.qc")
        write_qc(QuantumCircuit(3, [TOFFOLI(0, 1, 2)]), a)
        write_qc(QuantumCircuit(3, toffoli_network(0, 1, 2)), b)
        assert main(["verify", a, b]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_inequivalent_files(self, tmp_path, capsys):
        a = str(tmp_path / "a.qc")
        b = str(tmp_path / "b.qc")
        write_qc(QuantumCircuit(2, [CNOT(0, 1)]), a)
        write_qc(QuantumCircuit(2, [CNOT(1, 0)]), b)
        assert main(["verify", a, b]) == 1
        assert "NOT EQUIVALENT" in capsys.readouterr().out

    def test_explicit_method(self, tmp_path, capsys):
        a = str(tmp_path / "a.qc")
        write_qc(QuantumCircuit(2, [CNOT(0, 1)]), a)
        assert main(["verify", a, a, "--method", "dense"]) == 0
        assert "dense" in capsys.readouterr().out


class TestExpressionCompile:
    def test_expr_flag(self, capsys):
        code = main(["compile", "--expr", "a & b ^ ~c", "--device", "simulator"])
        assert code == 0
        captured = capsys.readouterr()
        assert "OPENQASM" in captured.out
        assert "EQUIVALENT" in captured.err

    def test_multi_output_exprs(self, capsys):
        code = main([
            "compile",
            "--expr", "a ^ b ^ c",
            "--expr", "a & b | c & (a ^ b)",
            "--device", "ibmqx5",
        ])
        assert code == 0

    def test_bad_expression_errors(self, capsys):
        assert main(["compile", "--expr", "a &&& b", "--device", "simulator"]) == 1
        assert "error:" in capsys.readouterr().err


class TestFuzzCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "2019", "--iterations", "4"]) == 0
        assert "fuzz done" in capsys.readouterr().err

    def test_findings_exit_one_and_fill_corpus(
        self, monkeypatch, tmp_path, capsys
    ):
        corpus = str(tmp_path / "corpus")
        monkeypatch.setenv("REPRO_FAULT_INJECT", "miscompile:fuzz")
        code = main([
            "fuzz", "--seed", "7", "--iterations", "3",
            "--corpus-dir", corpus,
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "miscompile" in captured.out
        assert os.listdir(corpus)
        # Replay without the injection: historical bugs read as fixed.
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        assert main(["fuzz", "--replay", corpus]) == 0
        assert "0 still failing" in capsys.readouterr().err

    def test_replay_empty_corpus(self, tmp_path, capsys):
        assert main(["fuzz", "--replay", str(tmp_path)]) == 0
        assert "no entries" in capsys.readouterr().err

    def test_device_restriction(self, capsys):
        code = main([
            "fuzz", "--seed", "3", "--iterations", "2",
            "--device", "linear5",
        ])
        assert code == 0


class TestInterruptHandling:
    def test_batch_compile_flushes_and_exits_130(
        self, monkeypatch, tmp_path, capsys
    ):
        """Ctrl-C mid-batch: completed results are still reported and
        the exit status is 130, not a raw traceback."""
        from repro.core import CNOT, H
        first = str(tmp_path / "bell.qc")
        write_qc(QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell"), first)
        second = str(tmp_path / "ccx.qc")
        write_qc(QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx"), second)
        monkeypatch.setenv("REPRO_FAULT_INJECT", "interrupt:ccx:1")
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT_STATE", str(tmp_path / "fuse")
        )
        code = main(["compile", first, second, "--device", "ibmqx4"])
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted" in captured.err
        assert "bell" in captured.err  # the completed job was flushed

    def test_main_backstop_catches_interrupt(self, monkeypatch, capsys):
        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.cmd_devices", interrupted)
        assert main(["devices"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_compile_timeout_flag_accepted(self, toffoli_file, capsys):
        code = main([
            "compile", toffoli_file, "--device", "ibmqx4",
            "--timeout", "30", "--retries", "2",
        ])
        assert code == 0


class TestObservability:
    def test_profile_prints_stage_table_and_trajectory(
        self, toffoli_file, capsys
    ):
        code = main([
            "compile", toffoli_file, "--device", "ibmqx4", "--profile",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "profile [" in err
        for stage in ("compile", "map.route", "optimize", "verify"):
            assert stage in err
        assert "optimizer trajectory:" in err
        assert "round 1: cost" in err
        assert "metrics:" in err
        assert "compile.calls" in err

    def test_trace_out_writes_chrome_trace(
        self, toffoli_file, tmp_path, capsys
    ):
        import json

        trace_path = str(tmp_path / "trace.json")
        code = main([
            "compile", toffoli_file, "--device", "ibmqx4",
            "--trace-out", trace_path,
        ])
        assert code == 0
        assert f"wrote {trace_path}" in capsys.readouterr().err
        events = json.loads(open(trace_path).read())
        assert events and all("ph" in event for event in events)
        names = {event["name"] for event in events if event["ph"] == "X"}
        assert "compile" in names and "optimize" in names

    def test_profile_on_cached_unprofiled_result_is_honest(
        self, toffoli_file, tmp_path, capsys
    ):
        """`trace` is deliberately not part of the cache key; a hit on a
        result stored by an unprofiled run has no spans, and --profile
        must say so instead of printing an empty table."""
        cache_dir = str(tmp_path / "cache")
        assert main([
            "compile", toffoli_file, "--device", "ibmqx4",
            "--cache-dir", cache_dir,
        ]) == 0
        capsys.readouterr()
        assert main([
            "compile", toffoli_file, "--device", "ibmqx4",
            "--cache-dir", cache_dir, "--profile",
        ]) == 0
        err = capsys.readouterr().err
        assert "no trace recorded" in err

    def test_fuzz_reports_timing_and_metrics(self, capsys):
        code = main([
            "fuzz", "--seed", "11", "--iterations", "3",
            "--max-qubits", "3", "--max-gates", "4",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "timing: generate" in err
        assert "metrics:" in err
        assert "verify.prescreen.checks" in err
