"""Arithmetic workload generators, verified classically and end to end."""

import pytest

from repro.core import SynthesisError
from repro.benchlib.arithmetic import (
    ARITHMETIC_SUITE,
    cuccaro_adder,
    incrementer,
    majority_voter,
)
from repro.verify import evaluate


def _run_adder(circuit, bits, a, b, cin, with_carry_out=True):
    """Pack operands into the wire layout, run, unpack (sum, carry)."""
    total = circuit.num_qubits
    word = 0

    def set_bit(wire, value):
        nonlocal word
        if value:
            word |= 1 << (total - 1 - wire)

    set_bit(0, cin)
    for i in range(bits):
        set_bit(1 + 2 * i, (b >> i) & 1)  # b_i
        set_bit(2 + 2 * i, (a >> i) & 1)  # a_i
    out = evaluate(circuit, word)

    def get_bit(wire):
        return (out >> (total - 1 - wire)) & 1

    sum_out = sum(get_bit(1 + 2 * i) << i for i in range(bits))
    a_out = sum(get_bit(2 + 2 * i) << i for i in range(bits))
    cin_out = get_bit(0)
    carry = get_bit(total - 1) if with_carry_out else None
    return sum_out, carry, a_out, cin_out


class TestCuccaroAdder:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_exhaustive_addition(self, bits):
        circuit = cuccaro_adder(bits)
        for a in range(1 << bits):
            for b in range(1 << bits):
                for cin in (0, 1):
                    total = a + b + cin
                    s, carry, a_out, cin_out = _run_adder(circuit, bits, a, b, cin)
                    assert s == total % (1 << bits), (a, b, cin)
                    assert carry == total >> bits, (a, b, cin)
                    assert a_out == a  # operand restored
                    assert cin_out == cin

    def test_without_carry_out(self):
        circuit = cuccaro_adder(2, with_carry_out=False)
        s, carry, a_out, _ = _run_adder(circuit, 2, 3, 2, 0, with_carry_out=False)
        assert s == 1  # 3+2 mod 4
        assert carry is None

    def test_gate_budget_linear(self):
        """Cuccaro uses 2 Toffolis + O(1) CNOTs per bit."""
        for bits in (2, 4, 8):
            circuit = cuccaro_adder(bits)
            assert circuit.count("TOFFOLI") == 2 * bits
            assert circuit.gate_volume <= 6 * bits + 1

    def test_invalid_size(self):
        with pytest.raises(SynthesisError):
            cuccaro_adder(0)


class TestIncrementer:
    @pytest.mark.parametrize("bits", [1, 2, 4, 6])
    def test_exhaustive_increment(self, bits):
        circuit = incrementer(bits)
        for x in range(1 << bits):
            assert evaluate(circuit, x) == (x + 1) % (1 << bits)

    def test_invalid_size(self):
        with pytest.raises(SynthesisError):
            incrementer(0)


class TestMajorityVoter:
    @pytest.mark.parametrize("voters", [3, 5])
    def test_exhaustive_vote(self, voters):
        circuit = majority_voter(voters)
        for votes in range(1 << voters):
            out = evaluate(circuit, votes << 1)
            expected = 1 if bin(votes).count("1") > voters // 2 else 0
            assert (out & 1) == expected
            assert out >> 1 == votes  # voters preserved

    def test_even_or_tiny_rejected(self):
        with pytest.raises(SynthesisError):
            majority_voter(4)
        with pytest.raises(SynthesisError):
            majority_voter(1)


class TestSuiteCompiles:
    @pytest.mark.parametrize("name,factory", ARITHMETIC_SUITE)
    def test_compiles_and_verifies_on_qx5(self, name, factory):
        from repro import compile_circuit

        circuit = factory()
        result = compile_circuit(circuit, "ibmqx5")
        assert result.verification.equivalent, name
