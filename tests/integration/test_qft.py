"""QFT generator tests: exact DFT matrices and full-pipeline compilation."""

import math

import numpy as np
import pytest

from repro.benchlib.qft import controlled_phase, inverse_qft, qft
from repro.core import QuantumCircuit, SynthesisError


def dft_matrix(n: int) -> np.ndarray:
    dim = 1 << n
    omega = np.exp(2j * math.pi / dim)
    return np.array(
        [[omega ** (j * k) for k in range(dim)] for j in range(dim)]
    ) / math.sqrt(dim)


class TestControlledPhase:
    def test_exact_cp_matrix(self):
        theta = 0.731
        built = QuantumCircuit(2, controlled_phase(theta, 0, 1)).unitary()
        wanted = np.diag([1, 1, 1, np.exp(1j * theta)])
        assert np.allclose(built, wanted)

    def test_symmetric_in_operands(self):
        theta = math.pi / 8
        a = QuantumCircuit(2, controlled_phase(theta, 0, 1)).unitary()
        b = QuantumCircuit(2, controlled_phase(theta, 1, 0)).unitary()
        assert np.allclose(a, b)


class TestQft:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        assert np.allclose(qft(n).unitary(), dft_matrix(n))

    def test_without_reversal_is_bit_reversed_dft(self):
        n = 3
        u = qft(n, with_reversal=False).unitary()
        f = dft_matrix(n)
        # rows appear in bit-reversed order
        def reverse_bits(x):
            return int(f"{x:0{n}b}"[::-1], 2)

        permuted = np.zeros_like(f)
        for row in range(1 << n):
            permuted[reverse_bits(row)] = f[row]
        assert np.allclose(u, permuted)

    def test_inverse_qft(self):
        n = 3
        product = qft(n).compose(inverse_qft(n)).unitary()
        assert np.allclose(product, np.eye(1 << n))

    def test_invalid_size(self):
        with pytest.raises(SynthesisError):
            qft(0)

    def test_gate_budget(self):
        """n H gates, n(n-1)/2 controlled phases (5 gates each), plus
        floor(n/2) swaps."""
        n = 5
        circuit = qft(n)
        assert circuit.count("H") == n
        assert circuit.count("CNOT") == 2 * (n * (n - 1) // 2)
        assert circuit.count("SWAP") == n // 2


class TestQftCompilation:
    def test_compiles_to_ibmqx2_verified(self):
        """Rotations flow through mapping, optimization and QMDD
        verification (arbitrary-angle edge weights)."""
        from repro import compile_circuit

        result = compile_circuit(qft(3), "ibmqx2")
        assert result.verification.equivalent
        assert result.verification.method == "qmdd"
        assert result.optimized.count("RZ") > 0

    def test_compiles_to_sparse_device(self):
        from repro import compile_circuit

        result = compile_circuit(qft(4), "ibmqx3")
        assert result.verification.equivalent
        assert result.optimized_metrics.cost <= result.unoptimized_metrics.cost

    def test_optimizer_merges_adjacent_qft_iqft(self):
        """QFT followed by its inverse collapses substantially."""
        from repro.optimize import optimize_circuit

        n = 3
        doubled = qft(n, with_reversal=False).compose(
            inverse_qft(n, with_reversal=False)
        )
        reduced = optimize_circuit(doubled)
        assert len(reduced) < len(doubled) / 2
        assert np.allclose(reduced.widened(n).unitary(), np.eye(1 << n))
