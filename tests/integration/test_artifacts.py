"""Benchmark artifact export/reload round trips."""

import os
import sys

import pytest

SCRIPTS = os.path.join(os.path.dirname(__file__), "..", "..", "scripts")
sys.path.insert(0, SCRIPTS)

from export_benchmarks import export_all  # noqa: E402

from repro.benchlib import revlib, single_target, table7
from repro.io import read_circuit
from repro.verify import permutations_equal


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    target = str(tmp_path_factory.mktemp("bench_data"))
    count = export_all(target)
    assert count > 35
    return target


class TestExport:
    def test_file_inventory(self, artifact_dir):
        names = set(os.listdir(artifact_dir))
        assert "stg_033f.qc" in names
        assert "fred6.real" in names and "fred6.qc" in names
        assert "T10_b.qc" in names
        assert "cuccaro3.qc" in names
        assert "qft4.qasm" in names

    def test_stg_roundtrip(self, artifact_dir):
        for name, qubits in single_target.PAPER_STG_BENCHMARKS[:6]:
            circuit = read_circuit(os.path.join(artifact_dir, f"stg_{name}.qc"))
            original = single_target.build_benchmark(name, qubits)
            assert circuit.gates == original.gates, name

    def test_revlib_real_roundtrip_functional(self, artifact_dir):
        for name, _, _ in revlib.PAPER_REVLIB_BENCHMARKS:
            safe = name.replace("-", "_")
            circuit = read_circuit(os.path.join(artifact_dir, f"{safe}.real"))
            original = revlib.build_benchmark(name)
            assert permutations_equal(circuit, original), name

    def test_table7_roundtrip(self, artifact_dir):
        for name in table7.PAPER_96Q_BENCHMARKS:
            circuit = read_circuit(os.path.join(artifact_dir, f"{name}.qc"))
            assert circuit.gates == table7.build_benchmark(name).gates

    def test_qft_qasm_reload_compiles(self, artifact_dir):
        from repro import compile_circuit

        circuit = read_circuit(os.path.join(artifact_dir, "qft3.qasm"))
        result = compile_circuit(circuit, "ibmqx2")
        assert result.verification.equivalent

    def test_cli_compile_from_artifact(self, artifact_dir, capsys):
        from repro.cli import main

        path = os.path.join(artifact_dir, "stg_3.qc")
        assert main(["compile", path, "--device", "ibmqx4"]) == 0
        assert "OPENQASM" in capsys.readouterr().out
