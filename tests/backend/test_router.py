"""Dynamic-layout (sabre-style) router tests.

Covers the routing loop itself (unidirectional, fragmented and library
coupling maps), the permutation bookkeeping and both restore tails, the
compiler integration (``route="sabre"`` end to end, both QMDD build
strategies, corpus replay), and the adversarial leg: an injected
mapper miscompile must still be caught by the permutation-aware
verifier — reporting a permutation must never mask a real routing bug.
"""

import numpy as np
import pytest

from repro import QuantumCircuit, VerificationError, compile_circuit
from repro.backend import (
    map_circuit_outcome,
    permutation_restore_gates,
    route_sabre,
    routed_restore_gates,
)
from repro.backend.mapper import check_conformance
from repro.core import CNOT, H, SynthesisError, T, TOFFOLI
from repro.devices import (
    CouplingMap,
    PAPER_DEVICES,
    PROPOSED96,
    SIMULATOR,
    linear_device,
)
from repro.verify import verify_equivalent


def _with_restore_tail(routing, coupling_map) -> QuantumCircuit:
    """The routed circuit with its wire-space uncompute tail appended —
    unitary-comparable against the unrouted source."""
    tail = permutation_restore_gates(
        routing.output_permutation, coupling_map.num_qubits
    )
    return QuantumCircuit(
        coupling_map.num_qubits, list(routing.circuit.gates) + tail
    )


class TestRouteSabre:
    def test_adjacent_cnot_needs_no_swap(self):
        device = linear_device(3)
        routing = route_sabre(
            QuantumCircuit(3, [CNOT(0, 1)]), device.coupling_map
        )
        assert routing.swap_count == 0
        assert routing.output_permutation == {}

    def test_distant_cnot_spends_distance_minus_one_swaps(self):
        device = linear_device(5)
        routing = route_sabre(
            QuantumCircuit(5, [CNOT(0, 4)]), device.coupling_map
        )
        assert routing.swap_count == 3  # distance 4 -> 3 SWAPs, no way back
        assert routing.output_permutation  # layout moved

    def test_unidirectional_line_is_legal_and_correct(self):
        """linear_device couplings point one way; every emitted CNOT must
        sit on a directed edge and the unitary must match."""
        device = linear_device(4)
        circuit = QuantumCircuit(4, [CNOT(3, 0), H(1), CNOT(0, 2)])
        routing = route_sabre(circuit, device.coupling_map)
        assert check_conformance(routing.circuit, device) == []
        restored = _with_restore_tail(routing, device.coupling_map)
        assert np.allclose(restored.unitary(), circuit.unitary())

    def test_fragmented_map_routes_within_component(self):
        split = CouplingMap(4, {0: [1], 2: [3]}, name="split4")
        routing = route_sabre(
            QuantumCircuit(4, [CNOT(0, 1), CNOT(2, 3)]), split
        )
        assert routing.swap_count == 0

    def test_fragmented_map_raises_across_components(self):
        split = CouplingMap(4, {0: [1], 2: [3]}, name="split4")
        with pytest.raises(SynthesisError, match="disconnected"):
            route_sabre(QuantumCircuit(4, [CNOT(0, 2)]), split)

    def test_rejects_multi_qubit_non_cnot(self):
        device = linear_device(3)
        with pytest.raises(SynthesisError, match="multi-qubit"):
            route_sabre(
                QuantumCircuit(3, [TOFFOLI(0, 1, 2)]), device.coupling_map
            )

    def test_single_qubit_gates_follow_the_moving_layout(self):
        """A 1q gate after a layout move must land on the wire that now
        holds its logical qubit's state."""
        device = linear_device(5)
        circuit = QuantumCircuit(5, [CNOT(0, 4), T(0)])
        routing = route_sabre(circuit, device.coupling_map)
        restored = _with_restore_tail(routing, device.coupling_map)
        assert np.allclose(restored.unitary(), circuit.unitary())

    def test_narrow_circuit_routes_onto_device_width(self):
        """Routing can park states on wires above the input width; the
        routed circuit is always device-wide."""
        device = linear_device(6)
        routing = route_sabre(
            QuantumCircuit(3, [CNOT(0, 2)]), device.coupling_map
        )
        assert routing.circuit.num_qubits == 6

    def test_permutation_matches_emitted_swaps(self):
        """Replaying the emitted circuit's SWAP trail must reproduce the
        reported permutation exactly."""
        device = linear_device(5)
        circuit = QuantumCircuit(
            5, [CNOT(0, 4), CNOT(4, 1), CNOT(0, 1), H(2)]
        )
        routing = route_sabre(circuit, device.coupling_map)
        restored = _with_restore_tail(routing, device.coupling_map)
        assert np.allclose(restored.unitary(), circuit.unitary())


class TestRestoreTails:
    def test_wire_space_tail_inverts_permutation(self):
        # Applying the permutation and then its restore tail must be the
        # identity: state entering wire v leaves on wire permutation[v],
        # and the tail sends it home.
        permutation = {0: 2, 2: 1, 1: 0}
        tail = permutation_restore_gates(permutation, 3)
        composed = QuantumCircuit(
            3, list(_permutation_gates(permutation, 3)) + tail
        )
        assert np.allclose(composed.unitary(), np.eye(8))

    def test_identity_permutation_yields_no_gates(self):
        assert permutation_restore_gates({}, 4) == []
        assert permutation_restore_gates({1: 1, 3: 3}, 4) == []

    def test_non_bijection_raises(self):
        with pytest.raises(SynthesisError, match="bijection"):
            permutation_restore_gates({0: 1, 2: 1}, 3)

    def test_routed_tail_is_device_legal(self):
        device = linear_device(5)
        circuit = QuantumCircuit(5, [CNOT(0, 4)])
        routing = route_sabre(circuit, device.coupling_map)
        tail = routed_restore_gates(
            routing.output_permutation, device.coupling_map
        )
        whole = QuantumCircuit(5, list(routing.circuit.gates) + tail)
        assert check_conformance(whole, device) == []
        assert np.allclose(whole.unitary(), circuit.unitary())

    def test_routed_tail_raises_on_disconnected_restore(self):
        split = CouplingMap(4, {0: [1], 2: [3]}, name="split4")
        with pytest.raises(SynthesisError, match="disconnected"):
            routed_restore_gates({0: 2, 2: 0}, split)


def _permutation_gates(permutation, num_qubits):
    """SWAPs realizing ``permutation`` (state on wire v moves to wire
    permutation[v]) — the forward direction, for test composition."""
    inverse = {p: v for v, p in permutation.items()}
    return permutation_restore_gates(inverse, num_qubits)


class TestMapperIntegration:
    def test_sabre_outcome_carries_permutation(self):
        circuit = QuantumCircuit(5, [CNOT(0, 4)])
        outcome = map_circuit_outcome(
            circuit, linear_device(5), route="sabre"
        )
        assert outcome.route == "sabre"
        assert outcome.output_permutation
        assert outcome.swap_count == 3

    def test_ctr_outcome_has_empty_permutation(self):
        circuit = QuantumCircuit(5, [CNOT(0, 4)])
        outcome = map_circuit_outcome(circuit, linear_device(5), route="ctr")
        assert outcome.route == "ctr"
        assert outcome.output_permutation == {}

    def test_restore_layout_clears_permutation_and_stays_legal(self):
        device = linear_device(5)
        circuit = QuantumCircuit(5, [CNOT(0, 4)])
        outcome = map_circuit_outcome(
            circuit, device, route="sabre", restore_layout=True
        )
        assert outcome.output_permutation == {}
        assert check_conformance(outcome.unoptimized, device) == []
        assert np.allclose(
            outcome.unoptimized.unitary(), circuit.unitary()
        )

    def test_unknown_route_raises(self):
        with pytest.raises(SynthesisError, match="route strategy"):
            map_circuit_outcome(
                QuantumCircuit(2, [CNOT(0, 1)]),
                linear_device(2),
                route="teleport",
            )


class TestEveryLibraryDevice:
    """Both routing strategies on every registered device, with verdict
    agreement through the permutation-aware verifier."""

    CIRCUIT = QuantumCircuit(
        4, [TOFFOLI(0, 1, 2), CNOT(3, 0), H(1), CNOT(2, 3)], name="spread"
    )

    @pytest.mark.parametrize(
        "device", list(PAPER_DEVICES) + [SIMULATOR, PROPOSED96],
        ids=lambda d: d.name,
    )
    def test_both_routes_compile_verify_and_agree(self, device):
        results = {}
        for route in ("ctr", "sabre"):
            result = compile_circuit(self.CIRCUIT, device, route=route)
            assert result.verification.equivalent, (device.name, route)
            assert check_conformance(result.optimized, device) == []
            results[route] = result
        assert results["ctr"].output_permutation == {}
        # Independent re-verification, permutation-aware on both:
        for route, result in results.items():
            report = verify_equivalent(
                self.CIRCUIT.remapped(
                    result.placement, num_qubits=device.num_qubits
                ),
                result.optimized,
                output_permutation=result.output_permutation,
            )
            assert report.equivalent, (device.name, route)

    @pytest.mark.parametrize("strategy", ["miter", "two_sided"])
    def test_qmdd_strategies_agree_on_permuted_output(self, strategy):
        device = PAPER_DEVICES[1]  # ibmqx3: 16q, forces multi-hop routes
        result = compile_circuit(
            self.CIRCUIT, device, route="sabre", verify=False
        )
        report = verify_equivalent(
            self.CIRCUIT.remapped(
                result.placement, num_qubits=device.num_qubits
            ),
            result.optimized,
            output_permutation=result.output_permutation,
            strategy=strategy,
            prescreen=False,
        )
        assert report.method == "qmdd"
        assert report.equivalent


class TestVerifierStillCatchesBugs:
    def test_injected_miscompile_is_caught_with_sabre(self, monkeypatch):
        """The fault hook drops an entangling gate after routing; the
        permutation-aware closing verification must refuse to sign it."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "miscompile:*")
        circuit = QuantumCircuit(5, [CNOT(0, 4), CNOT(4, 1)], name="buggy")
        with pytest.raises(VerificationError):
            compile_circuit(circuit, linear_device(5), route="sabre")

    def test_wrong_permutation_is_caught(self):
        """Claiming the wrong output permutation must flip the verdict —
        the permutation is part of the circuit's semantics."""
        device = linear_device(5)
        circuit = QuantumCircuit(5, [CNOT(0, 4)])
        outcome = map_circuit_outcome(circuit, device, route="sabre")
        wrong = dict(outcome.output_permutation)
        keys = sorted(wrong)
        wrong[keys[0]], wrong[keys[1]] = wrong[keys[1]], wrong[keys[0]]
        report = verify_equivalent(
            circuit, outcome.unoptimized, output_permutation=wrong
        )
        assert not report.equivalent


class TestCorpusReplayWithSabre:
    def test_sabre_entry_round_trips_and_replays(self, tmp_path):
        """A corpus entry pinned to route=sabre must save, load and
        replay as equivalent (the oracle is permutation-aware)."""
        from repro.fuzz.corpus import (
            CorpusEntry,
            load_corpus,
            replay_corpus,
            save_entry,
        )

        entry = CorpusEntry(
            kind="regression",
            device="linear5",
            options={
                "cost": "default",
                "mcx_mode": "barenco",
                "placement": "identity",
                "route": "sabre",
            },
            circuit=QuantumCircuit(5, [CNOT(0, 4), H(2), CNOT(4, 1)]),
            detail="synthetic sabre cell",
        )
        save_entry(str(tmp_path), entry)
        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == 1
        assert loaded[0].options["route"] == "sabre"
        outcomes = replay_corpus(str(tmp_path))
        assert all(o.passed for o in outcomes), [
            o.describe() for o in outcomes
        ]

    def test_legacy_entry_without_route_resolves_to_ctr(self):
        from repro.fuzz.harness import resolve_options

        options = resolve_options(
            {"cost": "default", "mcx_mode": "barenco",
             "placement": "identity"}
        )
        assert options["route"] == "ctr"
