"""Barenco generalized-Toffoli decomposition tests."""

import numpy as np
import pytest

from repro.core import (
    CNOT,
    Gate,
    MCX,
    NotSynthesizableError,
    QuantumCircuit,
    TOFFOLI,
    X,
)
from repro.backend import lower_mcx_gates, mcx_to_toffoli, toffoli_count
from repro.verify.permutation import evaluate


def _check_against_dense(controls, target, ancillas, num_qubits):
    gates = mcx_to_toffoli(controls, target, ancillas)
    built = QuantumCircuit(num_qubits, gates).unitary()
    wanted = QuantumCircuit(num_qubits, [MCX(*controls, target)]).unitary()
    assert np.allclose(built, wanted)
    return gates


class TestTrivialCases:
    def test_zero_controls_is_not(self):
        assert mcx_to_toffoli([], 0, []) == [X(0)]

    def test_one_control_is_cnot(self):
        assert mcx_to_toffoli([3], 1, []) == [CNOT(3, 1)]

    def test_two_controls_is_toffoli(self):
        assert mcx_to_toffoli([0, 2], 4, []) == [TOFFOLI(0, 2, 4)]

    def test_ancillas_overlapping_gate_are_filtered(self):
        gates = mcx_to_toffoli([0, 1], 2, [0, 1, 2, 3])
        assert gates == [TOFFOLI(0, 1, 2)]


class TestVChain:
    """Lemma 7.2: 4(k-2) Toffolis with k-2 dirty ancillas."""

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_counts(self, k):
        controls = list(range(k))
        ancillas = list(range(k + 1, k + 1 + (k - 2)))
        gates = mcx_to_toffoli(controls, k, ancillas)
        assert len(gates) == 4 * (k - 2)
        assert all(g.name == "TOFFOLI" for g in gates)

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_unitary(self, k):
        controls = list(range(k))
        ancillas = list(range(k + 1, k + 1 + (k - 2)))
        _check_against_dense(controls, k, ancillas, k + 1 + (k - 2))

    def test_dirty_ancillas_restored_in_superposition(self):
        """The V-chain must work for *any* ancilla state — the full-space
        unitary check above implies it, but verify explicitly on basis
        states with ancillas set to 1."""
        controls, target, ancilla = [0, 1, 2], 3, [4]
        gates = mcx_to_toffoli(controls, target, ancilla)
        circuit = QuantumCircuit(5, gates)
        for bits in range(32):
            out = evaluate(circuit, bits)
            controls_on = all(bits & (1 << (4 - c)) for c in controls)
            expected = bits ^ (1 << (4 - target)) if controls_on else bits
            assert out == expected

    def test_large_k_classical(self):
        """k=9 (the paper's T10 gates) checked classically on sampled inputs."""
        k = 9
        controls = list(range(k))
        target = k
        ancillas = list(range(k + 1, k + 1 + (k - 2)))
        n = k + 1 + (k - 2)
        gates = mcx_to_toffoli(controls, target, ancillas)
        assert len(gates) == 4 * (k - 2)
        circuit = QuantumCircuit(n, gates)
        import random

        rng = random.Random(7)
        for _ in range(200):
            bits = rng.randrange(1 << n)
            controls_on = all(bits & (1 << (n - 1 - c)) for c in controls)
            expected = bits ^ (1 << (n - 1 - target)) if controls_on else bits
            assert evaluate(circuit, bits) == expected


class TestSplit:
    """Lemma 7.3: single borrowed qubit, recursive halves."""

    @pytest.mark.parametrize("k", [4, 5])
    def test_unitary_with_one_ancilla(self, k):
        controls = list(range(k))
        _check_against_dense(controls, k, [k + 1], k + 2)

    def test_split_gate_count_k4(self):
        # halves: C2X (1 toffoli) and C3X (v-chain 4), each twice -> 10
        gates = mcx_to_toffoli([0, 1, 2, 3], 4, [5])
        assert len(gates) == 10

    def test_toffoli_count_helper_matches(self):
        for k, ancillas in [(3, 1), (4, 2), (5, 3), (4, 1), (5, 1), (6, 1)]:
            controls = list(range(k))
            pool = list(range(k + 1, k + 1 + ancillas))
            gates = mcx_to_toffoli(controls, k, pool)
            toffolis = sum(1 for g in gates if g.name == "TOFFOLI")
            assert toffolis == toffoli_count(k, ancillas)


class TestNotSynthesizable:
    def test_no_ancilla_raises(self):
        with pytest.raises(NotSynthesizableError):
            mcx_to_toffoli([0, 1, 2], 3, [])

    def test_paper_na_case_t5_on_5_qubits(self):
        """4gt12-v0_88's T5 on a 5-qubit machine: N/A in Table 5."""
        with pytest.raises(NotSynthesizableError):
            mcx_to_toffoli([0, 1, 2, 3], 4, [])

    def test_toffoli_count_no_ancilla_raises(self):
        with pytest.raises(NotSynthesizableError):
            toffoli_count(5, 0)


class TestLowerMcxGates:
    def test_passthrough_without_mcx(self):
        gates = [X(0), CNOT(0, 1)]
        assert lower_mcx_gates(gates, 4) == gates

    def test_lowering_uses_free_wires(self):
        gates = lower_mcx_gates([MCX(0, 1, 2, 3, 4)], 8)
        assert all(g.name == "TOFFOLI" for g in gates)
        used = {q for g in gates for q in g.qubits}
        assert used >= {0, 1, 2, 3, 4}
        assert used <= set(range(8))

    def test_lowered_circuit_equivalent(self):
        gates = lower_mcx_gates([MCX(0, 1, 2, 3)], 6)
        built = QuantumCircuit(6, gates).unitary()
        wanted = QuantumCircuit(6, [MCX(0, 1, 2, 3)]).unitary()
        assert np.allclose(built, wanted)


class TestPaperTCounts:
    """The paper's Table 8 T-counts pin down the Lemma 7.2 usage: a Tn
    gate with k = n-1 controls costs 4(k-2) Toffolis = 28(k-2) T."""

    @pytest.mark.parametrize(
        "n,expected_total_t",
        [(6, 336), (7, 448), (8, 560), (9, 672), (10, 784)],
    )
    def test_table8_t_counts(self, n, expected_total_t):
        k = n - 1
        toffolis_per_gate = 4 * (k - 2)
        # four gates per benchmark, 7 T per Toffoli
        assert 4 * toffolis_per_gate * 7 == expected_total_t
