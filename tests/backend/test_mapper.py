"""Full mapping pipeline tests."""

import numpy as np
import pytest

from repro.core import (
    CNOT,
    CZ,
    H,
    MCX,
    NotSynthesizableError,
    QuantumCircuit,
    SWAP,
    SynthesisError,
    T,
    TOFFOLI,
    X,
)
from repro.backend import (
    check_conformance,
    expand_to_library,
    identity_placement,
    legalize_cnots,
    lower_mcx_for_device,
    map_circuit,
)
from repro.devices import IBMQX2, IBMQX3, IBMQX4, SIMULATOR, linear_device


class TestIdentityPlacement:
    def test_identity(self):
        c = QuantumCircuit(3)
        assert identity_placement(c, IBMQX2) == {0: 0, 1: 1, 2: 2}

    def test_too_wide_raises_not_synthesizable(self):
        c = QuantumCircuit(6)
        with pytest.raises(NotSynthesizableError):
            identity_placement(c, IBMQX2)


class TestStages:
    def test_lower_mcx_picks_near_ancillas(self):
        c = QuantumCircuit(5, [MCX(0, 1, 2, 3, 4)])
        lowered = lower_mcx_for_device(c, IBMQX3)
        assert all(g.name in ("TOFFOLI",) for g in lowered)
        assert lowered.num_qubits == 16

    def test_expand_to_library(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2), CZ(0, 1), SWAP(1, 2)])
        expanded = expand_to_library(c)
        assert expanded.gate_volume == 15 + 3 + 3
        assert all(g.is_native_transmon for g in expanded)

    def test_legalize_rejects_multiqubit_leftovers(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)]).widened(5)
        with pytest.raises(SynthesisError):
            legalize_cnots(c, IBMQX2)


class TestMapCircuit:
    @pytest.mark.parametrize("device", [IBMQX2, IBMQX4])
    def test_toffoli_on_5q_devices(self, device):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")
        mapped = map_circuit(c, device)
        assert check_conformance(mapped, device) == []
        ref = c.widened(5).unitary()
        assert np.allclose(mapped.unitary(), ref)

    def test_simulator_mapping_is_pure_decomposition(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        mapped = map_circuit(c, SIMULATOR)
        # full connectivity: exactly the 15-gate network, no routing
        assert mapped.gate_volume == 15

    def test_mapping_preserves_function_with_routing(self):
        chain = linear_device(5)
        c = QuantumCircuit(5, [CNOT(0, 4), CNOT(4, 0), TOFFOLI(0, 2, 4)])
        mapped = map_circuit(c, chain)
        assert check_conformance(mapped, chain) == []
        assert np.allclose(mapped.unitary(), c.unitary())

    def test_custom_placement(self):
        chain = linear_device(4)
        c = QuantumCircuit(2, [CNOT(0, 1)], name="pair")
        mapped = map_circuit(c, chain, placement={0: 2, 1: 3})
        assert check_conformance(mapped, chain) == []
        assert mapped.gates == (CNOT(2, 3),)

    def test_placement_collision_rejected(self):
        chain = linear_device(4)
        c = QuantumCircuit(2, [CNOT(0, 1)])
        with pytest.raises(SynthesisError):
            map_circuit(c, chain, placement={0: 1, 1: 1})

    def test_placement_out_of_range_rejected(self):
        chain = linear_device(4)
        c = QuantumCircuit(2, [CNOT(0, 1)])
        with pytest.raises(NotSynthesizableError):
            map_circuit(c, chain, placement={0: 0, 1: 9})

    def test_mcx_without_room_raises(self):
        """T5 on a 5-qubit device: the paper's N/A entries."""
        c = QuantumCircuit(5, [MCX(0, 1, 2, 3, 4)])
        with pytest.raises(NotSynthesizableError):
            map_circuit(c, IBMQX2)

    def test_mapped_output_native(self):
        c = QuantumCircuit(4, [TOFFOLI(0, 1, 3), H(2), T(0), CNOT(3, 0)])
        mapped = map_circuit(c, IBMQX4)
        assert mapped.is_native_transmon

    def test_single_qubit_gates_untouched_by_routing(self):
        c = QuantumCircuit(2, [H(0), T(1), X(0)])
        mapped = map_circuit(c, IBMQX2)
        assert mapped.gates == (H(0), T(1), X(0))


class TestDirtyAncillaConnectivity:
    """An MCX may only borrow ancillas the coupling graph can actually
    route into its V-chain; disconnected free qubits must surface as a
    located REPRO302, not a downstream routing crash."""

    @staticmethod
    def _fragmented_device():
        from repro.devices import CouplingMap, Device

        # {0,1,2,3} form a chain; {4,5} are an island.  An MCX on 0..3
        # sees two free qubits, both unreachable from its target.
        return Device(
            name="frag6",
            coupling_map=CouplingMap(
                6, {0: [1], 1: [2], 2: [3], 4: [5]}, name="frag6"
            ),
        )

    def test_disconnected_ancilla_raises_located_repro302(self):
        device = self._fragmented_device()
        c = QuantumCircuit(4, [H(0), MCX(0, 1, 2, 3)])
        with pytest.raises(NotSynthesizableError) as excinfo:
            lower_mcx_for_device(c.widened(6), device)
        error = excinfo.value
        assert error.code == "REPRO302"
        assert error.gate_index == 1
        diagnostic = error.diagnostic
        assert diagnostic.code == "REPRO302"
        assert diagnostic.gate_index == 1
        assert "connected" in str(error)

    def test_connected_ancilla_is_still_borrowed(self):
        """Same device, but the gate sits on the island's far side so the
        chain's spare qubit is reachable: lowering must succeed."""
        from repro.devices import CouplingMap, Device

        device = Device(
            name="chain6",
            coupling_map=CouplingMap(
                6, {0: [1], 1: [2], 2: [3], 3: [4], 4: [5]}, name="chain6"
            ),
        )
        c = QuantumCircuit(4, [MCX(0, 1, 2, 3)]).widened(6)
        lowered = lower_mcx_for_device(c, device)
        assert all(g.name == "TOFFOLI" for g in lowered)

    def test_default_code_is_repro300(self):
        error = NotSynthesizableError("too wide")
        assert error.code == "REPRO300"
        assert error.diagnostic.code == "REPRO300"

    def test_codes_are_in_the_catalog(self):
        from repro.analysis.diagnostics import CODE_CATALOG

        assert "REPRO300" in CODE_CATALOG
        assert "REPRO302" in CODE_CATALOG


class TestConformanceChecker:
    def test_flags_illegal_direction(self):
        c = QuantumCircuit(5, [CNOT(1, 0)])  # qx2 allows only 0->1
        violations = check_conformance(c, IBMQX2)
        assert len(violations) == 1
        assert "coupling map" in violations[0]

    def test_flags_non_native_gate(self):
        c = QuantumCircuit(5, [TOFFOLI(0, 1, 2)])
        violations = check_conformance(c, IBMQX2)
        assert "library" in violations[0]

    def test_clean_circuit_passes(self):
        c = QuantumCircuit(5, [CNOT(0, 1), H(3)])
        assert check_conformance(c, IBMQX2) == []
