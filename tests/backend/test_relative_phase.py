"""Relative-phase (Margolus) multi-controlled gate tests."""

import numpy as np
import pytest

from repro.core import (
    MCX,
    NotSynthesizableError,
    QuantumCircuit,
    TOFFOLI,
)
from repro.backend import (
    expand_to_library,
    map_circuit,
    margolus,
    margolus_dagger,
    mcx_relative_phase,
    mcx_to_toffoli,
)
from repro.devices import IBMQX3, PROPOSED96
from repro.verify.permutation import evaluate


class TestMargolus:
    def test_gate_budget(self):
        c = QuantumCircuit(3, margolus(0, 1, 2))
        assert c.t_count == 4
        assert c.cnot_count == 3
        assert c.count("H") == 2

    def test_is_toffoli_times_diagonal(self):
        built = QuantumCircuit(3, margolus(0, 1, 2)).unitary()
        ccx = QuantumCircuit(3, [TOFFOLI(0, 1, 2)]).unitary()
        leftover = built @ ccx.conj().T
        off_diagonal = leftover - np.diag(np.diag(leftover))
        assert np.allclose(off_diagonal, 0)
        assert np.allclose(np.abs(np.diag(leftover)), 1)

    def test_classical_action_is_exact_toffoli(self):
        built = QuantumCircuit(3, margolus(0, 1, 2)).unitary()
        for col in range(8):
            row = np.argmax(np.abs(built[:, col]))
            expected = col ^ 1 if (col >> 1) == 0b11 else col
            assert row == expected

    def test_dagger_inverts(self):
        gates = margolus(0, 1, 2) + margolus_dagger(0, 1, 2)
        assert np.allclose(QuantumCircuit(3, gates).unitary(), np.eye(8))


class TestRelativePhaseMcx:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_exact_mcx(self, k):
        """The Margolus ladder pairs cancel all phases: exact MCX."""
        n = k + 1 + (k - 2)
        controls = list(range(k))
        ancillas = list(range(k + 1, n))
        gates = mcx_relative_phase(controls, k, ancillas)
        built = QuantumCircuit(n, gates).unitary()
        wanted = QuantumCircuit(n, [MCX(*controls, k)]).unitary()
        assert np.allclose(built, wanted)

    @pytest.mark.parametrize("k", [4, 5, 7, 9])
    def test_t_count_beats_barenco(self, k):
        n = k + 1 + (k - 2)
        controls = list(range(k))
        ancillas = list(range(k + 1, n))
        relative = expand_to_library(
            QuantumCircuit(n, mcx_relative_phase(controls, k, ancillas))
        )
        barenco = expand_to_library(
            QuantumCircuit(n, mcx_to_toffoli(controls, k, ancillas))
        )
        assert relative.t_count < barenco.t_count
        # two true Toffolis (14 T) plus 2(2k-5) Margolus gates (4 T each)
        assert relative.t_count == 14 + 8 * (2 * k - 5)
        assert barenco.t_count == 28 * (k - 2)

    def test_trivial_cases_delegate(self):
        assert mcx_relative_phase([], 0, []) [0].name == "X"
        assert mcx_relative_phase([1], 0, [])[0].name == "CNOT"
        assert mcx_relative_phase([1, 2], 0, [])[0].name == "TOFFOLI"

    def test_ancilla_starved_falls_back_to_split(self):
        gates = mcx_relative_phase([0, 1, 2, 3], 4, [5])
        built = QuantumCircuit(6, gates).unitary()
        wanted = QuantumCircuit(6, [MCX(0, 1, 2, 3, 4)]).unitary()
        assert np.allclose(built, wanted)

    def test_no_ancilla_raises(self):
        with pytest.raises(NotSynthesizableError):
            mcx_relative_phase([0, 1, 2], 3, [])

    def test_classical_action_wide(self):
        """k=9 on a wide register, checked classically on random inputs
        after expansion (mirrors the Table 8 gate class)."""
        import random

        k, n = 9, 20
        gates = mcx_relative_phase(list(range(k)), k, list(range(k + 1, n)))
        circuit = QuantumCircuit(n, gates)
        # only the TOFFOLI/CNOT/X part is classical; expand margolus
        # pieces are not classical, so use the unitary-free sparse sim.
        from repro.verify import run_sparse

        rng = random.Random(3)
        for _ in range(10):
            bits = rng.randrange(1 << n)
            state = run_sparse(circuit, bits)
            controls_on = all(bits & (1 << (n - 1 - c)) for c in range(k))
            expected = bits ^ (1 << (n - 1 - k)) if controls_on else bits
            assert list(state.amplitudes) == [expected]


class TestMapperIntegration:
    def test_relative_phase_mode_verifies(self):
        circuit = QuantumCircuit(6, [MCX(0, 1, 2, 3, 4, 5)])
        from repro import compile_circuit

        result = compile_circuit(circuit, IBMQX3, mcx_mode="relative_phase")
        assert result.verification.equivalent

    def test_relative_phase_reduces_t_count_on_table8_workload(self):
        from repro.benchlib import table7
        from repro import compile_circuit

        circuit = table7.build_benchmark("T8_b")
        barenco = compile_circuit(circuit, PROPOSED96, verify=False)
        relative = compile_circuit(
            circuit, PROPOSED96, verify=False, mcx_mode="relative_phase"
        )
        assert relative.unoptimized_metrics.t_count < barenco.unoptimized_metrics.t_count
        assert relative.optimized_metrics.cost < barenco.optimized_metrics.cost

    def test_unknown_mode_rejected(self):
        from repro.core import SynthesisError

        circuit = QuantumCircuit(6, [MCX(0, 1, 2, 3, 4, 5)])
        with pytest.raises(SynthesisError):
            map_circuit(circuit, IBMQX3, mcx_mode="telepathy")
