"""Toffoli / CZ / SWAP library expansion (the N&C networks)."""

import numpy as np
import pytest

from repro.core import CNOT, CZ, Gate, QuantumCircuit, SWAP, TOFFOLI, X
from repro.backend import cz_network, expand_non_native, swap_network, toffoli_network


class TestToffoliNetwork:
    def test_gate_budget_matches_paper(self):
        """7 T/T†, 6 CNOT, 2 H — 15 gates, the standard Clifford+T cost."""
        c = QuantumCircuit(3, toffoli_network(0, 1, 2))
        assert c.gate_volume == 15
        assert c.t_count == 7
        assert c.cnot_count == 6
        assert c.count("H") == 2

    def test_functionally_toffoli(self):
        built = QuantumCircuit(3, toffoli_network(0, 1, 2)).unitary()
        wanted = QuantumCircuit(3, [TOFFOLI(0, 1, 2)]).unitary()
        assert np.allclose(built, wanted)

    def test_control_order_irrelevant(self):
        a = QuantumCircuit(3, toffoli_network(1, 0, 2)).unitary()
        b = QuantumCircuit(3, [TOFFOLI(0, 1, 2)]).unitary()
        assert np.allclose(a, b)

    def test_arbitrary_operand_positions(self):
        built = QuantumCircuit(4, toffoli_network(3, 1, 0)).unitary()
        wanted = QuantumCircuit(4, [TOFFOLI(3, 1, 0)]).unitary()
        assert np.allclose(built, wanted)

    def test_no_ancilla_used(self):
        used = {q for g in toffoli_network(0, 1, 2) for q in g.qubits}
        assert used == {0, 1, 2}


class TestCzNetwork:
    def test_structure(self):
        gates = cz_network(0, 1)
        assert [g.name for g in gates] == ["H", "CNOT", "H"]

    def test_functionally_cz(self):
        built = QuantumCircuit(2, cz_network(0, 1)).unitary()
        wanted = QuantumCircuit(2, [CZ(0, 1)]).unitary()
        assert np.allclose(built, wanted)


class TestSwapNetwork:
    def test_three_cnots(self):
        gates = swap_network(0, 1)
        assert [g.name for g in gates] == ["CNOT"] * 3
        assert gates[0].qubits == (0, 1)
        assert gates[1].qubits == (1, 0)

    def test_functionally_swap(self):
        built = QuantumCircuit(2, swap_network(0, 1)).unitary()
        wanted = QuantumCircuit(2, [SWAP(0, 1)]).unitary()
        assert np.allclose(built, wanted)


class TestExpandNonNative:
    def test_native_gates_unchanged(self):
        assert expand_non_native(X(0)) == [X(0)]
        assert expand_non_native(CNOT(0, 1)) == [CNOT(0, 1)]

    def test_toffoli_expands(self):
        assert len(expand_non_native(TOFFOLI(0, 1, 2))) == 15

    def test_cz_and_swap_expand(self):
        assert len(expand_non_native(CZ(0, 1))) == 3
        assert len(expand_non_native(SWAP(0, 1))) == 3
