"""Initial-placement optimization tests (the paper's future-work item)."""

import numpy as np
import pytest

from repro.core import (
    CNOT,
    NotSynthesizableError,
    QuantumCircuit,
    SynthesisError,
    TOFFOLI,
    X,
)
from repro.backend import (
    choose_placement,
    greedy_placement,
    interaction_graph,
    placement_cost,
    refine_placement,
)
from repro.devices import IBMQX3, IBMQX5, linear_device, star_device


@pytest.fixture
def chatty_pair_circuit():
    """Qubits 0 and 3 interact heavily; 1 and 2 are idle."""
    gates = [CNOT(0, 3)] * 5 + [X(1), X(2)]
    return QuantumCircuit(4, gates)


class TestInteractionGraph:
    def test_counts_pairs(self):
        c = QuantumCircuit(3, [CNOT(0, 1), CNOT(0, 1), CNOT(1, 2)])
        weights = interaction_graph(c)
        assert weights == {(0, 1): 2, (1, 2): 1}

    def test_toffoli_counts_all_pairs(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        weights = interaction_graph(c)
        assert weights == {(0, 1): 1, (0, 2): 1, (1, 2): 1}

    def test_single_qubit_gates_ignored(self):
        c = QuantumCircuit(2, [X(0), X(1)])
        assert interaction_graph(c) == {}


class TestPlacementCost:
    def test_adjacent_pair_costs_zero(self):
        chain = linear_device(4)
        weights = {(0, 1): 3}
        assert placement_cost({0: 0, 1: 1}, weights, chain) == 0

    def test_distant_pair_costs_swaps(self):
        chain = linear_device(4)
        weights = {(0, 1): 2}
        # distance 3 -> 2 swaps each, weight 2 -> 4
        assert placement_cost({0: 0, 1: 3}, weights, chain) == 4

    def test_disconnected_pair_infinite(self):
        from repro.devices import CouplingMap, Device

        split = Device("split", CouplingMap(4, {0: [1], 2: [3]}))
        assert placement_cost({0: 0, 1: 3}, {(0, 1): 1}, split) == float("inf")


class TestGreedyPlacement:
    def test_chatty_pair_placed_adjacent(self, chatty_pair_circuit):
        chain = linear_device(8)
        placement = greedy_placement(chatty_pair_circuit, chain)
        distance = chain.coupling_map.distance(placement[0], placement[3])
        assert distance == 1

    def test_placement_is_injective(self, chatty_pair_circuit):
        placement = greedy_placement(chatty_pair_circuit, IBMQX3)
        values = list(placement.values())
        assert len(set(values)) == len(values)

    def test_all_logical_qubits_placed(self, chatty_pair_circuit):
        placement = greedy_placement(chatty_pair_circuit, IBMQX5)
        assert set(placement) == {0, 1, 2, 3}

    def test_too_wide_raises(self):
        c = QuantumCircuit(20)
        with pytest.raises(NotSynthesizableError):
            greedy_placement(c, IBMQX3)

    def test_hub_gets_star_center(self):
        """A star-shaped interaction pattern puts the hub on the star hub."""
        gates = [CNOT(0, q) for q in range(1, 5)]
        c = QuantumCircuit(5, gates)
        star = star_device(5)
        placement = greedy_placement(c, star)
        assert placement[0] == 0  # physical hub

    def test_beats_identity_on_distant_interaction(self, chatty_pair_circuit):
        chain = linear_device(8)
        weights = interaction_graph(chatty_pair_circuit)
        identity = {q: q for q in range(4)}
        greedy = greedy_placement(chatty_pair_circuit, chain)
        assert placement_cost(greedy, weights, chain) <= placement_cost(
            identity, weights, chain
        )


class TestRefinePlacement:
    def test_never_worse(self, chatty_pair_circuit):
        chain = linear_device(8)
        weights = interaction_graph(chatty_pair_circuit)
        start = {0: 0, 1: 1, 2: 2, 3: 7}  # deliberately bad
        refined = refine_placement(start, chatty_pair_circuit, chain)
        assert placement_cost(refined, weights, chain) <= placement_cost(
            start, weights, chain
        )

    def test_fixes_bad_seed(self, chatty_pair_circuit):
        chain = linear_device(8)
        weights = interaction_graph(chatty_pair_circuit)
        start = {0: 0, 1: 1, 2: 2, 3: 7}
        refined = refine_placement(start, chatty_pair_circuit, chain)
        assert placement_cost(refined, weights, chain) == 0

    def test_remains_injective(self, chatty_pair_circuit):
        refined = refine_placement(
            {0: 0, 1: 1, 2: 2, 3: 7}, chatty_pair_circuit, linear_device(8)
        )
        assert len(set(refined.values())) == 4


def _refine_naive(placement, circuit, device, max_passes=10):
    """The pre-optimization hill climb: identical move order and
    acceptance rule, but every candidate rescores the full weights dict.
    The incremental implementation must be bit-identical to this."""
    weights = interaction_graph(circuit)
    current = dict(placement)
    logicals = list(current)
    free = [q for q in range(device.num_qubits) if q not in current.values()]
    best_cost = placement_cost(current, weights, device)
    for _ in range(max_passes):
        improved = False
        for i in range(len(logicals)):
            for j in range(i + 1, len(logicals)):
                a, b = logicals[i], logicals[j]
                current[a], current[b] = current[b], current[a]
                cost = placement_cost(current, weights, device)
                if cost < best_cost:
                    best_cost = cost
                    improved = True
                else:
                    current[a], current[b] = current[b], current[a]
        for a in logicals:
            for index, spare in enumerate(free):
                old_physical = current[a]
                current[a] = spare
                cost = placement_cost(current, weights, device)
                if cost < best_cost:
                    best_cost = cost
                    free[index] = old_physical
                    improved = True
                else:
                    current[a] = old_physical
        if not improved:
            break
    return current


class TestIncrementalRefineIsExact:
    """The delta-scored refine loop must accept exactly the moves the
    naive full-rescore loop accepts (contributions are integer-valued,
    so the running total cannot drift)."""

    def test_matches_naive_on_chatty_pair(self, chatty_pair_circuit):
        device = linear_device(8)
        seed = {0: 0, 1: 1, 2: 2, 3: 7}
        assert refine_placement(
            seed, chatty_pair_circuit, device
        ) == _refine_naive(seed, chatty_pair_circuit, device)

    def test_matches_naive_on_dense_workload(self):
        """Deterministic all-pairs-ish traffic over 10 logicals on a
        16-qubit chain: many candidate moves, many accepted ones."""
        gates = []
        for step in range(4):
            for q in range(10):
                partner = (q * 3 + 1 + step) % 10
                if partner != q:
                    gates.append(CNOT(q, partner))
        circuit = QuantumCircuit(10, gates)
        device = linear_device(16)
        seed = greedy_placement(circuit, device)
        assert refine_placement(seed, circuit, device) == _refine_naive(
            seed, circuit, device
        )

    def test_matches_naive_with_disconnected_pairs(self):
        """Fragmented coupling: infinite-cost placements must be handled
        identically (the incremental loop tracks disconnected pairs by
        count, not by adding infinities)."""
        from repro.devices import CouplingMap, Device

        device = Device(
            name="frag8",
            coupling_map=CouplingMap(
                8, {0: [1], 1: [2], 2: [3], 4: [5], 5: [6], 6: [7]},
                name="frag8",
            ),
        )
        circuit = QuantumCircuit(
            4, [CNOT(0, 1)] * 3 + [CNOT(1, 2), CNOT(2, 3), CNOT(0, 3)]
        )
        seed = {0: 0, 1: 3, 2: 4, 3: 7}  # straddles both fragments
        assert refine_placement(seed, circuit, device) == _refine_naive(
            seed, circuit, device
        )


class TestChoosePlacement:
    def test_identity(self):
        c = QuantumCircuit(3)
        assert choose_placement(c, IBMQX3, "identity") == {0: 0, 1: 1, 2: 2}

    def test_unknown_strategy(self):
        with pytest.raises(SynthesisError):
            choose_placement(QuantumCircuit(2), IBMQX3, "quantum-annealing")

    @pytest.mark.parametrize("strategy", ["greedy", "refined"])
    def test_compile_with_strategy_verified(self, strategy, chatty_pair_circuit):
        """End to end: strategy placements compile and formally verify."""
        from repro import compile_circuit

        result = compile_circuit(
            chatty_pair_circuit, IBMQX5, placement=strategy
        )
        assert result.verification.equivalent

    def test_greedy_reduces_mapped_cost_on_distant_workload(self):
        """The headline: placement-aware mapping beats identity placement
        on a workload whose logical neighbours are physically far."""
        from repro import compile_circuit

        from repro.core import T

        # q5 and q10 sit at distance 3 on ibmqx3 (the Fig. 5 pair); the T
        # on the target blocks cancellation between the repeats.
        gates = [CNOT(5, 10), T(10), CNOT(5, 10), T(10), CNOT(5, 10)]
        c = QuantumCircuit(16, gates)
        identity = compile_circuit(c, IBMQX3, verify=False)
        greedy = compile_circuit(c, IBMQX3, placement="greedy", verify=False)
        assert (
            greedy.optimized_metrics.cost < identity.optimized_metrics.cost
        )
