"""CTR rerouting tests, including the paper's Fig. 5 walk on ibmqx3."""

import numpy as np
import pytest

from repro.core import CNOT, QuantumCircuit, SynthesisError
from repro.backend import (
    ConnectivityTree,
    cnot_with_ctr,
    find_swap_path,
    route_cost_in_swaps,
    swap_gates,
)
from repro.devices import CouplingMap, IBMQX3, linear_device


class TestSwapGates:
    def test_bidirectional_pair_uses_three_cnots(self):
        both = CouplingMap(2, {0: [1], 1: [0]})
        gates = swap_gates(0, 1, both)
        assert [g.name for g in gates] == ["CNOT", "CNOT", "CNOT"]

    def test_unidirectional_pair_costs_seven(self):
        """The paper: all SWAPs have max 7 gates (4 H + 3 CNOT)."""
        one_way = CouplingMap(2, {0: [1]})
        gates = swap_gates(0, 1, one_way)
        assert len(gates) == 7
        names = [g.name for g in gates]
        assert names.count("CNOT") == 3
        assert names.count("H") == 4

    def test_swap_is_functionally_swap(self):
        from repro.core import SWAP

        one_way = CouplingMap(2, {0: [1]})
        built = QuantumCircuit(2, swap_gates(0, 1, one_way)).unitary()
        wanted = QuantumCircuit(2, [SWAP(0, 1)]).unitary()
        assert np.allclose(built, wanted)

    def test_uncoupled_swap_raises(self):
        chain = CouplingMap(3, {0: [1], 1: [2]})
        with pytest.raises(SynthesisError):
            swap_gates(0, 2, chain)

    def test_all_emitted_cnots_legal(self):
        one_way = CouplingMap(2, {1: [0]})
        for gate in swap_gates(0, 1, one_way):
            if gate.name == "CNOT":
                assert one_way.allows(*gate.qubits)


class TestFig5:
    """The worked example: CNOT with q5 control, q10 target on ibmqx3."""

    def test_swap_path_matches_paper(self):
        path = find_swap_path(5, 10, IBMQX3.coupling_map)
        assert path == [5, 12, 11, 10]

    def test_two_swaps_each_way(self):
        assert route_cost_in_swaps(5, 10, IBMQX3.coupling_map) == 2

    def test_rerouted_cnot_is_correct(self):
        gates = cnot_with_ctr(5, 10, IBMQX3.coupling_map)
        # restrict to the touched region for a dense check
        touched = sorted({q for g in gates for q in g.qubits})
        assert touched == [5, 10, 11, 12]
        relabel = {q: i for i, q in enumerate(touched)}
        local = QuantumCircuit(4, [type(g)(g.name, tuple(relabel[q] for q in g.qubits))
                                   for g in gates])
        wanted = QuantumCircuit(4, [CNOT(relabel[5], relabel[10])]).unitary()
        assert np.allclose(local.unitary(), wanted)

    def test_all_rerouted_cnots_legal(self):
        for gate in cnot_with_ctr(5, 10, IBMQX3.coupling_map):
            if gate.name == "CNOT":
                assert IBMQX3.coupling_map.allows(*gate.qubits)


class TestCtrGeneral:
    def test_already_coupled_no_swaps(self):
        chain = linear_device(4).coupling_map
        gates = cnot_with_ctr(0, 1, chain)
        assert gates == [CNOT(0, 1)]

    def test_reverse_coupled_uses_reversal_only(self):
        chain = linear_device(4).coupling_map
        gates = cnot_with_ctr(1, 0, chain)
        assert len(gates) == 5

    def test_long_chain_reroute_correct(self):
        chain = linear_device(5).coupling_map
        gates = cnot_with_ctr(0, 4, chain)
        built = QuantumCircuit(5, gates).unitary()
        wanted = QuantumCircuit(5, [CNOT(0, 4)]).unitary()
        assert np.allclose(built, wanted)

    def test_reroute_restores_intermediate_qubits(self):
        """Swap-back must leave every intermediate qubit untouched — checked
        implicitly by full unitary equality on the whole register."""
        chain = linear_device(4).coupling_map
        gates = cnot_with_ctr(3, 0, chain)
        built = QuantumCircuit(4, gates).unitary()
        wanted = QuantumCircuit(4, [CNOT(3, 0)]).unitary()
        assert np.allclose(built, wanted)

    def test_disconnected_raises(self):
        split = CouplingMap(4, {0: [1], 2: [3]})
        with pytest.raises(SynthesisError):
            cnot_with_ctr(0, 3, split)

    def test_route_cost_zero_when_coupled(self):
        chain = linear_device(3).coupling_map
        assert route_cost_in_swaps(0, 1, chain) == 0
        assert route_cost_in_swaps(1, 0, chain) == 0
        assert route_cost_in_swaps(0, 2, chain) == 1


class TestConnectivityTree:
    def test_tree_layers_bfs(self):
        tree = ConnectivityTree(IBMQX3.coupling_map, root=5)
        assert tree.grow_until(10)
        assert tree.layers[0] == [5]
        # q10 appears exactly at BFS distance 3
        depth_of_10 = next(
            i for i, layer in enumerate(tree.layers) if 10 in layer
        )
        assert depth_of_10 == 3

    def test_path_to_matches_shortest(self):
        tree = ConnectivityTree(IBMQX3.coupling_map, root=5)
        assert tree.path_to(10) == [5, 12, 11, 10]

    def test_unreachable_raises(self):
        split = CouplingMap(4, {0: [1], 2: [3]})
        tree = ConnectivityTree(split, root=0)
        with pytest.raises(SynthesisError):
            tree.path_to(3)

    def test_branch_termination_visits_each_node_once(self):
        tree = ConnectivityTree(IBMQX3.coupling_map, root=0)
        tree.grow_until(10)
        flat = [q for layer in tree.layers for q in layer]
        assert len(flat) == len(set(flat))
