"""Noise-aware CTR routing tests."""

import numpy as np
import pytest

from repro.core import CNOT, DeviceError, QuantumCircuit, SynthesisError
from repro.backend import cnot_with_ctr, cnot_with_noise_aware_ctr
from repro.devices import Calibration, CouplingMap, IBMQX3, synthetic_calibration


def ring_map() -> CouplingMap:
    """A 6-ring: two routes between any pair (clockwise/anticlockwise)."""
    return CouplingMap.from_edge_list(
        6, [(q, (q + 1) % 6) for q in range(6)], name="ring6"
    )


def calibration_with_bad_link(coupling: CouplingMap, bad: tuple,
                              base: float = 1e-2, worse: float = 0.4) -> Calibration:
    errors = {}
    for edge in coupling.directed_edges:
        errors[edge] = worse if edge == bad else base
    singles = {q: 1e-3 for q in range(coupling.num_qubits)}
    return Calibration(coupling.name, singles, errors)


class TestCheapestPath:
    def test_equal_weights_match_bfs(self):
        coupling = ring_map()
        path = coupling.cheapest_path(0, 2, lambda a, b: 1.0)
        assert path == [0, 1, 2]

    def test_avoids_expensive_link(self):
        coupling = ring_map()

        def cost(a, b):
            return 100.0 if {a, b} == {1, 2} else 1.0

        path = coupling.cheapest_path(0, 2, cost)
        assert path == [0, 5, 4, 3, 2]

    def test_same_endpoint(self):
        assert ring_map().cheapest_path(3, 3, lambda a, b: 1.0) == [3]

    def test_disconnected_returns_none(self):
        split = CouplingMap(4, {0: [1], 2: [3]})
        assert split.cheapest_path(0, 3, lambda a, b: 1.0) is None

    def test_negative_cost_rejected(self):
        with pytest.raises(DeviceError):
            ring_map().cheapest_path(0, 3, lambda a, b: -1.0)


class TestNoiseAwareCtr:
    def test_detours_around_noisy_link(self):
        coupling = ring_map()
        calibration = calibration_with_bad_link(coupling, (1, 2))
        gates = cnot_with_noise_aware_ctr(0, 3, coupling, calibration)
        touched = {q for g in gates for q in g.qubits}
        # hop route 0-1-2-3 avoided; the 0-5-4-3 detour used instead
        assert 5 in touched and 4 in touched
        assert 2 not in touched

    def test_still_functionally_correct(self):
        coupling = ring_map()
        calibration = calibration_with_bad_link(coupling, (1, 2))
        gates = cnot_with_noise_aware_ctr(0, 3, coupling, calibration)
        built = QuantumCircuit(6, gates).unitary()
        wanted = QuantumCircuit(6, [CNOT(0, 3)]).unitary()
        assert np.allclose(built, wanted)

    def test_coupled_pair_short_circuits(self):
        coupling = ring_map()
        calibration = calibration_with_bad_link(coupling, (1, 2))
        gates = cnot_with_noise_aware_ctr(0, 1, coupling, calibration)
        assert len(gates) <= 5

    def test_matches_plain_ctr_under_uniform_noise(self):
        calibration = synthetic_calibration(IBMQX3, spread=0.0)
        noisy = cnot_with_noise_aware_ctr(5, 10, IBMQX3.coupling_map, calibration)
        plain = cnot_with_ctr(5, 10, IBMQX3.coupling_map)
        assert len(noisy) == len(plain)

    def test_disconnected_raises(self):
        split = CouplingMap(4, {0: [1], 2: [3]})
        calibration = Calibration(
            "split", {q: 1e-3 for q in range(4)},
            {(0, 1): 1e-2, (2, 3): 1e-2},
        )
        with pytest.raises(SynthesisError):
            cnot_with_noise_aware_ctr(0, 3, split, calibration)

    def test_higher_success_probability_than_hop_routing(self):
        """The point of the feature: the reliable detour beats the short
        noisy route in end-to-end success probability."""
        coupling = ring_map()
        calibration = calibration_with_bad_link(coupling, (1, 2))
        short = cnot_with_ctr(0, 3, coupling)
        reliable = cnot_with_noise_aware_ctr(0, 3, coupling, calibration)

        def success(gates):
            p = 1.0
            for gate in gates:
                p *= 1.0 - calibration.gate_error(gate)
            return p

        assert success(reliable) > success(short)
