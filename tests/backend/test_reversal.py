"""Fig. 6 CNOT orientation reversal."""

import numpy as np
import pytest

from repro.core import CNOT, QuantumCircuit, SynthesisError
from repro.backend import orient_cnot, reversed_cnot
from repro.devices import CouplingMap


@pytest.fixture
def one_way():
    """Only CNOT(0 -> 1) physically exists."""
    return CouplingMap(2, {0: [1]}, name="oneway")


class TestReversedCnot:
    def test_gate_shape(self):
        gates = reversed_cnot(0, 1)
        assert [g.name for g in gates] == ["H", "H", "CNOT", "H", "H"]
        assert gates[2].qubits == (1, 0)  # physically reversed orientation

    def test_is_functionally_a_cnot(self):
        wanted = QuantumCircuit(2, [CNOT(0, 1)]).unitary()
        built = QuantumCircuit(2, reversed_cnot(0, 1)).unitary()
        assert np.allclose(built, wanted)

    def test_reversal_both_directions(self):
        wanted = QuantumCircuit(2, [CNOT(1, 0)]).unitary()
        built = QuantumCircuit(2, reversed_cnot(1, 0)).unitary()
        assert np.allclose(built, wanted)


class TestOrientCnot:
    def test_native_direction_passes_through(self, one_way):
        assert orient_cnot(0, 1, one_way) == [CNOT(0, 1)]

    def test_reverse_direction_uses_hadamards(self, one_way):
        gates = orient_cnot(1, 0, one_way)
        assert len(gates) == 5
        assert gates[2] == CNOT(0, 1)
        built = QuantumCircuit(2, gates).unitary()
        wanted = QuantumCircuit(2, [CNOT(1, 0)]).unitary()
        assert np.allclose(built, wanted)

    def test_uncoupled_raises(self):
        disconnected = CouplingMap(3, {0: [1]})
        with pytest.raises(SynthesisError):
            orient_cnot(0, 2, disconnected)

    def test_emitted_gates_all_legal(self, one_way):
        for control, target in [(0, 1), (1, 0)]:
            for gate in orient_cnot(control, target, one_way):
                if gate.name == "CNOT":
                    assert one_way.allows(*gate.qubits)
