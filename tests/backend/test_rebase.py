"""Trapped-ion rebasing tests (the paper's other-platforms future work)."""

import math

import numpy as np
import pytest

from repro.core import (
    CNOT,
    Gate,
    H,
    QuantumCircuit,
    S,
    SynthesisError,
    T,
    TOFFOLI,
    X,
    gate_matrix,
)
from repro.backend import (
    ION_GATE_SET,
    check_conformance,
    cnot_as_rxx,
    hadamard_as_rotations,
    map_circuit,
    rebase_to_ion,
)
from repro.devices import ion_device
from tests.conftest import random_circuit


def equal_up_to_phase(a: np.ndarray, b: np.ndarray) -> bool:
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(a[index]) < 1e-12:
        return False
    return np.allclose(a * (b[index] / a[index]), b, atol=1e-8)


class TestRxxGate:
    def test_matrix(self):
        theta = 0.37
        m = gate_matrix("RXX", params=(theta,))
        X = gate_matrix("X")
        expected = math.cos(theta) * np.eye(4) - 1j * math.sin(theta) * np.kron(X, X)
        assert np.allclose(m, expected)

    def test_inverse_negates(self):
        g = Gate("RXX", (0, 1), (0.5,))
        assert g.inverse().params == (-0.5,)
        assert g.is_inverse_of(g.inverse())
        assert g.is_inverse_of(Gate("RXX", (1, 0), (-0.5,)))  # symmetric

    def test_cancellation_in_optimizer(self):
        from repro.optimize import remove_identities

        g = Gate("RXX", (0, 1), (0.5,))
        c = QuantumCircuit(2, [g, g.inverse()])
        assert len(remove_identities(c)) == 0

    def test_sparse_not_required(self):
        """RXX is supported by dense/QMDD paths (generic fallback)."""
        from repro.qmdd import QMDDManager

        c = QuantumCircuit(2, [Gate("RXX", (0, 1), (0.9,))])
        m = QMDDManager(2)
        assert np.allclose(m.to_matrix(m.circuit_edge(c)), c.unitary())


class TestIdentities:
    def test_cnot_as_rxx_up_to_phase(self):
        built = QuantumCircuit(2, cnot_as_rxx(0, 1)).unitary()
        wanted = QuantumCircuit(2, [CNOT(0, 1)]).unitary()
        assert equal_up_to_phase(built, wanted)
        assert not np.allclose(built, wanted)  # genuinely a phase off

    def test_hadamard_as_rotations_up_to_phase(self):
        built = QuantumCircuit(1, hadamard_as_rotations(0)).unitary()
        assert equal_up_to_phase(built, gate_matrix("H"))


class TestRebaseToIon:
    def test_output_is_ion_native(self):
        c = QuantumCircuit(2, [H(0), T(1), CNOT(0, 1), S(0), X(1)])
        rebased = rebase_to_ion(c)
        assert all(g.name in ION_GATE_SET for g in rebased)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_equal_up_to_phase(self, seed):
        c = random_circuit(3, 12, seed=seed,
                           gate_pool=("X", "Y", "Z", "H", "S", "SDG", "T",
                                      "TDG", "CNOT"))
        rebased = rebase_to_ion(c)
        assert equal_up_to_phase(rebased.unitary(), c.unitary())

    def test_unmapped_gate_rejected(self):
        with pytest.raises(SynthesisError):
            rebase_to_ion(QuantumCircuit(3, [TOFFOLI(0, 1, 2)]))


class TestIonDevice:
    def test_device_properties(self):
        ion = ion_device(7)
        assert ion.num_qubits == 7
        assert ion.is_simulator  # all-to-all
        assert ion.supports_gate("RXX")
        assert not ion.supports_gate("CNOT")
        assert not ion.supports_gate("T")
        assert ion.cost_function.extra_weights["RXX"] == 2.0

    def test_full_pipeline_toffoli(self):
        from repro import compile_circuit

        result = compile_circuit(
            QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx"), ion_device(5)
        )
        assert result.verification.equivalent
        assert check_conformance(result.optimized, ion_device(5)) == []
        histogram = result.optimized.gate_histogram()
        assert set(histogram) <= {"RX", "RY", "RZ", "RXX"}
        assert histogram["RXX"] == 6  # one MS gate per Toffoli-network CNOT

    def test_mcx_workload_on_ion(self):
        from repro import compile_circuit
        from repro.core import MCX

        result = compile_circuit(
            QuantumCircuit(6, [MCX(0, 1, 2, 3, 4, 5)]), ion_device(8)
        )
        assert result.verification.equivalent

    def test_optimizer_stays_in_library(self):
        """Phase merging must not re-emit T/S/Z on the ion target."""
        from repro import compile_circuit

        c = QuantumCircuit(2, [T(0), T(0), CNOT(0, 1), S(1), S(1)])
        result = compile_circuit(c, ion_device(3))
        assert all(g.name in ION_GATE_SET for g in result.optimized)

    def test_cost_function_prefers_fewer_ms_gates(self):
        ion = ion_device(3)
        one = QuantumCircuit(2, [Gate("RXX", (0, 1), (0.2,))])
        two = one.compose(one)
        assert ion.cost_function(two) == 2 * ion.cost_function(one)
