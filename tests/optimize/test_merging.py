"""Phase-run merging tests (T T -> S, etc.)."""

import numpy as np
import pytest

from repro.core import CNOT, Gate, H, QuantumCircuit, S, Sdg, T, Tdg, X, Z
from repro.optimize import merge_phase_runs, merge_phases
from repro.optimize.phase import (
    EXPONENT_GATES,
    PHASE_EXPONENT,
    is_phase_gate,
    merged_phase_gates,
    single_gate_for,
)


class TestPhaseAlgebra:
    def test_exponents(self):
        assert PHASE_EXPONENT["T"] == 1
        assert PHASE_EXPONENT["S"] == 2
        assert PHASE_EXPONENT["Z"] == 4
        assert PHASE_EXPONENT["SDG"] == 6
        assert PHASE_EXPONENT["TDG"] == 7

    def test_single_gate_for(self):
        assert single_gate_for(0) is None
        assert single_gate_for(1) == "T"
        assert single_gate_for(8) is None  # wraps to identity
        assert single_gate_for(9) == "T"
        assert single_gate_for(-1) == "TDG"

    def test_merged_phase_gates_matrices(self):
        """Every exponent's emitted gate sequence realizes exactly that
        Z-rotation (phase-exact)."""
        import cmath

        for exponent in range(8):
            gates = merged_phase_gates(exponent, 0)
            c = QuantumCircuit(1, gates)
            u = c.unitary() if gates else np.eye(2)
            wanted = np.diag([1, cmath.exp(1j * cmath.pi * exponent / 4)])
            assert np.allclose(u, wanted), exponent

    def test_is_phase_gate(self):
        assert is_phase_gate(T(0))
        assert is_phase_gate(Z(3))
        assert not is_phase_gate(H(0))
        assert not is_phase_gate(X(0))


class TestMerging:
    def test_t_t_becomes_s(self):
        assert merge_phase_runs([T(0), T(0)]) == [S(0)]

    def test_s_s_becomes_z(self):
        assert merge_phase_runs([S(0), S(0)]) == [Z(0)]

    def test_t_tdg_cancels(self):
        assert merge_phase_runs([T(0), Tdg(0)]) == []

    def test_z_s_becomes_sdg_exactly(self):
        assert merge_phase_runs([Z(0), S(0)]) == [Sdg(0)]

    def test_t_s_survives_as_two_gates(self):
        merged = merge_phase_runs([T(0), S(0)])
        assert [g.name for g in merged] == ["S", "T"]

    def test_long_run_collapses(self):
        # 8 T gates = identity
        assert merge_phase_runs([T(0)] * 8) == []
        # 3 S = S Z -> SDG
        assert merge_phase_runs([S(0)] * 3) == [Sdg(0)]

    def test_runs_on_distinct_qubits_independent(self):
        merged = merge_phase_runs([T(0), T(1), T(0), T(1)])
        assert sorted(g.qubits[0] for g in merged) == [0, 1]
        assert all(g.name == "S" for g in merged)

    def test_merge_across_cnot_control(self):
        merged = merge_phase_runs([T(0), CNOT(0, 1), T(0)])
        names = [(g.name, g.qubits) for g in merged]
        assert ("CNOT", (0, 1)) in names
        assert ("S", (0,)) in names
        assert len(merged) == 2

    def test_no_merge_across_cnot_target(self):
        merged = merge_phase_runs([T(1), CNOT(0, 1), T(1)])
        assert len(merged) == 3

    def test_no_merge_across_hadamard(self):
        merged = merge_phase_runs([T(0), H(0), T(0)])
        assert [g.name for g in merged] == ["T", "H", "T"]


class TestMergePhasesFixpoint:
    def test_preserves_unitary(self):
        gates = [T(0), CNOT(0, 1), T(0), S(1), H(0), Z(1), S(1), T(0)]
        c = QuantumCircuit(2, gates)
        merged = merge_phases(c)
        assert np.allclose(merged.unitary(), c.unitary())

    def test_reduces_t_count(self):
        c = QuantumCircuit(1, [T(0), T(0), T(0), T(0)])
        merged = merge_phases(c)
        assert merged.t_count == 0
        assert merged.gates == (Z(0),)

    def test_idempotent(self):
        c = QuantumCircuit(2, [T(0), S(1), CNOT(0, 1)])
        assert merge_phases(merge_phases(c)) == merge_phases(c)

    def test_empty_circuit(self):
        assert len(merge_phases(QuantumCircuit(3))) == 0
