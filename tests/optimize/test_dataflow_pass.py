"""The constant-propagation rewriting pass and its optimizer/compiler
integration."""

import pytest

from repro.core import (
    CNOT,
    CZ,
    H,
    MCX,
    QuantumCircuit,
    SWAP,
    T,
    TOFFOLI,
    TRANSMON_COST,
    X,
)
from repro.optimize import (
    ConstantPropagationStats,
    LocalOptimizer,
    propagate_constants,
)
from repro.verify import run_sparse


def subspace_equal(original, rewritten, known_zero, width):
    """Exhaustively compare both circuits on every admissible input."""
    zero_mask = sum(1 << (width - 1 - q) for q in known_zero)
    for index in range(1 << width):
        if index & zero_mask:
            continue
        a = run_sparse(original, index)
        b = run_sparse(rewritten, index)
        if not a.equals(b):
            return False
    return True


class TestPropagateConstants:
    def test_no_facts_is_an_exact_noop(self):
        circuit = QuantumCircuit(2, [H(0), CNOT(0, 1)])
        result, stats = propagate_constants(circuit)
        assert result is circuit  # the very same object, no analysis ran
        assert not stats.changed

    def test_out_of_range_facts_are_a_noop(self):
        circuit = QuantumCircuit(2, [CNOT(0, 1)])
        result, stats = propagate_constants(circuit, known_zero=[5])
        assert result is circuit

    def test_deletes_inert_gates(self):
        circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2), CNOT(0, 2), T(0)])
        result, stats = propagate_constants(circuit, known_zero=[0])
        assert stats.deleted == 3  # both controlled gates + T on |0>
        assert stats.demoted == 0
        assert len(result) == 0
        assert subspace_equal(circuit, result, {0}, 3)

    def test_demotes_controls_known_one(self):
        circuit = QuantumCircuit(3, [X(0), TOFFOLI(0, 1, 2)])
        result, stats = propagate_constants(circuit, known_zero=[0])
        assert stats.demoted == 1
        assert list(result.gates) == [X(0), CNOT(1, 2)]
        assert subspace_equal(circuit, result, {0}, 3)

    def test_mcx_demotion_chain(self):
        circuit = QuantumCircuit(4, [X(0), X(1), MCX(0, 1, 2, 3)])
        result, stats = propagate_constants(circuit, known_zero=[0, 1])
        assert stats.demoted == 1
        assert list(result.gates) == [X(0), X(1), CNOT(2, 3)]
        assert subspace_equal(circuit, result, {0, 1}, 4)

    def test_facts_flow_through_rewrites(self):
        # The demoted CNOT(0,1) -> X(1) makes q1 |1>, which demotes the
        # next gate too: one pass is the fixpoint.
        circuit = QuantumCircuit(3, [X(0), CNOT(0, 1), CNOT(1, 2)])
        result, stats = propagate_constants(circuit, known_zero=[0, 1])
        assert stats.demoted == 2
        assert list(result.gates) == [X(0), X(1), X(2)]
        assert subspace_equal(circuit, result, {0, 1}, 3)

    def test_bails_out_when_facts_die(self):
        # H kills the only fact: the suffix must be copied verbatim and
        # nothing downstream may be touched (CNOT(0,1) would be inert
        # if the bail-out were wrong).
        suffix = [CNOT(0, 1), CZ(0, 1), SWAP(0, 1)]
        circuit = QuantumCircuit(2, [H(0)] + suffix)
        result, stats = propagate_constants(circuit, known_zero=[0])
        assert result is circuit
        assert not stats.changed

    def test_exit_facts_recorded(self):
        circuit = QuantumCircuit(2, [X(0), CNOT(0, 1)])
        _, stats = propagate_constants(circuit, known_zero=[0, 1])
        assert stats.exit_facts == {"q0": "one", "q1": "one"}

    def test_exit_facts_empty_after_bailout(self):
        circuit = QuantumCircuit(2, [H(0), CNOT(0, 1)])
        _, stats = propagate_constants(circuit, known_zero=[0])
        assert stats.exit_facts == {}

    def test_stats_merge_accumulates_and_takes_latest_exit(self):
        first = ConstantPropagationStats(
            frozenset({0}), frozenset(), deleted=2, demoted=1,
            exit_facts={"q0": "zero"},
        )
        second = ConstantPropagationStats(
            frozenset({0}), frozenset(), deleted=1,
            exit_facts={"q0": "one"},
        )
        first.merge(second)
        assert first.deleted == 3 and first.demoted == 1
        assert first.exit_facts == {"q0": "one"}
        assert first.to_payload() == {
            "known_zero": [0], "known_one": [], "deleted": 3, "demoted": 1,
        }


class TestOptimizerIntegration:
    def test_default_path_has_no_dataflow(self):
        optimizer = LocalOptimizer(TRANSMON_COST)
        optimizer.run(QuantumCircuit(2, [H(0), CNOT(0, 1)]))
        assert optimizer.last_dataflow is None

    def test_facts_delete_through_the_loop(self):
        circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2), CNOT(0, 2)])
        optimizer = LocalOptimizer(TRANSMON_COST, known_zero=[0])
        result = optimizer.run(circuit)
        assert len(result) == 0
        stats = optimizer.last_dataflow
        assert stats is not None and stats.deleted == 2

    def test_deletion_accepted_at_equal_cost(self):
        # A single CZ with a |0> operand: deleting it cannot increase
        # the cost and must be accepted even though the cost-decreasing
        # fixpoint alone would keep it.
        circuit = QuantumCircuit(2, [CZ(0, 1)])
        optimizer = LocalOptimizer(TRANSMON_COST, known_zero=[0])
        result = optimizer.run(circuit)
        assert len(result) == 0

    def test_deletion_exposes_cancellation(self):
        # Deleting the inert Toffoli brings the surrounding CNOT pair
        # together; the post-deletion cancellation sweep must clean it.
        circuit = QuantumCircuit(
            3, [CNOT(1, 2), TOFFOLI(0, 1, 2), CNOT(1, 2)]
        )
        optimizer = LocalOptimizer(
            TRANSMON_COST, known_zero=[0], enable_templates=False
        )
        result = optimizer.run(circuit)
        assert len(result) == 0
        assert optimizer.last_dataflow.deleted == 1

    def test_rewrites_preserve_subspace_semantics(self):
        circuit = QuantumCircuit(
            3, [X(0), CNOT(0, 1), TOFFOLI(0, 1, 2), H(2), T(2), H(2)]
        )
        optimizer = LocalOptimizer(TRANSMON_COST, known_zero=[0, 1, 2])
        result = optimizer.run(circuit)
        assert subspace_equal(circuit, result, {0, 1, 2}, 3)


class TestCompilerIntegration:
    def test_payload_rides_the_result(self):
        from repro.benchlib import single_target
        from repro.compiler import compile_circuit

        circuit = single_target.build_benchmark("03", 4)
        result = compile_circuit(circuit, "ibmqx4", known_zero=[3])
        payload = result.dataflow
        assert payload is not None
        stats = payload["constant_propagation"]
        assert stats["deleted"] >= 1
        assert payload["known_zero"] == stats["known_zero"]
        assert result.verification is not None
        assert result.verification.equivalent

    def test_facts_reduce_mapped_cost(self):
        from repro.benchlib import single_target
        from repro.compiler import compile_circuit

        circuit = single_target.build_benchmark("03", 4)
        plain = compile_circuit(circuit, "ibmqx4", verify=False)
        facts = compile_circuit(
            circuit, "ibmqx4", verify=False, known_zero=[3]
        )
        assert (
            facts.optimized_metrics.cost < plain.optimized_metrics.cost
        )

    def test_no_facts_no_payload(self):
        from repro.benchlib import single_target
        from repro.compiler import compile_circuit

        result = compile_circuit(
            single_target.build_benchmark("1", 2), "ibmqx4", verify=False
        )
        assert result.dataflow is None

    def test_facts_translate_through_placement(self):
        from repro.benchlib import single_target
        from repro.compiler import compile_circuit

        circuit = single_target.build_benchmark("03", 4)
        result = compile_circuit(
            circuit, "ibmqx4", verify=False, known_zero=[3]
        )
        [physical] = result.dataflow["known_zero"]
        assert physical == result.placement[3]
