"""Circuit-identity template rewrites."""

import numpy as np

from repro.core import CNOT, H, QuantumCircuit, T, X, Z
from repro.devices import CouplingMap
from repro.optimize import apply_templates
from repro.optimize.templates import (
    rule_cnot_unreversal,
    rule_cnot_x_propagation,
    rule_hadamard_conjugation,
)


class TestHadamardConjugation:
    def test_hxh_becomes_z(self):
        c = QuantumCircuit(1, [H(0), X(0), H(0)])
        out = apply_templates(c)
        assert out.gates == (Z(0),)

    def test_hzh_becomes_x(self):
        c = QuantumCircuit(1, [H(0), Z(0), H(0)])
        out = apply_templates(c)
        assert out.gates == (X(0),)

    def test_fires_across_disjoint_gates(self):
        c = QuantumCircuit(2, [H(0), T(1), X(0), T(1), H(0)])
        out = apply_templates(c)
        assert out.count("Z") == 1
        assert out.count("H") == 0
        assert np.allclose(out.unitary(), c.unitary())

    def test_blocked_by_intervening_gate_on_qubit(self):
        c = QuantumCircuit(2, [H(0), CNOT(0, 1), X(0), H(0)])
        out = apply_templates(c)
        assert out.count("H") == 2  # no rewrite

    def test_hth_not_rewritten(self):
        c = QuantumCircuit(1, [H(0), T(0), H(0)])
        assert apply_templates(c).gates == c.gates


class TestCnotUnreversal:
    def test_unreversal_without_device(self):
        reversed_form = [H(0), H(1), CNOT(1, 0), H(0), H(1)]
        c = QuantumCircuit(2, reversed_form)
        out = apply_templates(c)
        assert out.gates == (CNOT(0, 1),)
        assert np.allclose(out.unitary(), c.unitary())

    def test_unreversal_respects_coupling_map(self):
        # Only 1->0 exists: collapsing to CNOT(0,1) would be illegal.
        one_way = CouplingMap(2, {1: [0]})
        reversed_form = [H(0), H(1), CNOT(1, 0), H(0), H(1)]
        c = QuantumCircuit(2, reversed_form)
        out = apply_templates(c, coupling_map=one_way)
        assert out.gates == tuple(reversed_form)

    def test_unreversal_fires_when_legal(self):
        both = CouplingMap(2, {0: [1], 1: [0]})
        c = QuantumCircuit(2, [H(0), H(1), CNOT(1, 0), H(0), H(1)])
        out = apply_templates(c, coupling_map=both)
        assert out.gates == (CNOT(0, 1),)

    def test_h_order_before_cnot_irrelevant(self):
        c = QuantumCircuit(2, [H(1), H(0), CNOT(1, 0), H(1), H(0)])
        out = apply_templates(c)
        assert out.gates == (CNOT(0, 1),)


class TestCnotXPropagation:
    def test_control_x_propagates(self):
        c = QuantumCircuit(2, [CNOT(0, 1), X(0), CNOT(0, 1)])
        out = apply_templates(c)
        assert sorted(g.name for g in out) == ["X", "X"]
        assert np.allclose(out.unitary(), c.unitary())

    def test_target_z_propagates(self):
        c = QuantumCircuit(2, [CNOT(0, 1), Z(1), CNOT(0, 1)])
        out = apply_templates(c)
        assert sorted(g.name for g in out) == ["Z", "Z"]
        assert np.allclose(out.unitary(), c.unitary())

    def test_x_on_target_not_matched_by_this_rule(self):
        gates = [CNOT(0, 1), X(1), CNOT(0, 1)]
        match = rule_cnot_x_propagation(gates, 0, None)
        assert match is None


class TestEngine:
    def test_cascaded_rewrites(self):
        # H X H -> Z, then CNOT Z(target) CNOT -> Z Z
        c = QuantumCircuit(
            2, [CNOT(0, 1), H(1), X(1), H(1), CNOT(0, 1)]
        )
        out = apply_templates(c)
        assert out.count("CNOT") == 0
        assert np.allclose(out.unitary(), c.unitary())

    def test_no_match_returns_equal_circuit(self):
        c = QuantumCircuit(2, [T(0), CNOT(0, 1)])
        assert apply_templates(c).gates == c.gates

    def test_rules_return_none_out_of_pattern(self):
        gates = [T(0)]
        assert rule_hadamard_conjugation(gates, 0, None) is None
        assert rule_cnot_unreversal(gates, 0, None) is None
        assert rule_cnot_x_propagation(gates, 0, None) is None


class TestGateSetRestriction:
    """Template/merge emission must respect a restricted device library."""

    def test_templates_skip_out_of_library_rewrites(self):
        from repro.core import H, QuantumCircuit, X
        from repro.optimize import apply_templates

        ion_set = {"RX", "RY", "RZ", "RXX", "I"}
        c = QuantumCircuit(1, [H(0), X(0), H(0)])
        out = apply_templates(c, gate_set=ion_set)
        assert out.gates == c.gates  # H X H -> Z suppressed (Z not in set)

    def test_merge_emits_rz_when_discrete_missing(self):
        from repro.core import QuantumCircuit, T
        from repro.optimize import merge_phases

        ion_set = {"RX", "RY", "RZ", "RXX", "I"}
        c = QuantumCircuit(1, [T(0), T(0)])
        merged = merge_phases(c, ion_set)
        assert len(merged) == 1
        assert merged[0].name == "RZ"

    def test_merge_emits_discrete_when_allowed(self):
        from repro.core import QuantumCircuit, S, T
        from repro.optimize import merge_phases

        transmon = {"T", "TDG", "S", "SDG", "Z", "RZ"}
        c = QuantumCircuit(1, [T(0), T(0)])
        assert merge_phases(c, transmon).gates == (S(0),)
