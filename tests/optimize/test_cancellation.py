"""Inverse-pair cancellation (identity-partition removal)."""

import numpy as np

from repro.core import (
    CNOT,
    CZ,
    Gate,
    H,
    I,
    QuantumCircuit,
    S,
    SWAP,
    Sdg,
    T,
    TOFFOLI,
    Tdg,
    X,
    Z,
)
from repro.optimize import cancel_inverse_pairs, remove_identities


class TestBasicPairs:
    def test_adjacent_self_inverse(self):
        assert cancel_inverse_pairs([H(0), H(0)]) == []
        assert cancel_inverse_pairs([X(1), X(1)]) == []
        assert cancel_inverse_pairs([CNOT(0, 1), CNOT(0, 1)]) == []

    def test_adjoint_pairs(self):
        assert cancel_inverse_pairs([T(0), Tdg(0)]) == []
        assert cancel_inverse_pairs([Sdg(2), S(2)]) == []

    def test_non_pairs_survive(self):
        gates = [H(0), X(0)]
        assert cancel_inverse_pairs(gates) == gates

    def test_different_qubits_do_not_cancel(self):
        gates = [H(0), H(1)]
        assert cancel_inverse_pairs(gates) == gates

    def test_cnot_orientation_matters(self):
        gates = [CNOT(0, 1), CNOT(1, 0)]
        assert cancel_inverse_pairs(gates) == gates

    def test_explicit_identity_gates_dropped(self):
        assert cancel_inverse_pairs([I(0), X(1), I(2)]) == [X(1)]

    def test_symmetric_gate_operand_order(self):
        assert cancel_inverse_pairs([SWAP(0, 1), SWAP(1, 0)]) == []
        assert cancel_inverse_pairs([CZ(0, 1), CZ(1, 0)]) == []

    def test_toffoli_control_order(self):
        assert cancel_inverse_pairs([TOFFOLI(0, 1, 2), TOFFOLI(1, 0, 2)]) == []


class TestCommutationAwareness:
    def test_cancel_through_disjoint_gate(self):
        gates = [H(0), X(1), H(0)]
        assert cancel_inverse_pairs(gates) == [X(1)]

    def test_cancel_through_commuting_diagonal(self):
        # T on control commutes with CNOT: H..H around it
        gates = [T(0), CNOT(0, 1), Tdg(0)]
        assert cancel_inverse_pairs(gates) == [CNOT(0, 1)]

    def test_no_cancel_through_blocking_gate(self):
        gates = [H(0), X(0), H(0)]
        assert cancel_inverse_pairs(gates) == gates

    def test_cnots_cancel_through_shared_control(self):
        gates = [CNOT(0, 1), CNOT(0, 2), CNOT(0, 1)]
        assert cancel_inverse_pairs(gates) == [CNOT(0, 2)]

    def test_x_on_target_commutes_through_cnot(self):
        gates = [X(1), CNOT(0, 1), X(1)]
        assert cancel_inverse_pairs(gates) == [CNOT(0, 1)]


class TestFixpoint:
    def test_nested_identity_block(self):
        # [H X X H] needs two rounds without commutation; one scan handles
        # it because removal exposes the outer pair immediately.
        c = QuantumCircuit(1, [H(0), X(0), X(0), H(0)])
        assert len(remove_identities(c)) == 0

    def test_interleaved_swap_chains(self):
        """The back-to-back SWAP chains CTR emits must vanish."""
        swap = [CNOT(0, 1), CNOT(1, 0), CNOT(0, 1)]
        c = QuantumCircuit(2, swap + swap)
        assert len(remove_identities(c)) == 0

    def test_preserves_unitary(self):
        gates = [H(0), T(1), CNOT(0, 1), Tdg(1), T(1), CNOT(0, 1), H(0), X(2)]
        c = QuantumCircuit(3, gates)
        reduced = remove_identities(c)
        assert len(reduced) < len(c)
        assert np.allclose(reduced.unitary(), c.unitary())

    def test_idempotent(self):
        c = QuantumCircuit(2, [H(0), CNOT(0, 1), T(1)])
        once = remove_identities(c)
        twice = remove_identities(once)
        assert once == twice

    def test_keeps_name_and_width(self):
        c = QuantumCircuit(3, [H(0), H(0)], name="keepme")
        reduced = remove_identities(c)
        assert reduced.name == "keepme"
        assert reduced.num_qubits == 3
