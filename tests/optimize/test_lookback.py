"""Bounded-lookback cancellation: window semantics and scaling.

The commutation walk in :func:`cancel_inverse_pairs` is bounded by a
window counted in *same-support* gates.  These tests pin the semantics
(a small window refuses long-range cancellations; the default window
finds them) and the performance contract (a pathological all-commuting
cascade sweeps in near-linear time instead of quadratic).
"""

import time

from repro import CNOT, H, QuantumCircuit, T
from repro.optimize import LocalOptimizer, cancel_inverse_pairs, remove_identities
from repro.optimize.cancellation import LOOKBACK_WINDOW


def separated_pair():
    """CNOT(0,1) ... CNOT(0,1) with two commuting CNOTs in between.

    The outer pair only cancels if the walk may commute through two
    same-support gates (shared control => commuting).
    """
    return [CNOT(0, 1), CNOT(0, 2), CNOT(0, 3), CNOT(0, 1)]


class TestWindowSemantics:
    def test_default_window_is_advertised(self):
        assert LOOKBACK_WINDOW == 128

    def test_small_window_blocks_long_range_cancellation(self):
        gates = separated_pair()
        assert cancel_inverse_pairs(gates, lookback=1) == gates

    def test_sufficient_window_cancels(self):
        assert cancel_inverse_pairs(separated_pair(), lookback=3) == [
            CNOT(0, 2),
            CNOT(0, 3),
        ]

    def test_default_window_cancels(self):
        assert cancel_inverse_pairs(separated_pair()) == [
            CNOT(0, 2),
            CNOT(0, 3),
        ]

    def test_zero_window_disables_cancellation(self):
        gates = [H(0), H(0)]
        assert cancel_inverse_pairs(gates, lookback=0) == gates

    def test_adjacent_pairs_cancel_even_with_window_one(self):
        assert cancel_inverse_pairs([H(0), H(0)], lookback=1) == []

    def test_window_counts_same_support_gates_only(self):
        # 60 unrelated gates interleave, but only ONE same-support gate
        # separates the pair — a window of 2 must still find it.
        gates = [CNOT(0, 1)]
        gates += [H(q) for q in range(2, 62)]
        gates += [CNOT(0, 2), CNOT(0, 1)]
        reduced = cancel_inverse_pairs(gates, lookback=2)
        assert CNOT(0, 1) not in reduced
        assert len(reduced) == 61

    def test_remove_identities_accepts_lookback(self):
        circuit = QuantumCircuit(4, separated_pair())
        assert len(remove_identities(circuit, lookback=1)) == 4
        assert len(remove_identities(circuit, lookback=3)) == 2


class TestLocalOptimizerPlumbing:
    def test_lookback_window_reaches_the_sweep(self):
        circuit = QuantumCircuit(4, separated_pair())
        narrow = LocalOptimizer(enable_templates=False, lookback_window=1)
        assert len(narrow.run(circuit)) == 4
        default = LocalOptimizer(enable_templates=False)
        assert default.lookback_window is None
        assert len(default.run(circuit)) == 2


class TestNearLinearSweep:
    def test_all_commuting_cascade_is_fast(self):
        # 3000 mutually-commuting, never-canceling gates on one qubit is
        # the worst case for the walk: every gate commutes back through
        # the whole kept cascade.  The window caps each walk, so a sweep
        # does O(n * window) memoized verdict lookups — well under a
        # second — instead of O(n^2) re-derivations.
        n = 3000
        gates = [T(0)] * n
        started = time.perf_counter()
        reduced = cancel_inverse_pairs(gates)
        elapsed = time.perf_counter() - started
        assert len(reduced) == n  # nothing cancels, nothing lost
        assert elapsed < 2.0, f"sweep took {elapsed:.2f}s; window not bounding"

    def test_interleaved_qubits_do_not_slow_the_walk(self):
        # Same cascade spread across 50 qubits: per-qubit indexing means
        # disjoint gates are never visited, so this is just as fast.
        n = 3000
        gates = [T(i % 50) for i in range(n)]
        started = time.perf_counter()
        reduced = cancel_inverse_pairs(gates)
        elapsed = time.perf_counter() - started
        assert len(reduced) == n
        assert elapsed < 2.0
