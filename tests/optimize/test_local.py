"""The cost-guarded fixpoint optimizer."""

import numpy as np
import pytest

from repro.core import (
    CNOT,
    CostFunction,
    H,
    QuantumCircuit,
    T,
    TOFFOLI,
    TRANSMON_COST,
    Tdg,
    X,
    transmon_cost,
)
from repro.backend import map_circuit
from repro.devices import IBMQX4, linear_device
from repro.optimize import LocalOptimizer, optimize_circuit


class TestBasics:
    def test_empty_circuit(self):
        out = optimize_circuit(QuantumCircuit(3))
        assert len(out) == 0

    def test_already_optimal_unchanged(self):
        c = QuantumCircuit(2, [H(0), CNOT(0, 1)])
        assert optimize_circuit(c).gates == c.gates

    def test_identity_block_removed(self):
        c = QuantumCircuit(2, [H(0), H(0), CNOT(0, 1), CNOT(0, 1), T(1), Tdg(1)])
        out = optimize_circuit(c)
        assert len(out) == 0

    def test_never_increases_cost(self):
        c = QuantumCircuit(3, [H(0), T(1), CNOT(0, 2), X(1)])
        out = optimize_circuit(c)
        assert transmon_cost(out) <= transmon_cost(c)

    def test_preserves_unitary(self):
        gates = [H(0), H(0), T(1), T(1), CNOT(0, 1), X(2), X(2), CNOT(0, 1)]
        c = QuantumCircuit(3, gates)
        out = optimize_circuit(c)
        assert np.allclose(out.unitary(), c.unitary())


class TestReport:
    def test_report_records_trace(self):
        optimizer = LocalOptimizer()
        c = QuantumCircuit(1, [H(0), H(0), T(0), T(0)])
        optimizer.run(c)
        report = optimizer.last_report
        assert report is not None
        assert report.initial_cost > report.final_cost
        assert report.percent_decrease > 0
        assert report.cost_trace[0] == report.initial_cost

    def test_report_zero_cost_percent(self):
        optimizer = LocalOptimizer()
        optimizer.run(QuantumCircuit(1))
        assert optimizer.last_report.percent_decrease == 0.0


class TestCostGuard:
    def test_hostile_cost_function_never_worsens(self):
        """A cost that *rewards* more gates: the optimizer must return a
        circuit no worse than the input under that metric."""
        hostile = CostFunction(name="hostile", custom=lambda c: -float(len(c)))
        c = QuantumCircuit(1, [H(0), H(0)])
        out = LocalOptimizer(cost_function=hostile).run(c)
        assert hostile(out) <= hostile(c)

    def test_max_rounds_respected(self):
        optimizer = LocalOptimizer(max_rounds=1)
        c = QuantumCircuit(1, [H(0), H(0)])
        optimizer.run(c)
        assert optimizer.last_report.rounds <= 1


class TestMappedCircuits:
    def test_mapped_toffoli_improves(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        mapped = map_circuit(c, IBMQX4)
        optimizer = LocalOptimizer(coupling_map=IBMQX4.coupling_map)
        out = optimizer.run(mapped)
        assert transmon_cost(out) < transmon_cost(mapped)
        # and conformance still holds
        from repro.backend import check_conformance

        assert check_conformance(out, IBMQX4) == []

    def test_optimized_mapped_circuit_equivalent(self):
        chain = linear_device(5)
        c = QuantumCircuit(5, [TOFFOLI(0, 2, 4), CNOT(4, 0)])
        mapped = map_circuit(c, chain)
        out = LocalOptimizer(coupling_map=chain.coupling_map).run(mapped)
        assert np.allclose(out.unitary(), c.unitary())

    def test_templates_can_be_disabled(self):
        c = QuantumCircuit(1, [H(0), X(0), H(0)])
        out = LocalOptimizer(enable_templates=False).run(c)
        assert out.count("Z") == 0  # conjugation rule never fired
