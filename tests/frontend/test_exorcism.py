"""EXORCISM-style ESOP minimization tests."""

import pytest

from repro.frontend import (
    TruthTable,
    esop_minimize,
    esop_minimize_deep,
    esop_pprm,
    exorcise,
    verify_esop,
)
from repro.frontend.exorcism import _CANCEL, _merge_pair
from repro.io.pla import Cube, CubeList


def cube(text):
    return Cube.from_string(text)


class TestMergePair:
    def test_identical_cubes_cancel(self):
        assert _merge_pair(cube("1-0"), cube("1-0")) is _CANCEL

    def test_opposite_literal_merges_away(self):
        # x C (+) x' C = C
        merged = _merge_pair(cube("10-"), cube("00-"))
        assert merged == cube("-0-")

    def test_bound_vs_free_flips(self):
        # x C (+) C = x' C
        merged = _merge_pair(cube("10-"), cube("-0-"))
        assert merged == cube("00-")
        merged = _merge_pair(cube("-0-"), cube("00-"))
        assert merged == cube("10-")

    def test_distance_two_no_merge(self):
        assert _merge_pair(cube("11-"), cube("00-")) is None
        assert _merge_pair(cube("1--"), cube("-00")) is None


class TestExorcise:
    def test_duplicate_rows_vanish(self):
        cubes = CubeList(2, 1)
        cubes.add(cube("1-"), 1)
        cubes.add(cube("1-"), 1)
        assert len(exorcise(cubes)) == 0

    def test_classic_xor_pair(self):
        # x y' (+) x' y' = y'
        cubes = CubeList(2, 1)
        cubes.add(cube("10"), 1)
        cubes.add(cube("00"), 1)
        out = exorcise(cubes)
        assert len(out) == 1
        assert out.rows[0][0] == cube("-0")

    def test_masks_kept_separate(self):
        cubes = CubeList(2, 2)
        cubes.add(cube("1-"), 0b01)
        cubes.add(cube("1-"), 0b10)  # different output: no cancellation
        assert len(exorcise(cubes)) == 2

    def test_function_preserved_exhaustively(self):
        for value in range(0, 256, 3):
            table = TruthTable.from_hex(f"{value:02x}", 3)
            before = esop_pprm(table)
            after = exorcise(before)
            assert verify_esop(table, after), value
            assert len(after) <= len(before)

    def test_cascading_merges(self):
        """PPRM of NOR has 4 cubes; exorcise collapses toward the single
        negative-literal cube (or equivalent small form)."""
        table = TruthTable.from_hex("1", 2)
        out = exorcise(esop_pprm(table))
        assert verify_esop(table, out)
        assert len(out) <= 3


class TestDeepEffort:
    def test_never_worse_than_fprm(self):
        for hexval, n in [("1", 2), ("96", 3), ("e8", 3), ("033f", 4),
                          ("6996", 4), ("1ee1", 4)]:
            table = TruthTable.from_hex(hexval, n)
            deep = esop_minimize_deep(table)
            fprm = esop_minimize(table, effort="fprm")
            assert verify_esop(table, deep), hexval
            assert len(deep) <= len(fprm), hexval

    def test_effort_dispatch(self):
        table = TruthTable.from_hex("96", 3)
        assert verify_esop(table, esop_minimize(table, effort="deep"))

    def test_front_to_back_with_deep_effort(self):
        from repro import compile_classical_function

        result = compile_classical_function(
            "e8", "ibmqx5", num_inputs=3, effort="deep"
        )
        assert result.verification.equivalent
