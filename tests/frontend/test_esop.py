"""ESOP extraction tests: PPRM spectrum, FPRM search."""

import pytest

from repro.frontend import (
    TruthTable,
    esop_fprm_best,
    esop_fprm_fixed,
    esop_minimize,
    esop_pprm,
    pprm_spectrum,
    verify_esop,
)


class TestPprmSpectrum:
    def test_constant_zero(self):
        assert pprm_spectrum([0, 0, 0, 0]) == [0, 0, 0, 0]

    def test_constant_one(self):
        # f = 1 -> single constant monomial
        assert pprm_spectrum([1, 1, 1, 1]) == [1, 0, 0, 0]

    def test_single_variable(self):
        # f = x1 (LSB of assignment): monomial index 0b01
        assert pprm_spectrum([0, 1, 0, 1]) == [0, 1, 0, 0]

    def test_and(self):
        # f = x0 AND x1: only monomial 0b11
        assert pprm_spectrum([0, 0, 0, 1]) == [0, 0, 0, 1]

    def test_xor(self):
        # f = x0 XOR x1: monomials 01 and 10
        assert pprm_spectrum([0, 1, 1, 0]) == [0, 1, 1, 0]

    def test_transform_is_involution(self):
        column = [1, 0, 1, 1, 0, 0, 1, 0]
        assert pprm_spectrum(pprm_spectrum(column)) == column


class TestPprmEsop:
    def test_all_two_variable_functions(self):
        """Exhaustive: every f: B^2 -> B is realized exactly."""
        for value in range(16):
            table = TruthTable.from_hex(f"{value:x}", 2)
            assert verify_esop(table, esop_pprm(table)), value

    def test_all_three_variable_functions(self):
        for value in range(256):
            table = TruthTable.from_hex(f"{value:02x}", 3)
            assert verify_esop(table, esop_pprm(table)), value

    def test_multi_output(self):
        table = TruthTable(2, 2, [0b00, 0b01, 0b10, 0b11])
        cubes = esop_pprm(table)
        assert verify_esop(table, cubes)

    def test_shared_cube_merged_across_outputs(self):
        """Two outputs with the same monomial share one cube row."""
        table = TruthTable(2, 2, [0, 0, 0, 0b11])  # both outputs = AND
        cubes = esop_pprm(table)
        assert len(cubes) == 1
        assert cubes.rows[0][1] == 0b11


class TestFprm:
    def test_fixed_polarity_correct_for_all_polarities(self):
        table = TruthTable.from_hex("96", 3)
        for polarity in range(8):
            cubes = esop_fprm_fixed(table, polarity)
            assert verify_esop(table, cubes), polarity

    def test_best_no_worse_than_pprm(self):
        for hexval, n in [("e8", 3), ("17", 3), ("033f", 4), ("0356", 4)]:
            table = TruthTable.from_hex(hexval, n)
            best, _ = esop_fprm_best(table)
            assert len(best) <= len(esop_pprm(table))
            assert verify_esop(table, best)

    def test_negative_polarity_wins_for_nor(self):
        """NOR = x̄0 x̄1 is one cube in polarity 11 but 4 cubes in PPRM."""
        table = TruthTable.from_hex("1", 2)
        assert len(esop_pprm(table)) == 4
        best, polarity = esop_fprm_best(table)
        assert len(best) == 1
        assert polarity == 0b11


class TestMinimizeFrontDoor:
    def test_efforts(self):
        table = TruthTable.from_hex("6", 2)
        assert verify_esop(table, esop_minimize(table, effort="pprm"))
        assert verify_esop(table, esop_minimize(table, effort="fprm"))

    def test_unknown_effort(self):
        with pytest.raises(ValueError):
            esop_minimize(TruthTable.from_hex("1", 2), effort="magic")

    def test_constant_zero_gives_empty_list(self):
        table = TruthTable.from_hex("0", 2)
        assert len(esop_minimize(table)) == 0
