"""BDD engine tests."""

import pytest

from repro.core import ReproError
from repro.frontend import BDD, TruthTable, esop_from_bdd, verify_esop


class TestBasics:
    def test_terminals(self):
        b = BDD(2)
        assert b.evaluate(BDD.ZERO, 0b00) == 0
        assert b.evaluate(BDD.ONE, 0b11) == 1

    def test_var(self):
        b = BDD(2)
        x0 = b.var(0)
        assert b.evaluate(x0, 0b10) == 1
        assert b.evaluate(x0, 0b01) == 0

    def test_nvar(self):
        b = BDD(2)
        nx1 = b.nvar(1)
        assert b.evaluate(nx1, 0b00) == 1
        assert b.evaluate(nx1, 0b01) == 0

    def test_var_range_checked(self):
        with pytest.raises(ReproError):
            BDD(2).var(5)

    def test_reduction_rule(self):
        b = BDD(2)
        assert b.node(0, BDD.ONE, BDD.ONE) == BDD.ONE

    def test_hash_consing(self):
        b = BDD(2)
        assert b.var(0) == b.var(0)


class TestApply:
    def test_and_or_xor_match_python(self):
        b = BDD(3)
        x0, x1, x2 = b.var(0), b.var(1), b.var(2)
        f_and = b.and_(x0, x1)
        f_or = b.or_(x1, x2)
        f_xor = b.xor(x0, x2)
        for a in range(8):
            bits = [(a >> 2) & 1, (a >> 1) & 1, a & 1]
            assert b.evaluate(f_and, a) == (bits[0] & bits[1])
            assert b.evaluate(f_or, a) == (bits[1] | bits[2])
            assert b.evaluate(f_xor, a) == (bits[0] ^ bits[2])

    def test_not(self):
        b = BDD(1)
        nx = b.not_(b.var(0))
        assert b.evaluate(nx, 0) == 1
        assert b.evaluate(nx, 1) == 0

    def test_canonicity_of_equal_functions(self):
        b = BDD(2)
        # x0 XOR x1 built two ways
        direct = b.xor(b.var(0), b.var(1))
        via_or = b.and_(
            b.or_(b.var(0), b.var(1)), b.not_(b.and_(b.var(0), b.var(1)))
        )
        assert direct == via_or

    def test_unknown_op(self):
        b = BDD(1)
        with pytest.raises(ReproError):
            b.apply("nand", b.var(0), BDD.ONE)


class TestTruthTableBridge:
    def test_from_truth_table_evaluates(self):
        b = BDD(3)
        column = [1, 0, 1, 1, 0, 0, 1, 0]
        root = b.from_truth_table(column)
        for a in range(8):
            assert b.evaluate(root, a) == column[a]

    def test_sat_count(self):
        b = BDD(3)
        root = b.from_truth_table([1, 0, 1, 1, 0, 0, 1, 0])
        assert b.sat_count(root) == 4
        assert b.sat_count(BDD.ONE) == 8
        assert b.sat_count(BDD.ZERO) == 0

    def test_sat_count_with_skipped_levels(self):
        b = BDD(3)
        # f = x2: node at the bottom level only
        assert b.sat_count(b.var(2)) == 4

    def test_node_count(self):
        b = BDD(2)
        assert b.node_count(b.var(0)) == 1
        assert b.node_count(BDD.ONE) == 0


class TestDisjointCubes:
    def test_cubes_are_disjoint_and_cover(self):
        b = BDD(3)
        column = [1, 0, 1, 1, 0, 0, 1, 1]
        root = b.from_truth_table(column)
        cubes = b.disjoint_cubes(root)
        for a in range(8):
            covering = [c for c in cubes if c.covers(a)]
            assert len(covering) == (1 if column[a] else 0), a

    def test_esop_from_bdd_all_three_var_functions(self):
        for value in range(0, 256, 7):  # sampled for speed
            table = TruthTable.from_hex(f"{value:02x}", 3)
            assert verify_esop(table, esop_from_bdd(table)), value

    def test_esop_from_bdd_multi_output(self):
        table = TruthTable(2, 2, [0b01, 0b10, 0b11, 0b00])
        assert verify_esop(table, esop_from_bdd(table))

    def test_shared_subgraph_compactness(self):
        """A symmetric function's BDD is smaller than its cube count."""
        b = BDD(4)
        # parity of 4 variables: 8 disjoint cubes but only 7 BDD nodes
        parity = [bin(a).count("1") & 1 for a in range(16)]
        root = b.from_truth_table(parity)
        assert b.node_count(root) == 7
        assert len(b.disjoint_cubes(root)) == 8
