"""TruthTable tests, including the paper's hex naming convention."""

import pytest

from repro.core import ParseError
from repro.frontend import TruthTable


class TestConstruction:
    def test_explicit_rows(self):
        t = TruthTable(2, 1, [1, 0, 0, 0])
        assert t.evaluate(0) == 1
        assert t.evaluate(3) == 0

    def test_row_count_checked(self):
        with pytest.raises(ParseError):
            TruthTable(2, 1, [1, 0, 0])

    def test_row_value_range_checked(self):
        with pytest.raises(ParseError):
            TruthTable(1, 1, [0, 2])

    def test_from_function(self):
        t = TruthTable.from_function(lambda a: a & 1, 3)
        assert t.outputs == [0, 1] * 4

    def test_from_bits(self):
        t = TruthTable.from_bits([0, 1, 1, 0])
        assert t.num_inputs == 2
        with pytest.raises(ParseError):
            TruthTable.from_bits([0, 1, 1])


class TestHexNaming:
    """The paper's #h benchmark naming: bit i of the value is f(i)."""

    def test_hash_1_is_nor(self):
        t = TruthTable.from_hex("1", 2)
        assert t.outputs == [1, 0, 0, 0]

    def test_hash_3_is_not_msb(self):
        # f(0)=f(1)=1: true iff the assignment's MSB (variable 0) is 0.
        t = TruthTable.from_hex("3", 2)
        assert t.outputs == [1, 1, 0, 0]

    def test_hash_033f(self):
        t = TruthTable.from_hex("033f", 4)
        expected = [(0x033F >> i) & 1 for i in range(16)]
        assert t.outputs == expected

    def test_hex_roundtrip(self):
        t = TruthTable.from_hex("0356", 4)
        assert t.hex_string() == "0356"

    def test_too_wide_value_rejected(self):
        with pytest.raises(ParseError):
            TruthTable.from_hex("1ff", 2)


class TestQueries:
    def test_output_column_and_projection(self):
        t = TruthTable(1, 2, [0b10, 0b01])
        assert t.output_column(0) == [0, 1]
        assert t.output_column(1) == [1, 0]
        assert t.single_output(1).outputs == [1, 0]

    def test_ones_count(self):
        assert TruthTable.from_hex("3", 2).ones_count == 2
        assert TruthTable.from_hex("0", 2).ones_count == 0

    def test_equality(self):
        assert TruthTable.from_hex("7", 2) == TruthTable.from_hex("07", 2)
        assert TruthTable.from_hex("7", 2) != TruthTable.from_hex("7", 3)

    def test_repr(self):
        assert "hex=" in repr(TruthTable.from_hex("3", 2))
