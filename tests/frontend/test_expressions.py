"""Boolean-expression front-end tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ParseError
from repro.frontend import (
    expression_variables,
    synthesize_expressions,
    truth_table_from_expressions,
    verify_cascade,
)


def python_eval(expression: str, names, assignment: int) -> int:
    env = {
        name: (assignment >> (len(names) - 1 - i)) & 1
        for i, name in enumerate(names)
    }
    return eval(expression, {"__builtins__": {}}, env) & 1  # noqa: S307 - test oracle


class TestParsing:
    def test_variable_order_first_appearance(self):
        assert expression_variables(["b & a", "c ^ a"]) == ["b", "a", "c"]

    def test_simple_operators(self):
        table, order = truth_table_from_expressions(["a & b"])
        assert order == ["a", "b"]
        assert table.outputs == [0, 0, 0, 1]
        table, _ = truth_table_from_expressions(["a | b"])
        assert table.outputs == [0, 1, 1, 1]
        table, _ = truth_table_from_expressions(["a ^ b"])
        assert table.outputs == [0, 1, 1, 0]
        table, _ = truth_table_from_expressions(["~a"])
        assert table.outputs == [1, 0]

    def test_constants(self):
        table, _ = truth_table_from_expressions(["a & 0"])
        assert table.outputs == [0, 0]
        table, _ = truth_table_from_expressions(["a | 1"])
        assert table.outputs == [1, 1]

    def test_precedence_and_parentheses(self):
        # ~ binds tighter than &, & tighter than ^, ^ tighter than |
        table, _ = truth_table_from_expressions(["~a & b"])
        assert table.outputs == [0, 1, 0, 0]
        grouped, _ = truth_table_from_expressions(["a & (b | c)"])
        flat, _ = truth_table_from_expressions(["a & b | a & c"])
        assert grouped.outputs == flat.outputs

    def test_explicit_variable_order(self):
        table, order = truth_table_from_expressions(["a"], variables=["b", "a"])
        assert order == ["b", "a"]
        assert table.outputs == [0, 1, 0, 1]

    def test_errors(self):
        with pytest.raises(ParseError):
            truth_table_from_expressions(["a &"])
        with pytest.raises(ParseError):
            truth_table_from_expressions(["(a"])
        with pytest.raises(ParseError):
            truth_table_from_expressions(["a @ b"])
        with pytest.raises(ParseError):
            truth_table_from_expressions([])
        with pytest.raises(ParseError):
            truth_table_from_expressions(["1"])  # no variables
        with pytest.raises(ParseError):
            truth_table_from_expressions(["a"], variables=["b"])  # unknown a


class TestAgainstPythonOracle:
    @pytest.mark.parametrize(
        "expression",
        [
            "a & b | a & c | b & c",
            "a ^ b ^ c",
            "~(a & b) ^ (c | a)",
            "(a | ~b) & (~a | c) & (b | c)",
        ],
    )
    def test_tabulation_matches_python(self, expression):
        table, order = truth_table_from_expressions([expression])
        for assignment in range(1 << len(order)):
            assert table.evaluate(assignment) == python_eval(
                expression, order, assignment
            ), assignment

    def test_multi_output_full_adder(self):
        table, order = truth_table_from_expressions(
            ["a ^ b ^ cin", "a & b | cin & (a ^ b)"]
        )
        assert order == ["a", "b", "cin"]
        for assignment in range(8):
            a = (assignment >> 2) & 1
            b = (assignment >> 1) & 1
            cin = assignment & 1
            total = a + b + cin
            word = table.evaluate(assignment)
            assert word & 1 == total & 1        # sum
            assert (word >> 1) & 1 == total >> 1  # carry


class TestSynthesis:
    def test_cascade_verified(self):
        expressions = ["a & b | a & c | b & c", "a ^ b ^ c"]
        table, _ = truth_table_from_expressions(expressions)
        circuit = synthesize_expressions(expressions)
        assert verify_cascade(table, circuit)

    def test_end_to_end_compile(self):
        from repro import compile_circuit

        circuit = synthesize_expressions(["a & b ^ ~c"], name="mix")
        result = compile_circuit(circuit, "ibmqx5")
        assert result.verification.equivalent

    @given(st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_random_3var_functions_via_expression(self, value):
        """Any 3-variable function expressed as minterms round-trips."""
        minterms = [
            f"{'a' if (m >> 2) & 1 else '~a'} & "
            f"{'b' if (m >> 1) & 1 else '~b'} & "
            f"{'c' if m & 1 else '~c'}"
            for m in range(8)
            if (value >> m) & 1
        ]
        if not minterms:
            return
        expression = " | ".join(f"({term})" for term in minterms)
        table, order = truth_table_from_expressions(
            [expression], variables=["a", "b", "c"]
        )
        for assignment in range(8):
            expected = (value >> assignment) & 1
            assert table.evaluate(assignment) == expected
