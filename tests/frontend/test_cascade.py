"""Fazel-Thornton cascade generation tests."""

import pytest

from repro.core import Gate, SynthesisError, X
from repro.frontend import (
    TruthTable,
    cascade_from_cubes,
    single_target_gate,
    synthesize_truth_table,
    verify_cascade,
)
from repro.io import Cube, CubeList


class TestCascadeStructure:
    def test_positive_cube_is_bare_mcx(self):
        cubes = CubeList(3, 1)
        cubes.add(Cube.from_string("111"), 1)
        circuit = cascade_from_cubes(cubes)
        assert len(circuit) == 1
        assert circuit[0].name == "MCX"
        assert circuit[0].controls == (0, 1, 2)
        assert circuit[0].target == 3

    def test_single_literal_cube_is_cnot(self):
        cubes = CubeList(2, 1)
        cubes.add(Cube.from_string("1-"), 1)
        assert cascade_from_cubes(cubes)[0].name == "CNOT"

    def test_constant_cube_is_x(self):
        cubes = CubeList(2, 1)
        cubes.add(Cube.from_string("--"), 1)
        assert cascade_from_cubes(cubes).gates == (X(2),)

    def test_negative_literals_conjugated(self):
        cubes = CubeList(2, 1)
        cubes.add(Cube.from_string("00"), 1)
        circuit = cascade_from_cubes(cubes)
        # X on both controls, the gate, X back: 5 gates
        assert circuit.count("X") == 4
        assert circuit.count("TOFFOLI") == 1

    def test_polarity_reuse_between_cubes(self):
        """Two cubes sharing a negation must not pay the NOT pair twice."""
        cubes = CubeList(2, 1)
        cubes.add(Cube.from_string("01"), 1)
        cubes.add(Cube.from_string("00"), 1)
        circuit = cascade_from_cubes(cubes)
        # naive: 2+2 X per cube = 6 X total; with tracking: 2 X around both
        assert circuit.count("X") <= 4

    def test_polarity_restored_at_end(self):
        cubes = CubeList(2, 1)
        cubes.add(Cube.from_string("00"), 1)
        table = TruthTable(2, 1, [1, 0, 0, 0])
        assert verify_cascade(table, cascade_from_cubes(cubes))

    def test_multi_output_targets(self):
        cubes = CubeList(2, 2)
        cubes.add(Cube.from_string("11"), 0b11)
        circuit = cascade_from_cubes(cubes)
        targets = [g.target for g in circuit]
        assert sorted(targets) == [2, 3]


class TestSynthesizeTruthTable:
    @pytest.mark.parametrize("hexval,n", [("1", 2), ("6", 2), ("e8", 3), ("96", 3),
                                          ("033f", 4), ("0356", 4), ("ffff", 4)])
    def test_correctness(self, hexval, n):
        table = TruthTable.from_hex(hexval, n)
        circuit = synthesize_truth_table(table)
        assert verify_cascade(table, circuit)

    def test_exhaustive_three_variables(self):
        for value in range(0, 256, 5):
            table = TruthTable.from_hex(f"{value:02x}", 3)
            assert verify_cascade(table, synthesize_truth_table(table)), value

    def test_multi_output_adder_bit(self):
        """Half adder: sum and carry of two bits."""
        def half_adder(a):
            x, y = (a >> 1) & 1, a & 1
            return ((x & y) << 1) | (x ^ y)

        table = TruthTable.from_function(half_adder, 2, 2)
        circuit = synthesize_truth_table(table)
        assert verify_cascade(table, circuit)

    def test_output_is_reversible_cascade(self):
        table = TruthTable.from_hex("033f", 4)
        circuit = synthesize_truth_table(table)
        assert circuit.is_classical_reversible


class TestSingleTargetGate:
    def test_flips_target_iff_control_function(self):
        table = TruthTable.from_hex("e8", 3)  # majority
        circuit = single_target_gate(table)
        assert circuit.num_qubits == 4
        from repro.verify import evaluate

        for a in range(8):
            out = evaluate(circuit, a << 1)
            assert out >> 1 == a
            assert (out & 1) == table.evaluate(a)

    def test_multi_output_rejected(self):
        table = TruthTable(2, 2, [0, 1, 2, 3])
        with pytest.raises(SynthesisError):
            single_target_gate(table)

    def test_paper_hash3_is_three_gates(self):
        """#3 = NOT x0 realizes as X-CNOT-X: the paper's 0 T / 3 gates."""
        table = TruthTable.from_hex("3", 2)
        circuit = single_target_gate(table)
        assert circuit.gate_volume == 3
        assert circuit.t_count == 0
        names = sorted(g.name for g in circuit)
        assert names == ["CNOT", "X", "X"]
