"""Diagnostics must survive the batch cache's JSON round-trip (payload v5)."""

from repro.analysis import Diagnostic, DiagnosticReport
from repro.batch.serialize import (
    PAYLOAD_VERSION,
    result_from_payload,
    result_to_payload,
)
from repro.compiler import compile_circuit
from repro.core.circuit import QuantumCircuit
from repro.core.gates import TOFFOLI
from repro.devices import get_device


def _result():
    circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")
    return compile_circuit(circuit, get_device("ibmqx4"), verify=False)


def test_payload_version_is_five():
    assert PAYLOAD_VERSION == 5


def test_round_trip_preserves_dataflow_payload():
    circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")
    result = compile_circuit(
        circuit, get_device("ibmqx4"), verify=False, known_zero=[2],
    )
    assert result.dataflow is not None
    rebuilt = result_from_payload(result_to_payload(result))
    assert rebuilt.dataflow == result.dataflow
    assert rebuilt.dataflow["known_zero"] == result.dataflow["known_zero"]


def test_no_facts_round_trips_as_none():
    rebuilt = result_from_payload(result_to_payload(_result()))
    assert rebuilt.dataflow is None


def test_known_zero_is_part_of_the_cache_key():
    from repro.batch.cache import job_cache_key

    circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")
    device = get_device("ibmqx4")
    plain = job_cache_key(circuit, device, {"verify": False})
    facts = job_cache_key(
        circuit, device, {"verify": False, "known_zero": (2,)}
    )
    assert plain != facts
    # Fact order must not split the cache.
    reordered = job_cache_key(
        circuit, device, {"verify": False, "known_zero": (2, 0)}
    )
    swapped = job_cache_key(
        circuit, device, {"verify": False, "known_zero": (0, 2)}
    )
    assert reordered == swapped


def test_batch_job_normalizes_known_zero():
    from repro.batch.engine import CompileJob

    circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")
    job = CompileJob.make(
        circuit, "ibmqx4", {"verify": False, "known_zero": [2, 0]},
    )
    assert dict(job.options)["known_zero"] == (0, 2)
    result = job.run()
    assert result.dataflow is not None


def test_round_trip_empty_diagnostics():
    result = _result()
    rebuilt = result_from_payload(result_to_payload(result))
    assert rebuilt is not None
    assert rebuilt.diagnostics == DiagnosticReport()


def test_round_trip_preserves_diagnostics():
    result = _result()
    result.diagnostics.append(
        Diagnostic.make(
            "REPRO201", "CNOT(q0, q1) illegal", gate_index=4,
            qubits=(0, 1), stage="mapped", hint="reverse it",
        )
    )
    result.diagnostics.append(
        Diagnostic.make("REPRO401", "identity window", stage="optimized"),
    )
    rebuilt = result_from_payload(result_to_payload(result))
    assert rebuilt.diagnostics == result.diagnostics
    assert rebuilt.diagnostics.codes() == ["REPRO201", "REPRO401"]


def test_version_one_payload_reads_as_miss():
    payload = result_to_payload(_result())
    payload["version"] = 1
    assert result_from_payload(payload) is None


def test_batch_options_accept_strict_and_analyze():
    from repro.batch.engine import CompileJob

    circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")
    job = CompileJob.make(
        circuit, "ibmqx4",
        {"verify": False, "strict": True, "analyze": True},
    )
    result = job.run()
    assert not result.diagnostics


def test_batch_report_surfaces_diagnostics(monkeypatch):
    import repro.backend.mapper as mapper_module
    from repro.batch import compile_many
    from tests.analysis.test_contracts import broken_legalize

    monkeypatch.setattr(mapper_module, "legalize_cnots", broken_legalize)
    circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")
    report = compile_many(
        [(circuit, "ibmqx4", {"verify": False})], workers=1
    )
    flagged = report.diagnostics()
    assert flagged
    label, diagnostic = flagged[0]
    assert label == "ccx@ibmqx4"
    assert diagnostic.code == "REPRO201"
    assert "diagnostics" in report.summary()
