"""Batch compilation engine: ordering, parallelism, error capture."""

import pytest

from repro import (
    CNOT,
    H,
    QuantumCircuit,
    S,
    T,
    TOFFOLI,
    X,
    compile_circuit,
    compile_many,
    get_device,
)
from repro.batch import BatchReport, CompilationCache, CompileJob
from repro.core.cost import CostFunction
from repro.core.exceptions import ReproError
from repro.io import to_qasm


def small_circuits():
    return [
        QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell"),
        QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx"),
        QuantumCircuit(2, [T(0), S(1), CNOT(1, 0)], name="misc"),
        QuantumCircuit(1, [X(0), H(0)], name="xh"),
    ]


OPTIONS = {"verify": False}


class TestJobNormalization:
    def test_tuples_and_jobs_accepted(self):
        circuit = QuantumCircuit(1, [X(0)], name="x")
        report = compile_many(
            [
                (circuit, "ibmqx4"),
                (circuit, get_device("ibmqx4"), OPTIONS),
                CompileJob.make(circuit, "ibmqx4", OPTIONS),
            ]
        )
        assert report.ok
        assert len(report) == 3

    def test_unknown_option_rejected(self):
        circuit = QuantumCircuit(1, [X(0)])
        with pytest.raises(ReproError, match="unknown compile option"):
            CompileJob.make(circuit, "ibmqx4", {"optimise": True})

    def test_bad_job_shape_rejected(self):
        with pytest.raises(ReproError, match="jobs must be"):
            compile_many(["not a job"])

    def test_label_defaults_to_name_at_device(self):
        circuit = QuantumCircuit(1, [X(0)], name="x")
        job = CompileJob.make(circuit, "ibmqx4")
        assert job.label == "x@ibmqx4"

    def test_workers_must_be_positive(self):
        with pytest.raises(ReproError, match="workers"):
            compile_many([], workers=0)


class TestSerialSemantics:
    def test_matches_compile_circuit(self):
        device = get_device("ibmqx4")
        circuits = small_circuits()
        report = compile_many(
            [(c, device, OPTIONS) for c in circuits], workers=1
        )
        for circuit, entry in zip(circuits, report):
            direct = compile_circuit(circuit, device, verify=False)
            assert to_qasm(entry.result.optimized) == to_qasm(direct.optimized)
            assert entry.result.optimized_metrics == direct.optimized_metrics

    def test_deterministic_submission_order(self):
        device = get_device("ibmqx4")
        circuits = small_circuits()
        report = compile_many(
            [(c, device, OPTIONS) for c in circuits], workers=1
        )
        assert [entry.job.circuit.name for entry in report] == [
            c.name for c in circuits
        ]
        assert [entry.index for entry in report] == list(range(len(circuits)))


class TestParallelSemantics:
    def test_parallel_byte_identical_to_serial(self):
        device = get_device("ibmqx4")
        circuits = small_circuits()
        jobs = [(c, device, OPTIONS) for c in circuits]
        serial = compile_many(jobs, workers=1)
        parallel = compile_many(jobs, workers=2)
        assert parallel.workers == 2
        for left, right in zip(serial, parallel):
            assert to_qasm(left.result.optimized) == to_qasm(
                right.result.optimized
            )
            assert to_qasm(left.result.unoptimized) == to_qasm(
                right.result.unoptimized
            )
            assert (
                left.result.optimized_metrics == right.result.optimized_metrics
            )

    def test_parallel_preserves_order_and_errors(self):
        device = get_device("ibmqx4")
        wide = QuantumCircuit(16, [X(0)], name="wide")  # > 5 qubits: N/A
        circuits = small_circuits()
        jobs = [(c, device, OPTIONS) for c in circuits[:2]]
        jobs.append((wide, device, OPTIONS))
        jobs += [(c, device, OPTIONS) for c in circuits[2:]]
        report = compile_many(jobs, workers=2)
        assert [e.job.circuit.name for e in report] == [
            "bell",
            "ccx",
            "wide",
            "misc",
            "xh",
        ]
        assert not report[2].ok
        assert report[2].error.not_synthesizable
        assert all(e.ok for i, e in enumerate(report) if i != 2)

    def test_unpicklable_job_falls_back_to_serial(self):
        device = get_device("ibmqx4")
        opaque = CostFunction(custom=lambda c: float(len(c)))
        circuits = small_circuits()[:2]
        jobs = [
            (circuits[0], device, OPTIONS),
            (circuits[1], device, dict(OPTIONS, cost_function=opaque)),
        ]
        report = compile_many(jobs, workers=2)
        assert report.ok
        assert report.serial_fallbacks == 1


class TestErrorCapture:
    def test_not_synthesizable_is_structured(self):
        wide = QuantumCircuit(16, [X(0)], name="wide")
        report = compile_many([(wide, "ibmqx4", OPTIONS)])
        entry = report[0]
        assert not entry.ok
        assert entry.error.not_synthesizable
        assert entry.error.exception_type == "NotSynthesizableError"
        assert entry.error.message
        with pytest.raises(ReproError, match="wide@ibmqx4"):
            entry.unwrap()

    def test_one_failure_does_not_mask_others(self):
        device = get_device("ibmqx4")
        good = QuantumCircuit(2, [H(0), CNOT(0, 1)], name="good")
        bad = QuantumCircuit(16, [X(0)], name="bad")
        report = compile_many(
            [(bad, device, OPTIONS), (good, device, OPTIONS)]
        )
        assert not report.ok
        assert len(report.errors()) == 1
        assert len(report.successes()) == 1
        assert report.successes()[0].job.circuit.name == "good"


class TestReport:
    def test_summary_mentions_counts(self):
        circuit = QuantumCircuit(1, [X(0)], name="x")
        report = compile_many([(circuit, "ibmqx4", OPTIONS)])
        assert isinstance(report, BatchReport)
        summary = report.summary()
        assert "1 jobs" in summary
        assert "0 failed" in summary
        assert "workers=1" in summary

    def test_cache_hits_counted(self):
        cache = CompilationCache()
        circuit = QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell")
        jobs = [(circuit, "ibmqx4", OPTIONS)]
        first = compile_many(jobs, cache=cache)
        second = compile_many(jobs, cache=cache)
        assert first.cache_hits == 0
        assert second.cache_hits == 1
        assert second[0].from_cache
