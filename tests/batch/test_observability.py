"""Batch observability: honest cache accounting, worker metrics
shipping, and timeout-guard degradation (REPRO712)."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.batch import CompilationCache, CompileJob, compile_many
from repro.batch.serialize import result_from_payload, result_to_payload
from repro.compiler import compile_circuit
from repro.core.circuit import QuantumCircuit
from repro.core.gates import CNOT, H, T, TOFFOLI
from repro.devices import get_device


def _jobs(count=3, verify=False):
    circuits = [
        QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell"),
        QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx"),
        QuantumCircuit(2, [T(0), CNOT(1, 0)], name="misc"),
    ]
    return [
        CompileJob.make(circuit, "ibmqx4", {"verify": verify})
        for circuit in circuits[:count]
    ]


class TestHonestCacheAccounting:
    def test_warm_parallel_rerun_reports_hits(self, tmp_path):
        """The regression the observability layer exists to catch: a
        second identical batch over a shared cache must report a nonzero
        per-run hit rate, with parallel workers in play."""
        cache = CompilationCache(directory=str(tmp_path))
        jobs = _jobs()
        cold = compile_many(jobs, cache=cache, workers=2)
        assert cold.cache_stats["hits"] == 0
        assert cold.cache_stats["misses"] == len(jobs)
        warm = compile_many(jobs, cache=cache, workers=2)
        assert warm.cache_stats["hits"] == len(jobs)
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["hit_rate"] == 1.0

    def test_cache_stats_are_per_run_with_lifetime_attached(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path))
        jobs = _jobs()
        compile_many(jobs, cache=cache, workers=1)
        warm = compile_many(jobs, cache=cache, workers=1)
        # The delta is this run's work; cumulative history lives under
        # "lifetime" (the pre-fix behavior, kept for session views).
        assert warm.cache_stats["stores"] == 0
        lifetime = warm.cache_stats["lifetime"]
        assert lifetime["hits"] == len(jobs)
        assert lifetime["misses"] == len(jobs)
        assert lifetime["hit_rate"] == pytest.approx(0.5)

    def test_stats_delta_recomputes_hit_rate(self):
        before = {"hits": 10, "misses": 10, "stores": 10}
        after = {"hits": 14, "misses": 10, "stores": 10}
        delta = CompilationCache.stats_delta(before, after)
        assert delta["hits"] == 4 and delta["misses"] == 0
        assert delta["hit_rate"] == 1.0

    def test_cache_delta_feeds_batch_metrics(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path))
        jobs = _jobs()
        compile_many(jobs, cache=cache, workers=1)
        warm = compile_many(jobs, cache=cache, workers=1)
        assert warm.metrics["counters"]["cache.hits"] == len(jobs)


class TestCacheDiskReporting:
    def test_disk_enabled_vs_opened(self, tmp_path):
        lazy = CompilationCache(directory=str(tmp_path / "never_created"))
        stats = lazy.stats()
        assert stats["disk_enabled"] is True
        assert stats["disk_opened"] is False
        assert CompilationCache().stats()["disk_enabled"] is False
        assert lazy.to_dict() == lazy.stats()

    def test_open_time_eviction_trims_to_cap(self, tmp_path):
        writer = CompilationCache(directory=str(tmp_path))
        result = compile_circuit(
            QuantumCircuit(2, [H(0)], name="h"), get_device("ibmqx4"),
            verify=False,
        )
        for index in range(5):
            writer.put(f"{index:064x}", result)
        assert writer.stats()["disk_entries"] == 5
        capped = CompilationCache(
            directory=str(tmp_path), max_disk_entries=2
        )
        stats = capped.stats()
        assert stats["disk_entries"] == 2
        assert stats["disk_evictions"] == 3


class TestMetricsShipping:
    def test_worker_metrics_merge_back(self):
        jobs = _jobs(verify="qmdd")
        report = compile_many(jobs, workers=2)
        counters = report.metrics["counters"]
        # Work done inside pool workers must be visible here.
        assert counters["compile.calls"] == len(jobs)
        assert counters["verify.qmdd_checks"] == len(jobs)
        assert "qmdd.unique_nodes" in report.metrics["gauges"]

    def test_serial_metrics_collected(self):
        jobs = _jobs()
        report = compile_many(jobs, workers=1)
        assert report.metrics["counters"]["compile.calls"] == len(jobs)
        assert report.metrics["counters"]["optimizer.runs"] == len(jobs)


class TestTimeoutDegradation:
    def test_non_main_thread_degrades_instead_of_raising(self):
        """Serial-mode SIGALRM can only be armed on the main thread; a
        coordinator on any other thread must degrade to no-timeout and
        account for it, never die on ValueError."""
        jobs = _jobs(count=2)
        with ThreadPoolExecutor(max_workers=1) as pool:
            report = pool.submit(
                compile_many, jobs, workers=1, timeout=30.0
            ).result()
        assert all(entry.ok for entry in report)
        assert report.timeout_unenforced == len(jobs)
        assert "timeout(s) unenforced" in report.summary()
        assert "REPRO712" in [d.code for d in report.health()]

    def test_main_thread_timeout_stays_enforced_and_clean(self):
        report = compile_many(_jobs(count=1), workers=1, timeout=30.0)
        assert report.timeout_unenforced == 0
        assert "REPRO712" not in [d.code for d in report.health()]
        assert "unenforced" not in report.summary()


class TestTraceThroughBatch:
    def test_trace_survives_payload_round_trip(self):
        result = compile_circuit(
            QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx"),
            get_device("ibmqx4"), verify=False, trace=True,
        )
        assert result.trace and result.trace["spans"]
        rebuilt = result_from_payload(result_to_payload(result))
        assert rebuilt.trace == result.trace

    def test_trace_option_accepted_by_batch(self):
        circuit = QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell")
        report = compile_many(
            [(circuit, "ibmqx4", {"verify": False, "trace": True})],
            workers=1,
        )
        trace = report[0].result.trace
        assert trace["spans"][0]["name"] == "compile"

    def test_trace_not_part_of_cache_key(self):
        circuit = QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell")
        untraced = CompileJob.make(circuit, "ibmqx4", {"verify": False})
        traced = CompileJob.make(
            circuit, "ibmqx4", {"verify": False, "trace": True}
        )
        assert untraced.cache_key() == traced.cache_key()
