"""Batch-engine fault tolerance, driven by deterministic fault injection.

Every recovery path in :mod:`repro.batch.engine` is exercised here via
the ``REPRO_FAULT_INJECT`` hook (:mod:`repro.batch.faults`): worker
kills, soft and signal-proof hangs, transient flakiness, and Ctrl-C.
The invariant under test throughout: **the batch always returns a
complete report** — every submitted job gets a slot with either a
result or a structured per-job error, no matter what died along the way.
"""

import pytest

from repro import CNOT, H, QuantumCircuit, T, TOFFOLI, X, compile_many
from repro.batch import faults
from repro.core.exceptions import ReproError

OPTIONS = {"verify": False}


def jobs(*names):
    built = {
        "bell": QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell"),
        "ccx": QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx"),
        "misc": QuantumCircuit(2, [T(0), CNOT(1, 0)], name="misc"),
        "xh": QuantumCircuit(1, [X(0), H(0)], name="xh"),
    }
    return [(built[name], "ibmqx4", OPTIONS) for name in names]


@pytest.fixture
def inject(monkeypatch, tmp_path):
    """Arm a fault spec with a fresh cross-process state directory, so
    limited specs count firings correctly regardless of test order."""

    def arm(spec):
        monkeypatch.setenv(faults.FAULT_ENV, spec)
        monkeypatch.setenv(faults.FAULT_STATE_ENV, str(tmp_path / "fuse"))

    return arm


class TestSpecParsing:
    def test_basic_and_limited(self):
        specs = faults.parse_specs("kill:bell, hang:*:3")
        assert specs[0] == faults.FaultSpec("kill", "bell", None)
        assert specs[1] == faults.FaultSpec("hang", "*", 3)

    def test_wildcard_and_substring_match(self):
        spec = faults.FaultSpec("kill", "bell")
        assert spec.matches("bell@ibmqx4")
        assert not spec.matches("ccx@ibmqx4")
        assert faults.FaultSpec("kill", "*").matches("anything")

    @pytest.mark.parametrize("bad", [
        "explode:bell",        # unknown action
        "kill",                # missing target
        "kill:bell:zero",      # non-integer limit
        "kill:bell:0",         # limit < 1
        "kill:bell:1:extra",   # too many fields
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ReproError):
            faults.parse_specs(bad)

    def test_inactive_is_noop(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_ENV, raising=False)
        assert faults.fire("worker", "bell@ibmqx4") is False


class TestKilledWorker:
    def test_single_kill_recovers_by_retry(self, inject):
        """A worker murdered once mid-batch: the pool is rebuilt, the
        in-flight jobs are retried, and the report is complete with
        every job succeeding."""
        inject("kill:bell:1")
        report = compile_many(jobs("bell", "ccx", "misc", "xh"), workers=2)
        assert len(report) == 4
        assert report.ok, [str(e.error) for e in report.errors()]
        assert report.pool_restarts >= 1
        assert report.retry_count >= 1
        assert any(entry.retried for entry in report)

    def test_persistent_killer_is_contained(self, inject):
        """A job that kills every worker it touches exhausts its crash
        budget, is deferred to serial execution (where the kill degrades
        to a catchable error), and cannot take the innocents with it."""
        inject("kill:ccx")
        report = compile_many(
            jobs("bell", "ccx", "misc", "xh"), workers=2, chunk_size=1
        )
        assert len(report) == 4
        by_name = {entry.job.circuit.name: entry for entry in report}
        assert not by_name["ccx"].ok
        assert by_name["ccx"].error.exception_type in (
            "FaultInjectedError", "WorkerCrashError"
        )
        for name in ("bell", "misc", "xh"):
            assert by_name[name].ok, str(by_name[name].error)

    def test_pool_broken_during_submit_is_contained(self, monkeypatch):
        """A fast killer can murder its worker while the coordinator is
        still submitting chunks, at which point the *next* submit raises
        BrokenProcessPool.  That must recover like any other crash —
        unsubmitted jobs requeue blame-free on a fresh pool — instead of
        escaping ``compile_many``."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.batch import engine

        real_executor = engine.ProcessPoolExecutor
        breaks_armed = {"count": 1}

        class FlakySubmitPool(real_executor):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._submits = 0

            def submit(self, *args, **kwargs):
                self._submits += 1
                if self._submits == 2 and breaks_armed["count"] > 0:
                    breaks_armed["count"] -= 1
                    raise BrokenProcessPool(
                        "worker died before submission finished"
                    )
                return super().submit(*args, **kwargs)

        monkeypatch.setattr(engine, "ProcessPoolExecutor", FlakySubmitPool)
        report = compile_many(
            jobs("bell", "ccx", "misc", "xh"), workers=2, chunk_size=1
        )
        assert len(report) == 4
        assert report.ok, [str(e.error) for e in report.errors()]


class TestTimeouts:
    def test_serial_hang_times_out(self, inject):
        inject("hang:ccx")
        report = compile_many(
            jobs("bell", "ccx", "misc"), workers=1, timeout=1.0, retries=0
        )
        assert len(report) == 3
        by_name = {entry.job.circuit.name: entry for entry in report}
        assert by_name["ccx"].timed_out
        assert by_name["ccx"].error.exception_type == "JobTimeoutError"
        assert by_name["bell"].ok and by_name["misc"].ok
        assert report.timeout_count == 1
        assert len(report.timeouts()) == 1

    def test_pool_hang_times_out_in_worker(self, inject):
        """The soft hang is interrupted by the worker-side alarm guard —
        the pool never needs reclaiming."""
        inject("hang:ccx")
        report = compile_many(
            jobs("bell", "ccx", "misc"), workers=2, timeout=1.0, retries=0
        )
        assert len(report) == 3
        by_name = {entry.job.circuit.name: entry for entry in report}
        assert by_name["ccx"].timed_out
        assert by_name["bell"].ok and by_name["misc"].ok

    def test_hard_hang_reclaimed_by_coordinator(self, inject):
        """A worker stuck with SIGALRM blocked cannot be saved by its
        own alarm; the coordinator backstop must reclaim the pool and
        still return a complete report."""
        inject("hang-hard:ccx")
        report = compile_many(
            jobs("bell", "ccx"), workers=2, timeout=0.5, retries=0
        )
        assert len(report) == 2
        by_name = {entry.job.circuit.name: entry for entry in report}
        assert not by_name["ccx"].ok
        assert by_name["ccx"].error.exception_type == "JobTimeoutError"

    def test_timeout_forces_unit_chunks(self, inject):
        inject("hang:ccx")
        report = compile_many(
            jobs("bell", "ccx", "misc", "xh"), workers=2,
            timeout=1.0, retries=0,
        )
        assert report.chunk_size == 1

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ReproError, match="timeout"):
            compile_many(jobs("bell"), timeout=0.0)

    def test_invalid_retries_rejected(self):
        with pytest.raises(ReproError, match="retries"):
            compile_many(jobs("bell"), retries=-1)


class TestRetries:
    def test_flaky_job_succeeds_on_retry(self, inject):
        inject("flaky:misc:1")
        report = compile_many(jobs("bell", "misc"), workers=1, retries=1)
        assert report.ok
        by_name = {entry.job.circuit.name: entry for entry in report}
        assert by_name["misc"].attempts == 2
        assert by_name["misc"].retried
        assert by_name["bell"].attempts == 1
        assert report.retry_count == 1
        assert report.retried() == [by_name["misc"]]

    def test_retries_zero_records_first_failure(self, inject):
        inject("flaky:misc:1")
        report = compile_many(jobs("misc"), workers=1, retries=0)
        assert not report.ok
        assert report[0].error.exception_type == "FaultInjectedError"
        assert report[0].error.transient

    def test_budget_exhaustion_records_error(self, inject):
        inject("flaky:misc")  # unlimited: every attempt flakes
        report = compile_many(jobs("misc"), workers=1, retries=2)
        assert not report.ok
        assert report[0].attempts == 3  # initial + 2 retries
        assert report.retry_count == 2

    def test_deterministic_errors_never_retried(self):
        wide = QuantumCircuit(30, [CNOT(0, 29)], name="wide")
        report = compile_many(
            [(wide, "ibmqx4", OPTIONS)], workers=1, retries=3
        )
        assert not report.ok
        assert report[0].attempts == 1
        assert report[0].error.not_synthesizable
        assert not report[0].error.transient


class TestInterrupt:
    def test_interrupt_flushes_completed_results(self, inject):
        """Ctrl-C mid-batch: completed slots keep their results, the
        rest carry KeyboardInterrupt job errors, and the report says
        interrupted — nothing is lost, nothing raises."""
        inject("interrupt:misc:1")
        report = compile_many(jobs("bell", "misc", "xh"), workers=1)
        assert report.interrupted
        assert len(report) == 3
        by_name = {entry.job.circuit.name: entry for entry in report}
        assert by_name["bell"].ok  # ran before the interrupt
        for name in ("misc", "xh"):
            assert not by_name[name].ok
            assert by_name[name].error.exception_type == "KeyboardInterrupt"
        assert "INTERRUPTED" in report.summary()


class TestHealthReport:
    def test_health_diagnostics_for_timeout_and_retry(self, inject):
        inject("hang:ccx,flaky:misc:1")
        report = compile_many(
            jobs("bell", "ccx", "misc"), workers=1, timeout=1.0, retries=1
        )
        codes = {diagnostic.code for diagnostic in report.health()}
        assert "REPRO701" in codes  # ccx timed out (after one retry)
        assert "REPRO702" in codes  # misc needed a retry

    def test_clean_batch_has_clean_health(self):
        report = compile_many(jobs("bell", "xh"), workers=1)
        assert len(report.health()) == 0

    def test_summary_mentions_fault_counters(self, inject):
        inject("hang:ccx")
        report = compile_many(
            jobs("bell", "ccx"), workers=1, timeout=1.0, retries=0
        )
        assert "1 timeouts" in report.summary()
