"""Content-addressed cache: keys, fingerprints, tiers, round trips."""

import pytest

from repro import CNOT, H, QuantumCircuit, T, X, compile_circuit, get_device
from repro.batch import CompilationCache, CompileJob, compile_many
from repro.batch.cache import (
    cost_function_identity,
    device_identity,
    job_cache_key,
)
from repro.batch.serialize import (
    circuit_from_payload,
    circuit_to_payload,
    result_from_payload,
    result_to_payload,
)
from repro.core.cost import CostFunction
from repro.io import to_qasm


def bell():
    return QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell")


OPTIONS = {"verify": False}


class TestFingerprint:
    def test_stable_across_instances(self):
        assert bell().fingerprint() == bell().fingerprint()

    def test_changes_on_any_gate_edit(self):
        base = bell()
        variants = [
            QuantumCircuit(2, [H(0), CNOT(1, 0)]),  # swapped qubits
            QuantumCircuit(2, [H(1), CNOT(0, 1)]),  # different qubit
            QuantumCircuit(2, [X(0), CNOT(0, 1)]),  # different gate
            QuantumCircuit(2, [CNOT(0, 1), H(0)]),  # reordered
            QuantumCircuit(2, [H(0), CNOT(0, 1), T(0)]),  # appended
            QuantumCircuit(2, [H(0)]),  # removed
            QuantumCircuit(3, [H(0), CNOT(0, 1)]),  # widened
        ]
        prints = {base.fingerprint()} | {v.fingerprint() for v in variants}
        assert len(prints) == 1 + len(variants)

    def test_name_is_not_part_of_identity(self):
        renamed = bell().copy(name="other")
        assert renamed.fingerprint() == bell().fingerprint()

    def test_append_invalidates_cached_fingerprint(self):
        circuit = bell()
        before = circuit.fingerprint()
        circuit.append(T(0))
        assert circuit.fingerprint() != before


class TestCacheKey:
    def test_same_job_same_key(self):
        device = get_device("ibmqx4")
        assert job_cache_key(bell(), device, OPTIONS) == job_cache_key(
            bell(), device, OPTIONS
        )

    def test_key_varies_with_device_and_options(self):
        device = get_device("ibmqx4")
        base = job_cache_key(bell(), device, OPTIONS)
        assert base != job_cache_key(bell(), get_device("ibmqx5"), OPTIONS)
        assert base != job_cache_key(
            bell(), device, dict(OPTIONS, optimize=False)
        )
        assert base != job_cache_key(
            bell(), device, dict(OPTIONS, placement="greedy")
        )
        assert base != job_cache_key(
            bell(), device, dict(OPTIONS, mcx_mode="relative_phase")
        )

    def test_custom_cost_function_is_uncacheable(self):
        opaque = CostFunction(custom=lambda c: 1.0)
        assert cost_function_identity(opaque) is None
        device = get_device("ibmqx4")
        options = dict(OPTIONS, cost_function=opaque)
        assert job_cache_key(bell(), device, options) is None
        assert CompileJob.make(bell(), device, options).cache_key() is None

    def test_linear_cost_function_is_cacheable(self):
        weighted = CostFunction(name="eqn2", extra_weights={"t": 0.5})
        assert cost_function_identity(weighted)
        device = get_device("ibmqx4")
        options = dict(OPTIONS, cost_function=weighted)
        assert job_cache_key(bell(), device, options)

    def test_device_identity_includes_name(self):
        assert "ibmqx4" in device_identity(get_device("ibmqx4"))


class TestMemoryTier:
    def test_round_trip_and_counters(self):
        cache = CompilationCache(max_entries=4)
        job = CompileJob.make(bell(), "ibmqx4", OPTIONS)
        key = job.cache_key()
        assert cache.get(key) is None
        result = job.run()
        cache.put(key, result)
        assert cache.get(key) is result
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.hit_rate == 0.5
        assert key in cache
        assert len(cache) == 1

    def test_none_key_is_never_stored(self):
        cache = CompilationCache()
        cache.put(None, object())
        assert cache.get(None) is None
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = CompilationCache(max_entries=2)
        cache._memory_put("a", "ra")
        cache._memory_put("b", "rb")
        cache._memory.move_to_end("a", last=True)  # touch a
        cache._memory_put("c", "rc")  # evicts b, the LRU entry
        assert "a" in cache._memory
        assert "b" not in cache._memory
        assert "c" in cache._memory


class TestDiskTier:
    def test_disk_round_trip_across_cache_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        job = CompileJob.make(bell(), "ibmqx4", OPTIONS)
        warm = CompilationCache(directory=directory)
        warm.put(job.cache_key(), job.run())

        cold = CompilationCache(directory=directory)  # fresh memory tier
        restored = cold.get(job.cache_key())
        assert restored is not None
        assert cold.disk_hits == 1
        direct = compile_circuit(bell(), get_device("ibmqx4"), verify=False)
        assert to_qasm(restored.optimized) == to_qasm(direct.optimized)
        assert restored.optimized_metrics == direct.optimized_metrics

    def test_second_batch_run_is_all_hits(self, tmp_path):
        directory = str(tmp_path / "cache")
        device = get_device("ibmqx4")
        jobs = [
            (QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell"), device, OPTIONS),
            (QuantumCircuit(2, [T(0), CNOT(0, 1)], name="tc"), device, OPTIONS),
        ]
        first_cache = CompilationCache(directory=directory)
        compile_many(jobs, cache=first_cache)
        second_cache = CompilationCache(directory=directory)
        report = compile_many(jobs, cache=second_cache)
        assert report.cache_hits == len(jobs)
        assert second_cache.disk_hits == len(jobs)
        assert all(entry.from_cache for entry in report)

    def test_unwritable_directory_degrades_silently(self):
        cache = CompilationCache(directory="/proc/definitely/not/writable")
        job = CompileJob.make(bell(), "ibmqx4", OPTIONS)
        cache.put(job.cache_key(), job.run())  # must not raise
        assert cache.get(job.cache_key()) is not None  # memory tier works


class TestSerialization:
    def test_circuit_payload_round_trip(self):
        circuit = bell()
        clone = circuit_from_payload(circuit_to_payload(circuit))
        assert clone == circuit
        assert clone.fingerprint() == circuit.fingerprint()

    def test_result_payload_round_trip(self):
        result = compile_circuit(bell(), get_device("ibmqx4"), verify="qmdd")
        clone = result_from_payload(result_to_payload(result))
        assert to_qasm(clone.optimized) == to_qasm(result.optimized)
        assert clone.optimized_metrics == result.optimized_metrics
        assert clone.device.name == result.device.name
        assert clone.verification.equivalent == result.verification.equivalent

    def test_version_mismatch_returns_none(self):
        result = compile_circuit(bell(), get_device("ibmqx4"), verify=False)
        payload = result_to_payload(result)
        payload["version"] = 999
        assert result_from_payload(payload) is None


class TestValidation:
    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            CompilationCache(max_entries=0)


class TestStaleTempSweep:
    """Opening a cache sweeps ``*.tmp.<pid>`` orphans left by crashed
    writers — dead-pid files immediately, any temp file past the age
    cutoff — while live writers' fresh files are left alone."""

    @staticmethod
    def _plant_temp(directory, name, age_seconds=0.0):
        import os
        import time

        bucket = os.path.join(directory, "ab")
        os.makedirs(bucket, exist_ok=True)
        path = os.path.join(bucket, name)
        with open(path, "w") as handle:
            handle.write("{}")
        if age_seconds:
            old = time.time() - age_seconds
            os.utime(path, (old, old))
        return path

    @staticmethod
    def _dead_pid():
        import multiprocessing

        process = multiprocessing.Process(target=int)
        process.start()
        process.join()
        return process.pid

    def test_dead_pid_temp_removed(self, tmp_path):
        import os

        path = self._plant_temp(
            str(tmp_path), f"abcd.json.tmp.{self._dead_pid()}"
        )
        cache = CompilationCache(directory=str(tmp_path))
        assert not os.path.exists(path)
        assert cache.temp_files_swept == 1
        assert cache.stats()["temp_files_swept"] == 1

    def test_ancient_temp_removed_even_if_pid_alive(self, tmp_path):
        import os

        path = self._plant_temp(
            str(tmp_path), f"abcd.json.tmp.{os.getpid()}",
            age_seconds=7200.0,
        )
        cache = CompilationCache(directory=str(tmp_path))
        assert not os.path.exists(path)
        assert cache.temp_files_swept == 1

    def test_fresh_live_writer_temp_kept(self, tmp_path):
        import os

        path = self._plant_temp(
            str(tmp_path), f"abcd.json.tmp.{os.getpid()}"
        )
        cache = CompilationCache(directory=str(tmp_path))
        assert os.path.exists(path)
        assert cache.temp_files_swept == 0

    def test_real_entries_survive_the_sweep(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path))
        job = CompileJob.make(bell(), get_device("ibmqx4"), OPTIONS)
        cache.put(job.cache_key(), job.run())
        self._plant_temp(str(tmp_path), f"dead.json.tmp.{self._dead_pid()}")
        reopened = CompilationCache(directory=str(tmp_path))
        assert reopened.temp_files_swept == 1
        assert reopened.get(job.cache_key()) is not None

    def test_memory_only_cache_sweeps_nothing(self):
        assert CompilationCache().temp_files_swept == 0
