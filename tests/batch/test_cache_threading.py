"""Regression tests for the thread-safe cache sweep (ISSUE 9).

Three bugs, each with the test that would have caught it:

* the memory ``OrderedDict`` and the hit/miss/store counters were
  mutated without a lock — racy under a threaded coordinator;
* ``__contains__`` answered ``os.path.exists`` for the disk tier, so a
  corrupt or version-skewed entry was "in" the cache while ``get``
  returned ``None``;
* disk eviction was amortized on a per-process write counter, so N
  concurrent writers sharing one directory could overshoot
  ``max_disk_entries`` by ~N×``_EVICT_EVERY``.
"""

import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor

from repro import CNOT, H, QuantumCircuit, T
from repro.batch import CompilationCache, CompileJob

OPTIONS = {"verify": False}


def _result():
    job = CompileJob.make(
        QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell"), "ibmqx4", OPTIONS
    )
    return job.run()


def _keys(count):
    """Distinct, well-formed cache keys (content addresses are 64 hex
    chars; the first two pick the disk shard)."""
    return [f"{index:064x}" for index in range(count)]


class TestThreadSafeMemoryTier:
    def test_hammer_no_lost_entries_no_torn_counters(self):
        """A thread pool hammering one cache: every stored entry must
        be retrievable, nothing may raise, and the counters must sum
        exactly to the calls made."""
        result = _result()
        cache = CompilationCache(max_entries=4096)
        threads = 8
        per_thread = 200
        keys = _keys(threads * per_thread)
        errors = []
        barrier = threading.Barrier(threads)

        def worker(lane):
            try:
                barrier.wait()
                for index in range(per_thread):
                    key = keys[lane * per_thread + index]
                    assert cache.get(key) is None  # distinct keys: miss
                    cache.put(key, result)
                    assert cache.get(key) is result  # hit
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            for lane in range(threads):
                pool.submit(worker, lane)
        assert not errors, errors

        total_ops = threads * per_thread
        stats = cache.stats()
        # No lost entries: every key stored is still retrievable.
        assert len(cache) == total_ops
        for key in keys:
            assert key in cache
        # Counter honesty: hits + misses == lookups, stores == puts.
        # (Checking the *sums* is what catches a lost `+= 1` — the
        # pre-lock cache dropped increments under contention.)
        assert stats["stores"] == total_ops
        assert stats["hits"] + stats["misses"] == 2 * total_ops
        assert stats["hits"] == total_ops
        assert stats["misses"] == total_ops

    def test_concurrent_gets_on_shared_keys_count_every_lookup(self):
        result = _result()
        cache = CompilationCache(max_entries=64)
        keys = _keys(8)
        for key in keys:
            cache.put(key, result)
        baseline = cache.stats()
        lookups_per_thread = 500
        threads = 6

        def reader():
            for index in range(lookups_per_thread):
                assert cache.get(keys[index % len(keys)]) is result

        with ThreadPoolExecutor(max_workers=threads) as pool:
            for _ in range(threads):
                pool.submit(reader)
        stats = cache.stats()
        assert (
            stats["hits"] - baseline["hits"]
            == threads * lookups_per_thread
        )
        assert stats["misses"] == baseline["misses"]

    def test_lru_eviction_stays_bounded_under_contention(self):
        result = _result()
        cache = CompilationCache(max_entries=16)
        keys = _keys(400)

        def writer(lane):
            for index in range(lane, len(keys), 4):
                cache.put(keys[index], result)
                cache.get(keys[(index * 7) % len(keys)])

        with ThreadPoolExecutor(max_workers=4) as pool:
            for lane in range(4):
                pool.submit(writer, lane)
        # The invariant the unlocked OrderedDict could break: the LRU
        # bound (concurrent move_to_end/popitem corrupted ordering).
        assert len(cache) <= 16


class TestMembershipAgreesWithReadability:
    def _store_one(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path))
        job = CompileJob.make(
            QuantumCircuit(2, [T(0), CNOT(0, 1)], name="tc"), "ibmqx4", OPTIONS
        )
        key = job.cache_key()
        cache.put(key, job.run())
        return cache, key

    def test_truncated_disk_entry_is_not_a_member(self, tmp_path):
        cache, key = self._store_one(tmp_path)
        path = cache._path(key)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 2])  # truncate mid-JSON
        cold = CompilationCache(directory=str(tmp_path))
        assert cold.get(key) is None
        assert (key in cold) == (cold.get(key) is not None) == False  # noqa: E712
        assert os.path.exists(path)  # the file exists; membership is honest

    def test_version_skewed_entry_is_not_a_member(self, tmp_path):
        cache, key = self._store_one(tmp_path)
        path = cache._path(key)
        with open(path) as handle:
            payload = json.load(handle)
        payload["version"] = 1  # ancient schema: result_from_payload -> None
        with open(path, "w") as handle:
            json.dump(payload, handle)
        cold = CompilationCache(directory=str(tmp_path))
        assert (key in cold) == (cold.get(key) is not None) == False  # noqa: E712

    def test_readable_entry_is_a_member_without_counter_noise(self, tmp_path):
        _, key = self._store_one(tmp_path)
        cold = CompilationCache(directory=str(tmp_path))
        before = cold.stats()
        assert key in cold
        after = cold.stats()
        # Membership probes are not lookups: no hit/miss movement.
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]
        assert cold.get(key) is not None

    def test_memory_membership_unaffected(self):
        cache = CompilationCache()
        result = _result()
        cache.put("a" * 64, result)
        assert "a" * 64 in cache
        assert "b" * 64 not in cache
        assert None not in cache


class TestMultiWriterDiskEvictionBound:
    def test_concurrent_writers_respect_the_disk_budget(self, tmp_path):
        """N writers (each its own cache instance — per-process
        amortization counters!) share one directory.  The observed-count
        trigger keeps the tier within ``max_disk_entries`` plus at most
        one in-flight write per writer; the old per-process
        ``disk_writes % 32`` schedule let this overshoot by
        ~N×_EVICT_EVERY (here: 4×32 = 128 on a budget of 12)."""
        result = _result()
        writers = 4
        per_writer = 30
        budget = 12
        caches = [
            CompilationCache(
                directory=str(tmp_path), max_disk_entries=budget
            )
            for _ in range(writers)
        ]
        keys = _keys(writers * per_writer)
        barrier = threading.Barrier(writers)

        def writer(lane):
            barrier.wait()
            for index in range(per_writer):
                caches[lane].put(keys[lane * per_writer + index], result)

        with ThreadPoolExecutor(max_workers=writers) as pool:
            for lane in range(writers):
                pool.submit(writer, lane)

        on_disk = len(caches[0]._disk_paths())
        assert on_disk <= budget + writers, (
            f"{on_disk} entries on disk for a budget of {budget} "
            f"({writers} writers)"
        )
        # And the budget is actually being used, not wiped to zero.
        assert on_disk >= 1

    def test_single_writer_never_exceeds_budget_between_sweeps(self, tmp_path):
        result = _result()
        budget = 5
        cache = CompilationCache(
            directory=str(tmp_path), max_disk_entries=budget
        )
        for key in _keys(23):
            cache.put(key, result)
            # The over-budget trigger fires on the write that crosses
            # the cap — a lone writer is *always* within budget.
            assert len(cache._disk_paths()) <= budget
        assert cache.disk_evictions >= 23 - budget

    def test_open_time_eviction_still_trims(self, tmp_path):
        result = _result()
        writer = CompilationCache(directory=str(tmp_path))
        for key in _keys(9):
            writer.put(key, result)
        capped = CompilationCache(directory=str(tmp_path), max_disk_entries=3)
        assert len(capped._disk_paths()) == 3
        assert capped.disk_evictions == 6
