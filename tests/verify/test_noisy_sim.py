"""Monte-Carlo noisy simulation tests."""

import random

import pytest

from repro.core import CNOT, CircuitError, H, QuantumCircuit, TOFFOLI, X
from repro.devices import Calibration, IBMQX2, synthetic_calibration
from repro.verify import (
    compare_under_noise,
    noisy_success_rate,
    run_noisy_once,
)


def perfect_calibration(num_qubits: int, edges) -> Calibration:
    return Calibration(
        "perfect",
        {q: 0.0 for q in range(num_qubits)},
        {edge: 0.0 for edge in edges},
    )


def broken_calibration(num_qubits: int, edges) -> Calibration:
    return Calibration(
        "broken",
        {q: 1.0 for q in range(num_qubits)},
        {edge: 1.0 for edge in edges},
    )


class TestRunNoisyOnce:
    def test_zero_noise_matches_ideal(self):
        cal = perfect_calibration(2, [(0, 1)])
        c = QuantumCircuit(2, [X(0), CNOT(0, 1)])
        state = run_noisy_once(c, cal, 0, random.Random(1))
        assert state.amplitudes == {0b11: 1.0 + 0j}

    def test_full_noise_disturbs(self):
        cal = broken_calibration(2, [(0, 1)])
        c = QuantumCircuit(2, [X(0)])
        state = run_noisy_once(c, cal, 0, random.Random(1))
        # an error definitely fired; the state is a single Pauli kick away
        assert state.branch_count == 1


class TestNoisySuccessRate:
    def test_perfect_device_always_succeeds(self):
        cal = perfect_calibration(2, [(0, 1)])
        c = QuantumCircuit(2, [X(0), CNOT(0, 1)])
        report = noisy_success_rate(c, cal, trials=50)
        assert report.success_rate == 1.0
        assert report.ideal_output == 0b11

    def test_noise_reduces_success(self):
        cal = Calibration(
            "noisy",
            {0: 0.05, 1: 0.05},
            {(0, 1): 0.1},
        )
        c = QuantumCircuit(2, [X(0), CNOT(0, 1)] * 10)
        report = noisy_success_rate(c, cal, trials=300, seed=7)
        assert report.success_rate < 1.0
        assert report.success_rate > 0.0

    def test_longer_circuit_fails_more(self):
        cal = Calibration("noisy", {0: 0.03}, {})
        short = QuantumCircuit(1, [X(0)])
        long = QuantumCircuit(1, [X(0)] * 21)
        rate_short = noisy_success_rate(short, cal, trials=400, seed=3).success_rate
        rate_long = noisy_success_rate(long, cal, trials=400, seed=3).success_rate
        assert rate_long < rate_short

    def test_superposed_ideal_needs_explicit_target(self):
        cal = perfect_calibration(1, [])
        c = QuantumCircuit(1, [H(0)])
        with pytest.raises(CircuitError):
            noisy_success_rate(c, cal)
        # works with an explicit target: succeeds about half the time
        report = noisy_success_rate(c, cal, ideal_output=0, trials=400, seed=5)
        assert 0.35 < report.success_rate < 0.65

    def test_zero_trials_rejected(self):
        cal = perfect_calibration(1, [])
        with pytest.raises(CircuitError):
            noisy_success_rate(QuantumCircuit(1, [X(0)]), cal, trials=0)

    def test_deterministic_given_seed(self):
        cal = Calibration("noisy", {0: 0.1}, {})
        c = QuantumCircuit(1, [X(0)] * 5)
        a = noisy_success_rate(c, cal, trials=100, seed=9)
        b = noisy_success_rate(c, cal, trials=100, seed=9)
        assert a.successes == b.successes


class TestCompareUnderNoise:
    def test_optimized_mapping_survives_better(self):
        """The paper's premise, demonstrated on a routing-heavy workload:
        the optimizer's large gate-count reduction yields a strictly
        higher analytic success probability, and Monte-Carlo sampling
        agrees with the analytic rates."""
        from repro import compile_circuit
        from repro.benchlib import revlib
        from repro.devices import IBMQX3

        # Mild error rates so a ~400-gate circuit retains usable fidelity.
        cal = synthetic_calibration(
            IBMQX3, single_qubit_base=1e-4, cnot_base=2e-3
        )
        circuit = revlib.build_benchmark("4_49_17")
        result = compile_circuit(circuit, IBMQX3, verify=False)
        assert result.optimized_metrics.gate_volume < 0.8 * (
            result.unoptimized_metrics.gate_volume
        )
        # Deterministic, analytic: fewer/cheaper gates -> higher success.
        p_unopt = cal.success_probability(result.unoptimized)
        p_opt = cal.success_probability(result.optimized)
        assert p_opt > p_unopt

        # Monte Carlo agrees with the analytic probabilities (loose band;
        # Pauli kicks can coincidentally restore the outcome, so the
        # sampled rate sits at or above the analytic floor).
        rates = compare_under_noise(
            result.unoptimized,
            result.optimized,
            cal,
            input_basis=0,
            trials=300,
        )
        assert rates["optimized"] >= p_opt - 0.10
        assert rates["unoptimized"] >= p_unopt - 0.10

    def test_superposed_output_rejected(self):
        cal = perfect_calibration(1, [])
        c = QuantumCircuit(1, [H(0)])
        with pytest.raises(CircuitError):
            compare_under_noise(c, c, cal)
