"""The abstract-permutation pre-screen and subspace verification.

The pre-screen settles classical pairs before any QMDD exists:
agreement is a proof, disagreement is a NO with a witness input.
Subspace verification rescues full-space NOs that are YES on the
asserted ``known_zero`` subspace.
"""

import pytest

from repro.backend import toffoli_network
from repro.core import CNOT, H, QuantumCircuit, T, TOFFOLI, X
from repro.obs import get_metrics
from repro.verify import verify_equivalent
from repro.verify.permutation import evaluate


@pytest.fixture
def counters():
    registry = get_metrics()
    before = dict(registry.snapshot()["counters"])

    def delta(name):
        return registry.counter(name) - before.get(name, 0)

    return delta


class TestPrescreenProof:
    def test_classical_pair_proved_without_qmdd(self, counters):
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, [TOFFOLI(1, 0, 2)])
        report = verify_equivalent(a, b)
        assert report.equivalent
        assert report.method == "prescreen"
        assert "no QMDD built" in report.detail
        assert counters("verify.prescreen.checks") == 1
        assert counters("verify.prescreen.proofs") == 1
        assert counters("verify.qmdd_checks") == 0

    def test_explicit_method_bypasses_the_screen(self, counters):
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, [TOFFOLI(1, 0, 2)])
        report = verify_equivalent(a, b, method="qmdd")
        assert report.equivalent and report.method == "qmdd"
        assert counters("verify.prescreen.checks") == 0

    def test_prescreen_false_forces_the_qmdd_path(self, counters):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        report = verify_equivalent(a, a, prescreen=False)
        assert report.equivalent and report.method == "qmdd"
        assert counters("verify.prescreen.checks") == 0


class TestPrescreenReject:
    def test_miscompile_caught_with_witness_and_no_qmdd(self, counters):
        """A classical miscompile (wrong CNOT direction) must be caught
        by table comparison alone — the cheap NO of the issue's
        acceptance criteria."""
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [CNOT(1, 0)])
        report = verify_equivalent(a, b)
        assert not report.equivalent
        assert report.method == "prescreen"
        assert counters("verify.prescreen.rejects") == 1
        assert counters("verify.qmdd_checks") == 0
        assert counters("verify.recheck.qmdd_checks") == 0

    def test_witness_is_a_real_counterexample(self):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [CNOT(1, 0)])
        report = verify_equivalent(a, b)
        # detail: ... disagree on input |xy>: original -> ..., mapped -> ...
        witness = report.detail.split("|")[1].split(">")[0]
        index = int(witness, 2)
        assert evaluate(a, index) != evaluate(b, index)

    def test_dropped_gate_caught(self, counters):
        network = toffoli_network(0, 1, 2)
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, network[:-1])  # compiler "lost" a gate
        if QuantumCircuit(3, network[:-1]).is_classical_reversible:
            report = verify_equivalent(a, b)
        else:
            # The decomposition uses non-classical gates: screen must
            # abstain, not misjudge.
            report = verify_equivalent(a, b)
            assert report.method != "prescreen" or not report.equivalent
            return
        assert not report.equivalent

    def test_known_zero_limits_the_witness_search(self):
        # The pair differs ONLY on inputs with q0=1: restricted to the
        # q0=|0> subspace the screen must prove equivalence instead.
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [])
        full = verify_equivalent(a, b)
        assert not full.equivalent
        restricted = verify_equivalent(a, b, known_zero=[0])
        assert restricted.equivalent
        assert restricted.method == "prescreen"
        assert "subspace" in restricted.detail


class TestPrescreenAbstains:
    def test_non_classical_falls_through(self, counters):
        a = QuantumCircuit(1, [H(0), H(0)])
        b = QuantumCircuit(1, [])
        report = verify_equivalent(a, b)
        assert report.equivalent
        assert report.method == "qmdd"
        assert counters("verify.prescreen.checks") == 0

    def test_width_limit_falls_through(self, monkeypatch, counters):
        import repro.verify.equivalence as eq

        monkeypatch.setattr(eq, "PRESCREEN_WIDTH_LIMIT", 1)
        a = QuantumCircuit(2, [CNOT(0, 1)])
        report = verify_equivalent(a, a)
        assert report.equivalent and report.method == "qmdd"
        assert counters("verify.prescreen.checks") == 0


class TestSubspaceVerification:
    def test_full_space_no_rescued_on_the_subspace(self, counters):
        a = QuantumCircuit(2, [CNOT(1, 0)])
        b = QuantumCircuit(2, [])
        # Non-auto method: the prescreen stays out of the way and the
        # full-space check fails first.
        report = verify_equivalent(a, b, method="qmdd", known_zero=[1])
        assert report.equivalent
        assert report.method == "subspace"
        assert counters("verify.subspace_checks") == 1

    def test_subspace_no_stays_no_with_witness(self):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [X(1)])
        report = verify_equivalent(a, b, method="qmdd", known_zero=[0])
        assert not report.equivalent
        assert report.method == "subspace"
        assert "|0" in report.detail  # witness lies in the subspace

    def test_non_classical_subspace_check(self):
        # T on a |0> wire is inert; the circuits differ on q0=1 inputs
        # (phase), so only the subspace check can say YES — via sparse
        # simulation, since T is not classical.
        a = QuantumCircuit(1, [T(0)])
        b = QuantumCircuit(1, [])
        report = verify_equivalent(a, b, method="qmdd", known_zero=[0])
        assert report.equivalent
        assert report.method == "subspace"
        assert "sparse" in report.detail

    def test_full_space_yes_needs_no_subspace_pass(self, counters):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [CNOT(0, 1)])
        report = verify_equivalent(a, b, method="qmdd", known_zero=[0])
        assert report.equivalent and report.method == "qmdd"
        assert counters("verify.subspace_checks") == 0


class TestCorpusAgreement:
    def test_prescreen_agrees_with_qmdd_on_the_corpus(self):
        """Every committed corpus pair must get the same verdict from
        the screened auto path and the raw QMDD path."""
        import json
        from pathlib import Path

        from repro.batch.serialize import circuit_from_payload

        entries = sorted(Path("tests/corpus").glob("*.json"))
        assert entries, "regression corpus is empty"
        for path in entries:
            payload = json.loads(path.read_text())
            circuit = circuit_from_payload(payload["circuit"])
            screened = verify_equivalent(circuit, circuit)
            raw = verify_equivalent(circuit, circuit, prescreen=False)
            assert screened.equivalent == raw.equivalent, path.name
