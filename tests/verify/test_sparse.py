"""Sparse simulator tests: agreement with dense on small circuits and
scalability to wide, thin circuits."""

import numpy as np
import pytest

from repro.core import (
    CNOT,
    CZ,
    CircuitError,
    Gate,
    H,
    MCX,
    QuantumCircuit,
    S,
    SWAP,
    T,
    TOFFOLI,
    X,
    Y,
)
from repro.verify import SparseState, run_sparse, sampled_equivalence, simulate, basis_state
from tests.conftest import random_circuit


def dense_of(state: SparseState) -> np.ndarray:
    out = np.zeros(1 << state.num_qubits, dtype=complex)
    for idx, amp in state.amplitudes.items():
        out[idx] = amp
    return out


class TestAgainstDense:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits_all_basis_inputs(self, seed):
        c = random_circuit(3, 20, seed=seed)
        for idx in range(8):
            sparse = run_sparse(c, idx)
            dense = simulate(c, basis_state(3, idx))
            assert np.allclose(dense_of(sparse), dense), (seed, idx)

    def test_each_gate_kind(self):
        gates = [
            X(0), Y(1), Gate("Z", (0,)), H(2), S(1), Gate("SDG", (0,)),
            T(2), Gate("TDG", (1,)), CNOT(0, 1), CZ(1, 2), SWAP(0, 2),
            TOFFOLI(0, 1, 2),
        ]
        c = QuantumCircuit(3, gates)
        for idx in (0, 3, 7):
            sparse = run_sparse(c, idx)
            dense = simulate(c, basis_state(3, idx))
            assert np.allclose(dense_of(sparse), dense)

    def test_mcx_wide(self):
        c = QuantumCircuit(6, [MCX(0, 1, 2, 3, 4, 5)])
        full = (1 << 6) - 2  # all controls set, target 0
        out = run_sparse(c, full)
        assert out.amplitudes == {0b111111: 1.0 + 0j}


class TestSparsity:
    def test_classical_circuit_stays_single_branch(self):
        c = QuantumCircuit(40, [X(0), CNOT(0, 39), TOFFOLI(0, 39, 20)])
        state = run_sparse(c, 0)
        assert state.branch_count == 1

    def test_hadamard_pairs_recollapse(self):
        c = QuantumCircuit(30, [H(7), H(7)])
        state = run_sparse(c, 0)
        assert state.branch_count == 1

    def test_wide_toffoli_network_thin(self):
        """A decomposed Toffoli on a wide register keeps few branches."""
        from repro.backend import toffoli_network

        c = QuantumCircuit(50, toffoli_network(10, 20, 30))
        state = run_sparse(c, (1 << 49) >> 10)  # some basis input
        assert state.branch_count <= 4


class TestComparisons:
    def test_fidelity_identical(self):
        a = SparseState.basis(4, 5)
        assert a.fidelity_with(SparseState.basis(4, 5)) == pytest.approx(1.0)

    def test_fidelity_orthogonal(self):
        a = SparseState.basis(4, 5)
        assert a.fidelity_with(SparseState.basis(4, 6)) == 0.0

    def test_equals_up_to_phase(self):
        a = run_sparse(QuantumCircuit(2, [H(0)]), 0)
        b = SparseState(2, {k: v * np.exp(0.3j) for k, v in a.amplitudes.items()})
        assert a.equals(b, up_to_global_phase=True)
        assert not a.equals(b)

    def test_basis_range_check(self):
        with pytest.raises(CircuitError):
            SparseState.basis(2, 4)


class TestSampledEquivalence:
    def test_equivalent_circuits_pass(self):
        from repro.backend import toffoli_network

        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, toffoli_network(0, 1, 2))
        assert sampled_equivalence(a, b, samples=8)

    def test_inequivalent_circuits_fail(self):
        a = QuantumCircuit(3, [CNOT(0, 1)])
        b = QuantumCircuit(3, [CNOT(0, 2)])
        assert not sampled_equivalence(a, b, samples=16)

    def test_wide_circuits(self):
        """96-qubit MCX against its Barenco decomposition — the Table 8
        verification path."""
        from repro.backend import lower_mcx_gates

        gate = MCX(*range(9), 20)
        original = QuantumCircuit(96, [gate])
        lowered = QuantumCircuit(96, lower_mcx_gates([gate], 96))
        assert sampled_equivalence(original, lowered, samples=12)

    def test_deterministic_seed(self):
        a = QuantumCircuit(3, [CNOT(0, 1)])
        assert sampled_equivalence(a, a, samples=4, seed=1) == sampled_equivalence(
            a, a, samples=4, seed=1
        )
