"""The verification facade: method selection and verdicts."""

import pytest

from repro.core import (
    CNOT,
    H,
    MCX,
    QuantumCircuit,
    TOFFOLI,
    VerificationError,
    X,
)
from repro.backend import lower_mcx_gates, toffoli_network
from repro.verify import require_equivalent, verify_equivalent


class TestMethodSelection:
    def test_auto_picks_qmdd_when_narrow(self):
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, toffoli_network(0, 1, 2))
        report = verify_equivalent(a, b)
        assert report.method == "qmdd"
        assert report.equivalent

    def test_auto_picks_sampled_when_wide(self):
        gate = MCX(*range(20, 29), 50)
        a = QuantumCircuit(96, [gate])
        b = QuantumCircuit(96, lower_mcx_gates([gate], 96))
        report = verify_equivalent(a, b)
        assert report.method == "sampled"
        assert report.equivalent

    def test_width_shrinks_to_touched_qubits(self):
        """A 32-wide circuit touching 3 qubits still verifies via QMDD."""
        a = QuantumCircuit(32, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(32, toffoli_network(0, 1, 2))
        assert verify_equivalent(a, b).method == "qmdd"

    def test_explicit_dense(self):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        report = verify_equivalent(a, a.copy(), method="dense")
        assert report.method == "dense" and report.equivalent

    def test_dense_width_limit(self):
        wide = QuantumCircuit(14, [X(13)])
        with pytest.raises(VerificationError):
            verify_equivalent(wide, wide.copy(), method="dense")

    def test_unknown_method(self):
        c = QuantumCircuit(1, [X(0)])
        with pytest.raises(VerificationError):
            verify_equivalent(c, c, method="oracle")


class TestVerdicts:
    def test_negative_qmdd(self):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [CNOT(1, 0)])
        assert not verify_equivalent(a, b)

    def test_negative_sampled(self):
        a = QuantumCircuit(30, [X(0)])
        b = QuantumCircuit(30, [X(1)])
        report = verify_equivalent(a, b, method="sampled", samples=16)
        assert not report.equivalent

    def test_global_phase_option_dense(self):
        from repro.core import Gate, Z

        a = QuantumCircuit(1, [X(0), Z(0)])
        b = QuantumCircuit(1, [Gate("Y", (0,))])
        assert not verify_equivalent(a, b, method="dense")
        assert verify_equivalent(a, b, method="dense", up_to_global_phase=True)

    def test_require_equivalent_raises(self):
        a = QuantumCircuit(1, [X(0)])
        b = QuantumCircuit(1, [H(0)])
        with pytest.raises(VerificationError):
            require_equivalent(a, b)

    def test_require_equivalent_returns_report(self):
        c = QuantumCircuit(1, [X(0)])
        assert require_equivalent(c, c.copy()).equivalent


class TestQmddFalseNegativeRecheck:
    """The facade must recover from a (rare) QMDD false negative by
    independent recheck — and still report true non-equivalence."""

    def _fake_no(self, monkeypatch):
        import repro.verify.equivalence as eq

        class FakeResult:
            equivalent = False
            exact = False
            phase_only = False
            nodes_first = 1
            nodes_second = 1
            shared_root = False

        monkeypatch.setattr(eq, "qmdd_check", lambda *a, **k: FakeResult())

    def test_recheck_rescues_equal_small_circuits(self, monkeypatch):
        self._fake_no(monkeypatch)
        c = QuantumCircuit(2, [CNOT(0, 1), H(0)])
        report = verify_equivalent(c, c.copy(), method="qmdd")
        assert report.equivalent
        assert "recheck:dense" in report.detail

    def test_recheck_rescues_equal_wide_circuits(self, monkeypatch):
        self._fake_no(monkeypatch)
        gate = MCX(*range(9), 20)
        from repro.backend import lower_mcx_gates

        a = QuantumCircuit(96, [gate])
        b = QuantumCircuit(96, lower_mcx_gates([gate], 96))
        report = verify_equivalent(a, b, method="qmdd")
        assert report.equivalent
        assert "recheck:sampled" in report.detail

    def test_recheck_confirms_true_negatives(self, monkeypatch):
        self._fake_no(monkeypatch)
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [CNOT(1, 0)])
        report = verify_equivalent(a, b, method="qmdd")
        assert not report.equivalent
