"""Dense statevector simulator tests."""

import math

import numpy as np
import pytest

from repro.core import CNOT, CircuitError, H, QuantumCircuit, T, TOFFOLI, X
from repro.verify import (
    basis_state,
    measure_probabilities,
    simulate,
    states_equal,
    zero_state,
)


class TestStates:
    def test_zero_state(self):
        s = zero_state(2)
        assert s[0] == 1 and np.count_nonzero(s) == 1

    def test_basis_state(self):
        s = basis_state(3, 0b101)
        assert s[5] == 1

    def test_basis_state_range_check(self):
        with pytest.raises(CircuitError):
            basis_state(2, 7)


class TestSimulate:
    def test_not_flips_msb(self):
        out = simulate(QuantumCircuit(2, [X(0)]))
        assert out[0b10] == 1

    def test_bell_state(self):
        out = simulate(QuantumCircuit(2, [H(0), CNOT(0, 1)]))
        amp = 1 / math.sqrt(2)
        assert np.allclose(out, [amp, 0, 0, amp])

    def test_toffoli_on_full_controls(self):
        out = simulate(QuantumCircuit(3, [TOFFOLI(0, 1, 2)]), basis_state(3, 0b110))
        assert out[0b111] == 1

    def test_matches_unitary_column(self):
        c = QuantumCircuit(2, [H(0), T(1), CNOT(0, 1)])
        u = c.unitary()
        for col in range(4):
            assert np.allclose(simulate(c, basis_state(2, col)), u[:, col])

    def test_initial_state_dimension_checked(self):
        with pytest.raises(CircuitError):
            simulate(QuantumCircuit(2), np.zeros(3))

    def test_wide_circuit_rejected(self):
        with pytest.raises(CircuitError):
            simulate(QuantumCircuit(20))


class TestComparisons:
    def test_probabilities(self):
        out = simulate(QuantumCircuit(1, [H(0)]))
        assert np.allclose(measure_probabilities(out), [0.5, 0.5])

    def test_states_equal_exact(self):
        a = basis_state(2, 1)
        assert states_equal(a, a.copy(), up_to_global_phase=False)

    def test_states_equal_global_phase(self):
        a = simulate(QuantumCircuit(1, [H(0)]))
        b = a * np.exp(0.7j)
        assert states_equal(a, b)
        assert not states_equal(a, b, up_to_global_phase=False)

    def test_states_unequal(self):
        assert not states_equal(basis_state(1, 0), basis_state(1, 1))

    def test_shape_mismatch(self):
        assert not states_equal(zero_state(1), zero_state(2))
