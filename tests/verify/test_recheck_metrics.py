"""Honest accounting of verification rechecks (verify.recheck.*).

A recheck is a *consequence* of one NO verdict, not an independent
check: folding rechecks into ``verify.*_checks`` used to double-count
work and dilute hit-rate dashboards.  These tests pin the split keys.
"""

import pytest

from repro.core import QuantumCircuit, TOFFOLI, X
from repro.backend import toffoli_network
from repro.obs import get_metrics
from repro.verify import verify_equivalent


@pytest.fixture
def counters():
    """Counter deltas for this test only (the registry is process-global)."""
    registry = get_metrics()
    before = dict(registry.snapshot()["counters"])

    def delta(name):
        return registry.counter(name) - before.get(name, 0)

    return delta


class TestPassingCheck:
    def test_counts_one_check_and_no_rechecks(self, counters):
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, toffoli_network(0, 1, 2))
        report = verify_equivalent(a, b, method="qmdd")
        assert report.equivalent
        assert counters("verify.qmdd_checks") == 1
        assert counters("verify.recheck.qmdd_checks") == 0
        assert counters("verify.recheck.dense_checks") == 0
        assert counters("verify.recheck.sampled_checks") == 0


class TestTrueNegative:
    def test_rechecks_count_under_their_own_keys(self, counters):
        a = QuantumCircuit(3, toffoli_network(0, 1, 2))
        b = QuantumCircuit(3, toffoli_network(0, 1, 2) + [X(1)])
        report = verify_equivalent(a, b, method="qmdd", strategy="miter")
        assert not report.equivalent
        # One primary check; the miter NO triggers a two-sided qmdd
        # recheck, then a dense recheck (width 3 <= 10) — all of which
        # land under verify.recheck.*, never under verify.*_checks.
        assert counters("verify.qmdd_checks") == 1
        assert counters("verify.recheck.qmdd_checks") == 1
        assert counters("verify.recheck.dense_checks") == 1
        assert counters("verify.dense_checks") == 0

    def test_recheck_seconds_are_separated_too(self, counters):
        a = QuantumCircuit(3, toffoli_network(0, 1, 2))
        b = QuantumCircuit(3, toffoli_network(0, 1, 2) + [X(1)])
        verify_equivalent(a, b, method="qmdd", strategy="miter")
        assert counters("verify.seconds") > 0
        assert counters("verify.recheck.seconds") > 0

    def test_two_sided_negative_skips_the_qmdd_recheck(self, counters):
        """Only a miter NO gets the two-sided qmdd recheck; a two-sided
        NO goes straight to the independent method."""
        a = QuantumCircuit(3, toffoli_network(0, 1, 2))
        b = QuantumCircuit(3, toffoli_network(0, 1, 2) + [X(1)])
        report = verify_equivalent(a, b, method="qmdd", strategy="two_sided")
        assert not report.equivalent
        assert counters("verify.recheck.qmdd_checks") == 0
        assert counters("verify.recheck.dense_checks") == 1


class TestMiterPeakGauge:
    def test_miter_peak_nodes_gauge_recorded(self):
        from tests.conftest import random_circuit

        registry = get_metrics()
        circuit = random_circuit(4, 40, seed=5)
        verify_equivalent(circuit, circuit.copy(), method="qmdd",
                          strategy="miter")
        assert registry.get_gauge("verify.miter_peak_nodes") > 0
