"""Classical reversible (permutation) simulation."""

import pytest

from repro.core import CNOT, CircuitError, H, MCX, QuantumCircuit, SWAP, TOFFOLI, X
from repro.verify import (
    evaluate,
    is_identity_permutation,
    permutation,
    permutations_equal,
)


class TestEvaluate:
    def test_not(self):
        c = QuantumCircuit(3, [X(0)])
        assert evaluate(c, 0b000) == 0b100
        assert evaluate(c, 0b100) == 0b000

    def test_cnot(self):
        c = QuantumCircuit(2, [CNOT(0, 1)])
        assert evaluate(c, 0b10) == 0b11
        assert evaluate(c, 0b01) == 0b01

    def test_toffoli(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        assert evaluate(c, 0b110) == 0b111
        assert evaluate(c, 0b100) == 0b100

    def test_mcx(self):
        c = QuantumCircuit(5, [MCX(0, 1, 2, 3, 4)])
        assert evaluate(c, 0b11110) == 0b11111
        assert evaluate(c, 0b11010) == 0b11010

    def test_swap(self):
        c = QuantumCircuit(2, [SWAP(0, 1)])
        assert evaluate(c, 0b10) == 0b01
        assert evaluate(c, 0b11) == 0b11

    def test_non_classical_rejected(self):
        c = QuantumCircuit(1, [H(0)])
        with pytest.raises(CircuitError):
            evaluate(c, 0)


class TestPermutation:
    def test_identity(self):
        assert permutation(QuantumCircuit(2)) == [0, 1, 2, 3]
        assert is_identity_permutation(QuantumCircuit(3))

    def test_not_permutation(self):
        assert permutation(QuantumCircuit(1, [X(0)])) == [1, 0]

    def test_permutation_is_bijection(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2), CNOT(2, 0), X(1)])
        p = permutation(c)
        assert sorted(p) == list(range(8))

    def test_circuit_inverse_gives_inverse_permutation(self):
        c = QuantumCircuit(3, [TOFFOLI(0, 1, 2), CNOT(2, 0), SWAP(0, 1)])
        p = permutation(c)
        q = permutation(c.inverse())
        assert all(q[p[i]] == i for i in range(8))

    def test_too_wide_rejected(self):
        with pytest.raises(CircuitError):
            permutation(QuantumCircuit(21))


class TestPermutationsEqual:
    def test_equal_after_rewrite(self):
        a = QuantumCircuit(2, [SWAP(0, 1)])
        b = QuantumCircuit(2, [CNOT(0, 1), CNOT(1, 0), CNOT(0, 1)])
        assert permutations_equal(a, b)

    def test_unequal(self):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [CNOT(1, 0)])
        assert not permutations_equal(a, b)

    def test_width_harmonized(self):
        a = QuantumCircuit(2, [X(1)])
        b = QuantumCircuit(3, [X(1)])
        assert permutations_equal(a, b)
