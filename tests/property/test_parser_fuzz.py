"""Parser robustness: malformed input must raise ParseError, never crash
with an arbitrary exception or hang."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ParseError
from repro.io import parse_pla, parse_qasm, parse_qc, parse_real

printable_lines = st.text(
    alphabet=string.ascii_letters + string.digits + " .;[]()-*#\n\t_,",
    max_size=300,
)


def _accepts_or_parse_error(parser, text):
    try:
        circuit = parser(text)
    except ParseError:
        return
    # If it parsed, the result must at least be a consistent circuit.
    assert circuit.num_qubits >= 0
    for gate in circuit:
        assert max(gate.qubits, default=0) < max(circuit.num_qubits, 1)


class TestFuzz:
    @given(printable_lines)
    @settings(max_examples=120, deadline=None)
    def test_qasm_fuzz(self, text):
        _accepts_or_parse_error(parse_qasm, text)

    @given(printable_lines)
    @settings(max_examples=120, deadline=None)
    def test_qc_fuzz(self, text):
        _accepts_or_parse_error(parse_qc, text)

    @given(printable_lines)
    @settings(max_examples=120, deadline=None)
    def test_real_fuzz(self, text):
        _accepts_or_parse_error(parse_real, text)

    @given(printable_lines)
    @settings(max_examples=120, deadline=None)
    def test_pla_fuzz(self, text):
        _accepts_or_parse_error(parse_pla, text)


class TestTargetedMalformed:
    @pytest.mark.parametrize(
        "text",
        [
            "qreg q[;\nx q[0];",
            "qreg q[2];\ncx q[0];",          # missing operand
            "qreg q[2];\ncx q[0], q[0];",    # duplicate operand
            "qreg q[2];\nrz() q[0];",        # empty angle
            "qreg q[2];\nrz(1/0) q[0];",     # division blow-up
        ],
    )
    def test_qasm_malformed(self, text):
        with pytest.raises((ParseError, ZeroDivisionError)):
            parse_qasm(text)

    @pytest.mark.parametrize(
        "text",
        [
            ".v a\nBEGIN\ncnot a a\nEND",    # duplicate wire
            ".v a b\nBEGIN\nt9 a b\nEND",    # arity mismatch
        ],
    )
    def test_qc_malformed(self, text):
        with pytest.raises(ParseError):
            parse_qc(text)

    def test_real_duplicate_operand(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 2\n.variables a b\n.begin\nt2 a a\n.end")
