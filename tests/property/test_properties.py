"""Property-based tests (hypothesis) on the core invariants.

Every transformation in the tool must preserve function: optimization,
mapping, decomposition, format round-trips, and the QMDD must agree with
dense linear algebra on arbitrary circuits.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CNOT, Gate, MCX, QuantumCircuit, TOFFOLI
from repro.backend import check_conformance, map_circuit, mcx_to_toffoli
from repro.devices import linear_device
from repro.frontend import TruthTable, esop_minimize, synthesize_truth_table, verify_cascade, verify_esop
from repro.io import parse_qasm, parse_qc, parse_real, to_qasm, to_qc, to_real
from repro.optimize import optimize_circuit
from repro.qmdd import QMDDManager, check_equivalence
from repro.verify import permutation, run_sparse, simulate, basis_state


# -- circuit strategies -------------------------------------------------------

SINGLE_QUBIT = ["X", "Y", "Z", "H", "S", "SDG", "T", "TDG"]


@st.composite
def circuits(draw, num_qubits=3, max_gates=16, classical_only=False):
    n = num_qubits
    gate_kinds = ["1q", "cnot", "toffoli"]
    if classical_only:
        gate_kinds = ["x", "cnot", "toffoli"]
    gates = []
    for _ in range(draw(st.integers(0, max_gates))):
        kind = draw(st.sampled_from(gate_kinds))
        if kind == "1q":
            name = draw(st.sampled_from(SINGLE_QUBIT))
            gates.append(Gate(name, (draw(st.integers(0, n - 1)),)))
        elif kind == "x":
            gates.append(Gate("X", (draw(st.integers(0, n - 1)),)))
        elif kind == "cnot":
            pair = draw(st.permutations(range(n)))
            gates.append(CNOT(pair[0], pair[1]))
        else:
            triple = draw(st.permutations(range(n)))
            gates.append(TOFFOLI(triple[0], triple[1], triple[2]))
    return QuantumCircuit(n, gates)


# -- optimizer invariants -------------------------------------------------------


class TestOptimizerProperties:
    @given(circuits())
    @settings(max_examples=60, deadline=None)
    def test_optimization_preserves_unitary(self, circuit):
        optimized = optimize_circuit(circuit)
        assert np.allclose(optimized.unitary(), circuit.unitary())

    @given(circuits())
    @settings(max_examples=60, deadline=None)
    def test_optimization_never_increases_cost(self, circuit):
        from repro.core import transmon_cost

        assert transmon_cost(optimize_circuit(circuit)) <= transmon_cost(circuit)

    @given(circuits())
    @settings(max_examples=30, deadline=None)
    def test_optimization_idempotent_on_result(self, circuit):
        once = optimize_circuit(circuit)
        twice = optimize_circuit(once)
        from repro.core import transmon_cost

        assert transmon_cost(twice) == transmon_cost(once)


class TestMappingProperties:
    @given(circuits(num_qubits=4, max_gates=10))
    @settings(max_examples=30, deadline=None)
    def test_mapping_preserves_unitary_and_conformance(self, circuit):
        device = linear_device(4)
        mapped = map_circuit(circuit, device)
        assert check_conformance(mapped, device) == []
        assert np.allclose(mapped.unitary(), circuit.unitary())

    @given(circuits(num_qubits=4, max_gates=8))
    @settings(max_examples=20, deadline=None)
    def test_map_then_optimize_still_equivalent(self, circuit):
        device = linear_device(4)
        mapped = map_circuit(circuit, device)
        optimized = optimize_circuit(mapped, coupling_map=device.coupling_map)
        assert check_conformance(optimized, device) == []
        assert np.allclose(optimized.unitary(), circuit.unitary())


class TestQmddProperties:
    @given(circuits(num_qubits=3, max_gates=14))
    @settings(max_examples=40, deadline=None)
    def test_qmdd_matches_dense(self, circuit):
        manager = QMDDManager(3)
        edge = manager.circuit_edge(circuit)
        assert np.allclose(manager.to_matrix(edge), circuit.unitary())

    @given(circuits(num_qubits=3, max_gates=10))
    @settings(max_examples=30, deadline=None)
    def test_circuit_equivalent_to_double_inverse(self, circuit):
        roundtrip = circuit.compose(circuit.inverse()).compose(circuit)
        assert check_equivalence(circuit, roundtrip).equivalent

    @given(circuits(num_qubits=3, max_gates=10), st.integers(0, 7))
    @settings(max_examples=30, deadline=None)
    def test_sparse_simulator_matches_dense(self, circuit, basis):
        sparse = run_sparse(circuit, basis)
        dense = simulate(circuit, basis_state(3, basis))
        rebuilt = np.zeros(8, dtype=complex)
        for idx, amp in sparse.amplitudes.items():
            rebuilt[idx] = amp
        assert np.allclose(rebuilt, dense)


class TestDecompositionProperties:
    @given(st.integers(3, 6), st.data())
    @settings(max_examples=20, deadline=None)
    def test_mcx_classical_behaviour(self, k, data):
        """Barenco decomposition acts as MCX on every sampled basis state."""
        ancilla_count = data.draw(st.integers(1, k - 2)) if k > 3 else 1
        n = k + 1 + ancilla_count
        controls = list(range(k))
        target = k
        ancillas = list(range(k + 1, n))
        gates = mcx_to_toffoli(controls, target, ancillas)
        circuit = QuantumCircuit(n, gates)
        bits = data.draw(st.integers(0, (1 << n) - 1))
        out = permutation_step(circuit, bits, n)
        controls_on = all(bits & (1 << (n - 1 - c)) for c in controls)
        expected = bits ^ (1 << (n - 1 - target)) if controls_on else bits
        assert out == expected


def permutation_step(circuit, bits, n):
    from repro.verify import evaluate

    return evaluate(circuit, bits)


class TestFrontendProperties:
    @given(st.integers(0, 255))
    @settings(max_examples=80, deadline=None)
    def test_esop_and_cascade_for_every_3var_function(self, value):
        table = TruthTable.from_hex(f"{value:02x}", 3)
        cubes = esop_minimize(table)
        assert verify_esop(table, cubes)
        cascade = synthesize_truth_table(table)
        assert verify_cascade(table, cascade)

    @given(st.lists(st.integers(0, 3), min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_multi_output_cascades(self, rows):
        table = TruthTable(4, 2, rows)
        cascade = synthesize_truth_table(table)
        assert verify_cascade(table, cascade)


class TestFormatRoundtrips:
    @given(circuits(num_qubits=4, max_gates=12))
    @settings(max_examples=40, deadline=None)
    def test_qasm_roundtrip(self, circuit):
        assert parse_qasm(to_qasm(circuit)).gates == circuit.gates

    @given(circuits(num_qubits=4, max_gates=12))
    @settings(max_examples=40, deadline=None)
    def test_qc_roundtrip(self, circuit):
        assert parse_qc(to_qc(circuit)).gates == circuit.gates

    @given(circuits(num_qubits=4, max_gates=12, classical_only=True))
    @settings(max_examples=40, deadline=None)
    def test_real_roundtrip(self, circuit):
        assert parse_real(to_real(circuit)).gates == circuit.gates

    @given(circuits(num_qubits=4, max_gates=12, classical_only=True))
    @settings(max_examples=20, deadline=None)
    def test_real_roundtrip_preserves_permutation(self, circuit):
        assert permutation(parse_real(to_real(circuit))) == permutation(circuit)
