"""Property tests for dataflow-justified rewrites.

The contract under test: every deletion/demotion `propagate_constants`
makes under assumed facts preserves the `verify_equivalent` verdict on
the asserted subspace — under both QMDD strategies and the screened
auto path — over the committed fuzz corpus and seeded generator
circuits.  An injected miscompile on top of the rewrite must still be
caught.
"""

import json
from pathlib import Path

import pytest

from repro.core import H, QuantumCircuit, X
from repro.fuzz import random_cascade
from repro.optimize import propagate_constants
from repro.verify import verify_equivalent

SEEDS = range(12)
WIDTH = 4


def corpus_circuits():
    from repro.batch.serialize import circuit_from_payload

    for path in sorted(Path("tests/corpus").glob("*.json")):
        payload = json.loads(path.read_text())
        yield path.name, circuit_from_payload(payload["circuit"])


def assert_rewrite_verified(original, rewritten, zeros, label):
    for strategy in ("miter", "two_sided"):
        report = verify_equivalent(
            original, rewritten, method="qmdd",
            known_zero=zeros, strategy=strategy,
        )
        assert report.equivalent, (
            f"{label}: dataflow rewrite broke {strategy} verification: "
            f"{report.detail}"
        )
    screened = verify_equivalent(original, rewritten, known_zero=zeros)
    assert screened.equivalent, (
        f"{label}: screened auto path disagrees: {screened.detail}"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_cascades_rewrite_soundly(seed):
    circuit = random_cascade(seed, num_qubits=WIDTH, num_gates=12)
    zeros = frozenset({0, WIDTH - 1})
    rewritten, stats = propagate_constants(circuit, known_zero=zeros)
    assert_rewrite_verified(circuit, rewritten, zeros, f"seed {seed}")


@pytest.mark.parametrize("seed", SEEDS)
def test_injected_miscompile_still_caught(seed):
    """A rewrite plus a deliberately wrong extra gate must verify NO:
    subspace restriction may excuse the rewrite, never a miscompile."""
    circuit = random_cascade(seed, num_qubits=WIDTH, num_gates=12)
    zeros = frozenset({0, WIDTH - 1})
    rewritten, _ = propagate_constants(circuit, known_zero=zeros)
    # X on a free wire changes the action on every admissible input.
    broken = QuantumCircuit(
        WIDTH, list(rewritten.gates) + [X(1)], name="broken"
    )
    for strategy in ("miter", "two_sided"):
        report = verify_equivalent(
            circuit, broken, method="qmdd",
            known_zero=zeros, strategy=strategy,
        )
        assert not report.equivalent, f"seed {seed}: {strategy} missed it"
    screened = verify_equivalent(circuit, broken, known_zero=zeros)
    assert not screened.equivalent
    # Classical cascade: the cheap prescreen itself must be the catcher.
    assert screened.method == "prescreen"


@pytest.mark.parametrize("seed", SEEDS)
def test_non_classical_prefix_rewrites_soundly(seed):
    # An H prefix kills most facts: whatever survives must still be
    # rewritten soundly, and the prescreen must abstain (non-classical).
    cascade = random_cascade(seed, num_qubits=WIDTH, num_gates=10)
    circuit = QuantumCircuit(
        WIDTH, [H(1)] + list(cascade.gates), name=cascade.name
    )
    zeros = frozenset({0, WIDTH - 1})
    rewritten, stats = propagate_constants(circuit, known_zero=zeros)
    assert_rewrite_verified(circuit, rewritten, zeros, f"seed {seed}")


def test_corpus_circuits_rewrite_soundly():
    checked = 0
    for name, circuit in corpus_circuits():
        if circuit.num_qubits > 8:
            continue  # keep the exhaustive QMDD legs fast
        zeros = frozenset({0})
        rewritten, _ = propagate_constants(circuit, known_zero=zeros)
        assert_rewrite_verified(circuit, rewritten, zeros, name)
        checked += 1
    assert checked > 0, "no corpus circuits narrow enough to check"
