"""Property-based tests over circuits that include parametric rotations."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import CNOT, Gate, QuantumCircuit, transmon_cost
from repro.optimize import merge_phases, optimize_circuit, remove_identities
from repro.qmdd import QMDDManager, check_equivalence
from repro.verify import basis_state, run_sparse, simulate

SINGLE_QUBIT = ["X", "Y", "Z", "H", "S", "SDG", "T", "TDG"]

angles = st.floats(
    min_value=-2 * math.pi,
    max_value=2 * math.pi,
    allow_nan=False,
    allow_infinity=False,
)


@st.composite
def rotation_circuits(draw, num_qubits=3, max_gates=14):
    gates = []
    for _ in range(draw(st.integers(0, max_gates))):
        kind = draw(st.sampled_from(["1q", "rot", "cnot"]))
        if kind == "1q":
            name = draw(st.sampled_from(SINGLE_QUBIT))
            gates.append(Gate(name, (draw(st.integers(0, num_qubits - 1)),)))
        elif kind == "rot":
            name = draw(st.sampled_from(["RZ", "RX", "RY"]))
            qubit = draw(st.integers(0, num_qubits - 1))
            gates.append(Gate(name, (qubit,), (draw(angles),)))
        else:
            pair = draw(st.permutations(range(num_qubits)))
            gates.append(CNOT(pair[0], pair[1]))
    return QuantumCircuit(num_qubits, gates)


class TestRotationProperties:
    @given(rotation_circuits())
    @settings(max_examples=50, deadline=None)
    def test_optimizer_preserves_unitary(self, circuit):
        optimized = optimize_circuit(circuit)
        assert np.allclose(optimized.unitary(), circuit.unitary(), atol=1e-7)

    @given(rotation_circuits())
    @settings(max_examples=50, deadline=None)
    def test_optimizer_never_raises_cost(self, circuit):
        assert transmon_cost(optimize_circuit(circuit)) <= transmon_cost(circuit)

    @given(rotation_circuits())
    @settings(max_examples=40, deadline=None)
    def test_qmdd_matches_dense(self, circuit):
        manager = QMDDManager(3)
        edge = manager.circuit_edge(circuit)
        assert np.allclose(manager.to_matrix(edge), circuit.unitary(), atol=1e-7)

    @given(rotation_circuits())
    @settings(max_examples=30, deadline=None)
    def test_inverse_composes_to_identity(self, circuit):
        """Verified through the facade: raw canonical QMDD comparison can
        (rarely) report a float-boundary false negative on adversarial
        rotation angles; the facade's recheck resolves it (docs/qmdd.md)."""
        from repro.verify import verify_equivalent

        roundtrip = circuit.compose(circuit.inverse())
        report = verify_equivalent(roundtrip, QuantumCircuit(3), method="qmdd")
        assert report.equivalent, report.detail

    @given(rotation_circuits(), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_sparse_matches_dense(self, circuit, basis):
        sparse = run_sparse(circuit, basis)
        dense = simulate(circuit, basis_state(3, basis))
        rebuilt = np.zeros(8, dtype=complex)
        for idx, amp in sparse.amplitudes.items():
            rebuilt[idx] = amp
        assert np.allclose(rebuilt, dense, atol=1e-8)

    @given(st.lists(angles, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_rz_runs_merge_to_at_most_two_gates(self, run):
        circuit = QuantumCircuit(1, [Gate("RZ", (0,), (a,)) for a in run])
        merged = merge_phases(circuit)
        assert len(merged) <= 2
        assert np.allclose(merged.unitary(), circuit.unitary(), atol=1e-7)

    @given(angles)
    @settings(max_examples=40, deadline=None)
    def test_rotation_and_inverse_cancel(self, theta):
        gate = Gate("RY", (0,), (theta,))
        circuit = QuantumCircuit(1, [gate, gate.inverse()])
        assert len(remove_identities(circuit)) == 0
