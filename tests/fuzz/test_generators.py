"""Seeded fuzz generators: determinism, validity, bounds."""

import pytest

from repro.core.exceptions import ReproError
from repro.fuzz import (
    generate_case,
    random_cascade,
    random_cube_list,
    random_esop_cascade,
)

CASCADE_GATES = {"X", "CNOT", "TOFFOLI", "MCX"}


class TestRandomCascade:
    def test_same_seed_same_circuit(self):
        first = random_cascade(42, num_qubits=4, num_gates=10)
        second = random_cascade(42, num_qubits=4, num_gates=10)
        assert first.fingerprint() == second.fingerprint()

    def test_different_seeds_differ(self):
        prints = {
            random_cascade(seed, num_qubits=4, num_gates=10).fingerprint()
            for seed in range(8)
        }
        assert len(prints) > 1

    def test_structure_is_valid(self):
        circuit = random_cascade(7, num_qubits=5, num_gates=20)
        assert circuit.num_qubits == 5
        assert len(circuit) == 20
        for gate in circuit:
            assert gate.name in CASCADE_GATES
            assert len(set(gate.qubits)) == len(gate.qubits)  # distinct wires
            assert all(0 <= q < 5 for q in gate.qubits)

    def test_max_controls_caps_arity(self):
        circuit = random_cascade(3, num_qubits=8, num_gates=50, max_controls=2)
        assert max(len(gate.qubits) for gate in circuit) <= 3

    def test_single_qubit_width(self):
        circuit = random_cascade(1, num_qubits=1, num_gates=5)
        assert all(gate.name == "X" for gate in circuit)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ReproError):
            random_cascade(1, num_qubits=0, num_gates=5)


class TestRandomCubeList:
    def test_deterministic(self):
        first = random_cube_list(11, num_inputs=3, num_outputs=2, num_cubes=6)
        second = random_cube_list(11, num_inputs=3, num_outputs=2, num_cubes=6)
        assert first.rows == second.rows

    def test_shape(self):
        cubes = random_cube_list(5, num_inputs=4, num_outputs=2, num_cubes=7)
        assert cubes.num_inputs == 4
        assert cubes.num_outputs == 2
        assert len(cubes.rows) == 7

    def test_masks_nonzero(self):
        cubes = random_cube_list(9, num_inputs=2, num_outputs=2, num_cubes=20)
        for _, mask in cubes.rows:
            assert 1 <= mask <= 3


class TestGenerateCase:
    def test_deterministic_from_seed_alone(self):
        first = generate_case(123456)
        second = generate_case(123456)
        assert first.fingerprint() == second.fingerprint()
        assert first.name == second.name == "fuzz-123456"

    def test_respects_width_bound(self):
        for seed in range(30):
            circuit = generate_case(seed, max_qubits=4, max_gates=6)
            assert 1 <= circuit.num_qubits <= 5  # ESOP adds output wires
            assert len(circuit) >= 1

    def test_covers_both_families(self):
        names = set()
        for seed in range(40):
            circuit = generate_case(seed)
            gate_names = {gate.name for gate in circuit}
            if gate_names <= CASCADE_GATES:
                names.add("cascade-like")
            else:
                names.add("other")
        # Both cascades and ESOP-synthesized circuits appear (ESOP output
        # is also X/CNOT/Toffoli-shaped, so just assert non-triviality
        # via distinct structures instead).
        prints = {generate_case(seed).fingerprint() for seed in range(40)}
        assert len(prints) >= 30

    def test_esop_cascade_deterministic(self):
        first = random_esop_cascade(77, num_inputs=3, num_outputs=1, num_cubes=4)
        second = random_esop_cascade(77, num_inputs=3, num_outputs=1, num_cubes=4)
        assert first.fingerprint() == second.fingerprint()
        assert first.num_qubits == 4  # inputs + outputs
