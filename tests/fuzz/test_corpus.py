"""The regression corpus: round trips, replay, and the committed set."""

import json
import os

import pytest

from repro.batch import faults
from repro.core import CNOT, QuantumCircuit, TOFFOLI, X
from repro.core.exceptions import ReproError
from repro.fuzz import (
    CORPUS_VERSION,
    CorpusEntry,
    load_corpus,
    replay_corpus,
    replay_entry,
    run_fuzz,
    save_entry,
    entry_from_finding,
)

COMMITTED_CORPUS = os.path.join(os.path.dirname(__file__), "..", "corpus")


def sample_entry():
    return CorpusEntry(
        kind="miscompile",
        device="linear5",
        options={"cost": "default", "mcx_mode": "barenco",
                 "placement": "identity"},
        circuit=QuantumCircuit(2, [CNOT(0, 1)], name="sample"),
        case_seed=1234,
        detail="oracle mismatch (test fixture)",
        original_gates=7,
    )


class TestEntryIdentity:
    def test_content_addressed(self):
        assert sample_entry().entry_id == sample_entry().entry_id
        assert len(sample_entry().entry_id) == 16

    def test_id_changes_with_circuit(self):
        other = sample_entry()
        other.circuit = QuantumCircuit(2, [X(0)], name="sample")
        assert other.entry_id != sample_entry().entry_id

    def test_id_changes_with_device(self):
        other = sample_entry()
        other.device = "t5"
        assert other.entry_id != sample_entry().entry_id

    def test_id_ignores_provenance(self):
        other = sample_entry()
        other.case_seed = 999
        other.detail = "different story"
        assert other.entry_id == sample_entry().entry_id


class TestRoundTrip:
    def test_payload_round_trip(self):
        entry = sample_entry()
        clone = CorpusEntry.from_payload(entry.to_payload())
        assert clone.entry_id == entry.entry_id
        assert clone.circuit.fingerprint() == entry.circuit.fingerprint()
        assert clone.options == entry.options
        assert clone.case_seed == 1234

    def test_version_mismatch_rejected(self):
        payload = sample_entry().to_payload()
        payload["version"] = CORPUS_VERSION + 1
        with pytest.raises(ReproError, match="version"):
            CorpusEntry.from_payload(payload)

    def test_save_is_idempotent_and_atomic(self, tmp_path):
        entry = sample_entry()
        first = save_entry(str(tmp_path), entry)
        second = save_entry(str(tmp_path), entry)
        assert first == second
        assert sorted(os.listdir(tmp_path)) == [f"{entry.entry_id}.json"]
        with open(first) as handle:
            payload = json.load(handle)
        assert payload["id"] == entry.entry_id

    def test_load_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nowhere")) == []

    def test_load_rejects_garbage(self, tmp_path):
        with open(tmp_path / "bad.json", "w") as handle:
            handle.write("{not json")
        with pytest.raises(ReproError, match="unreadable"):
            load_corpus(str(tmp_path))


class TestReplay:
    def test_clean_entry_passes(self):
        outcome = replay_entry(sample_entry())
        assert outcome.passed, outcome.detail
        assert "equivalent" in outcome.detail

    def test_injected_bug_detected(self, monkeypatch, tmp_path):
        monkeypatch.setenv(faults.FAULT_ENV, "miscompile:sample")
        monkeypatch.setenv(faults.FAULT_STATE_ENV, str(tmp_path / "fuse"))
        outcome = replay_entry(sample_entry())
        assert not outcome.passed
        assert "STILL FAILING" in outcome.describe()

    def test_findings_round_trip_through_corpus(self, monkeypatch, tmp_path):
        """Fuzz under injection, save the shrunk findings, then replay
        them with the injection off: every historical bug reads as
        fixed."""
        monkeypatch.setenv(faults.FAULT_ENV, "miscompile:fuzz")
        report = run_fuzz(seed=7, iterations=3)
        assert report.findings
        corpus_dir = str(tmp_path / "corpus")
        for finding in report.findings:
            save_entry(corpus_dir, entry_from_finding(finding))
        monkeypatch.delenv(faults.FAULT_ENV)
        outcomes = replay_corpus(corpus_dir)
        assert len(outcomes) == len(
            {entry_from_finding(f).entry_id for f in report.findings}
        )
        assert all(outcome.passed for outcome in outcomes)


class TestCommittedCorpus:
    """The corpus under ``tests/corpus/`` is part of tier 1: every entry
    is a historically-failing minimal case that must stay fixed."""

    def test_corpus_exists(self):
        assert load_corpus(COMMITTED_CORPUS), (
            "tests/corpus/ must ship at least one regression entry"
        )

    def test_all_entries_replay_clean(self):
        outcomes = replay_corpus(COMMITTED_CORPUS)
        failing = [o.describe() for o in outcomes if not o.passed]
        assert not failing, f"regressions: {failing}"

    def test_entries_are_minimal(self):
        for entry in load_corpus(COMMITTED_CORPUS):
            assert len(entry.circuit) <= 8
            assert entry.original_gates >= len(entry.circuit)
