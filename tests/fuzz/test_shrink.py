"""The greedy shrinker: minimality, determinism, budget discipline."""

from repro.core import CNOT, H, QuantumCircuit, T, TOFFOLI, X
from repro.fuzz import remove_qubit, shrink_case


def noisy_toffoli():
    """An 11-gate circuit whose 'bug' is simply containing a Toffoli."""
    return QuantumCircuit(5, [
        H(0), X(1), CNOT(0, 1), T(2), X(3),
        TOFFOLI(0, 1, 2),
        CNOT(3, 4), H(4), X(0), T(1), CNOT(2, 3),
    ], name="noisy")


def has_toffoli(circuit):
    return any(gate.name == "TOFFOLI" for gate in circuit)


class TestShrinkCase:
    def test_shrinks_to_single_gate(self):
        result = shrink_case(noisy_toffoli(), has_toffoli)
        assert result.shrunk_gates == 1
        assert result.circuit.gates[0].name == "TOFFOLI"
        assert result.original_gates == 11

    def test_shrunk_case_still_fails(self):
        result = shrink_case(noisy_toffoli(), has_toffoli)
        assert has_toffoli(result.circuit)

    def test_qubit_deletion_narrows_width(self):
        result = shrink_case(noisy_toffoli(), has_toffoli)
        # Only the Toffoli's three wires are needed.
        assert result.circuit.num_qubits == 3

    def test_deterministic(self):
        first = shrink_case(noisy_toffoli(), has_toffoli)
        second = shrink_case(noisy_toffoli(), has_toffoli)
        assert first.circuit.fingerprint() == second.circuit.fingerprint()
        assert first.evaluations == second.evaluations

    def test_evaluation_budget_respected(self):
        result = shrink_case(
            noisy_toffoli(), has_toffoli, max_evaluations=3
        )
        assert result.evaluations <= 3
        assert result.exhausted_budget
        assert has_toffoli(result.circuit)  # best-so-far still fails

    def test_predicate_exception_treated_as_not_failing(self):
        def fragile(circuit):
            if len(circuit) < 11:
                raise RuntimeError("boom")
            return True

        result = shrink_case(noisy_toffoli(), fragile)
        # No deletion survives the raising predicate: original returned.
        assert result.shrunk_gates == 11

    def test_unshrinkable_returns_original(self):
        single = QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="minimal")
        result = shrink_case(single, has_toffoli)
        assert result.shrunk_gates == 1
        assert result.circuit.num_qubits == 3


class TestRemoveQubit:
    def test_drops_gates_and_compacts_wires(self):
        circuit = QuantumCircuit(3, [X(0), CNOT(1, 2), H(1)])
        narrowed = remove_qubit(circuit, 0)
        assert narrowed.num_qubits == 2
        assert [gate.name for gate in narrowed] == ["CNOT", "H"]
        assert narrowed.gates[0].qubits == (0, 1)  # shifted down
        assert narrowed.gates[1].qubits == (0,)

    def test_removing_touched_wire_drops_its_gates(self):
        circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2), X(2)])
        narrowed = remove_qubit(circuit, 1)
        assert narrowed.num_qubits == 2
        assert [gate.name for gate in narrowed] == ["X"]
        assert narrowed.gates[0].qubits == (1,)

    def test_last_wire_is_not_removable(self):
        assert remove_qubit(QuantumCircuit(1, [X(0)]), 0) is None

    def test_out_of_range_is_none(self):
        circuit = QuantumCircuit(2, [X(0)])
        assert remove_qubit(circuit, 5) is None
        assert remove_qubit(circuit, -1) is None
