"""The differential fuzz harness end to end.

The acceptance test for the whole robustness layer lives here: a seeded
miscompile injected into the mapper must be *caught* by the fuzz oracle
and *shrunk* to a minimal cascade of at most 8 gates.
"""

import pytest

from repro.batch import CompileJob, faults
from repro.core import CNOT, QuantumCircuit, TOFFOLI
from repro.fuzz import (
    COST_VARIANTS,
    FUZZ_DEVICES,
    FuzzConfig,
    build_fuzz_device,
    oracle_check,
    run_fuzz,
)
from repro.fuzz.harness import resolve_options


class TestDeviceGrid:
    def test_grid_builds(self):
        for name in FUZZ_DEVICES:
            device = build_fuzz_device(name)
            assert device.name == name
            assert device.num_qubits >= 5

    def test_tokyo_has_diagonals(self):
        tokyo = build_fuzz_device("tokyo20")
        assert tokyo.num_qubits == 20
        assert tokyo.coupling_map.coupled(1, 7)

    def test_registry_fallback(self):
        assert build_fuzz_device("ibmqx4").name == "ibmqx4"


class TestOptions:
    def test_resolve_defaults(self):
        options = resolve_options({})
        assert options["verify"] is False
        assert options["mcx_mode"] == "barenco"
        assert "cost_function" not in options

    def test_resolve_cost_variant(self):
        options = resolve_options({"cost": "volume"})
        assert options["cost_function"] is COST_VARIANTS["volume"]


class TestOracle:
    def test_clean_compile_passes_oracle(self):
        circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2), CNOT(0, 2)],
                                 name="clean")
        device = build_fuzz_device("linear5")
        result = CompileJob.make(circuit, device, resolve_options({})).run()
        verdict = oracle_check(result)
        assert verdict.equivalent


class TestCampaign:
    def test_clean_campaign_finds_nothing(self):
        report = run_fuzz(seed=2019, iterations=10)
        assert report.ok, [f.describe() for f in report.findings]
        assert report.cases_run == 10
        assert report.compiles == 10
        assert report.oracle_checks > 0
        assert not report.interrupted
        assert "10 cases" in report.summary()

    def test_campaign_deterministic(self):
        first = run_fuzz(seed=5, iterations=6)
        second = run_fuzz(seed=5, iterations=6)
        assert first.oracle_checks == second.oracle_checks
        assert first.expected_rejections == second.expected_rejections
        assert len(first.findings) == len(second.findings)

    def test_budget_seconds_bounds_campaign(self):
        report = run_fuzz(seed=1, iterations=10_000, budget_seconds=0.0)
        assert report.cases_run < 10_000

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(TypeError):
            run_fuzz(FuzzConfig(), iterations=3)

    def test_on_event_receives_progress(self):
        events = []
        run_fuzz(seed=3, iterations=2, on_event=events.append)
        assert any("fuzz done" in line for line in events)


class TestAcceptance:
    """ISSUE acceptance: a seeded mapper miscompile is caught by the
    harness and shrunk to a minimal failing cascade of <= 8 gates."""

    @pytest.fixture
    def miscompiling_mapper(self, monkeypatch, tmp_path):
        monkeypatch.setenv(faults.FAULT_ENV, "miscompile:fuzz")
        monkeypatch.setenv(faults.FAULT_STATE_ENV, str(tmp_path / "fuse"))

    def test_seeded_miscompile_caught_and_shrunk(self, miscompiling_mapper):
        report = run_fuzz(seed=7, iterations=4)
        assert report.findings, "injected miscompile escaped the oracle"
        for finding in report.findings:
            assert finding.kind == "miscompile"
            assert finding.shrunk is not None
            assert len(finding.minimal_circuit) <= 8
            assert "oracle mismatch" in finding.detail
            diagnostic = finding.diagnostic()
            assert diagnostic.code == "REPRO710"
            assert diagnostic.is_error

    def test_shrink_disabled_keeps_original(self, miscompiling_mapper):
        report = run_fuzz(seed=7, iterations=4, shrink=False)
        assert report.findings
        assert all(f.shrunk is None for f in report.findings)
