"""Shared fixtures and helpers for the test suite."""

import random

import numpy as np
import pytest

from repro.core import CNOT, Gate, H, QuantumCircuit, S, T, TOFFOLI, X
from repro.devices import (
    IBMQ16,
    IBMQX2,
    IBMQX3,
    IBMQX4,
    IBMQX5,
    PROPOSED96,
    SIMULATOR,
)


@pytest.fixture
def qx2():
    return IBMQX2


@pytest.fixture
def qx3():
    return IBMQX3


@pytest.fixture
def qx4():
    return IBMQX4


@pytest.fixture
def qx5():
    return IBMQX5


@pytest.fixture
def melbourne():
    return IBMQ16


@pytest.fixture
def simulator():
    return SIMULATOR


@pytest.fixture
def machine96():
    return PROPOSED96


@pytest.fixture
def bell_pair():
    """H + CNOT: the smallest entangling circuit."""
    return QuantumCircuit(2, [H(0), CNOT(0, 1)], name="bell")


@pytest.fixture
def toffoli_circuit():
    return QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int = 0,
    gate_pool=("X", "Y", "Z", "H", "S", "SDG", "T", "TDG", "CNOT", "TOFFOLI"),
) -> QuantumCircuit:
    """Deterministic random circuit for equivalence-preservation tests."""
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random{seed}")
    for _ in range(num_gates):
        name = rng.choice(gate_pool)
        if name == "CNOT":
            a, b = rng.sample(range(num_qubits), 2)
            circuit.append(Gate("CNOT", (a, b)))
        elif name == "TOFFOLI":
            if num_qubits < 3:
                circuit.append(X(rng.randrange(num_qubits)))
            else:
                a, b, c = rng.sample(range(num_qubits), 3)
                circuit.append(Gate("TOFFOLI", (a, b, c)))
        else:
            circuit.append(Gate(name, (rng.randrange(num_qubits),)))
    return circuit


def unitaries_close(a: QuantumCircuit, b: QuantumCircuit, atol=1e-8) -> bool:
    """Dense unitary comparison on a common width."""
    width = max(a.num_qubits, b.num_qubits)
    return np.allclose(a.widened(width).unitary(), b.widened(width).unitary(), atol=atol)
