"""Topology builders and the Fig. 7 96-qubit reconstruction."""

import pytest

from repro.core import DeviceError
from repro.devices import (
    PROPOSED96,
    get_device,
    grid_device,
    ladder_device,
    linear_device,
    proposed_96q_device,
    ring_device,
    star_device,
)


class TestLinear:
    def test_chain_structure(self):
        d = linear_device(5)
        m = d.coupling_map
        for q in range(4):
            assert m.allows(q, q + 1)
            assert not m.allows(q + 1, q)
        assert not m.coupled(0, 2)

    def test_bidirectional(self):
        d = linear_device(4, bidirectional=True)
        assert d.coupling_map.allows(2, 1)

    def test_connected(self):
        assert linear_device(10).coupling_map.is_connected()

    def test_complexity(self):
        d = linear_device(5)
        assert d.coupling_complexity == pytest.approx(4 / 20)


class TestRing:
    def test_wraps_around(self):
        d = ring_device(6)
        assert d.coupling_map.allows(5, 0)
        assert d.coupling_map.is_connected()

    def test_too_small(self):
        with pytest.raises(DeviceError):
            ring_device(2)

    def test_distance_uses_both_arcs(self):
        d = ring_device(8)
        assert d.coupling_map.distance(0, 7) == 1


class TestStar:
    def test_hub_couples_all(self):
        d = star_device(5)
        for leaf in range(1, 5):
            assert d.coupling_map.allows(0, leaf)
        assert not d.coupling_map.coupled(1, 2)

    def test_leaf_to_leaf_distance(self):
        assert star_device(6).coupling_map.distance(1, 5) == 2


class TestGrid:
    def test_dimensions(self):
        d = grid_device(3, 4)
        assert d.num_qubits == 12

    def test_neighbour_structure(self):
        d = grid_device(3, 4)
        m = d.coupling_map
        assert m.coupled(0, 1)     # horizontal
        assert m.coupled(0, 4)     # vertical
        assert not m.coupled(0, 5)  # diagonal
        assert not m.coupled(3, 4)  # row wrap must not exist

    def test_connected(self):
        assert grid_device(4, 7).coupling_map.is_connected()

    def test_invalid_dimensions(self):
        with pytest.raises(DeviceError):
            grid_device(0, 3)

    def test_ladder_is_two_rows(self):
        d = ladder_device(8)
        assert d.num_qubits == 16
        assert d.coupling_map.coupled(0, 8)


class TestProposed96:
    def test_size_and_name(self):
        d = proposed_96q_device()
        assert d.num_qubits == 96
        assert PROPOSED96.num_qubits == 96
        assert get_device("proposed96") is PROPOSED96

    def test_connected(self):
        assert PROPOSED96.coupling_map.is_connected()

    def test_every_qubit_coupled(self):
        m = PROPOSED96.coupling_map
        for q in range(96):
            assert m.neighbors(q)

    def test_low_coupling_complexity(self):
        """Complexity must sit well below the 16-qubit devices (Table 2
        trend: complexity falls as machines grow)."""
        assert PROPOSED96.coupling_complexity < 0.05

    def test_table7_placements_routable(self):
        """Controls and targets used by Table 7 are mutually reachable."""
        m = PROPOSED96.coupling_map
        for target in (25, 45, 65, 85):
            for control in range(1, 10):
                assert m.distance(control, target) is not None

    def test_grid_coordinates(self):
        """Qubit r*16+c couples to its 4-neighbourhood only."""
        m = PROPOSED96.coupling_map
        assert m.coupled(0, 16)
        assert m.coupled(17, 18)
        assert not m.coupled(15, 16)  # row boundary
