"""IBM Q device library: Table 2 of the paper, exactly."""

import pytest

from repro.core import DeviceError
from repro.devices import (
    Device,
    IBMQ16,
    IBMQX2,
    IBMQX3,
    IBMQX4,
    IBMQX5,
    PAPER_DEVICES,
    SIMULATOR,
    available_devices,
    get_device,
    register_device,
)
from repro.devices.coupling import CouplingMap


class TestTable2:
    """Qubit counts and coupling complexities, row by row."""

    @pytest.mark.parametrize(
        "device,qubits,complexity",
        [
            (IBMQX2, 5, 0.3),
            (IBMQX3, 16, 20 / 240),     # 0.0833...
            (IBMQX4, 5, 0.3),
            (IBMQX5, 16, 22 / 240),     # 0.0916...
            (IBMQ16, 14, 18 / 182),     # 0.098901...
        ],
    )
    def test_qubits_and_complexity(self, device, qubits, complexity):
        assert device.num_qubits == qubits
        assert device.coupling_complexity == pytest.approx(complexity, abs=1e-12)

    def test_complexity_decimal_expansions(self):
        """The repeating decimals printed in Table 2."""
        assert f"{IBMQX3.coupling_complexity:.4f}" == "0.0833"
        assert f"{IBMQX5.coupling_complexity:.5f}" == "0.09167"
        assert f"{IBMQ16.coupling_complexity:.6f}" == "0.098901"

    def test_retired_flags(self):
        assert IBMQX3.retired and IBMQX5.retired
        assert not IBMQX2.retired and not IBMQX4.retired and not IBMQ16.retired

    def test_paper_device_order(self):
        assert [d.name for d in PAPER_DEVICES] == [
            "ibmqx2",
            "ibmqx3",
            "ibmqx4",
            "ibmqx5",
            "ibmq_16",
        ]


class TestCouplingMapsVerbatim:
    """Spot-check couplings straight from the Section 3 dictionaries."""

    def test_qx2_entries(self):
        m = IBMQX2.coupling_map
        assert m.allows(0, 1) and m.allows(0, 2) and m.allows(3, 4)
        assert not m.allows(1, 0)
        assert not m.allows(2, 0)

    def test_qx4_reversed_from_qx2(self):
        m = IBMQX4.coupling_map
        assert m.allows(1, 0) and m.allows(2, 0) and m.allows(2, 1)
        assert not m.allows(0, 1)

    def test_qx3_fig5_neighbourhood(self):
        """The couplings the paper's Fig. 5 walk relies on."""
        m = IBMQX3.coupling_map
        assert m.allows(12, 5)   # q5 <-> q12
        assert m.allows(12, 11)  # q12 <-> q11
        assert m.allows(11, 10)  # q11 -> q10
        assert not m.coupled(5, 10)

    def test_qx5_entries(self):
        m = IBMQX5.coupling_map
        assert m.allows(15, 0) and m.allows(15, 2) and m.allows(15, 14)
        assert m.allows(6, 5) and m.allows(6, 7) and m.allows(6, 11)

    def test_melbourne_entries(self):
        m = IBMQ16.coupling_map
        assert m.allows(5, 4) and m.allows(5, 6) and m.allows(5, 9)
        assert m.allows(13, 1) and m.allows(13, 12)

    def test_all_maps_connected(self):
        for device in PAPER_DEVICES:
            assert device.coupling_map.is_connected(), device.name

    def test_all_isolated_qubits_absent(self):
        """Every qubit on every paper device participates in a coupling
        (needed for routing to any position)."""
        for device in PAPER_DEVICES:
            m = device.coupling_map
            for q in range(device.num_qubits):
                assert m.neighbors(q), f"{device.name} q{q}"


class TestSimulator:
    def test_unrestricted(self):
        assert SIMULATOR.is_simulator
        assert SIMULATOR.coupling_complexity == 1.0
        assert SIMULATOR.coupling_map.allows(0, 31)

    def test_physical_devices_are_not_simulators(self):
        for device in PAPER_DEVICES:
            assert not device.is_simulator


class TestRegistry:
    def test_lookup_by_name_case_insensitive(self):
        assert get_device("IBMQX2") is IBMQX2
        assert get_device("ibmq_16") is IBMQ16

    def test_unknown_name(self):
        with pytest.raises(DeviceError):
            get_device("ibmq_not_a_machine")

    def test_available_devices_contains_paper_set(self):
        names = available_devices()
        for expected in ("ibmqx2", "ibmqx3", "ibmqx4", "ibmqx5", "ibmq_16",
                         "simulator", "proposed96"):
            assert expected in names

    def test_register_duplicate_rejected(self):
        dup = Device("ibmqx2", CouplingMap(2, {0: [1]}))
        with pytest.raises(DeviceError):
            register_device(dup)

    def test_register_overwrite_allowed(self):
        custom = Device("scratch-dev", CouplingMap(2, {0: [1]}))
        register_device(custom)
        replacement = Device("scratch-dev", CouplingMap(3, {0: [1, 2]}))
        register_device(replacement, overwrite=True)
        assert get_device("scratch-dev").num_qubits == 3


class TestDeviceObject:
    def test_gate_set(self):
        assert IBMQX2.supports_gate("CNOT")
        assert IBMQX2.supports_gate("TDG")
        assert not IBMQX2.supports_gate("TOFFOLI")
        assert not IBMQX2.supports_gate("SWAP")

    def test_with_cost_function(self):
        from repro.core import CostFunction

        flat = CostFunction(name="flat")
        modified = IBMQX2.with_cost_function(flat)
        assert modified.cost_function is flat
        assert modified.name == IBMQX2.name
        assert IBMQX2.cost_function is not flat

    def test_str(self):
        assert "ibmqx2" in str(IBMQX2)
        assert "simulator" in str(SIMULATOR)
