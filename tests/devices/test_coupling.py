"""CouplingMap behaviour: queries, metrics, path search."""

import pytest

from repro.core import DeviceError
from repro.devices import CouplingMap


@pytest.fixture
def small_map():
    # 0 -> 1 -> 2, 3 isolated from the chain via 2 -> 3
    return CouplingMap(4, {0: [1], 1: [2], 2: [3]}, name="chain4")


class TestQueries:
    def test_allows_directed(self, small_map):
        assert small_map.allows(0, 1)
        assert not small_map.allows(1, 0)

    def test_allows_reversed(self, small_map):
        assert small_map.allows_reversed(1, 0)
        assert not small_map.allows_reversed(0, 1)  # native direction exists
        assert not small_map.allows_reversed(0, 2)  # not adjacent at all

    def test_coupled_is_undirected(self, small_map):
        assert small_map.coupled(0, 1)
        assert small_map.coupled(1, 0)
        assert not small_map.coupled(0, 2)

    def test_neighbors(self, small_map):
        assert small_map.neighbors(1) == (0, 2)
        assert small_map.neighbors(0) == (1,)

    def test_as_dict_matches_input(self, small_map):
        assert small_map.as_dict() == {0: [1], 1: [2], 2: [3]}

    def test_neighbors_out_of_range(self, small_map):
        with pytest.raises(DeviceError):
            small_map.neighbors(9)


class TestValidation:
    def test_self_coupling_rejected(self):
        with pytest.raises(DeviceError):
            CouplingMap(2, {0: [0]})

    def test_out_of_range_coupling_rejected(self):
        with pytest.raises(DeviceError):
            CouplingMap(2, {0: [5]})

    def test_zero_qubits_rejected(self):
        with pytest.raises(DeviceError):
            CouplingMap(0, {})


class TestComplexity:
    def test_paper_example_qx2(self):
        """Section 3's worked example: 6 couplings / 20 permutations = 0.3."""
        qx2 = CouplingMap(5, {0: [1, 2], 1: [2], 3: [2, 4], 4: [2]})
        assert qx2.coupling_complexity == pytest.approx(0.3)

    def test_fully_connected_is_one(self):
        assert CouplingMap.fully_connected(8).coupling_complexity == 1.0

    def test_single_qubit_is_one(self):
        assert CouplingMap(1, {}).coupling_complexity == 1.0

    def test_chain_complexity(self, small_map):
        assert small_map.coupling_complexity == pytest.approx(3 / 12)


class TestConnectivity:
    def test_connected_chain(self, small_map):
        assert small_map.is_connected()

    def test_disconnected_components(self):
        split = CouplingMap(4, {0: [1], 2: [3]})
        assert not split.is_connected()

    def test_fully_connected(self):
        assert CouplingMap.fully_connected(5).is_connected()


class TestShortestPath:
    def test_trivial_path(self, small_map):
        assert small_map.shortest_path(2, 2) == [2]

    def test_chain_path(self, small_map):
        assert small_map.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_path_ignores_direction(self, small_map):
        assert small_map.shortest_path(3, 0) == [3, 2, 1, 0]

    def test_no_path_returns_none(self):
        split = CouplingMap(4, {0: [1], 2: [3]})
        assert split.shortest_path(0, 3) is None
        assert split.distance(0, 3) is None

    def test_distance(self, small_map):
        assert small_map.distance(0, 3) == 3
        assert small_map.distance(1, 2) == 1
        assert small_map.distance(2, 2) == 0

    def test_shortest_among_alternatives(self):
        # ring with a chord: 0-1-2-3-0 plus 0-2
        ring = CouplingMap.from_edge_list(
            4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        )
        assert ring.distance(0, 2) == 1
        path = ring.shortest_path(1, 3)
        assert len(path) == 3  # 1-2-3 or 1-0-3


def _reference_bfs(coupling_map, source):
    """Independent per-source BFS, the pre-memoization ground truth."""
    from collections import deque

    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        q = frontier.popleft()
        for adjacent in coupling_map.neighbors(q):
            if adjacent not in distances:
                distances[adjacent] = distances[q] + 1
                frontier.append(adjacent)
    return distances


def _library_maps():
    from repro.devices import PAPER_DEVICES, PROPOSED96, SIMULATOR

    return [d.coupling_map for d in (SIMULATOR, *PAPER_DEVICES, PROPOSED96)]


class TestDistanceTables:
    """Lazy all-pairs routing tables: O(1) distance, <=1 BFS per source."""

    def test_distances_match_fresh_bfs_on_every_library_device(self):
        for coupling_map in _library_maps():
            for source in range(coupling_map.num_qubits):
                reference = _reference_bfs(coupling_map, source)
                for destination in range(coupling_map.num_qubits):
                    assert coupling_map.distance(source, destination) == (
                        reference.get(destination)
                    ), (coupling_map.name, source, destination)

    def test_at_most_one_bfs_per_source(self):
        for coupling_map in _library_maps():
            n = coupling_map.num_qubits
            assert coupling_map.bfs_runs <= n  # prior tests may have run
            fresh = type(coupling_map)(
                n, coupling_map.as_dict(), name=coupling_map.name,
                all_to_all=coupling_map.all_to_all,
            )
            for destination in range(n):
                fresh.distance(0, destination)
                fresh.shortest_path(0, destination)
            assert fresh.bfs_runs == 1, coupling_map.name
            fresh.distance(min(1, n - 1), 0)
            assert fresh.bfs_runs <= 2, coupling_map.name

    def test_paths_are_valid_and_minimal(self):
        for coupling_map in _library_maps():
            n = coupling_map.num_qubits
            for source in range(min(n, 6)):
                for destination in range(n):
                    path = coupling_map.shortest_path(source, destination)
                    distance = coupling_map.distance(source, destination)
                    if distance is None:
                        assert path is None
                        continue
                    assert path[0] == source and path[-1] == destination
                    assert len(path) == distance + 1
                    for a, b in zip(path, path[1:]):
                        assert coupling_map.coupled(a, b), (
                            coupling_map.name, path,
                        )

    def test_disconnected_pairs_still_read_none(self):
        split = CouplingMap(4, {0: [1], 2: [3]})
        assert split.distance(0, 3) is None
        assert split.shortest_path(0, 3) is None
        assert split.bfs_runs == 1  # one row answers both queries

    def test_repeated_queries_reuse_the_row(self, small_map):
        assert small_map.bfs_runs == 0
        assert small_map.distance(0, 3) == 3
        assert small_map.distance(0, 1) == 1
        assert small_map.shortest_path(0, 2) == [0, 1, 2]
        assert small_map.bfs_runs == 1
        assert small_map.distance(3, 0) == 3  # the reverse row is new
        assert small_map.bfs_runs == 2

    def test_out_of_range_raises_without_building_a_row(self, small_map):
        with pytest.raises(DeviceError):
            small_map.distance(0, 9)
        with pytest.raises(DeviceError):
            small_map.shortest_path(9, 0)
        assert small_map.bfs_runs == 0


class TestEdgeList:
    def test_from_edge_list_roundtrip(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        m = CouplingMap.from_edge_list(3, edges, name="tri")
        assert m.directed_edges == frozenset(edges)

    def test_fully_connected_directed_edges(self):
        m = CouplingMap.fully_connected(3)
        assert len(m.directed_edges) == 6
        assert m.allows(0, 2) and m.allows(2, 0)

    def test_repr_contains_name(self, small_map):
        assert "chain4" in repr(small_map)
