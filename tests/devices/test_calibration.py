"""Calibration data and fidelity cost-function tests."""

import math

import pytest

from repro.core import CNOT, DeviceError, Gate, H, QuantumCircuit, T, TOFFOLI, X
from repro.devices import (
    Calibration,
    IBMQX2,
    IBMQX5,
    fidelity_cost,
    synthetic_calibration,
)


@pytest.fixture
def qx2_cal():
    return synthetic_calibration(IBMQX2)


class TestSyntheticCalibration:
    def test_covers_all_qubits_and_edges(self, qx2_cal):
        assert set(qx2_cal.single_qubit_error) == set(range(5))
        assert set(qx2_cal.cnot_error) == IBMQX2.coupling_map.directed_edges
        assert set(qx2_cal.readout_error) == set(range(5))

    def test_rates_in_published_ranges(self, qx2_cal):
        for error in qx2_cal.single_qubit_error.values():
            assert 1e-3 <= error <= 1.5e-3
        for error in qx2_cal.cnot_error.values():
            assert 2e-2 <= error <= 3e-2

    def test_deterministic(self):
        a = synthetic_calibration(IBMQX2)
        b = synthetic_calibration(IBMQX2)
        assert a.single_qubit_error == b.single_qubit_error
        assert a.cnot_error == b.cnot_error

    def test_devices_differ(self):
        a = synthetic_calibration(IBMQX2)
        b = synthetic_calibration(IBMQX5)
        assert a.single_qubit_error[0] != b.single_qubit_error[0]


class TestGateError:
    def test_single_qubit_lookup(self, qx2_cal):
        assert qx2_cal.gate_error(H(3)) == qx2_cal.single_qubit_error[3]

    def test_cnot_lookup(self, qx2_cal):
        assert qx2_cal.gate_error(CNOT(0, 1)) == qx2_cal.cnot_error[(0, 1)]

    def test_unknown_edge_raises(self, qx2_cal):
        with pytest.raises(DeviceError):
            qx2_cal.gate_error(CNOT(1, 0))  # reverse orientation not native

    def test_non_native_gate_raises(self, qx2_cal):
        with pytest.raises(DeviceError):
            qx2_cal.gate_error(TOFFOLI(0, 1, 2))

    def test_unknown_qubit_raises(self):
        cal = Calibration("tiny", {0: 1e-3}, {})
        with pytest.raises(DeviceError):
            cal.gate_error(X(5))


class TestSuccessProbability:
    def test_empty_circuit(self, qx2_cal):
        assert qx2_cal.success_probability(QuantumCircuit(5)) == 1.0

    def test_multiplicative(self, qx2_cal):
        single = qx2_cal.success_probability(QuantumCircuit(5, [H(0)]))
        double = qx2_cal.success_probability(QuantumCircuit(5, [H(0), H(0)]))
        assert double == pytest.approx(single ** 2)

    def test_cnot_dominates(self, qx2_cal):
        with_cnot = qx2_cal.success_probability(QuantumCircuit(5, [CNOT(0, 1)]))
        with_h = qx2_cal.success_probability(QuantumCircuit(5, [H(0)]))
        assert with_cnot < with_h


class TestFidelityCost:
    def test_additive_neg_log(self, qx2_cal):
        cost = fidelity_cost(qx2_cal)
        circuit = QuantumCircuit(5, [H(0), CNOT(0, 1)])
        expected = -(
            math.log(1 - qx2_cal.gate_error(H(0)))
            + math.log(1 - qx2_cal.gate_error(CNOT(0, 1)))
        )
        assert cost(circuit) == pytest.approx(expected)

    def test_lower_cost_means_higher_success(self, qx2_cal):
        cost = fidelity_cost(qx2_cal)
        short = QuantumCircuit(5, [CNOT(0, 1)])
        long = QuantumCircuit(5, [CNOT(0, 1), CNOT(0, 1), CNOT(0, 2)])
        assert cost(short) < cost(long)
        assert qx2_cal.success_probability(short) > qx2_cal.success_probability(long)

    def test_compile_with_fidelity_cost(self, qx2_cal):
        """End to end: the compiler optimizes under the fidelity metric
        and still formally verifies."""
        from repro import compile_circuit

        circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        result = compile_circuit(
            circuit, IBMQX2, cost_function=fidelity_cost(qx2_cal)
        )
        assert result.verification.equivalent
        assert result.optimized_metrics.cost <= result.unoptimized_metrics.cost
        prob = qx2_cal.success_probability(result.optimized)
        assert 0 < prob < 1

    def test_cost_name_mentions_device(self, qx2_cal):
        assert "ibmqx2" in fidelity_cost(qx2_cal).name
