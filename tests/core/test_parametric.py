"""Parametric rotation gates (RZ / RX / RY) across the toolchain."""

import math

import numpy as np
import pytest

from repro.core import (
    CNOT,
    CircuitError,
    Gate,
    H,
    QuantumCircuit,
    RX,
    RY,
    RZ,
    S,
    T,
    X,
    Z,
    gate_matrix,
)

PI = math.pi


class TestConstruction:
    def test_constructors(self):
        assert RZ(0.5, 2) == Gate("RZ", (2,), (0.5,))
        assert RX(PI, 0).params == (PI,)
        assert RY(-0.25, 1).name == "RY"

    def test_param_count_enforced(self):
        with pytest.raises(CircuitError):
            Gate("RZ", (0,))
        with pytest.raises(CircuitError):
            Gate("RZ", (0,), (1.0, 2.0))
        with pytest.raises(CircuitError):
            Gate("X", (0,), (1.0,))

    def test_params_coerced_to_float(self):
        assert Gate("RZ", (0,), (1,)).params == (1.0,)

    def test_str_shows_angle(self):
        assert "0.5" in str(RZ(0.5, 0))

    def test_hashable(self):
        assert len({RZ(0.5, 0), RZ(0.5, 0), RZ(0.6, 0)}) == 2


class TestMatrices:
    def test_rz_is_phase_rotation(self):
        m = gate_matrix("RZ", params=(PI / 4,))
        assert np.allclose(m, gate_matrix("T"))
        assert np.allclose(gate_matrix("RZ", params=(PI,)), gate_matrix("Z"))

    def test_rx_pi_is_x_up_to_phase(self):
        m = gate_matrix("RX", params=(PI,))
        assert np.allclose(m, -1j * gate_matrix("X"))

    def test_ry_rotates_real(self):
        m = gate_matrix("RY", params=(PI / 2,))
        expected = np.array([[1, -1], [1, 1]]) / math.sqrt(2)
        assert np.allclose(m, expected)

    def test_missing_params_raises(self):
        with pytest.raises(CircuitError):
            gate_matrix("RZ")


class TestSemantics:
    def test_inverse_negates_angle(self):
        assert RZ(0.7, 0).inverse() == RZ(-0.7, 0)
        assert RX(0.7, 0).is_inverse_of(RX(-0.7, 0))
        assert not RX(0.7, 0).is_inverse_of(RX(0.6, 0))
        assert not RX(0.7, 0).is_inverse_of(RY(-0.7, 0))

    def test_rz_is_diagonal_and_commutes_on_controls(self):
        assert RZ(0.3, 0).is_diagonal
        assert RZ(0.3, 0).commutes_with(CNOT(0, 1))
        assert not RX(0.3, 1).is_diagonal

    def test_circuit_inverse_roundtrip(self):
        c = QuantumCircuit(2, [RX(0.4, 0), RZ(1.1, 1), CNOT(0, 1), RY(-0.2, 0)])
        assert np.allclose(c.compose(c.inverse()).unitary(), np.eye(4))

    def test_remapped_keeps_params(self):
        c = QuantumCircuit(2, [RZ(0.9, 0)])
        assert c.remapped({0: 1})[0] == RZ(0.9, 1)

    def test_native_transmon(self):
        assert RZ(0.1, 0).is_native_transmon
        assert QuantumCircuit(1, [RX(0.1, 0)]).is_native_transmon


class TestSimulators:
    def test_sparse_matches_dense(self):
        from repro.verify import basis_state, run_sparse, simulate

        c = QuantumCircuit(2, [RX(0.8, 0), RZ(0.3, 1), CNOT(0, 1), RY(1.3, 1)])
        for idx in range(4):
            dense = simulate(c, basis_state(2, idx))
            sparse = run_sparse(c, idx)
            rebuilt = np.zeros(4, dtype=complex)
            for k, v in sparse.amplitudes.items():
                rebuilt[k] = v
            assert np.allclose(rebuilt, dense), idx

    def test_qmdd_matches_dense(self):
        from repro.qmdd import QMDDManager

        c = QuantumCircuit(2, [RY(0.8, 0), CNOT(0, 1), RZ(-2.2, 1), RX(0.1, 0)])
        m = QMDDManager(2)
        assert np.allclose(m.to_matrix(m.circuit_edge(c)), c.unitary())

    def test_qmdd_distinguishes_angles(self):
        from repro.qmdd import check_equivalence

        a = QuantumCircuit(1, [RZ(0.5, 0)])
        b = QuantumCircuit(1, [RZ(0.6, 0)])
        assert not check_equivalence(a, b).equivalent
        assert check_equivalence(a, a.copy()).equivalent


class TestOptimizer:
    def test_rz_pair_cancels(self):
        from repro.optimize import remove_identities

        c = QuantumCircuit(1, [RZ(0.5, 0), RZ(-0.5, 0)])
        assert len(remove_identities(c)) == 0

    def test_rz_run_merges_to_single_rotation(self):
        from repro.optimize import merge_phases

        c = QuantumCircuit(1, [RZ(0.3, 0), RZ(0.4, 0)])
        merged = merge_phases(c)
        assert len(merged) == 1
        assert merged[0].name == "RZ"
        assert merged[0].params[0] == pytest.approx(0.7)

    def test_rz_plus_discrete_merges_to_library_gate(self):
        """RZ(pi/4) T == S: the merger recognizes the discrete total."""
        from repro.optimize import merge_phases

        c = QuantumCircuit(1, [RZ(PI / 4, 0), T(0)])
        merged = merge_phases(c)
        assert merged.gates == (S(0),)

    def test_merge_preserves_unitary(self):
        from repro.optimize import optimize_circuit

        c = QuantumCircuit(2, [RZ(0.3, 0), T(0), CNOT(0, 1), RZ(-0.3, 0), Z(1)])
        out = optimize_circuit(c)
        assert np.allclose(out.unitary(), c.unitary())

    def test_full_turn_vanishes(self):
        from repro.optimize import merge_phases

        c = QuantumCircuit(1, [RZ(PI, 0), RZ(PI, 0)])
        assert len(merge_phases(c)) == 0


class TestQasmIO:
    def test_parse_angle_expressions(self):
        from repro.io import parse_qasm

        source = (
            "qreg q[2];\n"
            "rz(pi/2) q[0];\n"
            "rx(-pi/4) q[1];\n"
            "ry(0.25) q[0];\n"
            "u1(2*pi/8) q[1];\n"
        )
        c = parse_qasm(source)
        assert c[0] == RZ(PI / 2, 0)
        assert c[1] == RX(-PI / 4, 1)
        assert c[2] == RY(0.25, 0)
        assert c[3] == RZ(PI / 4, 1)

    def test_roundtrip(self):
        from repro.io import parse_qasm, to_qasm

        c = QuantumCircuit(2, [RZ(0.123456789, 0), RX(-1.5, 1), RY(2.25, 0)])
        back = parse_qasm(to_qasm(c))
        for ours, theirs in zip(c, back):
            assert ours.name == theirs.name
            assert ours.params[0] == pytest.approx(theirs.params[0])

    def test_bad_angle_rejected(self):
        from repro.core import ParseError
        from repro.io import parse_qasm

        with pytest.raises(ParseError):
            parse_qasm("qreg q[1];\nrz(import_os) q[0];")
        with pytest.raises(ParseError):
            parse_qasm("qreg q[1];\nrz(pi**2) q[0];")


class TestCompilerIntegration:
    def test_rotation_circuit_compiles_and_verifies(self):
        from repro import compile_circuit

        c = QuantumCircuit(3, [RX(0.7, 0), CNOT(0, 2), RZ(1.2, 2), RY(-0.4, 1)])
        result = compile_circuit(c, "ibmqx2")
        assert result.verification.equivalent
        assert result.optimized.is_native_transmon
