"""ASCII circuit renderer tests."""

import pytest

from repro.core import (
    CNOT,
    CZ,
    H,
    QuantumCircuit,
    RZ,
    SWAP,
    T,
    TOFFOLI,
    Tdg,
    X,
)
from repro.drawing import draw_circuit


class TestBasics:
    def test_empty_circuit(self):
        art = draw_circuit(QuantumCircuit(2))
        lines = art.splitlines()
        assert lines[0].startswith("q0:")
        assert lines[2].startswith("q1:")

    def test_single_qubit_labels(self):
        art = draw_circuit(QuantumCircuit(1, [H(0), T(0), Tdg(0)]))
        assert "H" in art and "T" in art and "T†" in art

    def test_cnot_symbols(self):
        art = draw_circuit(QuantumCircuit(2, [CNOT(0, 1)]))
        top, gap, bottom = art.splitlines()
        assert "●" in top
        assert "X" in bottom
        assert "│" in gap

    def test_cz_and_swap_symbols(self):
        art = draw_circuit(QuantumCircuit(2, [CZ(0, 1), SWAP(0, 1)]))
        top, _, bottom = art.splitlines()
        assert "●" in top and "Z" in bottom
        assert top.count("x") == 1 and bottom.count("x") == 1

    def test_toffoli_crossing(self):
        """A gate spanning an untouched wire draws a crossing there."""
        art = draw_circuit(QuantumCircuit(3, [TOFFOLI(0, 2, 1)]))
        lines = art.splitlines()
        assert "●" in lines[0] and "X" in lines[2] and "●" in lines[4]

    def test_spanning_crossing_symbol(self):
        art = draw_circuit(QuantumCircuit(3, [CNOT(0, 2)]))
        middle_wire = art.splitlines()[2]
        assert "┼" in middle_wire


class TestLayout:
    def test_parallel_gates_share_column(self):
        c = QuantumCircuit(2, [H(0), H(1)])
        art = draw_circuit(c)
        top, _, bottom = art.splitlines()
        assert top.index("H") == bottom.index("H")

    def test_sequential_gates_ordered(self):
        c = QuantumCircuit(1, [H(0), X(0)])
        line = draw_circuit(c).splitlines()[0]
        assert line.index("H") < line.index("X")

    def test_spanning_gates_never_share_a_column(self):
        """SWAP(0,3) and CZ(1,2) overlap in span; they must serialize."""
        c = QuantumCircuit(4, [SWAP(0, 3), CZ(1, 2)])
        art = draw_circuit(c)
        top = art.splitlines()[0]
        row1 = art.splitlines()[2]
        assert top.index("x") != row1.index("●")

    def test_truncation_marker(self):
        c = QuantumCircuit(1, [H(0)] * 40)
        art = draw_circuit(c, max_columns=5)
        assert "…" in art
        assert art.splitlines()[0].count("H") == 5

    def test_show_params(self):
        art = draw_circuit(QuantumCircuit(1, [RZ(0.5, 0)]), show_params=True)
        assert "Rz(0.5)" in art

    def test_all_rows_have_consistent_width(self):
        c = QuantumCircuit(3, [H(0), CNOT(0, 2), T(1), TOFFOLI(0, 1, 2)])
        lines = draw_circuit(c).splitlines()
        wire_lines = lines[::2]
        assert len({len(line) for line in wire_lines}) == 1
