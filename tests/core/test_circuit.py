"""QuantumCircuit IR tests."""

import numpy as np
import pytest

from repro.core import (
    CNOT,
    CircuitError,
    Gate,
    H,
    MCX,
    QuantumCircuit,
    S,
    T,
    TOFFOLI,
    Tdg,
    X,
    gate_matrix,
)


class TestConstruction:
    def test_empty_circuit(self):
        c = QuantumCircuit(3)
        assert c.num_qubits == 3
        assert len(c) == 0
        assert c.gate_volume == 0
        assert c.depth() == 0

    def test_append_validates_width(self):
        c = QuantumCircuit(2)
        c.append(CNOT(0, 1))
        with pytest.raises(CircuitError):
            c.append(X(2))

    def test_append_rejects_non_gate(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).append("x 0")

    def test_append_chains(self):
        c = QuantumCircuit(2).append(H(0)).append(CNOT(0, 1))
        assert len(c) == 2

    def test_negative_width_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)

    def test_constructor_accepts_gates(self):
        c = QuantumCircuit(2, [H(0), CNOT(0, 1)])
        assert [g.name for g in c] == ["H", "CNOT"]

    def test_extend(self):
        c = QuantumCircuit(3)
        c.extend([X(0), X(1), X(2)])
        assert len(c) == 3


class TestSequenceProtocol:
    def test_indexing_and_slicing(self):
        c = QuantumCircuit(2, [H(0), CNOT(0, 1), X(1)])
        assert c[0] == H(0)
        assert c[-1] == X(1)
        sliced = c[1:]
        assert isinstance(sliced, QuantumCircuit)
        assert len(sliced) == 2
        assert sliced.num_qubits == 2

    def test_structural_equality_and_hash(self):
        a = QuantumCircuit(2, [H(0)])
        b = QuantumCircuit(2, [H(0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != QuantumCircuit(3, [H(0)])
        assert a != QuantumCircuit(2, [H(1)])

    def test_gates_property_immutable_view(self):
        c = QuantumCircuit(2, [H(0)])
        assert c.gates == (H(0),)


class TestTransformations:
    def test_compose(self):
        a = QuantumCircuit(2, [H(0)])
        b = QuantumCircuit(3, [CNOT(1, 2)])
        c = a.compose(b)
        assert c.num_qubits == 3
        assert [g.name for g in c] == ["H", "CNOT"]

    def test_copy_is_independent(self):
        a = QuantumCircuit(2, [H(0)], name="orig")
        b = a.copy()
        b.append(X(1))
        assert len(a) == 1
        assert b.name == "orig"

    def test_inverse_reverses_and_adjoints(self):
        c = QuantumCircuit(2, [H(0), T(1), CNOT(0, 1)])
        inv = c.inverse()
        assert [g.name for g in inv] == ["CNOT", "TDG", "H"]

    def test_inverse_is_functional_inverse(self):
        c = QuantumCircuit(3, [H(0), T(1), TOFFOLI(0, 1, 2), S(2)])
        u = c.compose(c.inverse()).unitary()
        assert np.allclose(u, np.eye(8))

    def test_remapped(self):
        c = QuantumCircuit(2, [CNOT(0, 1)])
        r = c.remapped({0: 4, 1: 2})
        assert r[0] == CNOT(4, 2)
        assert r.num_qubits == 5

    def test_remapped_partial_mapping(self):
        c = QuantumCircuit(3, [CNOT(0, 2)])
        r = c.remapped({2: 5})
        assert r[0] == CNOT(0, 5)

    def test_widened(self):
        c = QuantumCircuit(2, [H(1)])
        w = c.widened(6)
        assert w.num_qubits == 6
        with pytest.raises(CircuitError):
            w.widened(3)


class TestMetrics:
    def test_counts(self):
        c = QuantumCircuit(
            3, [T(0), Tdg(1), T(2), CNOT(0, 1), CNOT(1, 2), H(0)]
        )
        assert c.t_count == 3
        assert c.cnot_count == 2
        assert c.gate_volume == 6
        assert c.count("H") == 1
        assert c.count("T", "H") == 3

    def test_histogram(self):
        c = QuantumCircuit(2, [H(0), H(1), CNOT(0, 1)])
        assert c.gate_histogram() == {"H": 2, "CNOT": 1}

    def test_used_qubits(self):
        c = QuantumCircuit(6, [CNOT(1, 4)])
        assert c.used_qubits == (1, 4)

    def test_depth(self):
        c = QuantumCircuit(3, [H(0), H(1), CNOT(0, 1), X(2)])
        assert c.depth() == 2
        assert QuantumCircuit(1, [H(0), H(0), H(0)]).depth() == 3

    def test_is_native_transmon(self):
        assert QuantumCircuit(2, [H(0), CNOT(0, 1)]).is_native_transmon
        assert not QuantumCircuit(3, [TOFFOLI(0, 1, 2)]).is_native_transmon

    def test_is_classical_reversible(self):
        assert QuantumCircuit(4, [X(0), CNOT(0, 1), MCX(0, 1, 2, 3)]).is_classical_reversible
        assert not QuantumCircuit(2, [H(0)]).is_classical_reversible


class TestUnitary:
    def test_single_gate_matches_gate_matrix(self):
        c = QuantumCircuit(1, [H(0)])
        assert np.allclose(c.unitary(), gate_matrix("H"))

    def test_gate_order_is_applied_left_to_right(self):
        c = QuantumCircuit(1, [X(0), H(0)])
        expected = gate_matrix("H") @ gate_matrix("X")
        assert np.allclose(c.unitary(), expected)

    def test_embedding_msb_convention(self):
        # X on qubit 0 of two flips the most significant bit.
        c = QuantumCircuit(2, [X(0)])
        u = c.unitary()
        state = np.zeros(4)
        state[0b00] = 1
        out = u @ state
        assert out[0b10] == 1

    def test_cnot_control_is_first_operand(self):
        c = QuantumCircuit(2, [CNOT(0, 1)])
        u = c.unitary()
        state = np.zeros(4)
        state[0b10] = 1  # control=1, target=0
        assert (u @ state)[0b11] == 1

    def test_too_wide_raises(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(15).unitary()

    def test_draw_contains_gates(self):
        text = QuantumCircuit(2, [H(0), CNOT(0, 1)], name="demo").draw()
        assert "demo" in text
        assert "CNOT" in text
