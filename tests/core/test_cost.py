"""Cost function tests: the paper's Eqn. 2 and pluggable variants."""

import pytest

from repro.core import (
    CNOT,
    CircuitMetrics,
    CostFunction,
    H,
    QuantumCircuit,
    T,
    TRANSMON_COST,
    Tdg,
    X,
    transmon_cost,
)


class TestEqn2:
    def test_empty_circuit_costs_zero(self):
        assert transmon_cost(QuantumCircuit(2)) == 0.0

    def test_single_qubit_gate_costs_one(self):
        assert transmon_cost(QuantumCircuit(1, [H(0)])) == 1.0
        assert transmon_cost(QuantumCircuit(1, [X(0)])) == 1.0

    def test_t_gate_costs_one_and_a_half(self):
        assert transmon_cost(QuantumCircuit(1, [T(0)])) == 1.5
        assert transmon_cost(QuantumCircuit(1, [Tdg(0)])) == 1.5

    def test_cnot_costs_one_and_a_quarter(self):
        assert transmon_cost(QuantumCircuit(2, [CNOT(0, 1)])) == 1.25

    def test_formula_on_mixed_circuit(self):
        # 2 T + 3 CNOT + 7 total: 0.5*2 + 0.25*3 + 7 = 8.75
        c = QuantumCircuit(
            3, [T(0), Tdg(1), CNOT(0, 1), CNOT(1, 2), CNOT(0, 2), H(0), X(2)]
        )
        assert transmon_cost(c) == pytest.approx(8.75)

    def test_paper_example_value(self):
        """The paper's #3 tech-independent entry: 0 T / 3 gates / 3.25 —
        an X-CNOT-X realization."""
        c = QuantumCircuit(3, [X(0), CNOT(0, 2), X(0)])
        assert transmon_cost(c) == pytest.approx(3.25)


class TestCustomization:
    def test_with_weights_overrides(self):
        heavier = TRANSMON_COST.with_weights(CNOT=1.0)
        c = QuantumCircuit(2, [CNOT(0, 1)])
        assert heavier.evaluate(c) == 2.0
        # original untouched
        assert TRANSMON_COST.evaluate(c) == 1.25

    def test_custom_callable(self):
        depth_cost = CostFunction(name="depth", custom=lambda c: float(c.depth()))
        c = QuantumCircuit(2, [H(0), H(1), CNOT(0, 1)])
        assert depth_cost(c) == 2.0

    def test_base_weight(self):
        volume_only = CostFunction(name="volume", base_weight=2.0)
        assert volume_only.evaluate(QuantumCircuit(1, [H(0), H(0)])) == 4.0

    def test_callable_protocol(self):
        assert TRANSMON_COST(QuantumCircuit(1, [T(0)])) == 1.5


class TestCircuitMetrics:
    def test_of(self):
        c = QuantumCircuit(2, [T(0), CNOT(0, 1), H(1)])
        m = CircuitMetrics.of(c)
        assert m.t_count == 1
        assert m.gate_volume == 3
        assert m.cost == pytest.approx(3.75)

    def test_str_matches_paper_cell_format(self):
        c = QuantumCircuit(2, [T(0), CNOT(0, 1), H(1)])
        assert str(CircuitMetrics.of(c)) == "1/3/3.75"
        whole = CircuitMetrics(t_count=0, gate_volume=3, cost=3.0)
        assert str(whole) == "0/3/3"

    def test_percent_decrease(self):
        before = CircuitMetrics(7, 100, 200.0)
        after = CircuitMetrics(7, 80, 150.0)
        assert before.percent_decrease_to(after) == pytest.approx(25.0)

    def test_percent_decrease_zero_cost(self):
        zero = CircuitMetrics(0, 0, 0.0)
        assert zero.percent_decrease_to(zero) == 0.0
