"""Reporting helpers (table rendering, averages)."""

import pytest

from repro.core import CNOT, H, QuantumCircuit, T, Tdg, X
from repro.core.cost import CircuitMetrics
from repro.reporting import Table, average, format_cost, metrics_cell, percent


class TestFormatting:
    def test_format_cost_whole(self):
        assert format_cost(3.0) == "3"
        assert format_cost(0.0) == "0"

    def test_format_cost_fractional(self):
        assert format_cost(3.25) == "3.25"

    def test_metrics_cell(self):
        a = CircuitMetrics(7, 17, 22.25)
        b = CircuitMetrics(7, 15, 20.0)
        assert metrics_cell(a, b) == "7/17/22.25  7/15/20"

    def test_percent(self):
        assert percent(None) == "N/A"
        assert percent(12.345) == "12.35"

    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0
        assert average([1.0, None, 3.0]) == 2.0
        assert average([]) is None
        assert average([None]) is None


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["a", "long-header"])
        table.add_row("x", 1)
        table.add_row("longer-cell", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "long-header" in lines[2]
        # all data lines equal width header line
        assert len(lines[4]) <= len(lines[1]) + 2

    def test_short_rows_padded(self):
        table = Table("t", ["a", "b", "c"])
        table.add_row("only-one")
        assert "only-one" in table.render()

    def test_print(self, capsys):
        table = Table("printed", ["col"])
        table.add_row("val")
        table.print()
        out = capsys.readouterr().out
        assert "printed" in out and "val" in out

    def test_to_csv(self):
        table = Table("t", ["a", "b"])
        table.add_row("x,y", 1)  # embedded comma must be quoted
        csv_text = table.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert '"x,y"' in lines[1]

    def test_write_csv(self, tmp_path):
        import csv

        table = Table("t", ["name", "value"])
        table.add_row("alpha", 3)
        path = tmp_path / "out.csv"
        table.write_csv(str(path))
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["name", "value"], ["alpha", "3"]]


class TestTDepth:
    """T-depth metric (lives in core.circuit; tested here with the other
    reporting-oriented metrics)."""

    def test_empty(self):
        assert QuantumCircuit(2).t_depth() == 0

    def test_sequential_ts(self):
        assert QuantumCircuit(1, [T(0), T(0), T(0)]).t_depth() == 3

    def test_parallel_ts(self):
        assert QuantumCircuit(2, [T(0), T(1)]).t_depth() == 1

    def test_non_t_gates_free(self):
        c = QuantumCircuit(2, [H(0), X(1), CNOT(0, 1), H(0)])
        assert c.t_depth() == 0

    def test_cnot_synchronizes_stages(self):
        # T(0); CNOT ties qubit 1 to qubit 0's stage; T(1) lands at stage 2
        c = QuantumCircuit(2, [T(0), CNOT(0, 1), T(1)])
        assert c.t_depth() == 2

    def test_toffoli_network_t_depth(self):
        from repro.backend import toffoli_network

        c = QuantumCircuit(3, toffoli_network(0, 1, 2))
        # the standard network has T-depth well below its T-count of 7
        assert 1 <= c.t_depth() <= 6

    def test_tdg_counts(self):
        assert QuantumCircuit(1, [Tdg(0), Tdg(0)]).t_depth() == 2
