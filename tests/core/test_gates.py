"""Gate model tests, including exact Table 1 transfer matrices."""

import math

import numpy as np
import pytest

from repro.core import (
    CNOT,
    CZ,
    CircuitError,
    Gate,
    H,
    MCX,
    S,
    SWAP,
    Sdg,
    T,
    TOFFOLI,
    Tdg,
    X,
    Y,
    Z,
    gate_matrix,
)
from repro.core.gates import (
    ALL_GATES,
    DIAGONAL_GATES,
    GATE_ARITY,
    INVERSE_NAME,
    SELF_INVERSE_GATES,
)

SQ2 = 1 / math.sqrt(2)


class TestTable1Matrices:
    """Every transfer matrix of the paper's Table 1, entry by entry."""

    def test_pauli_x(self):
        assert np.array_equal(gate_matrix("X"), [[0, 1], [1, 0]])

    def test_pauli_y(self):
        assert np.array_equal(gate_matrix("Y"), [[0, -1j], [1j, 0]])

    def test_pauli_z(self):
        assert np.array_equal(gate_matrix("Z"), [[1, 0], [0, -1]])

    def test_hadamard(self):
        assert np.allclose(gate_matrix("H"), [[SQ2, SQ2], [SQ2, -SQ2]])

    def test_phase_s(self):
        assert np.array_equal(gate_matrix("S"), [[1, 0], [0, 1j]])

    def test_s_dagger(self):
        assert np.array_equal(gate_matrix("SDG"), [[1, 0], [0, -1j]])

    def test_t(self):
        expected = [[1, 0], [0, np.exp(1j * math.pi / 4)]]
        assert np.allclose(gate_matrix("T"), expected)

    def test_t_dagger(self):
        expected = [[1, 0], [0, np.exp(-1j * math.pi / 4)]]
        assert np.allclose(gate_matrix("TDG"), expected)

    def test_cnot(self):
        expected = np.eye(4)[:, [0, 1, 3, 2]]
        assert np.array_equal(gate_matrix("CNOT"), expected)

    def test_cz(self):
        assert np.array_equal(gate_matrix("CZ"), np.diag([1, 1, 1, -1]))

    def test_swap(self):
        expected = np.eye(4)[:, [0, 2, 1, 3]]
        assert np.array_equal(gate_matrix("SWAP"), expected)

    def test_toffoli(self):
        expected = np.eye(8)[:, [0, 1, 2, 3, 4, 5, 7, 6]]
        assert np.array_equal(gate_matrix("TOFFOLI"), expected)

    def test_mcx_matrix_generalizes_toffoli(self):
        assert np.array_equal(gate_matrix("MCX", 3), gate_matrix("TOFFOLI"))
        m4 = gate_matrix("MCX", 4)
        expected = np.eye(16)
        expected[:, [14, 15]] = expected[:, [15, 14]]
        assert np.array_equal(m4, expected)

    def test_all_matrices_unitary(self):
        from repro.core.gates import ROTATION_GATES

        for name in ALL_GATES:
            size = 4 if name == "MCX" else None
            params = (0.731,) if name in ROTATION_GATES else None
            m = gate_matrix(name, size, params)
            assert np.allclose(m @ m.conj().T, np.eye(m.shape[0])), name

    def test_unknown_gate_matrix_raises(self):
        with pytest.raises(CircuitError):
            gate_matrix("FROBNICATE")

    def test_mcx_matrix_requires_size(self):
        with pytest.raises(CircuitError):
            gate_matrix("MCX")


class TestGateConstruction:
    def test_constructors_produce_expected_names(self):
        assert X(0).name == "X"
        assert Y(1).name == "Y"
        assert Z(2).name == "Z"
        assert H(0).name == "H"
        assert S(0).name == "S"
        assert Sdg(0).name == "SDG"
        assert T(0).name == "T"
        assert Tdg(0).name == "TDG"
        assert CNOT(0, 1).name == "CNOT"
        assert CZ(0, 1).name == "CZ"
        assert SWAP(0, 1).name == "SWAP"
        assert TOFFOLI(0, 1, 2).name == "TOFFOLI"

    def test_mcx_constructor_specializes_small_cases(self):
        assert MCX(0, 1).name == "CNOT"
        assert MCX(0, 1, 2).name == "TOFFOLI"
        assert MCX(0, 1, 2, 3).name == "MCX"

    def test_arity_enforced(self):
        with pytest.raises(CircuitError):
            Gate("CNOT", (0,))
        with pytest.raises(CircuitError):
            Gate("X", (0, 1))
        with pytest.raises(CircuitError):
            Gate("TOFFOLI", (0, 1))

    def test_duplicate_operands_rejected(self):
        with pytest.raises(CircuitError):
            Gate("CNOT", (1, 1))
        with pytest.raises(CircuitError):
            Gate("TOFFOLI", (0, 1, 0))

    def test_negative_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Gate("X", (-1,))

    def test_unknown_name_rejected(self):
        with pytest.raises(CircuitError):
            Gate("BOGUS", (0,))

    def test_gates_hashable_and_equal(self):
        assert CNOT(0, 1) == CNOT(0, 1)
        assert CNOT(0, 1) != CNOT(1, 0)
        assert len({X(0), X(0), X(1)}) == 2

    def test_str_rendering(self):
        assert str(CNOT(2, 5)) == "CNOT(q2, q5)"


class TestGateStructure:
    def test_controls_and_target(self):
        assert CNOT(3, 7).controls == (3,)
        assert CNOT(3, 7).target == 7
        assert TOFFOLI(1, 2, 0).controls == (1, 2)
        assert TOFFOLI(1, 2, 0).target == 0
        g = MCX(5, 6, 7, 8, 9)
        assert g.controls == (5, 6, 7, 8)
        assert g.target == 9
        assert X(4).controls == ()

    def test_native_transmon_flags(self):
        assert CNOT(0, 1).is_native_transmon
        assert T(0).is_native_transmon
        assert not TOFFOLI(0, 1, 2).is_native_transmon
        assert not SWAP(0, 1).is_native_transmon
        assert not CZ(0, 1).is_native_transmon

    def test_diagonal_flags(self):
        for name in DIAGONAL_GATES:
            assert name in ("I", "Z", "S", "SDG", "T", "TDG", "CZ", "RZ")
        assert T(0).is_diagonal
        assert not H(0).is_diagonal
        assert CZ(0, 1).is_diagonal


class TestInverse:
    def test_inverse_names_are_involutive(self):
        for name, inverse in INVERSE_NAME.items():
            assert INVERSE_NAME[inverse] == name

    def test_self_inverse_set(self):
        for name in SELF_INVERSE_GATES:
            assert INVERSE_NAME[name] == name

    def test_inverse_gate_matrices(self):
        for gate in [X(0), H(0), S(0), T(0), Sdg(0), Tdg(0)]:
            m = gate_matrix(gate.name)
            mi = gate_matrix(gate.inverse().name)
            assert np.allclose(m @ mi, np.eye(2)), gate.name

    def test_is_inverse_of_same_operands(self):
        assert T(0).is_inverse_of(Tdg(0))
        assert not T(0).is_inverse_of(Tdg(1))
        assert CNOT(0, 1).is_inverse_of(CNOT(0, 1))
        assert not CNOT(0, 1).is_inverse_of(CNOT(1, 0))

    def test_is_inverse_of_symmetric_gates(self):
        assert SWAP(0, 1).is_inverse_of(SWAP(1, 0))
        assert CZ(2, 3).is_inverse_of(CZ(3, 2))

    def test_is_inverse_of_unordered_controls(self):
        assert TOFFOLI(0, 1, 2).is_inverse_of(TOFFOLI(1, 0, 2))
        assert not TOFFOLI(0, 1, 2).is_inverse_of(TOFFOLI(0, 2, 1))
        assert MCX(0, 1, 2, 3).is_inverse_of(MCX(2, 1, 0, 3))


class TestCommutation:
    """commutes_with must never claim commutation falsely (checked against
    dense matrices); False answers are allowed to be conservative."""

    def _check_sound(self, a, b, width):
        from repro.core import QuantumCircuit

        ab = QuantumCircuit(width, [a, b]).unitary()
        ba = QuantumCircuit(width, [b, a]).unitary()
        actually_commute = np.allclose(ab, ba)
        if a.commutes_with(b):
            assert actually_commute, f"{a} vs {b}"
        # symmetry
        assert a.commutes_with(b) == b.commutes_with(a)

    def test_disjoint_gates_commute(self):
        assert X(0).commutes_with(H(1))
        assert CNOT(0, 1).commutes_with(CNOT(2, 3))

    def test_diagonal_gates_commute(self):
        assert T(0).commutes_with(Z(0))
        assert CZ(0, 1).commutes_with(S(1))

    def test_control_phase_commutes_with_cnot(self):
        assert T(0).commutes_with(CNOT(0, 1))
        assert not T(1).commutes_with(CNOT(0, 1)) or False  # conservative

    def test_x_on_target_commutes(self):
        assert X(1).commutes_with(CNOT(0, 1))
        assert X(2).commutes_with(TOFFOLI(0, 1, 2))

    def test_shared_target_cnots_commute(self):
        assert CNOT(0, 2).commutes_with(CNOT(1, 2))
        assert not CNOT(0, 1).commutes_with(CNOT(1, 2))

    def test_soundness_exhaustive_pairs(self):
        pool = [
            X(0), Y(0), Z(0), H(0), S(0), T(0),
            X(1), Z(1), H(1),
            CNOT(0, 1), CNOT(1, 0), CNOT(0, 2), CNOT(1, 2),
            CZ(0, 1), SWAP(0, 1), TOFFOLI(0, 1, 2),
        ]
        for a in pool:
            for b in pool:
                self._check_sound(a, b, 3)
