"""Cached derived circuit metrics must invalidate on mutation."""

from repro.core import CNOT, H, QuantumCircuit, T, Tdg, X


def build():
    return QuantumCircuit(2, [H(0), T(0), CNOT(0, 1)], name="c")


class TestInvalidation:
    def test_append_updates_every_metric(self):
        circuit = build()
        # Populate all caches first.
        assert circuit.gate_volume == 3
        assert circuit.t_count == 1
        assert circuit.depth() == 3
        assert circuit.t_depth() == 1
        before = circuit.fingerprint()

        circuit.append(Tdg(1))

        assert circuit.gate_volume == 4
        assert circuit.t_count == 2
        assert circuit.depth() == 4  # qubit 1 is busy until the CNOT layer
        assert circuit.t_depth() == 2
        assert circuit.fingerprint() != before

    def test_extend_updates_every_metric(self):
        circuit = build()
        assert circuit.count("H") == 1
        assert circuit.depth() == 3
        before = circuit.fingerprint()

        circuit.extend([H(0), X(1)])

        assert circuit.count("H") == 2
        assert circuit.count("X") == 1
        assert circuit.gate_volume == 5
        assert circuit.depth() == 4
        assert circuit.fingerprint() != before

    def test_histogram_copy_does_not_leak_cache(self):
        circuit = build()
        histogram = circuit.gate_histogram()
        histogram["H"] = 99  # mutating the copy must not poison the cache
        assert circuit.gate_histogram()["H"] == 1
        assert circuit.count("H") == 1

    def test_repeated_reads_are_consistent(self):
        circuit = build()
        assert circuit.depth() == circuit.depth()
        assert circuit.fingerprint() == circuit.fingerprint()
        assert circuit.gate_histogram() == circuit.gate_histogram()


class TestDerivedConstructors:
    """Circuits built via the trusted fast path still report correctly."""

    def test_copy_compose_inverse_slice(self):
        circuit = build()
        assert circuit.copy().gate_volume == 3
        assert circuit.compose(build()).gate_volume == 6
        assert circuit.inverse().t_count == 1  # t -> tdg, still a T gate
        assert circuit[0:2].gate_volume == 2
        assert circuit.widened(4).num_qubits == 4
        assert circuit.widened(4).gate_volume == 3

    def test_mutating_a_copy_leaves_original_cached_metrics(self):
        original = build()
        assert original.gate_volume == 3
        clone = original.copy()
        clone.append(X(0))
        assert clone.gate_volume == 4
        assert original.gate_volume == 3
        assert original.fingerprint() != clone.fingerprint()
