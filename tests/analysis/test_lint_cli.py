"""The ``repro lint`` subcommand and ``repro compile --strict``."""

import json

import pytest

from repro.analysis import DiagnosticReport
from repro.cli import main

BELL_QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0], q[1];
"""

TOFFOLI_QC = """.v a b c
BEGIN
H c
t3 a b c
H c
END
"""

MAJORITY_REAL = """.version 2.0
.numvars 4
.variables a b c d
.begin
t3 a b d
t3 a c d
t3 b c d
.end
"""

PARITY_PLA = """.i 3
.o 1
.type esop
1-- 1
-1- 1
--1 1
.e
"""

FILES = {
    "bell.qasm": BELL_QASM,
    "toffoli.qc": TOFFOLI_QC,
    "majority.real": MAJORITY_REAL,
    "parity.pla": PARITY_PLA,
}


@pytest.fixture
def examples(tmp_path):
    paths = {}
    for name, text in FILES.items():
        path = tmp_path / name
        path.write_text(text)
        paths[name] = str(path)
    return paths


def test_lint_clean_file_exits_zero(examples, capsys):
    assert main(["lint", examples["bell.qasm"]]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_lint_all_formats_parse(examples, capsys):
    code = main(["lint"] + [examples[n] for n in sorted(FILES)])
    assert code == 0
    out = capsys.readouterr().out
    for name in FILES:
        assert name in out


def test_lint_with_device_flags_raw_circuits(examples, capsys):
    # A raw .qc Toffoli is not executable on ibmqx4 as-is.
    code = main(["lint", examples["toffoli.qc"], "--device", "ibmqx4"])
    assert code == 1
    out = capsys.readouterr().out
    assert "REPRO211" in out


def test_lint_json_round_trips_every_format(examples, capsys):
    code = main(
        ["lint", "--format", "json", "--device", "ibmqx4"]
        + [examples[n] for n in sorted(FILES)]
    )
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert len(document["files"]) == len(FILES)
    for entry in document["files"]:
        rebuilt = DiagnosticReport.from_payload(entry["diagnostics"])
        assert rebuilt.to_payload() == entry["diagnostics"]
    assert document["errors"] > 0


def test_lint_parse_error_reported_as_diagnostic(tmp_path, capsys):
    bad = tmp_path / "bad.qasm"
    bad.write_text("OPENQASM 2.0;\nqreg q[2];\ncx q[0], r[1];\n")
    code = main(["lint", "--format", "json", str(bad)])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    [entry] = document["files"]
    [diagnostic] = entry["diagnostics"]
    assert diagnostic["code"] == "REPRO601"
    assert diagnostic["filename"] == str(bad)
    assert diagnostic["line"] == 3


def test_lint_unknown_device_is_usage_error(examples, capsys):
    assert main(["lint", examples["bell.qasm"], "--device", "nope"]) == 2


def test_lint_missing_file_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "absent.qasm")]) == 2


def test_lint_strict_fails_on_warnings(tmp_path, capsys):
    source = tmp_path / "hh.qasm"
    source.write_text(
        'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nh q[0];\nh q[0];\n'
    )
    assert main(["lint", str(source)]) == 0  # warning only
    assert main(["lint", "--strict", str(source)]) == 1
    out = capsys.readouterr().out
    assert "REPRO401" in out


def test_compile_strict_flag_accepted(examples, capsys):
    code = main([
        "compile", examples["bell.qasm"], "--device", "ibmqx4",
        "--strict", "--verify", "none",
    ])
    assert code == 0
