"""CLI surfaces of the dataflow layer: ``repro lint --dataflow``,
``repro analyze``, ``repro compile --known-zero``, and the analyzer
crash containment (one located REPRO901 line, exit 2, no traceback)."""

import json

import pytest

from repro.analysis import get_analyzer
from repro.cli import main

TOFFOLI_QC = """.v a b c
BEGIN
t3 a b c
END
"""


@pytest.fixture
def toffoli_path(tmp_path):
    path = tmp_path / "toffoli.qc"
    path.write_text(TOFFOLI_QC)
    return str(path)


class TestLintDataflow:
    def test_dataflow_findings_need_the_flag(self, toffoli_path, capsys):
        assert main(["lint", toffoli_path, "--assume-zero", "0"]) == 0
        assert "REPRO802" not in capsys.readouterr().out

    def test_dataflow_findings_need_facts(self, toffoli_path, capsys):
        assert main(["lint", "--dataflow", toffoli_path]) == 0
        assert "REPRO8" not in capsys.readouterr().out

    def test_assume_zero_fires_802_and_805(self, toffoli_path, capsys):
        code = main([
            "lint", "--dataflow", "--assume-zero", "0", toffoli_path,
        ])
        assert code == 0  # warnings don't gate without --strict
        out = capsys.readouterr().out
        assert "REPRO802" in out and "REPRO805" in out

    def test_strict_gates_on_dataflow_warnings(self, toffoli_path):
        code = main([
            "lint", "--dataflow", "--strict", "--assume-zero", "0",
            toffoli_path,
        ])
        assert code == 1

    def test_observable_fires_liveness(self, toffoli_path, capsys):
        code = main([
            "lint", "--dataflow", "--observable", "0,1", toffoli_path,
        ])
        assert code == 0
        assert "REPRO801" in capsys.readouterr().out

    def test_corpus_json_is_lintable(self, capsys):
        assert main([
            "lint", "--dataflow", "tests/corpus/01c019b92bd55c6a.json",
        ]) == 0

    def test_non_corpus_json_is_an_input_error(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"not": "a corpus entry"}))
        assert main(["lint", str(path)]) == 1  # user input, not a crash
        err = capsys.readouterr().err
        assert "no 'circuit' key" in err
        assert "REPRO901" not in err


class TestAnalyzerCrashContainment:
    """An analyzer raising internally is a tool bug, not an input
    problem: one located diagnostic, exit 2, never a traceback."""

    @pytest.fixture
    def crashing_constants(self, monkeypatch):
        analyzer = get_analyzer("dataflow-constants")

        def explode(context):
            raise KeyError("synthetic analyzer bug")
            yield  # pragma: no cover - makes this a generator like analyze

        monkeypatch.setattr(analyzer, "analyze", explode)

    def test_crash_exits_2_with_one_diagnostic(
        self, toffoli_path, capsys, crashing_constants
    ):
        code = main([
            "lint", "--dataflow", "--assume-zero", "0", toffoli_path,
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "REPRO901" in err
        assert toffoli_path in err          # located at the input file
        assert "KeyError" in err            # names the underlying bug
        assert "Traceback" not in err

    def test_default_lint_unaffected_by_the_crasher(
        self, toffoli_path, capsys, crashing_constants
    ):
        # Without --dataflow the crashing analyzer never runs.
        assert main(["lint", toffoli_path]) == 0


class TestAnalyzeCommand:
    def test_text_report(self, toffoli_path, capsys):
        code = main(["analyze", toffoli_path, "--assume-zero", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "inert gates : 1" in out
        assert "permutation : exact" in out

    def test_json_report(self, toffoli_path, capsys):
        code = main([
            "analyze", toffoli_path, "--assume-zero", "0",
            "--format", "json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["assume_zero"] == [0]
        assert [g["gate_index"] for g in report["inert_gates"]] == [0]
        assert report["permutation"]["exact"]

    def test_observable_section(self, toffoli_path, capsys):
        code = main([
            "analyze", toffoli_path, "--observable", "0,1",
            "--format", "json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["observable"] == [0, 1]
        assert len(report["dead_gates"]) == 1


class TestCompileKnownZero:
    def test_flag_reaches_the_result(self, tmp_path, capsys):
        out = tmp_path / "out.qasm"
        code = main([
            "compile", "--hex", "03", "--inputs", "4",
            "--device", "ibmqx4", "--known-zero", "3",
            "-o", str(out),
        ])
        assert code == 0
        assert out.exists()

    def test_bad_wire_list_is_usage_error(self, tmp_path, capsys):
        code = main([
            "compile", "--hex", "03", "--inputs", "4",
            "--device", "ibmqx4", "--known-zero", "banana",
            "-o", str(tmp_path / "out.qasm"),
        ])
        assert code == 2
