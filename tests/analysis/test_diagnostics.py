"""Diagnostic model: codes, severity, rendering, JSON round-trip."""

import pytest

from repro.analysis import CODE_CATALOG, Diagnostic, DiagnosticReport, Severity


def test_make_uses_catalog_severity():
    error = Diagnostic.make("REPRO201", "bad CNOT")
    warning = Diagnostic.make("REPRO401", "identity window")
    assert error.severity is Severity.ERROR
    assert warning.severity is Severity.WARNING


def test_make_severity_override():
    d = Diagnostic.make("REPRO201", "downgraded", severity=Severity.WARNING)
    assert d.severity is Severity.WARNING


def test_unknown_code_defaults_to_error():
    d = Diagnostic.make("REPRO999", "custom analyzer finding")
    assert d.severity is Severity.ERROR


def test_catalog_codes_are_well_formed():
    for code, (severity, meaning) in CODE_CATALOG.items():
        assert code.startswith("REPRO") and code[5:].isdigit()
        assert isinstance(severity, Severity)
        assert meaning


def test_render_includes_code_location_and_hint():
    d = Diagnostic.make(
        "REPRO201", "CNOT(q0, q1) illegal", gate_index=3, qubits=(0, 1),
        hint="reverse it",
    )
    text = d.render()
    assert "REPRO201" in text
    assert "gate 3" in text
    assert "q0,1" in text
    assert "(fix: reverse it)" in text


def test_render_file_location():
    d = Diagnostic.make("REPRO601", "unknown register", filename="a.qasm",
                        line=7)
    assert "[a.qasm:7]" in d.render()


def test_diagnostic_payload_round_trip():
    d = Diagnostic.make(
        "REPRO301", "ancilla q5 dirty", gate_index=12, qubits=(5,),
        stage="lowered", hint="uncompute the V-chain",
    )
    assert Diagnostic.from_payload(d.to_payload()) == d


def test_report_filters_and_summary():
    report = DiagnosticReport([
        Diagnostic.make("REPRO201", "e1"),
        Diagnostic.make("REPRO401", "w1"),
        Diagnostic.make("REPRO201", "e2"),
    ])
    assert len(report) == 3
    assert report.has_errors
    assert len(report.errors()) == 2
    assert len(report.warnings()) == 1
    assert report.codes() == ["REPRO201", "REPRO401"]
    assert len(report.with_code("REPRO201")) == 2
    assert report.summary() == "2 errors, 1 warning"


def test_empty_report_is_falsy_and_clean():
    report = DiagnosticReport()
    assert not report
    assert not report.has_errors
    assert report.summary() == "clean"


def test_report_payload_round_trip():
    report = DiagnosticReport([
        Diagnostic.make("REPRO201", "e1", gate_index=0, qubits=(1, 2),
                        stage="mapped"),
        Diagnostic.make("REPRO605", "bad cube", filename="f.pla", line=3),
    ])
    rebuilt = DiagnosticReport.from_payload(report.to_payload())
    assert rebuilt == report
    assert rebuilt.to_payload() == report.to_payload()


def test_for_stage_filter():
    report = DiagnosticReport([
        Diagnostic.make("REPRO201", "a", stage="mapped"),
        Diagnostic.make("REPRO211", "b", stage="optimized"),
    ])
    assert [d.code for d in report.for_stage("mapped")] == ["REPRO201"]


def test_diagnostics_are_immutable():
    d = Diagnostic.make("REPRO101", "x")
    with pytest.raises(AttributeError):
        d.code = "REPRO102"
