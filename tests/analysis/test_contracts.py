"""Pipeline stage contracts: seeded miscompiles must be caught at the
offending stage with the correct code — raised in strict mode, recorded
in default mode."""

import pytest

from repro.analysis import StageContracts
from repro.compiler import compile_circuit
from repro.core.circuit import QuantumCircuit
from repro.core.exceptions import ContractViolation, SynthesisError
from repro.core.gates import CNOT, Gate, H, TOFFOLI
from repro.devices import get_device

import repro.backend.mapper as mapper_module
import repro.compiler as compiler_module


def toffoli_circuit():
    return QuantumCircuit(3, [TOFFOLI(0, 1, 2)], name="ccx")


# -- clean pipeline ---------------------------------------------------------


def test_clean_compile_has_no_diagnostics():
    result = compile_circuit(toffoli_circuit(), get_device("ibmqx4"))
    assert not result.diagnostics
    assert result.verification.equivalent


def test_clean_compile_strict_mode_passes():
    result = compile_circuit(
        toffoli_circuit(), get_device("ibmqx4"), strict=True
    )
    assert not result.diagnostics


def test_analyze_false_skips_contracts():
    result = compile_circuit(
        toffoli_circuit(), get_device("ibmqx4"), analyze=False
    )
    assert not result.diagnostics


def test_mcx_with_dirty_ancillas_is_contract_clean():
    circuit = QuantumCircuit(5, [Gate("MCX", (0, 1, 2, 3, 4))], name="mcx5")
    result = compile_circuit(
        circuit, get_device("ibmqx5"), verify=False, strict=True
    )
    assert not result.diagnostics


# -- seeded illegal CNOT (acceptance criterion) ------------------------------


_REAL_LEGALIZE = mapper_module.legalize_cnots


def broken_legalize(circuit, device):
    """A legalizer that flips every CNOT back to the raw orientation,
    re-creating the bug class the post-mapping contract exists for."""
    legal = _REAL_LEGALIZE(circuit, device)
    flipped = QuantumCircuit(legal.num_qubits, name=legal.name)
    for gate in legal:
        if gate.name == "CNOT":
            control, target = gate.qubits
            if device.coupling_map.allows(target, control):
                flipped.append(gate)  # both orientations legal; keep
            else:
                flipped.append(CNOT(target, control))  # illegal orientation
        else:
            flipped.append(gate)
    return flipped


def test_seeded_illegal_cnot_strict_raises(monkeypatch):
    monkeypatch.setattr(mapper_module, "legalize_cnots", broken_legalize)
    with pytest.raises(ContractViolation) as excinfo:
        compile_circuit(
            toffoli_circuit(), get_device("ibmqx4"), strict=True
        )
    assert excinfo.value.stage == "mapped"
    assert "REPRO201" in excinfo.value.diagnostics.codes()


def test_seeded_illegal_cnot_default_records(monkeypatch):
    monkeypatch.setattr(mapper_module, "legalize_cnots", broken_legalize)
    result = compile_circuit(
        toffoli_circuit(), get_device("ibmqx4"), verify=False
    )
    assert "REPRO201" in result.diagnostics.codes()
    assert result.diagnostics.has_errors
    # Both the mapped and optimized stages see the illegal CNOTs.
    assert result.diagnostics.for_stage("mapped")


def test_contract_violation_is_synthesis_error(monkeypatch):
    # CLI error handling and legacy tests catch SynthesisError.
    monkeypatch.setattr(mapper_module, "legalize_cnots", broken_legalize)
    with pytest.raises(SynthesisError):
        compile_circuit(
            toffoli_circuit(), get_device("ibmqx4"), strict=True
        )


# -- seeded non-native gate (acceptance criterion) ---------------------------


def leave_toffoli_unexpanded(circuit):
    """An expansion stage that forgets to decompose Toffoli gates."""
    return circuit


def lenient_legalize(circuit, device):
    """Pass multi-qubit gates through so the miscompile reaches the
    post-mapping contract instead of crashing the legalizer."""
    legal = QuantumCircuit(device.num_qubits, name=circuit.name)
    legal.extend(circuit)
    return legal


def _seed_non_native(monkeypatch):
    monkeypatch.setattr(
        mapper_module, "expand_to_library", leave_toffoli_unexpanded
    )
    monkeypatch.setattr(mapper_module, "legalize_cnots", lenient_legalize)


def test_seeded_non_native_gate_strict_raises(monkeypatch):
    _seed_non_native(monkeypatch)
    with pytest.raises(ContractViolation) as excinfo:
        compile_circuit(
            toffoli_circuit(), get_device("ibmqx4"), strict=True
        )
    assert excinfo.value.stage == "mapped"
    assert "REPRO211" in excinfo.value.diagnostics.codes()


def test_seeded_non_native_gate_default_records(monkeypatch):
    _seed_non_native(monkeypatch)
    result = compile_circuit(
        toffoli_circuit(), get_device("ibmqx4"), verify=False
    )
    assert "REPRO211" in result.diagnostics.codes()


# -- seeded cost regression --------------------------------------------------


class PessimizingOptimizer:
    """An 'optimizer' that pads the circuit, increasing its cost."""

    def __init__(self, *args, **kwargs):
        pass

    def run(self, circuit):
        padded = circuit.copy()
        padded.extend([H(0), H(0), H(0), H(0)])
        return padded


def test_seeded_cost_regression_strict_raises(monkeypatch):
    monkeypatch.setattr(
        compiler_module, "LocalOptimizer", PessimizingOptimizer
    )
    with pytest.raises(ContractViolation) as excinfo:
        compile_circuit(
            toffoli_circuit(), get_device("ibmqx4"), strict=True,
            verify=False,
        )
    assert "REPRO501" in excinfo.value.diagnostics.codes()


def test_seeded_cost_regression_default_records(monkeypatch):
    monkeypatch.setattr(
        compiler_module, "LocalOptimizer", PessimizingOptimizer
    )
    result = compile_circuit(
        toffoli_circuit(), get_device("ibmqx4"), verify=False
    )
    assert "REPRO501" in result.diagnostics.codes()


# -- seeded broken lowering (ancilla contract) -------------------------------


def test_seeded_broken_lowering_caught_at_lowered_stage(monkeypatch):
    import repro.backend.mcx as mcx_module

    real_lower = mcx_module.mcx_to_toffoli

    def forgetful_lower(controls, target, ancillas):
        gates = real_lower(controls, target, ancillas)
        # Drop the uncompute half of the V-chain: ancillas stay dirty.
        used_ancillas = {
            q for g in gates for q in g.qubits
        } - set(controls) - {target}
        if not used_ancillas:
            return gates
        half = len(gates) * 3 // 4
        return gates[:half]

    monkeypatch.setattr(
        mapper_module, "mcx_to_toffoli", forgetful_lower
    )
    circuit = QuantumCircuit(5, [Gate("MCX", (0, 1, 2, 3, 4))], name="mcx5")
    with pytest.raises(ContractViolation) as excinfo:
        compile_circuit(
            circuit, get_device("ibmqx5"), strict=True, verify=False
        )
    assert excinfo.value.stage == "lowered"
    assert "REPRO301" in excinfo.value.diagnostics.codes()


# -- StageContracts API ------------------------------------------------------


def test_check_unknown_stage_is_noop():
    contracts = StageContracts()
    report = contracts.check("no-such-stage", toffoli_circuit())
    assert not report and not contracts.report


def test_check_cost_within_tolerance_is_clean():
    contracts = StageContracts(strict=True)
    contracts.check_cost("optimized", 10.0, 10.0)
    contracts.check_cost("optimized", 10.0, 9.0)
    assert not contracts.report


def test_check_cost_violation_strict():
    contracts = StageContracts(strict=True)
    with pytest.raises(ContractViolation):
        contracts.check_cost("optimized", 10.0, 11.0)


def test_reports_accumulate_across_stages():
    contracts = StageContracts(device=get_device("ibmqx4"), strict=False)
    contracts.check("mapped", QuantumCircuit(3, [TOFFOLI(0, 1, 2)]))
    contracts.check_cost("optimized", 1.0, 2.0)
    codes = contracts.report.codes()
    assert "REPRO211" in codes and "REPRO501" in codes
