"""The REPRO8xx dataflow analyzers and the ``dataflow_summary`` digest."""

from repro.analysis import (
    DATAFLOW_LINT_ANALYZERS,
    DEFAULT_LINT_ANALYZERS,
    lint_circuit,
    run_analyzers,
)
from repro.analysis.dataflow_analyzers import dataflow_summary
from repro.core import CNOT, CZ, H, QuantumCircuit, T, TOFFOLI, X


def toffoli_sandwich():
    return QuantumCircuit(3, [H(2), TOFFOLI(0, 1, 2), H(2)])


class TestConstantsAnalyzer:
    def test_silent_without_assumptions(self):
        report = run_analyzers(
            toffoli_sandwich(), names=["dataflow-constants"]
        )
        assert len(report) == 0

    def test_inert_gate_fires_802(self):
        report = run_analyzers(
            toffoli_sandwich(),
            names=["dataflow-constants"],
            options={"assume_zero": "0"},
        )
        codes = report.codes()
        assert "REPRO802" in codes
        finding = report.with_code("REPRO802")[0]
        assert finding.gate_index == 1  # the Toffoli, not the H's
        assert "provably inert" in finding.message

    def test_demotable_gate_fires_803(self):
        circuit = QuantumCircuit(2, [X(0), CNOT(0, 1)])
        report = run_analyzers(
            circuit,
            names=["dataflow-constants"],
            options={"assume_zero": [0, 1]},
        )
        finding = report.with_code("REPRO803")[0]
        assert finding.gate_index == 1
        assert "X(q1)" in finding.message

    def test_constant_exit_wire_fires_805(self):
        circuit = QuantumCircuit(2, [X(0), CZ(0, 1)])
        report = run_analyzers(
            circuit,
            names=["dataflow-constants"],
            options={"assume_zero": "0"},
        )
        assert [d.qubits for d in report.with_code("REPRO805")] == [(0,)]

    def test_out_of_range_assumptions_ignored(self):
        report = run_analyzers(
            toffoli_sandwich(),
            names=["dataflow-constants"],
            options={"assume_zero": "17,-3"},
        )
        assert len(report) == 0


class TestLivenessAnalyzer:
    def test_silent_without_observable_set(self):
        circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        report = run_analyzers(circuit, names=["dataflow-liveness"])
        assert len(report) == 0

    def test_dead_gate_fires_801(self):
        circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        report = run_analyzers(
            circuit,
            names=["dataflow-liveness"],
            options={"observable": "0,1"},
        )
        finding = report.with_code("REPRO801")[0]
        assert finding.gate_index == 0

    def test_live_ancilla_fires_804(self):
        # q2 is read (as a control) into an observable wire before any
        # write: its dirty value may leak.
        circuit = QuantumCircuit(3, [CNOT(2, 0)])
        report = run_analyzers(
            circuit,
            names=["dataflow-liveness"],
            options={"observable": "0,1"},
        )
        assert [d.qubits for d in report.with_code("REPRO804")] == [(2,)]

    def test_observable_falls_back_to_active_qubits(self):
        circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        report = run_analyzers(
            circuit,
            names=["dataflow-liveness"],
            active_qubits=[0, 1],
        )
        assert "REPRO801" in report.codes()


class TestLintIntegration:
    def test_dataflow_analyzers_are_opt_in(self):
        for name in DATAFLOW_LINT_ANALYZERS:
            assert name not in DEFAULT_LINT_ANALYZERS

    def test_lint_circuit_with_dataflow_names(self):
        report = lint_circuit(
            toffoli_sandwich(),
            names=list(DEFAULT_LINT_ANALYZERS) + list(DATAFLOW_LINT_ANALYZERS),
            options={"assume_zero": "0"},
        )
        assert "REPRO802" in report.codes()


class TestDataflowSummary:
    def test_digest_shape(self):
        summary = dataflow_summary(toffoli_sandwich(), assume_zero=[0])
        assert summary["width"] == 3
        assert summary["gates"] == 3
        assert summary["assume_zero"] == [0]
        assert [g["gate_index"] for g in summary["inert_gates"]] == [1]
        assert summary["demotable_gates"] == []
        assert summary["exit_facts"]["q0"] == "zero"
        assert summary["permutation"] == {
            "exact": False, "reason": "non-classical circuit",
        }

    def test_exact_permutation_digest(self):
        circuit = QuantumCircuit(2, [X(0), CNOT(0, 1)])
        summary = dataflow_summary(circuit)
        assert summary["permutation"]["exact"]
        assert summary["permutation"]["size"] == 4
        assert not summary["permutation"]["identity"]

    def test_observable_section(self):
        circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        summary = dataflow_summary(circuit, observable=[0, 1])
        assert summary["observable"] == [0, 1]
        assert [g["gate_index"] for g in summary["dead_gates"]] == [0]

    def test_json_safe(self):
        import json

        summary = dataflow_summary(
            toffoli_sandwich(), assume_zero=[0], observable=[0, 1]
        )
        assert json.loads(json.dumps(summary)) == summary

    def test_diagonal_phase_on_one_not_inert(self):
        circuit = QuantumCircuit(1, [X(0), T(0)])
        summary = dataflow_summary(circuit, assume_zero=[0])
        assert summary["inert_gates"] == []
        assert summary["exit_facts"]["q0"] == "one"
