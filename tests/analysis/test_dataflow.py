"""The dataflow engine and its abstract domains.

Engine indexing, the basis-state lattice and transfer functions (pinned
against dense simulation where it matters), liveness, and the exact
permutation domain.
"""

import pytest

from repro.analysis import (
    BACKWARD,
    BasisStateDomain,
    BasisValue,
    DataflowDomain,
    FORWARD,
    LivenessDomain,
    PermutationDomain,
    abstract_permutation,
    classify_constant_gate,
    gate_is_dead,
    run_dataflow,
)
from repro.core import (
    CNOT,
    CZ,
    Gate,
    H,
    MCX,
    QuantumCircuit,
    ReproError,
    S,
    SWAP,
    T,
    TOFFOLI,
    X,
    Z,
)
from repro.obs import get_metrics
from repro.verify import permutation

ZERO, ONE = BasisValue.ZERO, BasisValue.ONE
SUPER, TOP = BasisValue.SUPER, BasisValue.TOP


# -- the engine ---------------------------------------------------------------


class CountingDomain(DataflowDomain):
    """Forward gate counter: state at point i is i."""

    name = "counting"
    direction = FORWARD

    def initial(self, circuit):
        return 0

    def transfer(self, state, gate, index):
        assert state == index  # the engine hands states in program order
        return state + 1


class TestEngine:
    def test_forward_program_points(self):
        circuit = QuantumCircuit(2, [H(0), CNOT(0, 1), X(1)])
        result = run_dataflow(circuit, CountingDomain())
        assert len(result) == 4  # gates + 1 program points
        assert result.entry == 0
        assert result.exit == 3
        for i in range(3):
            assert result.before(i) == i
            assert result.after(i) == i + 1

    def test_backward_program_points_stay_in_program_order(self):
        # Liveness of q1 through SWAP(0,1): before the swap the live
        # wire is q0 — before(i) must be the program-order earlier point
        # even though the sweep ran backwards.
        circuit = QuantumCircuit(2, [SWAP(0, 1)])
        result = run_dataflow(circuit, LivenessDomain(observable=[1]))
        assert result.after(0) == frozenset({1})
        assert result.before(0) == frozenset({0})
        assert result.entry == frozenset({0})
        assert result.exit == frozenset({1})

    def test_unknown_direction_rejected(self):
        class Sideways(DataflowDomain):
            name = "sideways"
            direction = "diagonal"

        with pytest.raises(ReproError, match="direction"):
            run_dataflow(QuantumCircuit(1, [X(0)]), Sideways())

    def test_runs_are_metered(self):
        registry = get_metrics()
        before = registry.counter("dataflow.counting.runs")
        run_dataflow(QuantumCircuit(1, [X(0)]), CountingDomain())
        assert registry.counter("dataflow.counting.runs") == before + 1


# -- the basis-state lattice --------------------------------------------------


class TestBasisValueLattice:
    def test_join_is_commutative_and_idempotent(self):
        values = list(BasisValue)
        for a in values:
            assert a.join(a) is a
            for b in values:
                assert a.join(b) is b.join(a)

    def test_join_orders_the_lattice(self):
        assert ZERO.join(ONE) is SUPER
        assert ZERO.join(SUPER) is SUPER
        assert SUPER.join(TOP) is TOP
        assert ZERO.join(TOP) is TOP

    def test_flip(self):
        assert ZERO.flip() is ONE
        assert ONE.flip() is ZERO
        assert SUPER.flip() is SUPER
        assert TOP.flip() is TOP

    def test_is_basis(self):
        assert ZERO.is_basis and ONE.is_basis
        assert not SUPER.is_basis and not TOP.is_basis


def facts_after(circuit, known_zero=(), known_one=()):
    return run_dataflow(circuit, BasisStateDomain(known_zero, known_one)).exit


class TestBasisTransfer:
    def test_no_facts_is_a_noop_by_construction(self):
        # Every transfer starts and stays TOP: the domain can never
        # invent a fact, which is what makes the default path free.
        circuit = QuantumCircuit(
            3, [H(0), X(1), CNOT(0, 1), TOFFOLI(0, 1, 2), SWAP(0, 2), T(2)]
        )
        assert facts_after(circuit) == (TOP, TOP, TOP)

    def test_diagonal_gates_preserve_facts(self):
        circuit = QuantumCircuit(2, [Z(0), S(0), T(1)])
        assert facts_after(circuit, known_zero=[0], known_one=[1]) == (ZERO, ONE)

    def test_x_flips_h_loses(self):
        circuit = QuantumCircuit(2, [X(0), H(1)])
        assert facts_after(circuit, known_zero=[0, 1]) == (ONE, SUPER)

    def test_cnot_control_zero_is_identity(self):
        circuit = QuantumCircuit(2, [CNOT(0, 1)])
        assert facts_after(circuit, known_zero=[0, 1]) == (ZERO, ZERO)

    def test_cnot_control_one_flips_target(self):
        circuit = QuantumCircuit(2, [X(0), CNOT(0, 1)])
        assert facts_after(circuit, known_zero=[0, 1]) == (ONE, ONE)

    def test_cnot_unknown_control_entangles(self):
        circuit = QuantumCircuit(2, [H(0), CNOT(0, 1)])
        assert facts_after(circuit, known_zero=[0, 1]) == (TOP, TOP)

    def test_toffoli_any_zero_control_is_identity(self):
        # q1 is unassumed (TOP after the H); the |0> control q0 still
        # freezes the whole gate.
        circuit = QuantumCircuit(3, [H(1), TOFFOLI(0, 1, 2)])
        assert facts_after(circuit, known_zero=[0, 2]) == (ZERO, TOP, ZERO)
        circuit = QuantumCircuit(3, [H(1), TOFFOLI(1, 0, 2)])
        assert facts_after(circuit, known_zero=[0, 2]) == (ZERO, TOP, ZERO)

    def test_toffoli_all_one_controls_flip(self):
        circuit = QuantumCircuit(3, [X(0), X(1), TOFFOLI(0, 1, 2)])
        assert facts_after(circuit, known_zero=[0, 1, 2]) == (ONE, ONE, ONE)

    def test_toffoli_mixed_controls_keep_the_one_factor(self):
        # control q0 |1>, control q1 superposed: the target entangles
        # with q1, but q0 stays a product |1> factor.
        circuit = QuantumCircuit(3, [X(0), H(1), TOFFOLI(0, 1, 2)])
        assert facts_after(circuit, known_zero=[0, 1, 2]) == (ONE, TOP, TOP)

    def test_cz_with_basis_operand_preserves_everything(self):
        circuit = QuantumCircuit(2, [H(1), CZ(0, 1)])
        assert facts_after(circuit, known_zero=[0, 1]) == (ZERO, SUPER)

    def test_swap_exchanges_facts(self):
        circuit = QuantumCircuit(2, [X(0), SWAP(0, 1)])
        assert facts_after(circuit, known_zero=[0, 1]) == (ZERO, ONE)

    def test_unknown_gate_is_conservative(self):
        circuit = QuantumCircuit(2, [Gate("RXX", (0, 1), params=(0.5,))])
        assert facts_after(circuit, known_zero=[0, 1]) == (TOP, TOP)

    def test_conflicting_assumptions_rejected(self):
        with pytest.raises(ValueError, match="both"):
            BasisStateDomain(known_zero=[0], known_one=[0])


class TestBasisSoundness:
    """ZERO/ONE claims must agree with exact simulation of the assumed
    input, gate by gate."""

    def test_every_claim_matches_the_permutation(self):
        circuit = QuantumCircuit(
            4,
            [
                X(1),
                CNOT(1, 2),       # control |1>: flips q2
                TOFFOLI(1, 2, 3),  # both controls |1>: flips q3
                SWAP(0, 3),
                CNOT(3, 0),        # control q3 now |0>: inert
                MCX(1, 2, 3, 0),
            ],
        )
        width = circuit.num_qubits
        result = run_dataflow(circuit, BasisStateDomain(range(width)))
        index = 0  # |0000>
        from repro.verify.permutation import apply_classical

        for i, gate in enumerate(circuit):
            state = result.before(i)
            for q in range(width):
                bit = (index >> (width - 1 - q)) & 1
                if state[q] is ZERO:
                    assert bit == 0, f"gate {i}: q{q} claimed |0>"
                if state[q] is ONE:
                    assert bit == 1, f"gate {i}: q{q} claimed |1>"
            index = apply_classical(gate, index, width)


# -- rewrite verdicts ---------------------------------------------------------


class TestClassifyConstantGate:
    def test_cnot_control_zero_inert(self):
        fact = classify_constant_gate((ZERO, TOP), CNOT(0, 1))
        assert fact.kind == "inert"

    def test_cnot_control_one_demotes_to_x(self):
        fact = classify_constant_gate((ONE, TOP), CNOT(0, 1))
        assert fact.kind == "demote"
        assert fact.replacement == X(1)

    def test_mcx_drops_exactly_the_one_controls(self):
        fact = classify_constant_gate((ONE, TOP, ONE, TOP), MCX(0, 1, 2, 3))
        assert fact.kind == "demote"
        assert fact.replacement == CNOT(1, 3)

    def test_toffoli_all_ones_demotes_to_x(self):
        fact = classify_constant_gate((ONE, ONE, TOP), TOFFOLI(0, 1, 2))
        assert fact.replacement == X(2)

    def test_cz_operand_one_is_z_on_the_other(self):
        fact = classify_constant_gate((ONE, TOP), CZ(0, 1))
        assert fact.kind == "demote"
        assert fact.replacement == Z(1)

    def test_diagonal_on_zero_inert(self):
        assert classify_constant_gate((ZERO,), T(0)).kind == "inert"

    def test_diagonal_on_one_not_reported(self):
        # T|1> is a global phase on the subspace: exact equivalence
        # distinguishes it, so no verdict.
        assert classify_constant_gate((ONE,), T(0)) is None

    def test_swap_of_equal_basis_values_inert(self):
        assert classify_constant_gate((ONE, ONE), SWAP(0, 1)).kind == "inert"
        assert classify_constant_gate((ZERO, ONE), SWAP(0, 1)) is None

    def test_no_facts_no_verdict(self):
        for gate in (CNOT(0, 1), TOFFOLI(0, 1, 2), CZ(0, 1), SWAP(0, 1)):
            assert classify_constant_gate((TOP, TOP, TOP), gate) is None


# -- liveness -----------------------------------------------------------------


class TestLiveness:
    def test_default_everything_observable_nothing_dead(self):
        circuit = QuantumCircuit(2, [CNOT(0, 1)])
        result = run_dataflow(circuit, LivenessDomain())
        assert not gate_is_dead(result.after(0), circuit.gates[0])

    def test_classical_dead_target_does_not_wake_controls(self):
        # q2 is never observed: the Toffoli writing it is dead, and its
        # controls must NOT become live because of it.
        circuit = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        result = run_dataflow(
            circuit, LivenessDomain(observable=[0], classical=True)
        )
        assert gate_is_dead(result.after(0), circuit.gates[0], classical=True)
        assert result.entry == frozenset({0})

    def test_quantum_semantics_are_conservative(self):
        # A quantum CNOT kicks phase back onto the control: with a live
        # control the gate is not dead even if the target is unobserved.
        circuit = QuantumCircuit(2, [CNOT(0, 1)])
        result = run_dataflow(circuit, LivenessDomain(observable=[0]))
        assert not gate_is_dead(result.after(0), circuit.gates[0])

    def test_swap_renames_liveness(self):
        circuit = QuantumCircuit(2, [X(0), SWAP(0, 1)])
        result = run_dataflow(circuit, LivenessDomain(observable=[1]))
        # Before the swap, q0 holds the observed value: X(0) is live.
        assert result.before(1) == frozenset({0})
        assert not gate_is_dead(result.after(0), circuit.gates[0])


# -- the permutation domain ---------------------------------------------------


class TestPermutationDomain:
    def test_matches_the_exact_permutation(self):
        circuit = QuantumCircuit(3, [X(0), CNOT(0, 1), TOFFOLI(0, 1, 2)])
        assert abstract_permutation(circuit) == tuple(permutation(circuit))

    def test_top_on_non_classical(self):
        assert abstract_permutation(QuantumCircuit(1, [H(0)])) is None

    def test_top_beyond_cutoff(self):
        circuit = QuantumCircuit(5, [X(0)])
        assert abstract_permutation(circuit, cutoff=4) is None
        assert abstract_permutation(circuit, cutoff=5) is not None

    def test_domain_collapses_at_first_non_classical_gate(self):
        circuit = QuantumCircuit(2, [X(0), H(0), X(1)])
        result = run_dataflow(circuit, PermutationDomain())
        assert result.before(1) is not None
        assert result.after(1) is None
        assert result.exit is None
