"""The built-in analyzer suite, run directly through the registry."""

import pytest

from repro.analysis import (
    Analyzer,
    available_analyzers,
    get_analyzer,
    lint_circuit,
    register_analyzer,
    run_analyzers,
)
from repro.analysis.registry import _REGISTRY
from repro.core.circuit import QuantumCircuit
from repro.core.exceptions import ReproError
from repro.core.gates import CNOT, Gate, H, MCX, T, Tdg, X
from repro.devices import get_device


def circuit_of(num_qubits, *gates, name=""):
    circuit = QuantumCircuit(num_qubits, name=name)
    circuit.extend(gates)
    return circuit


# -- registry ---------------------------------------------------------------


def test_builtin_analyzers_registered():
    names = available_analyzers()
    for expected in ("well-formed", "coupling", "gate-set",
                     "ancilla-restore", "identity-window"):
        assert expected in names


def test_unknown_analyzer_raises():
    with pytest.raises(ReproError, match="unknown analyzer"):
        get_analyzer("no-such-analyzer")


def test_custom_analyzer_registration_and_run():
    class NoHadamard(Analyzer):
        name = "test-no-h"

        def analyze(self, context):
            for index, gate in enumerate(context.circuit):
                if gate.name == "H":
                    yield self.diagnostic(
                        "REPRO104", "H forbidden", gate_index=index,
                        qubits=gate.qubits,
                    )

    register_analyzer(NoHadamard)
    try:
        report = run_analyzers(
            circuit_of(1, H(0)), names=["test-no-h"], stage="custom"
        )
        assert report.codes() == ["REPRO104"]
        assert report[0].stage == "custom"  # stamped by run_analyzers
        with pytest.raises(ReproError, match="already registered"):
            register_analyzer(NoHadamard)
    finally:
        _REGISTRY.pop("test-no-h", None)


def test_device_requiring_analyzers_skipped_without_device():
    circuit = circuit_of(2, CNOT(1, 0))  # illegal on ibmqx4, but no device
    report = run_analyzers(circuit, names=["coupling", "gate-set"])
    assert not report


# -- well-formedness --------------------------------------------------------


def test_well_formed_clean():
    report = run_analyzers(circuit_of(2, H(0), CNOT(0, 1)),
                           names=["well-formed"])
    assert not report


def test_well_formed_empty_circuit_warns():
    report = run_analyzers(QuantumCircuit(3), names=["well-formed"])
    assert report.codes() == ["REPRO103"]
    assert not report.has_errors


def test_well_formed_catches_trusted_violations():
    # Gate._trusted skips validation; the analyzer is the safety net.
    circuit = QuantumCircuit(2)
    circuit._gates.append(Gate._trusted("CNOT", (0, 5)))
    circuit._gates.append(Gate._trusted("CNOT", (1, 1)))
    report = run_analyzers(circuit, names=["well-formed"])
    assert set(report.codes()) == {"REPRO101", "REPRO102"}
    out_of_range = report.with_code("REPRO101")[0]
    assert out_of_range.gate_index == 0
    assert out_of_range.qubits == (5,)


# -- coupling ---------------------------------------------------------------


def test_coupling_flags_reversed_and_uncoupled_cnots():
    device = get_device("ibmqx4")
    a, b = sorted(device.coupling_map.directed_edges)[0]
    legal = (a, b)
    reversed_edge = (b, a)
    report = run_analyzers(
        circuit_of(device.num_qubits, CNOT(*legal), CNOT(*reversed_edge)),
        device=device,
        names=["coupling"],
    )
    assert len(report) == 1
    finding = report[0]
    assert finding.code == "REPRO201"
    assert finding.gate_index == 1
    assert "Fig. 6" in finding.hint  # reversed orientation hint


def test_coupling_flags_operand_beyond_device():
    device = get_device("ibmqx4")  # 5 qubits
    circuit = QuantumCircuit(8, [CNOT(0, 7)])
    report = run_analyzers(circuit, device=device, names=["coupling"])
    assert report.codes() == ["REPRO203"]


# -- gate set ---------------------------------------------------------------


def test_gate_set_flags_non_native():
    device = get_device("ibmqx4")
    circuit = circuit_of(3, Gate("TOFFOLI", (0, 1, 2)))
    report = run_analyzers(circuit, device=device, names=["gate-set"])
    assert report.codes() == ["REPRO211"]
    assert "Toffoli network" in report[0].hint


def test_gate_set_clean_on_native():
    device = get_device("ibmqx4")
    circuit = circuit_of(2, H(0), T(1), CNOT(0, 1))
    report = run_analyzers(circuit, device=device, names=["gate-set"])
    assert not report


# -- ancilla restore --------------------------------------------------------


def test_ancilla_restore_clean_on_proper_vchain():
    # Compute onto borrowed q2, use it, uncompute: q2 is restored.
    circuit = circuit_of(
        4,
        Gate("TOFFOLI", (0, 1, 2)),
        CNOT(2, 3),
        Gate("TOFFOLI", (0, 1, 2)),
    )
    report = run_analyzers(
        circuit, names=["ancilla-restore"], active_qubits=[0, 1, 3]
    )
    assert not report


def test_ancilla_restore_catches_unrestored_wire():
    # Compute onto q2 but never uncompute: q2 ends dirty.
    circuit = circuit_of(3, Gate("TOFFOLI", (0, 1, 2)), CNOT(2, 0))
    report = run_analyzers(
        circuit, names=["ancilla-restore"], active_qubits=[0, 1]
    )
    assert report.codes() == ["REPRO301"]
    assert report[0].qubits == (2,)
    assert "witness basis state" in report[0].message


def test_ancilla_restore_skips_quantum_circuits():
    # A Hadamard makes basis-state simulation unsound -> no verdict.
    circuit = circuit_of(3, H(0), Gate("TOFFOLI", (0, 1, 2)))
    report = run_analyzers(
        circuit, names=["ancilla-restore"], active_qubits=[0, 1]
    )
    assert not report


def test_ancilla_restore_no_ancillas_no_findings():
    circuit = circuit_of(3, Gate("TOFFOLI", (0, 1, 2)))
    report = run_analyzers(
        circuit, names=["ancilla-restore"], active_qubits=[0, 1, 2]
    )
    assert not report


# -- identity windows -------------------------------------------------------


def test_identity_window_adjacent_pair():
    report = run_analyzers(circuit_of(1, H(0), H(0)),
                           names=["identity-window"])
    assert report.codes() == ["REPRO401"]
    assert not report.has_errors  # warning severity


def test_identity_window_through_commuting_gates():
    # T(0) commutes with the CNOT control between the two X(1) target hits?
    # Use a pair separated by a gate on a disjoint wire plus a commuting one.
    circuit = circuit_of(3, T(0), X(2), Tdg(0))
    report = run_analyzers(circuit, names=["identity-window"])
    assert report.codes() == ["REPRO401"]


def test_identity_window_blocked_by_non_commuting_gate():
    circuit = circuit_of(1, T(0), H(0), Tdg(0))
    report = run_analyzers(circuit, names=["identity-window"])
    assert not report


def test_identity_window_respects_lookback_option():
    gates = [H(0)] + [CNOT(0, 1)] * 0 + [T(1)] * 20 + [H(0)]
    circuit = circuit_of(2, *gates)
    # The separating T(1) gates are disjoint from q0, so they don't count
    # against the walk; shrink the lookback via a blocking chain instead.
    report = run_analyzers(circuit, names=["identity-window"],
                           options={"lookback": 16})
    assert report.codes() == ["REPRO401"]


# -- lint facade ------------------------------------------------------------


def test_lint_circuit_without_device_skips_device_checks():
    circuit = circuit_of(3, Gate("TOFFOLI", (0, 1, 2)))
    assert not lint_circuit(circuit)


def test_lint_circuit_with_device_flags_everything():
    device = get_device("ibmqx4")
    circuit = circuit_of(3, Gate("TOFFOLI", (0, 1, 2)), H(0), H(0))
    report = lint_circuit(circuit, device=device)
    assert "REPRO211" in report.codes()  # non-native Toffoli
    assert "REPRO401" in report.codes()  # H-H identity window
    assert all(d.stage == "lint" for d in report)


def test_mcx_lowering_output_is_ancilla_clean():
    # The real Barenco lowering must satisfy its own contract.
    from repro.backend.mcx import mcx_to_toffoli

    lowered = mcx_to_toffoli((0, 1, 2, 3), 4, [5, 6, 7])
    circuit = QuantumCircuit(8)
    circuit.extend(lowered)
    report = run_analyzers(
        circuit, names=["ancilla-restore"], active_qubits=range(5)
    )
    assert not report
