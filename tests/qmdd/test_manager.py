"""QMDD construction and algebra, cross-checked against dense matrices."""

import numpy as np
import pytest

from repro.core import (
    CNOT,
    CZ,
    Gate,
    H,
    MCX,
    QMDDError,
    QuantumCircuit,
    S,
    SWAP,
    T,
    TOFFOLI,
    X,
    gate_matrix,
)
from repro.qmdd import QMDDManager, count_nodes
from tests.conftest import random_circuit


class TestPrimitives:
    def test_zero_and_one(self):
        m = QMDDManager(2)
        assert m.zero.is_zero
        assert m.one.weight == 1

    def test_identity_matrix(self):
        m = QMDDManager(3)
        assert np.allclose(m.to_matrix(m.identity()), np.eye(8))

    def test_identity_is_shared(self):
        m = QMDDManager(4)
        assert m.identity().node is m.identity().node

    def test_identity_node_count_linear(self):
        m = QMDDManager(10)
        assert count_nodes(m.identity()) == 10

    def test_invalid_width(self):
        with pytest.raises(QMDDError):
            QMDDManager(0)


class TestGateEdges:
    @pytest.mark.parametrize("name", ["X", "Y", "Z", "H", "S", "SDG", "T", "TDG"])
    def test_single_qubit_gates_all_positions(self, name):
        for n in (1, 2, 3):
            for q in range(n):
                m = QMDDManager(n)
                edge = m.gate_edge(Gate(name, (q,)))
                wanted = QuantumCircuit(n, [Gate(name, (q,))]).unitary()
                assert np.allclose(m.to_matrix(edge), wanted), (name, n, q)

    def test_cnot_both_orientations(self):
        m = QMDDManager(2)
        up = m.gate_edge(CNOT(0, 1))
        down = m.gate_edge(CNOT(1, 0))
        assert np.allclose(m.to_matrix(up), gate_matrix("CNOT"))
        wanted = QuantumCircuit(2, [CNOT(1, 0)]).unitary()
        assert np.allclose(m.to_matrix(down), wanted)

    def test_nonadjacent_cnot(self):
        m = QMDDManager(4)
        edge = m.gate_edge(CNOT(0, 3))
        wanted = QuantumCircuit(4, [CNOT(0, 3)]).unitary()
        assert np.allclose(m.to_matrix(edge), wanted)

    def test_toffoli_and_mcx(self):
        m = QMDDManager(4)
        for gate in (TOFFOLI(0, 1, 3), MCX(0, 1, 2, 3), SWAP(1, 2), CZ(0, 2)):
            wanted = QuantumCircuit(4, [gate]).unitary()
            assert np.allclose(m.to_matrix(m.gate_edge(gate)), wanted), gate

    def test_gate_cache_shares(self):
        m = QMDDManager(3)
        assert m.gate_edge(H(1)).node is m.gate_edge(H(1)).node

    def test_gate_outside_width_raises(self):
        m = QMDDManager(2)
        with pytest.raises(QMDDError):
            m.gate_edge(X(5))


class TestAlgebra:
    def test_multiply_matches_dense(self):
        m = QMDDManager(2)
        hx = m.multiply(m.gate_edge(H(0)), m.gate_edge(X(0)))
        wanted = QuantumCircuit(2, [X(0), H(0)]).unitary()
        assert np.allclose(m.to_matrix(hx), wanted)

    def test_multiply_by_zero(self):
        m = QMDDManager(2)
        assert m.multiply(m.zero, m.gate_edge(H(0))).is_zero

    def test_add_matches_dense(self):
        m = QMDDManager(2)
        total = m.add(m.gate_edge(X(0)), m.gate_edge(X(1)))
        wanted = (QuantumCircuit(2, [X(0)]).unitary()
                  + QuantumCircuit(2, [X(1)]).unitary())
        assert np.allclose(m.to_matrix(total), wanted)

    def test_add_zero_identity(self):
        m = QMDDManager(2)
        e = m.gate_edge(H(1))
        assert m.add(m.zero, e) == e
        assert m.add(e, m.zero) == e

    def test_self_inverse_products_give_identity(self):
        m = QMDDManager(3)
        for gate in (X(0), H(1), CNOT(0, 2), SWAP(1, 2), TOFFOLI(0, 1, 2)):
            e = m.gate_edge(gate)
            product = m.multiply(e, e)
            assert product.node is m.identity().node, gate
            assert m.values.is_one(product.weight)


class TestCircuits:
    def test_circuit_edge_matches_dense_random(self):
        for seed in range(6):
            c = random_circuit(4, 25, seed=seed)
            m = QMDDManager(4)
            assert np.allclose(m.to_matrix(m.circuit_edge(c)), c.unitary()), seed

    def test_empty_circuit_is_identity(self):
        m = QMDDManager(3)
        edge = m.circuit_edge(QuantumCircuit(3))
        assert edge.node is m.identity().node

    def test_narrow_circuit_widened_automatically(self):
        m = QMDDManager(4)
        edge = m.circuit_edge(QuantumCircuit(2, [H(0)]))
        wanted = QuantumCircuit(2, [H(0)]).widened(4).unitary()
        assert np.allclose(m.to_matrix(edge), wanted)

    def test_too_wide_circuit_raises(self):
        m = QMDDManager(2)
        with pytest.raises(QMDDError):
            m.circuit_edge(QuantumCircuit(5, [X(4)]))

    def test_stats_populated(self):
        m = QMDDManager(3)
        m.circuit_edge(random_circuit(3, 10, seed=1))
        stats = m.stats()
        assert stats["unique_nodes"] > 0
        assert stats["values"] > 0


class TestCanonicity:
    def test_same_function_same_node(self):
        """HXH built two ways shares a node with Z — the pointer-equality
        canonicity the paper's verification relies on."""
        m = QMDDManager(1)
        via_h = m.circuit_edge(QuantumCircuit(1, [H(0), X(0), H(0)]))
        direct = m.circuit_edge(QuantumCircuit(1, [Gate("Z", (0,))]))
        assert via_h.node is direct.node
        assert m.values.equal(via_h.weight, direct.weight)

    def test_different_functions_different_roots(self):
        m = QMDDManager(2)
        a = m.circuit_edge(QuantumCircuit(2, [CNOT(0, 1)]))
        b = m.circuit_edge(QuantumCircuit(2, [CNOT(1, 0)]))
        assert a.node is not b.node or not m.values.equal(a.weight, b.weight)

    def test_swap_as_three_cnots_canonical(self):
        m = QMDDManager(2)
        swapped = m.circuit_edge(
            QuantumCircuit(2, [CNOT(0, 1), CNOT(1, 0), CNOT(0, 1)])
        )
        native = m.circuit_edge(QuantumCircuit(2, [SWAP(0, 1)]))
        assert swapped.node is native.node

    def test_t_to_the_eighth_is_identity(self):
        m = QMDDManager(1)
        edge = m.circuit_edge(QuantumCircuit(1, [T(0)] * 8))
        assert edge.node is m.identity().node
        assert m.values.is_one(edge.weight)
