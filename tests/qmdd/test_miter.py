"""Miter-strategy equivalence checking (repro.qmdd.equivalence).

The miter is a *fast path*, not a different oracle: on every pair the
repo can produce — hand-built cases, the regression corpus, and a
deliberately miscompiled cell — its verdict must match the paper's
two-sided pointer comparison.
"""

import pytest

from repro.backend import toffoli_network
from repro.core import (
    CNOT,
    Gate,
    H,
    QMDDError,
    QuantumCircuit,
    TOFFOLI,
    X,
    Z,
)
from repro.qmdd import QMDDManager, check_equivalence, check_equivalence_miter
from tests.conftest import random_circuit


def _both(a, b, **kwargs):
    """(two_sided result, miter result) in independent managers."""
    return (
        check_equivalence(a, b, strategy="two_sided", **kwargs),
        check_equivalence(a, b, strategy="miter", **kwargs),
    )


class TestAgreement:
    def test_equivalent_pair(self):
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, toffoli_network(0, 1, 2))
        two, miter = _both(a, b)
        assert two.exact and miter.exact
        assert two.strategy == "two_sided" and miter.strategy == "miter"

    def test_inequivalent_pair(self):
        c = random_circuit(3, 20, seed=3)
        broken = QuantumCircuit(3, list(c) + [X(1)])
        two, miter = _both(c, broken)
        assert not two.equivalent and not miter.equivalent

    def test_widened_registers(self):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(4, [CNOT(0, 1)])  # identity on extra wires
        two, miter = _both(a, b)
        assert two.equivalent and miter.equivalent

    @pytest.mark.parametrize("seed", range(6))
    def test_random_self_pairs(self, seed):
        c = random_circuit(4, 30, seed=seed)
        two, miter = _both(c, c.copy())
        assert two.exact and miter.exact

    @pytest.mark.parametrize("seed", range(6))
    def test_random_near_miss_pairs(self, seed):
        c = random_circuit(4, 30, seed=seed)
        tweaked = QuantumCircuit(4, list(c) + [Z(seed % 4)])
        two, miter = _both(c, tweaked)
        assert two.equivalent == miter.equivalent == False  # noqa: E712

    def test_global_phase_pair(self):
        """Z X = -i Y: phase-only equivalence must look the same through
        both strategies."""
        a = QuantumCircuit(1, [X(0), Z(0)])
        b = QuantumCircuit(1, [Gate("Y", (0,))])
        two, miter = _both(a, b)
        assert two.phase_only and miter.phase_only
        assert not two.equivalent and not miter.equivalent
        two, miter = _both(a, b, up_to_global_phase=True)
        assert two.equivalent and miter.equivalent
        assert not two.exact and not miter.exact


class TestMiterMechanics:
    def test_peak_nodes_reported(self):
        c = random_circuit(4, 40, seed=1)
        result = check_equivalence_miter(c, c.copy())
        assert result.peak_nodes > 0
        assert check_equivalence(c, c.copy()).peak_nodes == 0  # two-sided

    def test_telescoping_keeps_the_product_small(self):
        """For an equivalent pair the running product collapses as it is
        built — its peak stays far below the two-sided diagrams."""
        c = random_circuit(5, 80, seed=2)
        two_manager = QMDDManager(5)
        two = check_equivalence(c, c.copy(), manager=two_manager)
        miter = check_equivalence_miter(c, c.copy())
        assert miter.equivalent and two.equivalent
        assert miter.peak_nodes < two.nodes_first

    def test_unknown_strategy_rejected(self):
        c = QuantumCircuit(1, [H(0)])
        with pytest.raises(QMDDError):
            check_equivalence(c, c.copy(), strategy="sideways")

    def test_narrow_manager_rejected(self):
        manager = QMDDManager(2)
        c = QuantumCircuit(3, [X(2)])
        with pytest.raises(QMDDError):
            check_equivalence_miter(c, c.copy(), manager=manager)


class TestCorpusAgreement:
    """Replay the regression corpus through both strategies."""

    def _compiled_entries(self):
        from repro.batch import CompileJob
        from repro.fuzz.corpus import load_corpus
        from repro.fuzz.harness import build_fuzz_device, resolve_options

        for entry in load_corpus("tests/corpus"):
            device = build_fuzz_device(entry.device)
            options = resolve_options(entry.options)
            yield entry, CompileJob.make(entry.circuit, device, options).run()

    def test_strategies_agree_on_every_corpus_cell(self):
        from repro.fuzz.harness import oracle_check

        checked = 0
        for entry, result in self._compiled_entries():
            miter = oracle_check(result, strategy="miter")
            two = oracle_check(result, strategy="two_sided")
            assert miter.equivalent == two.equivalent, entry.entry_id
            # Historical bugs stay fixed: every cell verifies today.
            assert miter.equivalent, entry.entry_id
            checked += 1
        assert checked > 0, "regression corpus is empty"


class TestInjectedMiscompile:
    def test_miter_catches_a_seeded_miscompile(self, monkeypatch):
        """A deliberately corrupted mapper output (dropped CNOT) must be
        flagged by both strategies — the fast path cannot wave a real
        miscompile through."""
        from repro import compile_circuit
        from repro.benchlib import revlib
        from repro.devices import IBMQX4
        from repro.fuzz.harness import oracle_check

        monkeypatch.setenv("REPRO_FAULT_INJECT", "miscompile:*")
        circuit = revlib.build_benchmark("3_17_14")
        result = compile_circuit(circuit, IBMQX4, verify=False)
        miter = oracle_check(result, strategy="miter")
        two = oracle_check(result, strategy="two_sided")
        assert not miter.equivalent
        assert not two.equivalent
