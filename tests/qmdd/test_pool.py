"""Per-process QMDD manager pool (repro.qmdd.pool)."""

import pytest

from repro.core import QuantumCircuit, TOFFOLI
from repro.backend import toffoli_network
from repro.obs import MetricsRegistry
from repro.qmdd import (
    ManagerPool,
    check_equivalence,
    get_manager_pool,
    reset_manager_pool,
)
from repro.qmdd.pool import DEFAULT_GC_NODE_LIMIT, DEFAULT_OP_CACHE_LIMIT


@pytest.fixture(autouse=True)
def fresh_process_pool():
    reset_manager_pool()
    yield
    reset_manager_pool()


class TestAcquire:
    def test_same_width_reuses_the_manager(self):
        pool = ManagerPool()
        first = pool.acquire(5)
        second = pool.acquire(5)
        assert first is second
        assert pool.stats() == {
            "managers": 1, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_width_mismatch_gets_a_distinct_manager(self):
        pool = ManagerPool()
        assert pool.acquire(3) is not pool.acquire(5)
        assert pool.acquire(3).num_qubits == 3
        assert pool.acquire(5).num_qubits == 5
        assert pool.stats()["managers"] == 2

    def test_lru_eviction_beyond_max_managers(self):
        pool = ManagerPool(max_managers=2)
        first = pool.acquire(2)
        pool.acquire(3)
        pool.acquire(4)  # evicts width 2 (least recently used)
        assert pool.stats()["evictions"] == 1
        assert pool.acquire(2) is not first  # rebuilt, not resurrected

    def test_reuse_keeps_warm_canonical_caches(self):
        """The point of pooling: the second check finds the first one's
        gate diagrams already interned."""
        pool = ManagerPool()
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, toffoli_network(0, 1, 2))
        manager = pool.acquire(3)
        assert check_equivalence(a, b, manager=manager).equivalent
        warm = manager.stats()["unique_nodes"]
        again = pool.acquire(3)
        assert again is manager
        assert check_equivalence(a, b, manager=again).equivalent
        # Canonicity means the rerun interns nothing materially new.
        assert again.stats()["unique_nodes"] <= warm + 1


class TestBounds:
    def test_pooled_managers_are_bounded_by_default(self):
        manager = ManagerPool().acquire(4)
        assert manager.op_cache_limit == DEFAULT_OP_CACHE_LIMIT
        assert manager.gc_node_limit == DEFAULT_GC_NODE_LIMIT

    def test_env_knobs_override_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_QMDD_CACHE_LIMIT", "123")
        monkeypatch.setenv("REPRO_QMDD_GC_LIMIT", "456")
        manager = ManagerPool().acquire(4)
        assert manager.op_cache_limit == 123
        assert manager.gc_node_limit == 456

    def test_zero_means_unbounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_QMDD_CACHE_LIMIT", "0")
        monkeypatch.setenv("REPRO_QMDD_GC_LIMIT", "0")
        manager = ManagerPool().acquire(4)
        assert manager.op_cache_limit is None
        assert manager.gc_node_limit is None

    def test_explicit_limits_beat_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_QMDD_GC_LIMIT", "456")
        pool = ManagerPool(op_cache_limit=11, gc_node_limit=22)
        manager = pool.acquire(4)
        assert manager.op_cache_limit == 11
        assert manager.gc_node_limit == 22

    def test_acquire_sweeps_an_over_limit_reused_manager(self):
        from tests.conftest import random_circuit

        # The live root of the previous check is itself bigger than the
        # cap, so mid-build sweeps cannot shrink the table below it —
        # only the hand-back sweep (where that root is dead) can.
        pool = ManagerPool(gc_node_limit=50)
        manager = pool.acquire(5)
        manager.circuit_edge(random_circuit(5, 80, seed=9))
        assert manager.stats()["unique_nodes"] > 50
        again = pool.acquire(5)  # hand-back sweep: old roots are dead
        assert again is manager
        assert again.stats()["unique_nodes"] <= 50


class TestProcessPool:
    def test_get_manager_pool_is_a_singleton(self):
        assert get_manager_pool() is get_manager_pool()

    def test_reset_drops_the_pool(self):
        pool = get_manager_pool()
        pool.acquire(3)
        reset_manager_pool()
        fresh = get_manager_pool()
        assert fresh is not pool
        assert fresh.stats()["managers"] == 0


class TestMetrics:
    def test_counters_ship_as_deltas(self):
        pool = ManagerPool()
        pool.acquire(3)
        pool.acquire(3)
        registry = MetricsRegistry()
        pool.record_metrics(registry)
        assert registry.counter("qmdd.pool_hits") == 1
        assert registry.counter("qmdd.pool_misses") == 1
        # A second ship with no new activity adds nothing.
        pool.record_metrics(registry)
        assert registry.counter("qmdd.pool_hits") == 1
        pool.acquire(3)
        pool.record_metrics(registry)
        assert registry.counter("qmdd.pool_hits") == 2
        assert registry.get_gauge("qmdd.pool_managers") == 1
