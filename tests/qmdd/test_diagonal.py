"""Up-to-diagonal equivalence (relative-phase verification)."""

import pytest

from repro.core import CNOT, Gate, H, QuantumCircuit, S, T, TOFFOLI, X, Z
from repro.backend import margolus
from repro.qmdd import (
    QMDDManager,
    check_equivalence,
    check_equivalence_up_to_diagonal,
    edge_is_diagonal,
)


class TestEdgeIsDiagonal:
    def test_identity_is_diagonal(self):
        m = QMDDManager(3)
        assert edge_is_diagonal(m.identity())

    def test_phase_gates_diagonal(self):
        m = QMDDManager(2)
        for gate in (Z(0), S(1), T(0), Gate("CZ", (0, 1))):
            assert edge_is_diagonal(m.gate_edge(gate)), gate

    def test_x_and_h_not_diagonal(self):
        m = QMDDManager(2)
        assert not edge_is_diagonal(m.gate_edge(X(0)))
        assert not edge_is_diagonal(m.gate_edge(H(1)))
        assert not edge_is_diagonal(m.gate_edge(CNOT(0, 1)))

    def test_composite_diagonal_circuit(self):
        m = QMDDManager(2)
        edge = m.circuit_edge(QuantumCircuit(2, [T(0), Gate("CZ", (0, 1)), S(1)]))
        assert edge_is_diagonal(edge)


class TestUpToDiagonal:
    def test_margolus_vs_toffoli(self):
        """The Margolus gate is a Toffoli only up to diagonal phases —
        strict equivalence fails, diagonal equivalence holds."""
        a = QuantumCircuit(3, margolus(0, 1, 2))
        b = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        assert not check_equivalence(a, b).equivalent
        assert check_equivalence_up_to_diagonal(a, b)

    def test_exact_equivalence_implies_diagonal(self):
        c = QuantumCircuit(2, [H(0), CNOT(0, 1)])
        assert check_equivalence_up_to_diagonal(c, c.copy())

    def test_different_classical_action_rejected(self):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [CNOT(1, 0)])
        assert not check_equivalence_up_to_diagonal(a, b)

    def test_x_difference_rejected(self):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [CNOT(0, 1), X(0)])
        assert not check_equivalence_up_to_diagonal(a, b)

    def test_phase_difference_accepted(self):
        a = QuantumCircuit(2, [CNOT(0, 1), T(0), Gate("CZ", (0, 1))])
        b = QuantumCircuit(2, [CNOT(0, 1)])
        assert check_equivalence_up_to_diagonal(a, b)
        assert not check_equivalence(a, b).equivalent

    def test_widths_harmonized(self):
        a = QuantumCircuit(3, margolus(0, 1, 2))
        b = QuantumCircuit(4, [TOFFOLI(0, 1, 2)])
        assert check_equivalence_up_to_diagonal(a, b)
