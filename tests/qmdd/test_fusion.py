"""Gate-stream fusion for the miter fast path (repro.qmdd.fusion).

Fusion is a *rewrite of the stream*, so every test's ground truth is the
canonical QMDD: applying the fused blocks must land on the exact same
node object (and weight) as applying the original gates one by one in
the same manager.
"""

import pytest

from repro.backend import toffoli_network
from repro.core import CNOT, CZ, Gate, H, QuantumCircuit, SWAP, TOFFOLI, X
from repro.qmdd import QMDDManager
from repro.qmdd.fusion import FusedBlock, fuse_stream
from tests.conftest import random_circuit


def _apply_blocks(manager, blocks):
    """Apply fused blocks the way the miter does."""
    total = manager.identity()
    for block in blocks:
        if block.matrix is None:
            total = manager.apply_gate(total, block.gate)
        elif len(block.qubits) == 1:
            total = manager.apply_single(total, block.matrix, block.qubits[0])
        else:
            total = manager.apply_block(
                total, block.matrix, block.qubits[0], block.qubits[1]
            )
    return total


def _assert_stream_preserved(gates, num_qubits):
    """Fused and unfused builds of the same stream must share a root."""
    manager = QMDDManager(num_qubits)
    reference = manager.circuit_edge(QuantumCircuit(num_qubits, list(gates)))
    fused = _apply_blocks(manager, fuse_stream(list(gates)))
    assert fused.node is reference.node
    assert manager.values.equal(fused.weight, reference.weight)


class TestProductPreservation:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_streams_pointer_exact(self, seed):
        circuit = random_circuit(5, 40, seed=seed)
        _assert_stream_preserved(list(circuit), 5)

    def test_toffoli_network_stream(self):
        _assert_stream_preserved(toffoli_network(0, 1, 2), 3)

    def test_inverse_concatenation_like_the_miter(self):
        circuit = random_circuit(4, 30, seed=99)
        stream = list(circuit.inverse()) + list(circuit)
        manager = QMDDManager(4)
        fused = _apply_blocks(manager, fuse_stream(stream))
        identity = manager.identity()
        assert fused.node is identity.node
        assert manager.values.equal(fused.weight, identity.weight)


class TestOrderingRule:
    def test_no_widen_across_a_later_block(self):
        """Regression: X(0) must not absorb CNOT(0,1) once CNOT(1,2) has
        touched wire 1 — that reorder changes the product."""
        stream = [X(0), CNOT(1, 2), CNOT(0, 1)]
        blocks = fuse_stream(stream)
        assert len(blocks) == 3  # nothing may merge here
        _assert_stream_preserved(stream, 3)

    def test_disjoint_supports_still_merge(self):
        # H(2) commutes past the (0,1) block trivially; the X(0) after
        # it still belongs to the most recent block on wire 0.
        stream = [CNOT(0, 1), H(2), X(0)]
        blocks = fuse_stream(stream)
        assert len(blocks) == 2
        assert sorted(len(b.qubits) for b in blocks) == [1, 2]
        _assert_stream_preserved(stream, 3)

    def test_one_wire_run_fuses_to_one_block(self):
        blocks = fuse_stream([H(0), X(0), H(0)])
        assert len(blocks) == 1
        assert blocks[0].qubits == (0,)
        assert blocks[0].gates_fused == 3
        # H X H = Z
        z = blocks[0].matrix
        assert abs(z[0][0] - 1) < 1e-9 and abs(z[1][1] + 1) < 1e-9

    def test_pair_run_fuses_to_one_block(self):
        stream = [CNOT(0, 1), H(0), CZ(0, 1), SWAP(0, 1), CNOT(1, 0)]
        blocks = fuse_stream(stream)
        assert len(blocks) == 1
        assert blocks[0].qubits == (0, 1)
        assert blocks[0].gates_fused == 5
        _assert_stream_preserved(stream, 2)


class TestIdentityDropping:
    def test_cancelling_pair_is_dropped(self):
        assert fuse_stream([CNOT(0, 1), CNOT(0, 1)]) == []

    def test_drop_identity_false_keeps_the_block(self):
        blocks = fuse_stream([CNOT(0, 1), CNOT(0, 1)], drop_identity=False)
        assert len(blocks) == 1
        assert blocks[0].is_identity
        assert blocks[0].gates_fused == 2

    def test_explicit_identity_gates_vanish(self):
        assert fuse_stream([Gate("I", (0,)), Gate("I", (2,))]) == []

    def test_non_identity_block_is_not_dropped(self):
        blocks = fuse_stream([CNOT(0, 1), CNOT(1, 0)])
        assert len(blocks) == 1
        assert not blocks[0].is_identity


class TestBigGatePassthrough:
    def test_toffoli_is_kept_verbatim(self):
        blocks = fuse_stream([H(0), TOFFOLI(0, 1, 2), H(0)])
        assert len(blocks) == 3
        big = blocks[1]
        assert isinstance(big, FusedBlock)
        assert big.matrix is None
        assert big.gate.name == "TOFFOLI"
        _assert_stream_preserved([H(0), TOFFOLI(0, 1, 2), H(0)], 3)

    def test_big_gate_fences_fusion_on_its_wires(self):
        # The trailing X(1) may not cross the Toffoli back into the
        # leading block.
        stream = [X(1), TOFFOLI(0, 1, 2), X(1)]
        blocks = fuse_stream(stream)
        assert len(blocks) == 3
        _assert_stream_preserved(stream, 3)


class TestCompression:
    def test_mapped_style_stream_fuses_substantially(self):
        """Toffoli decompositions are long {1q, CNOT} runs per wire
        pair — the whole point of the fast path (~4-6 gates/block)."""
        gates = list(toffoli_network(0, 1, 2)) + list(
            toffoli_network(1, 2, 0)
        )
        blocks = fuse_stream(gates)
        fused_gates = sum(b.gates_fused for b in blocks)
        assert fused_gates <= len(gates)
        assert fused_gates / len(blocks) >= 2.0
