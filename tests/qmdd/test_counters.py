"""QMDD cache hit/miss instrumentation."""

from repro import CNOT, H, QMDDManager, QuantumCircuit, T

COUNTER_NAMES = ("mul", "add", "gate", "apply")


def build_twice():
    manager = QMDDManager(3)
    circuit = QuantumCircuit(
        3, [H(0), T(0), CNOT(0, 1), CNOT(1, 2), T(2), CNOT(0, 1)]
    )
    manager.circuit_edge(circuit)
    manager.circuit_edge(circuit)
    return manager


class TestCounters:
    def test_fresh_manager_starts_at_zero(self):
        manager = QMDDManager(2)
        for name in COUNTER_NAMES:
            assert manager.cache_hits[name] == 0
            assert manager.cache_misses[name] == 0
            assert manager.cache_hit_rates()[name] == 0.0

    def test_stats_expose_every_counter(self):
        stats = QMDDManager(2).stats()
        for name in COUNTER_NAMES:
            assert f"{name}_hits" in stats
            assert f"{name}_misses" in stats

    def test_gate_cache_hits_on_repeated_gate(self):
        manager = QMDDManager(2)
        manager.gate_edge(H(0))
        assert manager.cache_misses["gate"] == 1
        assert manager.cache_hits["gate"] == 0
        manager.gate_edge(H(0))
        assert manager.cache_hits["gate"] == 1

    def test_repeated_circuit_build_hits_caches(self):
        manager = build_twice()
        rates = manager.cache_hit_rates()
        # The second identical build re-derives nothing new: the apply
        # traversals come straight from the per-operation caches.
        assert rates["apply"] > 0.0
        for name in COUNTER_NAMES:
            assert 0.0 <= rates[name] <= 1.0

    def test_counters_are_monotonic(self):
        manager = build_twice()
        before = dict(manager.cache_hits)
        manager.gate_edge(H(0))
        assert manager.cache_hits["gate"] >= before["gate"]
