"""QMDD equivalence checking."""

import pytest

from repro.core import (
    CNOT,
    Gate,
    H,
    QuantumCircuit,
    S,
    SWAP,
    T,
    TOFFOLI,
    VerificationError,
    X,
    Z,
)
from repro.qmdd import QMDDManager, assert_equivalent, check_equivalence
from repro.backend import toffoli_network
from tests.conftest import random_circuit


class TestPositiveCases:
    def test_identical_circuits(self):
        c = QuantumCircuit(2, [H(0), CNOT(0, 1)])
        result = check_equivalence(c, c.copy())
        assert result.equivalent and result.exact and result.shared_root

    def test_hxh_equals_z(self):
        a = QuantumCircuit(1, [H(0), X(0), H(0)])
        b = QuantumCircuit(1, [Z(0)])
        assert check_equivalence(a, b).exact

    def test_toffoli_against_clifford_t_network(self):
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, toffoli_network(0, 1, 2))
        assert check_equivalence(a, b).exact

    def test_swap_against_cnot_triple(self):
        a = QuantumCircuit(2, [SWAP(0, 1)])
        b = QuantumCircuit(2, [CNOT(0, 1), CNOT(1, 0), CNOT(0, 1)])
        assert check_equivalence(a, b).exact

    def test_widths_harmonized(self):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(4, [CNOT(0, 1)])  # identity on extra wires
        assert check_equivalence(a, b).equivalent

    def test_random_circuit_against_itself_reversed_inverse(self):
        c = random_circuit(4, 30, seed=11)
        doubled = c.compose(c.inverse())
        empty = QuantumCircuit(4)
        assert check_equivalence(doubled, empty).exact


class TestNegativeCases:
    def test_different_functions(self):
        a = QuantumCircuit(2, [CNOT(0, 1)])
        b = QuantumCircuit(2, [CNOT(1, 0)])
        result = check_equivalence(a, b)
        assert not result.equivalent
        assert not result.shared_root

    def test_single_gate_difference(self):
        c = random_circuit(3, 20, seed=3)
        broken = QuantumCircuit(3, list(c) + [X(1)])
        assert not check_equivalence(c, broken).equivalent

    def test_t_vs_tdg(self):
        a = QuantumCircuit(1, [T(0)])
        b = QuantumCircuit(1, [Gate("TDG", (0,))])
        assert not check_equivalence(a, b).equivalent


class TestGlobalPhase:
    def test_phase_difference_detected(self):
        """Z X = -i Y: same function as Y up to global phase only."""
        a = QuantumCircuit(1, [X(0), Z(0)])
        b = QuantumCircuit(1, [Gate("Y", (0,))])
        strict = check_equivalence(a, b)
        assert not strict.equivalent
        assert strict.phase_only
        relaxed = check_equivalence(a, b, up_to_global_phase=True)
        assert relaxed.equivalent and not relaxed.exact

    def test_exact_is_not_phase_only(self):
        c = QuantumCircuit(1, [S(0)])
        result = check_equivalence(c, c.copy())
        assert result.exact and not result.phase_only


class TestAssertEquivalent:
    def test_passes_silently(self):
        c = QuantumCircuit(2, [H(0)])
        assert assert_equivalent(c, c.copy()).equivalent

    def test_raises_on_mismatch(self):
        a = QuantumCircuit(1, [X(0)])
        b = QuantumCircuit(1, [Z(0)])
        with pytest.raises(VerificationError):
            assert_equivalent(a, b)


class TestManagerReuse:
    def test_external_manager(self):
        m = QMDDManager(3)
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, toffoli_network(0, 1, 2))
        result = check_equivalence(a, b, manager=m)
        assert result.equivalent
        assert m.stats()["unique_nodes"] > 0

    def test_narrow_manager_rejected(self):
        from repro.core import QMDDError

        m = QMDDManager(2)
        a = QuantumCircuit(3, [X(2)])
        with pytest.raises(QMDDError):
            check_equivalence(a, a, manager=m)
