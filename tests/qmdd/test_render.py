"""QMDD textual/DOT renderer tests."""

import math

import pytest

from repro.core import CNOT, Gate, H, QuantumCircuit, T, X
from repro.qmdd import QMDDManager, to_dot, to_text
from repro.qmdd.render import _format_weight


class TestWeightFormatting:
    def test_integers(self):
        assert _format_weight(1 + 0j) == "1"
        assert _format_weight(-2 + 0j) == "-2"
        assert _format_weight(0j) == "0"

    def test_pure_imaginary(self):
        assert _format_weight(1j) == "i"
        assert _format_weight(-1j) == "-i"
        assert _format_weight(0.5j) == "0.5i"

    def test_real_fraction(self):
        text = _format_weight(1 / math.sqrt(2) + 0j)
        assert text.startswith("0.707")

    def test_general_complex(self):
        text = _format_weight(0.5 + 0.5j)
        assert "0.5" in text and "i" in text and text.startswith("(")


class TestToText:
    def test_identity(self):
        m = QMDDManager(2)
        text = to_text(m, m.identity())
        assert "root --1-->" in text
        assert "x0" in text and "x1" in text

    def test_zero_edges_printed_as_zero(self):
        m = QMDDManager(1)
        text = to_text(m, m.gate_edge(T(0)))
        assert "0" in text

    def test_terminal_marker(self):
        m = QMDDManager(1)
        text = to_text(m, m.gate_edge(X(0)))
        assert "[1]" in text

    def test_shared_nodes_printed_once(self):
        m = QMDDManager(3)
        text = to_text(m, m.identity())
        # identity: one node per level -> exactly 3 node lines + root
        assert len(text.splitlines()) == 4


class TestToDot:
    def test_well_formed_graph(self):
        m = QMDDManager(2)
        edge = m.circuit_edge(QuantumCircuit(2, [H(0), CNOT(0, 1)]))
        dot = to_dot(m, edge, title="bell")
        assert dot.startswith('digraph "bell"')
        assert dot.count("->") >= 3
        assert "U00" in dot or "U11" in dot
        assert dot.rstrip().endswith("}")

    def test_zero_edges_omitted(self):
        m = QMDDManager(1)
        dot = to_dot(m, m.gate_edge(Gate("Z", (0,))))
        # diagonal gate: off-diagonal (zero) quadrants draw no arrows
        assert "U01" not in dot and "U10" not in dot
