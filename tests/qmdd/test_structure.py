"""QMDD structural tests: Fig. 1, normalization, value interning."""

import numpy as np
import pytest

from repro.core import CNOT, H, QuantumCircuit, X
from repro.qmdd import QMDDManager, ValueTable, count_nodes, to_dot, to_text


class TestFig1:
    """The paper's Fig. 1: CNOT as a QMDD with control x0, target x1."""

    def test_cnot_qmdd_shape(self):
        m = QMDDManager(2)
        root = m.circuit_edge(QuantumCircuit(2, [CNOT(0, 1)]))
        # Root at level 0 (x0) with quadrants [I, 0, 0, X].
        node = root.node
        assert node.level == 0
        u00, u01, u10, u11 = node.edges
        assert u01.is_zero and u10.is_zero
        assert not u00.is_zero and not u11.is_zero
        # U00 is the identity block, U11 the X block — distinct x1 nodes.
        assert u00.node.level == 1
        assert u11.node.level == 1
        assert u00.node is not u11.node

    def test_cnot_node_count(self):
        """Three non-terminal vertices, exactly as drawn in Fig. 1."""
        m = QMDDManager(2)
        root = m.circuit_edge(QuantumCircuit(2, [CNOT(0, 1)]))
        assert count_nodes(root) == 3

    def test_text_rendering_mentions_levels(self):
        m = QMDDManager(2)
        root = m.circuit_edge(QuantumCircuit(2, [CNOT(0, 1)]))
        text = to_text(m, root)
        assert "x0" in text and "x1" in text

    def test_dot_rendering_well_formed(self):
        m = QMDDManager(2)
        root = m.circuit_edge(QuantumCircuit(2, [CNOT(0, 1)]))
        dot = to_dot(m, root, title="fig1")
        assert dot.startswith('digraph "fig1"')
        assert dot.rstrip().endswith("}")
        assert "terminal" in dot


class TestNormalization:
    def test_hadamard_weight_factored_out(self):
        """H's 1/sqrt(2) lives on the root edge, not inside the node."""
        m = QMDDManager(1)
        edge = m.gate_edge(H(0))
        assert abs(abs(edge.weight) - 1 / np.sqrt(2)) < 1e-12
        for child in edge.node.edges:
            assert abs(child.weight) <= 1 + 1e-12

    def test_all_zero_quadrants_collapse(self):
        m = QMDDManager(2)
        assert m.make_node(0, (m.zero, m.zero, m.zero, m.zero)).is_zero

    def test_make_node_arity(self):
        from repro.core import QMDDError

        m = QMDDManager(2)
        with pytest.raises(QMDDError):
            m.make_node(0, (m.zero, m.zero))


class TestValueTable:
    def test_interning_merges_close_values(self):
        table = ValueTable(tolerance=1e-9)
        a = table.lookup(0.5 + 0.5j)
        b = table.lookup(0.5 + 0.5j + 1e-12)
        assert a is b or a == b

    def test_distinct_values_kept_apart(self):
        table = ValueTable(tolerance=1e-9)
        assert table.lookup(0.5) != table.lookup(0.6)

    def test_zero_and_one_predicates(self):
        table = ValueTable()
        assert table.is_zero(table.lookup(1e-12))
        assert table.is_one(table.lookup(1.0 + 1e-12))
        assert not table.is_one(table.lookup(0.9))

    def test_equal_within_tolerance(self):
        table = ValueTable(tolerance=1e-6)
        assert table.equal(1.0, 1.0 + 1e-8)
        assert not table.equal(1.0, 1.1)

    def test_len_counts_buckets(self):
        table = ValueTable()
        before = len(table)
        table.lookup(0.123 + 0.456j)
        assert len(table) == before + 1
