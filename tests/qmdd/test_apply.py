"""Direct tests of the specialized QMDD gate-application engine."""

import numpy as np
import pytest

from repro.core import CNOT, Gate, H, QuantumCircuit, RZ, T, X, gate_matrix
from repro.qmdd import QMDDManager
from tests.conftest import random_circuit


def as_tuple(matrix):
    return ((matrix[0, 0], matrix[0, 1]), (matrix[1, 0], matrix[1, 1]))


class TestApplySingle:
    @pytest.mark.parametrize("qubit", [0, 1, 2, 3])
    def test_on_identity(self, qubit):
        m = QMDDManager(4)
        edge = m.apply_single(m.identity(), as_tuple(gate_matrix("H")), qubit)
        wanted = QuantumCircuit(4, [H(qubit)]).unitary()
        assert np.allclose(m.to_matrix(edge), wanted)

    def test_chained_applications(self):
        m = QMDDManager(3)
        edge = m.identity()
        gates = [H(0), T(1), X(2), H(0), T(1)]
        for gate in gates:
            edge = m.apply_gate(edge, gate)
        wanted = QuantumCircuit(3, gates).unitary()
        assert np.allclose(m.to_matrix(edge), wanted)

    def test_on_nontrivial_state(self):
        m = QMDDManager(3)
        base = m.circuit_edge(random_circuit(3, 12, seed=5))
        edge = m.apply_single(base, as_tuple(gate_matrix("T")), 1)
        wanted = (
            QuantumCircuit(3, [T(1)]).unitary()
            @ m.to_matrix(base)
        )
        assert np.allclose(m.to_matrix(edge), wanted)

    def test_apply_cache_reuses(self):
        m = QMDDManager(3)
        edge = m.identity()
        m.apply_single(edge, as_tuple(gate_matrix("H")), 1, ("1g", "H", (), 1))
        before = len(m._apply_cache)
        m.apply_single(edge, as_tuple(gate_matrix("H")), 1, ("1g", "H", (), 1))
        assert len(m._apply_cache) == before  # fully cached second time


class TestApplyCnot:
    @pytest.mark.parametrize("control,target", [(0, 1), (1, 0), (0, 3), (3, 0),
                                                (1, 2), (2, 1)])
    def test_all_orientations_on_identity(self, control, target):
        m = QMDDManager(4)
        edge = m.apply_cnot(m.identity(), control, target)
        wanted = QuantumCircuit(4, [CNOT(control, target)]).unitary()
        assert np.allclose(m.to_matrix(edge), wanted)

    @pytest.mark.parametrize("control,target", [(0, 2), (2, 0)])
    def test_on_random_base(self, control, target):
        m = QMDDManager(3)
        base = m.circuit_edge(random_circuit(3, 15, seed=9))
        edge = m.apply_cnot(base, control, target)
        wanted = (
            QuantumCircuit(3, [CNOT(control, target)]).unitary()
            @ m.to_matrix(base)
        )
        assert np.allclose(m.to_matrix(edge), wanted)

    def test_double_application_is_identity(self):
        m = QMDDManager(4)
        once = m.apply_cnot(m.identity(), 2, 0)
        twice = m.apply_cnot(once, 2, 0)
        assert twice.node is m.identity().node


class TestApplyGateDispatch:
    def test_identity_gate_short_circuits(self):
        m = QMDDManager(2)
        edge = m.identity()
        assert m.apply_gate(edge, Gate("I", (0,))) is edge

    def test_rotation_applies(self):
        m = QMDDManager(2)
        edge = m.apply_gate(m.identity(), RZ(0.777, 1))
        wanted = QuantumCircuit(2, [RZ(0.777, 1)]).unitary()
        assert np.allclose(m.to_matrix(edge), wanted)

    def test_multiqubit_falls_back_to_multiply(self):
        from repro.core import TOFFOLI

        m = QMDDManager(3)
        edge = m.apply_gate(m.identity(), TOFFOLI(0, 1, 2))
        wanted = QuantumCircuit(3, [TOFFOLI(0, 1, 2)]).unitary()
        assert np.allclose(m.to_matrix(edge), wanted)

    def test_equivalence_with_generic_multiply(self):
        """Fast path and generic path build the *same canonical node*."""
        m = QMDDManager(3)
        base = m.circuit_edge(random_circuit(3, 10, seed=2))
        for gate in (H(0), T(2), CNOT(1, 2), CNOT(2, 1)):
            fast = m.apply_gate(base, gate)
            generic = m.multiply(m.gate_edge(gate), base)
            assert fast.node is generic.node, gate
            assert m.values.equal(fast.weight, generic.weight), gate
