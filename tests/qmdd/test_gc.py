"""Unique-table garbage collection and bounded operation caches.

The contract under test (see ``QMDDManager.collect_garbage``): a sweep
may only reclaim nodes unreachable from the given roots plus the
manager's own identity/gate caches, and **pointer canonicity must
survive** — rebuilding a swept diagram returns the same node objects, so
equivalence verdicts cannot change because a sweep happened.
"""

import pytest

from repro.backend import toffoli_network
from repro.core import CNOT, QuantumCircuit, TOFFOLI, X
from repro.qmdd import QMDDManager, check_equivalence
from tests.conftest import random_circuit


class TestSweep:
    def test_dead_nodes_are_reclaimed(self):
        manager = QMDDManager(4)
        manager.circuit_edge(random_circuit(4, 30, seed=1))
        populated = manager.stats()["unique_nodes"]
        reclaimed = manager.collect_garbage(())  # the diagram is dead
        stats = manager.stats()
        assert reclaimed > 0
        assert stats["unique_nodes"] < populated
        assert stats["gc_sweeps"] == 1
        assert stats["gc_reclaimed"] == reclaimed

    def test_live_roots_survive(self):
        manager = QMDDManager(4)
        edge = manager.circuit_edge(random_circuit(4, 30, seed=2))
        manager.collect_garbage((edge,))
        # The kept diagram must still be canonical: rebuilding the same
        # circuit lands on the very same node object.
        rebuilt = manager.circuit_edge(random_circuit(4, 30, seed=2))
        assert rebuilt.node is edge.node
        assert manager.values.equal(rebuilt.weight, edge.weight)

    def test_canonicity_survives_a_full_sweep(self):
        manager = QMDDManager(3)
        first = manager.circuit_edge(QuantumCircuit(3, toffoli_network(0, 1, 2)))
        manager.collect_garbage(())  # drop everything rebuildable
        second = manager.circuit_edge(QuantumCircuit(3, [TOFFOLI(0, 1, 2)]))
        # Different sweep histories, same function -> same pointer.
        assert second.node is first.node or check_equivalence(
            QuantumCircuit(3, toffoli_network(0, 1, 2)),
            QuantumCircuit(3, [TOFFOLI(0, 1, 2)]),
            manager=manager,
        ).equivalent

    def test_identity_cache_survives(self):
        manager = QMDDManager(3)
        identity = manager.identity()
        manager.circuit_edge(random_circuit(3, 20, seed=3))
        manager.collect_garbage(())
        assert manager.identity().node is identity.node

    def test_maybe_collect_is_a_noop_when_unarmed(self):
        manager = QMDDManager(3)
        manager.circuit_edge(random_circuit(3, 20, seed=4))
        assert manager.gc_node_limit is None
        assert manager.maybe_collect(()) == 0
        assert manager.stats()["gc_sweeps"] == 0


class TestVerdictsUnderForcedGC:
    """A tiny node cap forces sweeps mid-build; verdicts must not move."""

    def _managers(self):
        return QMDDManager(3), QMDDManager(3, gc_node_limit=16)

    @pytest.mark.parametrize("strategy", ["two_sided", "miter"])
    def test_equivalent_pair_stays_equivalent(self, strategy):
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2)])
        b = QuantumCircuit(3, toffoli_network(0, 1, 2))
        unforced, forced = self._managers()
        baseline = check_equivalence(a, b, manager=unforced, strategy=strategy)
        swept = check_equivalence(a, b, manager=forced, strategy=strategy)
        assert baseline.equivalent and swept.equivalent
        assert forced.stats()["gc_sweeps"] > 0, "cap never triggered"

    @pytest.mark.parametrize("strategy", ["two_sided", "miter"])
    def test_inequivalent_pair_stays_inequivalent(self, strategy):
        a = QuantumCircuit(3, toffoli_network(0, 1, 2))
        b = QuantumCircuit(3, toffoli_network(0, 1, 2) + [X(1)])
        unforced, forced = self._managers()
        baseline = check_equivalence(a, b, manager=unforced, strategy=strategy)
        swept = check_equivalence(a, b, manager=forced, strategy=strategy)
        assert not baseline.equivalent and not swept.equivalent

    def test_deep_equivalent_circuit_stays_under_the_cap(self):
        """The miter's single live root means sweeps actually bound the
        table, not just churn it."""
        circuit = random_circuit(4, 120, seed=7)
        doubled = circuit.compose(circuit.inverse())
        manager = QMDDManager(4, gc_node_limit=64)
        result = check_equivalence(
            doubled, QuantumCircuit(4), manager=manager, strategy="miter"
        )
        assert result.equivalent
        assert manager.stats()["gc_sweeps"] > 0


class TestBoundedOpCaches:
    def test_overflow_clears_instead_of_growing(self):
        manager = QMDDManager(4, op_cache_limit=64)
        manager.circuit_edge(random_circuit(4, 60, seed=5))
        stats = manager.stats()
        assert stats["cache_clears"] > 0
        for cache in ("mul_cache", "add_cache", "apply_cache"):
            assert stats[cache] <= 64

    def test_results_unchanged_by_cache_bound(self):
        a = QuantumCircuit(3, [TOFFOLI(0, 1, 2), CNOT(0, 1)])
        b = QuantumCircuit(3, toffoli_network(0, 1, 2) + [CNOT(0, 1)])
        bounded = QMDDManager(3, op_cache_limit=32)
        assert check_equivalence(a, b, manager=bounded).equivalent

    def test_generation_advances_on_clear(self):
        manager = QMDDManager(4, op_cache_limit=64)
        before = manager.stats()["generation"]
        manager.circuit_edge(random_circuit(4, 60, seed=6))
        assert manager.stats()["generation"] > before
