"""Vector decision diagram simulator tests."""

import math

import numpy as np
import pytest

from repro.core import (
    CNOT,
    CZ,
    Gate,
    H,
    MCX,
    QMDDError,
    QuantumCircuit,
    RY,
    RZ,
    SWAP,
    T,
    TOFFOLI,
    X,
)
from repro.qmdd import VectorDDManager
from repro.verify import basis_state, simulate
from tests.conftest import random_circuit


class TestBasisStates:
    def test_zero_state(self):
        m = VectorDDManager(3)
        state = m.basis_state(0)
        assert m.amplitude(state, 0) == 1
        assert m.amplitude(state, 5) == 0

    def test_arbitrary_basis(self):
        m = VectorDDManager(4)
        state = m.basis_state(0b1010)
        assert m.amplitude(state, 0b1010) == 1
        assert m.norm_squared(state) == pytest.approx(1.0)

    def test_out_of_range(self):
        with pytest.raises(QMDDError):
            VectorDDManager(2).basis_state(4)

    def test_node_count_linear(self):
        from repro.qmdd import count_nodes

        m = VectorDDManager(20)
        assert count_nodes(m.basis_state(0b1010_1010_1010_1010_1010)) == 20


class TestGateApplication:
    @pytest.mark.parametrize("gate", [
        X(0), H(1), T(2), RZ(0.7, 0), RY(-1.2, 2),
        CNOT(0, 1), CNOT(2, 0), CZ(1, 2), SWAP(0, 2),
        TOFFOLI(0, 1, 2), Gate("MCX", (1, 2, 0)),
    ])
    def test_each_gate_matches_dense(self, gate):
        m = VectorDDManager(3)
        c = QuantumCircuit(3, [gate])
        for idx in range(8):
            vec = m.to_statevector(m.run(c, idx))
            dense = simulate(c, basis_state(3, idx))
            assert np.allclose(vec, dense), (gate, idx)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits(self, seed):
        c = random_circuit(4, 25, seed=seed)
        m = VectorDDManager(4)
        vec = m.to_statevector(m.run(c, 3))
        dense = simulate(c, basis_state(4, 3))
        assert np.allclose(vec, dense)

    def test_norm_preserved(self):
        c = random_circuit(4, 30, seed=7)
        m = VectorDDManager(4)
        assert m.norm_squared(m.run(c, 9)) == pytest.approx(1.0)

    def test_wide_controlled_gate_without_matrices(self):
        """A 20-control MCX applies with no dense matrix anywhere."""
        m = VectorDDManager(22)
        gate = MCX(*range(21), 21)
        all_ones = (1 << 22) - 2
        state = m.apply_gate(m.basis_state(all_ones), gate)
        assert m.amplitude(state, (1 << 22) - 1) == 1

    def test_circuit_wider_than_manager_rejected(self):
        m = VectorDDManager(2)
        with pytest.raises(QMDDError):
            m.run(QuantumCircuit(3, [X(2)]))


class TestScale:
    def test_qft_30_qubits(self):
        """Far beyond dense (2^30 amplitudes) and sparse (all nonzero)
        simulation: the product structure keeps the DD tiny."""
        from repro.benchlib.qft import qft

        m = VectorDDManager(30)
        state = m.run(qft(30), basis_index=12345)
        assert m.norm_squared(state) == pytest.approx(1.0)
        expected = 1.0 / math.sqrt(2 ** 30)
        assert abs(m.amplitude(state, 99)) == pytest.approx(expected)

    def test_ghz_50_qubits(self):
        m = VectorDDManager(50)
        c = QuantumCircuit(50, [H(0)] + [CNOT(0, q) for q in range(1, 50)])
        state = m.run(c)
        amp = 1 / math.sqrt(2)
        assert m.amplitude(state, 0) == pytest.approx(amp)
        assert m.amplitude(state, (1 << 50) - 1) == pytest.approx(amp)
        assert m.amplitude(state, 1) == 0
        assert m.norm_squared(state) == pytest.approx(1.0)

    def test_dense_export_guard(self):
        m = VectorDDManager(20)
        with pytest.raises(QMDDError):
            m.to_statevector(m.basis_state(0))


class TestRxxInSimulators:
    """Regression: RXX must route through dedicated 2-qubit handling in
    both the sparse and vector simulators (a naive fallback would apply
    its 4x4 matrix as a 1-qubit gate)."""

    def test_vector_dd_rxx_matches_dense(self):
        import numpy as np

        from repro.core import Gate, QuantumCircuit
        from repro.qmdd import VectorDDManager
        from repro.verify import basis_state, simulate

        c = QuantumCircuit(3, [Gate("RXX", (0, 2), (0.73,)),
                               Gate("RXX", (2, 1), (-1.1,))])
        m = VectorDDManager(3)
        for idx in range(8):
            dense = simulate(c, basis_state(3, idx))
            vec = m.to_statevector(m.run(c, idx))
            assert np.allclose(vec, dense), idx

    def test_sparse_rxx_matches_dense(self):
        import numpy as np

        from repro.core import Gate, QuantumCircuit
        from repro.verify import basis_state, run_sparse, simulate

        c = QuantumCircuit(2, [Gate("RXX", (0, 1), (0.4,))])
        for idx in range(4):
            dense = simulate(c, basis_state(2, idx))
            sp = run_sparse(c, idx)
            rebuilt = np.zeros(4, dtype=complex)
            for k, v in sp.amplitudes.items():
                rebuilt[k] = v
            assert np.allclose(rebuilt, dense), idx

    def test_every_ir_multiqubit_gate_covered(self):
        """apply_gate handles every multi-qubit gate the IR can express
        (SWAP/CZ/RXX/controlled-X families) — none falls through to the
        single-qubit path."""
        from repro.core import CZ, Gate, MCX, QuantumCircuit, SWAP, TOFFOLI
        from repro.qmdd import VectorDDManager
        from repro.verify import basis_state, simulate

        gates = [CZ(0, 1), SWAP(1, 2), TOFFOLI(0, 1, 2),
                 MCX(0, 1, 2, 3), Gate("RXX", (1, 3), (0.2,))]
        c = QuantumCircuit(4, gates)
        m = VectorDDManager(4)
        dense = simulate(c, basis_state(4, 0b1011))
        vec = m.to_statevector(m.run(c, 0b1011))
        import numpy as np

        assert np.allclose(vec, dense)


class TestSampling:
    def test_basis_state_deterministic(self):
        from repro.qmdd import VectorDDManager

        m = VectorDDManager(4)
        counts = m.sample(m.basis_state(0b1001), shots=50)
        assert counts == {0b1001: 50}

    def test_ghz_splits_evenly(self):
        from repro.core import CNOT, H, QuantumCircuit
        from repro.qmdd import VectorDDManager

        m = VectorDDManager(3)
        state = m.run(QuantumCircuit(3, [H(0), CNOT(0, 1), CNOT(0, 2)]))
        counts = m.sample(state, shots=400, seed=5)
        assert set(counts) == {0b000, 0b111}
        assert 120 < counts[0b000] < 280

    def test_wide_register_sampling(self):
        from repro.core import CNOT, H, QuantumCircuit
        from repro.qmdd import VectorDDManager

        n = 40
        m = VectorDDManager(n)
        state = m.run(QuantumCircuit(n, [H(0)] + [CNOT(0, q) for q in range(1, n)]))
        counts = m.sample(state, shots=30, seed=8)
        assert set(counts) <= {0, (1 << n) - 1}

    def test_zero_vector_rejected(self):
        from repro.core import QMDDError
        from repro.qmdd import VectorDDManager

        m = VectorDDManager(2)
        with pytest.raises(QMDDError):
            m.sample(m.zero, shots=1)
