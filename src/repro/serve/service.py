"""Transport-agnostic core of the compile service (``repro serve``).

:class:`CompileService` is the long-lived, threaded heart of the
daemon: it owns the process's warm state — one thread-safe
:class:`~repro.batch.cache.CompilationCache`, the per-worker-thread
QMDD :class:`~repro.qmdd.pool.ManagerPool`\\ s, and the device registry
with its lazily-built distance tables — and executes compile requests
on a bounded pool of worker threads, in front of the same
:func:`~repro.compiler.compile_circuit` pipeline the CLI and batch
engine use.  Requests are admitted through a bounded queue: when every
worker is busy and the queue is full, :meth:`compile_request` raises
:class:`QueueFullError` immediately (the HTTP layer turns that into a
429) instead of letting latency pile up invisibly.

The service is deliberately transport-free so tests can drive it
in-process; :mod:`repro.serve.server` adds the JSON-over-HTTP skin.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..batch.cache import CompilationCache
from ..batch.engine import CompileJob, default_worker_count
from ..batch.serialize import result_to_payload
from ..compiler import compile_circuit
from ..core.circuit import QuantumCircuit
from ..core.exceptions import ParseError, ReproError
from ..io import parse_qasm, parse_qc, parse_real
from ..obs import Snapshot, get_metrics

__all__ = [
    "CompileService",
    "QueueFullError",
    "RequestError",
    "ServeConfig",
]


class QueueFullError(ReproError):
    """The admission queue is full (or the service is draining): the
    request was rejected *without* being queued.  HTTP layer: 429."""


class RequestError(ReproError):
    """The request payload is malformed (bad JSON shape, unknown
    format/device/option, unparsable circuit).  HTTP layer: 400."""


#: Circuit text parsers by wire-format name.
_PARSERS: Dict[str, Callable[..., QuantumCircuit]] = {
    "qasm": parse_qasm,
    "qc": parse_qc,
    "real": parse_real,
}

#: Compile options a *remote* request may not set: tracing is owned by
#: the ``?profile=1`` query switch, and an opaque cost function has no
#: JSON identity (it could neither travel the wire nor be cached).
_FORBIDDEN_OPTIONS = frozenset({"trace", "tracer", "cost_function"})


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one service instance (CLI flags map 1:1)."""

    #: Concurrent compile worker threads; ``None`` picks
    #: :func:`~repro.batch.engine.default_worker_count`.
    workers: Optional[int] = None
    #: Requests allowed to *wait* beyond the busy workers before the
    #: service answers 429.  0 means "reject unless a worker is free".
    queue_depth: int = 16
    #: Persistent cache directory (``None`` = memory-only cache).
    cache_dir: Optional[str] = None
    #: Memory-tier LRU capacity of the shared cache.
    max_memory_entries: int = 512
    #: Disk-tier entry budget (``None`` = unbounded).
    max_disk_entries: Optional[int] = None
    #: Honor the ``test_delay_seconds`` request field (tests and the CI
    #: smoke only — lets a request hold a worker deterministically).
    allow_test_delay: bool = False

    def resolved_workers(self) -> int:
        workers = self.workers if self.workers is not None else default_worker_count()
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        return workers


class CompileService:
    """Threaded compile executor over one process-lifetime warm state.

    Every request shares the same :class:`CompilationCache` (thread-safe
    memory LRU + disk tier), and each worker thread keeps its own warm
    QMDD manager pool — so a second identical request wave is served
    almost entirely from cache, and even cold compiles reuse hot gate
    and identity diagrams.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.workers = self.config.resolved_workers()
        if self.config.queue_depth < 0:
            raise ReproError(
                f"queue_depth must be >= 0, got {self.config.queue_depth}"
            )
        self.cache = CompilationCache(
            max_entries=self.config.max_memory_entries,
            directory=self.config.cache_dir,
            max_disk_entries=self.config.max_disk_entries,
        )
        self.started = time.time()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        #: One slot per worker plus one per queue position; held for a
        #: request's whole queued+running lifetime.
        self._slots = threading.BoundedSemaphore(
            self.workers + self.config.queue_depth
        )
        self._draining = threading.Event()
        self._lock = threading.Lock()
        self._requests_total = 0
        self._rejected_total = 0
        self._errors_total = 0
        self._compiled_total = 0
        self._cache_hits_total = 0
        self._in_flight = 0
        #: Scrape state for :meth:`metrics_scrape` delta honesty.  The
        #: registry is process-global, so baseline it at construction:
        #: the first scrape covers this service's lifetime, not whatever
        #: the process did before it existed.
        self._scrape_lock = threading.Lock()
        self._metrics_before: Optional[Snapshot] = get_metrics().snapshot()
        self._cache_before: Optional[Dict[str, Any]] = None
        self._scrapes = 0

    # -- request path ------------------------------------------------------

    def compile_request(
        self, payload: Any, profile: bool = False
    ) -> Dict[str, Any]:
        """Admit, execute, and serialize one compile request (blocking).

        Raises :class:`QueueFullError` when no admission slot is free,
        :class:`RequestError` on malformed payloads, and lets pipeline
        errors (synthesis, verification) propagate for the transport
        layer to map onto status codes.
        """
        registry = get_metrics()
        with self._lock:
            self._requests_total += 1
        registry.inc("serve.requests")
        if self._draining.is_set() or not self._slots.acquire(blocking=False):
            with self._lock:
                self._rejected_total += 1
            registry.inc("serve.rejected")
            raise QueueFullError(
                "compile queue is full"
                if not self._draining.is_set()
                else "service is draining"
            )
        try:
            try:
                future = self._executor.submit(self._run, payload, profile)
            except RuntimeError:
                # Executor shut down between the drain check and here.
                with self._lock:
                    self._rejected_total += 1
                registry.inc("serve.rejected")
                raise QueueFullError("service is draining")
            return future.result()
        finally:
            self._slots.release()

    def _run(self, payload: Any, profile: bool) -> Dict[str, Any]:
        """Worker-thread body: parse, consult the cache, compile."""
        registry = get_metrics()
        with self._lock:
            self._in_flight += 1
        try:
            job = self._parse_job(payload)
            if self.config.allow_test_delay and isinstance(payload, dict):
                delay = payload.get("test_delay_seconds")
                if delay:
                    time.sleep(min(float(delay), 10.0))
            started = time.perf_counter()
            key = job.cache_key()
            result = self.cache.get(key)
            from_cache = result is not None
            if result is None:
                options = job.option_dict
                if profile:
                    options["trace"] = True
                result = compile_circuit(job.circuit, job.device, **options)
                self.cache.put(key, result)
                with self._lock:
                    self._compiled_total += 1
                registry.inc("serve.compiles")
            else:
                with self._lock:
                    self._cache_hits_total += 1
                registry.inc("serve.cache_hits")
            response: Dict[str, Any] = {
                "ok": True,
                "from_cache": from_cache,
                "cache_key": key,
                "seconds": round(time.perf_counter() - started, 6),
                "result": result_to_payload(result),
            }
            if profile and not (result.trace and result.trace.get("spans")):
                # Same honesty as `repro compile --profile` on a warm
                # hit: never fabricate spans for an unprofiled compile.
                response["profile_note"] = (
                    "no trace recorded (cached result from an "
                    "unprofiled compile)"
                )
            return response
        except BaseException:
            with self._lock:
                self._errors_total += 1
            registry.inc("serve.errors")
            raise
        finally:
            with self._lock:
                self._in_flight -= 1

    def _parse_job(self, payload: Any) -> CompileJob:
        """Validate the request body into a :class:`CompileJob`."""
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        source = payload.get("circuit")
        if not isinstance(source, str) or not source.strip():
            raise RequestError("'circuit' must be non-empty circuit text")
        fmt = payload.get("format", "qasm")
        parser = _PARSERS.get(fmt) if isinstance(fmt, str) else None
        if parser is None:
            raise RequestError(
                f"unknown circuit format {fmt!r} "
                f"(expected one of {sorted(_PARSERS)})"
            )
        device = payload.get("device")
        if not isinstance(device, str) or not device:
            raise RequestError("'device' must name a synthesis target")
        name = payload.get("name", "")
        if not isinstance(name, str):
            raise RequestError("'name' must be a string")
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise RequestError("'options' must be a JSON object")
        forbidden = set(options) & _FORBIDDEN_OPTIONS
        if forbidden:
            raise RequestError(
                "option(s) not accepted over the wire: "
                + ", ".join(sorted(forbidden))
            )
        try:
            circuit = parser(source, name=name or "request")
        except ParseError as error:
            raise RequestError(f"circuit does not parse: {error}") from error
        try:
            return CompileJob.make(circuit, device, options, label=name)
        except ReproError as error:
            raise RequestError(str(error)) from error

    # -- introspection endpoints -------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Cheap liveness document (no disk I/O, no glob)."""
        with self._lock:
            in_flight = self._in_flight
            requests = self._requests_total
        return {
            "status": "draining" if self._draining.is_set() else "ok",
            "uptime_seconds": round(time.time() - self.started, 3),
            "workers": self.workers,
            "queue_depth": self.config.queue_depth,
            "in_flight": in_flight,
            "requests_total": requests,
            "cache_memory_entries": len(self.cache),
        }

    def server_stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self.started, 3),
                "workers": self.workers,
                "queue_depth": self.config.queue_depth,
                "in_flight": self._in_flight,
                "requests_total": self._requests_total,
                "rejected_total": self._rejected_total,
                "errors_total": self._errors_total,
                "compiled_total": self._compiled_total,
                "cache_hits_total": self._cache_hits_total,
            }

    def metrics_scrape(self) -> Dict[str, Any]:
        """One ``/metrics`` document: the merged process registry plus
        the shared cache's counters, each reported two ways — lifetime
        totals *and* an honest per-scrape delta (what moved since the
        previous scrape, with the delta hit rate recomputed over the
        delta's own lookups, never diluted by history)."""
        registry = get_metrics()
        with self._scrape_lock:
            metrics_delta = registry.since(self._metrics_before)
            metrics_lifetime = registry.snapshot()
            cache_lifetime = self.cache.stats()
            cache_delta = CompilationCache.stats_delta(
                self._cache_before, cache_lifetime
            )
            self._metrics_before = metrics_lifetime
            self._cache_before = cache_lifetime
            self._scrapes += 1
            scrape_index = self._scrapes
        cache_delta["lifetime"] = cache_lifetime
        return {
            "scrape": scrape_index,
            "metrics": {"lifetime": metrics_lifetime, "delta": metrics_delta},
            "cache": cache_delta,
            "server": self.server_stats(),
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self) -> None:
        """Stop admitting work and block until every in-flight and
        queued request has completed.  Idempotent."""
        self._draining.set()
        self._executor.shutdown(wait=True)

    def close(self) -> None:
        self.drain()
