"""Small stdlib-only client for the ``repro serve`` daemon.

One connection per call (thread-safe by construction)::

    from repro.serve.client import ServeClient

    client = ServeClient(port=8400)
    client.wait_ready()
    response = client.compile("OPENQASM 2.0; ...", device="ibmqx4")
    result = client.compile_result("OPENQASM 2.0; ...", device="ibmqx4")
    print(result.optimized_metrics, result.verification)

:meth:`ServeClient.compile` returns the raw JSON response (the
``result`` key is the v5 batch payload);
:meth:`ServeClient.compile_result` additionally reconstructs the full
:class:`~repro.compiler.CompilationResult` — byte-identical QASM to a
local compile.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple

from ..compiler import CompilationResult
from ..core.exceptions import ReproError

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """A non-200 answer (or no answer) from the compile service."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}

    @property
    def queue_full(self) -> bool:
        return self.status == 429


class ServeClient:
    """JSON-over-HTTP client bound to one daemon address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8400,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            encoded = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if encoded else {}
            connection.request(method, path, body=encoded, headers=headers)
            answer = connection.getresponse()
            raw = answer.read()
        except (OSError, http.client.HTTPException) as error:
            raise ServeError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        finally:
            connection.close()
        try:
            parsed = json.loads(raw) if raw else {}
        except ValueError:
            parsed = {"raw": raw.decode(errors="replace")}
        document: Dict[str, Any] = (
            parsed if isinstance(parsed, dict) else {"raw": parsed}
        )
        return answer.status, document

    def _checked(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        status, document = self._request(method, path, body)
        if status != 200:
            error = document.get("error", {})
            message = (
                error.get("message", f"HTTP {status}")
                if isinstance(error, dict)
                else f"HTTP {status}"
            )
            raise ServeError(message, status=status, payload=document)
        return document

    # -- endpoints ---------------------------------------------------------

    def compile(
        self,
        circuit: str,
        device: str,
        fmt: str = "qasm",
        name: str = "",
        options: Optional[Dict[str, Any]] = None,
        profile: bool = False,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """``POST /compile``; returns the JSON response document.

        Raises :class:`ServeError` on any non-200 status (``.status``
        carries the code — 429 means the admission queue was full and
        the request should be retried later).  ``extra`` merges raw
        top-level fields into the body (tests and the CI smoke use it
        for the gated ``test_delay_seconds`` hook).
        """
        body: Dict[str, Any] = {
            "circuit": circuit,
            "format": fmt,
            "device": device,
        }
        if name:
            body["name"] = name
        if options:
            body["options"] = dict(options)
        if extra:
            body.update(extra)
        path = "/compile?profile=1" if profile else "/compile"
        return self._checked("POST", path, body)

    def compile_result(
        self,
        circuit: str,
        device: str,
        fmt: str = "qasm",
        name: str = "",
        options: Optional[Dict[str, Any]] = None,
        profile: bool = False,
    ) -> CompilationResult:
        """Like :meth:`compile`, but reconstructs the full result."""
        from ..batch.serialize import result_from_payload

        document = self.compile(
            circuit, device, fmt=fmt, name=name,
            options=options, profile=profile,
        )
        result = result_from_payload(document["result"])
        if result is None:
            raise ServeError(
                "server answered an incompatible result payload version"
            )
        return result

    def healthz(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._checked("GET", "/metrics")

    def wait_ready(self, timeout: float = 10.0) -> Dict[str, Any]:
        """Poll ``/healthz`` until the daemon answers (startup helper);
        raises :class:`ServeError` if it never comes up."""
        deadline = time.monotonic() + timeout
        last: Optional[ServeError] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except ServeError as error:
                last = error
                time.sleep(0.05)
        raise ServeError(
            f"service at {self.host}:{self.port} not ready "
            f"after {timeout:g}s: {last}"
        )
