"""JSON-over-HTTP skin of the compile service (``repro serve``).

Endpoints (all JSON in, JSON out):

* ``POST /compile`` — body ``{"circuit": <text>, "format":
  "qasm"|"qc"|"real", "device": <name>, "name": <label>, "options":
  {...compile options...}}``; append ``?profile=1`` to record per-stage
  tracer spans into the response.  Answers the full
  :class:`~repro.compiler.CompilationResult` payload (the v5 batch
  serialization) plus ``from_cache``/``seconds``.
* ``GET /healthz`` — cheap liveness probe (no disk I/O).
* ``GET /metrics`` — merged metrics registry + shared-cache counters,
  each as lifetime totals *and* an honest per-scrape delta.

Status codes: 400 malformed request, 404 unknown path, 405 wrong
method, 413 oversized body, 422 not synthesizable for the target, 429
admission queue full (bounded — overload is rejected, not buffered),
500 internal pipeline failure.

Lifecycle: ``SIGTERM`` and ``Ctrl-C`` stop the accept loop, *drain*
every queued and in-flight request to completion, then exit — 0 for
SIGTERM, 130 for SIGINT (the CLI's interrupted-exit convention).
"""

from __future__ import annotations

import json
import signal
import threading
import types
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..core.exceptions import NotSynthesizableError, ReproError
from .service import CompileService, QueueFullError, RequestError, ServeConfig

__all__ = ["CompileServer", "MAX_BODY_BYTES", "run_server"]

#: Largest accepted ``POST /compile`` body (circuit text is small; this
#: bound keeps a hostile client from ballooning the process).
MAX_BODY_BYTES = 16 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request; the owning server carries the service."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: Socket timeout while waiting for the next request line on a
    #: keep-alive connection — bounds how long an *idle* connection can
    #: delay a drain (active compiles are unaffected; the handler is
    #: blocked on the service, not the socket).
    timeout = 10.0
    server: "CompileServer"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(
        self, status: int, document: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(document).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self, status: int, error_type: str, message: str,
        headers: Optional[Dict[str, str]] = None,
        **extra: Any,
    ) -> None:
        self._send_json(
            status,
            {
                "ok": False,
                "error": {"type": error_type, "message": message, **extra},
            },
            headers,
        )

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:
        path = urlsplit(self.path).path
        service = self.server.service
        if path == "/healthz":
            self._send_json(200, service.healthz())
        elif path == "/metrics":
            self._send_json(200, service.metrics_scrape())
        elif path == "/compile":
            self._error(405, "MethodNotAllowed", "POST /compile")
        else:
            self._error(404, "NotFound", f"no route {path!r}")

    def do_POST(self) -> None:
        parts = urlsplit(self.path)
        if parts.path != "/compile":
            self._error(404, "NotFound", f"no route {parts.path!r}")
            return
        query = parse_qs(parts.query)
        profile = query.get("profile", ["0"])[-1] in ("1", "true", "yes")
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            self._error(400, "BadRequest", "missing/invalid Content-Length")
            return
        if length > MAX_BODY_BYTES:
            self._error(
                413, "PayloadTooLarge",
                f"body exceeds {MAX_BODY_BYTES} bytes",
            )
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, UnicodeDecodeError):
            self._error(400, "BadRequest", "body is not valid JSON")
            return

        service = self.server.service
        try:
            response = service.compile_request(payload, profile=profile)
        except QueueFullError as error:
            self._error(
                429, "QueueFull", str(error), headers={"Retry-After": "1"}
            )
        except RequestError as error:
            self._error(400, "BadRequest", str(error))
        except NotSynthesizableError as error:
            self._error(
                422, "NotSynthesizable", str(error), not_synthesizable=True
            )
        except ReproError as error:
            self._error(500, type(error).__name__, str(error))
        except Exception as error:  # pipeline bug: report, keep serving
            self._error(500, type(error).__name__, str(error))
        else:
            self._send_json(200, response)


class CompileServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`CompileService`.

    Handler threads are non-daemon and joined on :meth:`server_close`,
    so a drain provably finishes writing every in-flight response
    before the process exits.
    """

    daemon_threads = False
    block_on_close = True
    #: Accept backlog; beyond this the kernel refuses, which is the
    #: outermost overload bound in front of the admission queue.
    request_queue_size = 64

    def __init__(
        self,
        address: Tuple[str, int],
        service: CompileService,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__(address, _Handler)

    @property
    def port(self) -> int:
        return int(self.server_address[1])


def run_server(
    config: Optional[ServeConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8400,
    verbose: bool = True,
    announce: bool = True,
    ready: Optional[threading.Event] = None,
) -> int:
    """Run the daemon until ``SIGTERM``/``SIGINT``; returns the exit
    code (0 after a SIGTERM drain, 130 after Ctrl-C — both drain).

    ``port=0`` binds an ephemeral port; the announce line (printed to
    stdout and flushed) carries the bound address so wrappers and the
    CI smoke can discover it.
    """
    service = CompileService(config)
    server = CompileServer((host, port), service, verbose=verbose)
    stop = threading.Event()
    received: Dict[str, int] = {}

    def _on_signal(signum: int, frame: Optional[types.FrameType]) -> None:
        received.setdefault("signum", signum)
        stop.set()

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    loop = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-serve-accept",
    )
    try:
        if announce:
            print(
                f"repro serve: listening on http://{host}:{server.port} "
                f"(workers={service.workers}, "
                f"queue_depth={service.config.queue_depth}, "
                f"cache_dir={service.config.cache_dir or 'memory-only'})",
                flush=True,
            )
        loop.start()
        if ready is not None:
            ready.set()
        stop.wait()
        server.shutdown()          # stop accepting new connections
        service.drain()            # finish queued + in-flight compiles
        loop.join()
        server.server_close()      # join handler threads, close socket
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    signum = received.get("signum")
    if announce:
        stats = service.server_stats()
        print(
            "repro serve: drained "
            f"({stats['requests_total']} requests, "
            f"{stats['compiled_total']} compiled, "
            f"{stats['cache_hits_total']} cache hits, "
            f"{stats['rejected_total']} rejected)",
            flush=True,
        )
    return 130 if signum == signal.SIGINT else 0
