"""Long-lived compile service: the compiler as a warm daemon.

The paper positions the tool as a design aid invoked repeatedly against
technology-specific targets; every other entry point (CLI, batch
engine, fuzz harness) is a one-shot process that rebuilds its caches,
QMDD manager pools, and device distance tables from cold each time.
``repro serve`` keeps all of that warm across requests inside one
threaded process:

* :class:`CompileService` — transport-agnostic core: bounded admission
  queue, worker-thread pool, one shared thread-safe compilation cache;
* :class:`CompileServer` / :func:`run_server` — the JSON-over-HTTP
  skin (``POST /compile``, ``GET /healthz``, ``GET /metrics``) with
  SIGTERM/Ctrl-C drain semantics;
* :class:`ServeClient` — stdlib-only client helper.

See ``docs/serving.md`` for endpoint payloads and semantics.
"""

from .client import ServeClient, ServeError
from .server import CompileServer, run_server
from .service import CompileService, QueueFullError, RequestError, ServeConfig

__all__ = [
    "CompileServer",
    "CompileService",
    "QueueFullError",
    "RequestError",
    "ServeClient",
    "ServeError",
    "ServeConfig",
    "run_server",
]
