"""The IBM Q device library (Section 3, Table 2 of the paper).

Coupling maps are transcribed *verbatim* from the dictionaries in
Section 3 of the paper (which in turn cite the IBM backend-specification
documents [17-21]).  Keys are qubits eligible to act as a CNOT control;
values list the targets that control may drive.

The unit tests check that the coupling-complexity values computed from
these maps reproduce Table 2 exactly:

=============  =======  ===================
device         qubits   coupling complexity
=============  =======  ===================
ibmqx2         5        0.3
ibmqx3         16       0.08333...
ibmqx4         5        0.3
ibmqx5         16       0.09166...
ibmq_16        14       0.098901...
=============  =======  ===================
"""

from __future__ import annotations

from typing import Dict, List

from .coupling import CouplingMap
from .device import Device, register_device

#: ibmqx2 "Yorktown", 5 qubits, Jan. 2017.
IBMQX2_COUPLING: Dict[int, List[int]] = {0: [1, 2], 1: [2], 3: [2, 4], 4: [2]}

#: ibmqx3, 16 qubits, June 2017 (retired).
IBMQX3_COUPLING: Dict[int, List[int]] = {
    0: [1],
    1: [2],
    2: [3],
    3: [14],
    4: [3, 5],
    6: [7, 11],
    7: [10],
    8: [7],
    9: [8, 10],
    11: [10],
    12: [5, 11, 13],
    13: [4, 14],
    15: [0, 14],
}

#: ibmqx4 "Tenerife", 5 qubits, Sept. 2017.
IBMQX4_COUPLING: Dict[int, List[int]] = {1: [0], 2: [0, 1], 3: [2, 4], 4: [2]}

#: ibmqx5 "Rueschlikon", 16 qubits, Sept. 2017 (retired).
IBMQX5_COUPLING: Dict[int, List[int]] = {
    1: [0, 2],
    2: [3],
    3: [4, 14],
    5: [4],
    6: [5, 7, 11],
    7: [10],
    8: [7],
    9: [8, 10],
    11: [10],
    12: [5, 11, 13],
    13: [4, 14],
    15: [0, 2, 14],
}

#: ibmq_16 "Melbourne", 14 qubits, Sept. 2018.
IBMQ16_COUPLING: Dict[int, List[int]] = {
    1: [0, 2],
    2: [3],
    4: [3, 10],
    5: [4, 6, 9],
    6: [8],
    7: [8],
    9: [8, 10],
    11: [3, 10, 12],
    12: [2],
    13: [1, 12],
}


def _make(name: str, qubits: int, coupling: Dict[int, List[int]], release: str,
          retired: bool = False) -> Device:
    device = Device(
        name=name,
        coupling_map=CouplingMap(qubits, coupling, name=name),
        release_date=release,
        retired=retired,
    )
    return register_device(device)


IBMQX2 = _make("ibmqx2", 5, IBMQX2_COUPLING, "Jan. 2017")
IBMQX3 = _make("ibmqx3", 16, IBMQX3_COUPLING, "June 2017", retired=True)
IBMQX4 = _make("ibmqx4", 5, IBMQX4_COUPLING, "Sept. 2017")
IBMQX5 = _make("ibmqx5", 16, IBMQX5_COUPLING, "Sept. 2017", retired=True)
IBMQ16 = _make("ibmq_16", 14, IBMQ16_COUPLING, "Sept. 2018")

#: The unrestricted simulator backend (coupling complexity 1.0).  The
#: paper maps the Table 3 benchmarks to "the simulator" to obtain their
#: technology-independent metrics; 32 qubits comfortably covers them.
SIMULATOR = register_device(
    Device(
        name="simulator",
        coupling_map=CouplingMap.fully_connected(32, name="simulator"),
        release_date="-",
    )
)

#: The five physical IBM targets used in the paper's result tables, in
#: the column order of Tables 3-6.
PAPER_DEVICES = (IBMQX2, IBMQX3, IBMQX4, IBMQX5, IBMQ16)
