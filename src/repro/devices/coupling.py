"""Coupling maps and the coupling-complexity metric (Section 3).

A transmon device restricts two-qubit CNOT gates to a *coupling map*: a
directed relation ``control -> [targets]``.  The paper represents these
maps as dictionaries (Section 3) and introduces **coupling complexity**,
the ratio of available couplings to all ``n*(n-1)`` ordered qubit pairs.
A complexity of 1 means all-to-all connectivity (the simulator); values
near 0 mean sparse connectivity that forces heavy rerouting.

:class:`CouplingMap` also precomputes the *undirected* routing graph used
by the CTR algorithm: for SWAP-path purposes direction does not matter,
because a reversed CNOT can always be realized with four extra Hadamards
(paper Fig. 6).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.exceptions import DeviceError


class CouplingMap:
    """A directed CNOT coupling map over ``num_qubits`` physical qubits."""

    def __init__(
        self,
        num_qubits: int,
        couplings: Mapping[int, Sequence[int]],
        name: str = "custom",
        all_to_all: bool = False,
    ):
        if num_qubits <= 0:
            raise DeviceError("device must have at least one qubit")
        self.name = name
        self.num_qubits = int(num_qubits)
        self.all_to_all = bool(all_to_all)
        self._directed: FrozenSet[Tuple[int, int]] = frozenset(
            (int(control), int(target))
            for control, targets in couplings.items()
            for target in targets
        )
        for control, target in self._directed:
            if control == target:
                raise DeviceError(f"self-coupling {control}->{target}")
            if not (0 <= control < num_qubits and 0 <= target < num_qubits):
                raise DeviceError(
                    f"coupling {control}->{target} outside 0..{num_qubits - 1}"
                )
        # Undirected adjacency for CTR routing.
        neighbors: Dict[int, set] = {q: set() for q in range(num_qubits)}
        for control, target in self._directed:
            neighbors[control].add(target)
            neighbors[target].add(control)
        if self.all_to_all:
            for q in range(num_qubits):
                neighbors[q] = set(range(num_qubits)) - {q}
        self._neighbors: Dict[int, Tuple[int, ...]] = {
            q: tuple(sorted(adjacent)) for q, adjacent in neighbors.items()
        }
        # Lazy all-pairs routing tables.  Maps are immutable, so one
        # full BFS per *source* fills that source's distance and parent
        # rows forever: distance() is O(1) and shortest_path() is
        # O(path) after the first query from a given source.  The CTR
        # placement/routing scorers hammer these quadratically (every
        # candidate pair, every gate), which used to mean one full BFS
        # per scored pair on the 96-qubit Fig. 7 device.
        self._distance_rows: Dict[int, Dict[int, int]] = {}
        self._parent_rows: Dict[int, Dict[int, int]] = {}
        #: Number of full BFS traversals run (at most one per source;
        #: asserted by tests and reported by benchmarks).
        self.bfs_runs = 0

    # -- constructors --------------------------------------------------------

    @classmethod
    def fully_connected(cls, num_qubits: int, name: str = "simulator") -> "CouplingMap":
        """The ideal simulator: every ordered pair may host a CNOT."""
        return cls(num_qubits, {}, name=name, all_to_all=True)

    @classmethod
    def from_edge_list(
        cls, num_qubits: int, edges: Iterable[Tuple[int, int]], name: str = "custom"
    ) -> "CouplingMap":
        """Build from an iterable of directed ``(control, target)`` pairs."""
        couplings: Dict[int, List[int]] = {}
        for control, target in edges:
            couplings.setdefault(control, []).append(target)
        return cls(num_qubits, couplings, name=name)

    # -- queries ----------------------------------------------------------------

    @property
    def directed_edges(self) -> FrozenSet[Tuple[int, int]]:
        """All available ``(control, target)`` CNOT placements."""
        if self.all_to_all:
            return frozenset(
                (a, b)
                for a in range(self.num_qubits)
                for b in range(self.num_qubits)
                if a != b
            )
        return self._directed

    def as_dict(self) -> Dict[int, List[int]]:
        """The paper's dictionary form ``{control: [targets...]}``."""
        result: Dict[int, List[int]] = {}
        for control, target in sorted(self.directed_edges):
            result.setdefault(control, []).append(target)
        return result

    def allows(self, control: int, target: int) -> bool:
        """True if CNOT(control, target) is natively executable."""
        if self.all_to_all:
            return control != target and self._in_range(control, target)
        return (control, target) in self._directed

    def allows_reversed(self, control: int, target: int) -> bool:
        """True if only the opposite orientation CNOT(target, control) is
        native, so the gate needs the Fig. 6 Hadamard reversal."""
        return not self.allows(control, target) and self.allows(target, control)

    def coupled(self, a: int, b: int) -> bool:
        """True if the qubits are adjacent in either direction."""
        return self.allows(a, b) or self.allows(b, a)

    def neighbors(self, qubit: int) -> Tuple[int, ...]:
        """Undirected neighbors of ``qubit`` (for SWAP routing)."""
        self._check(qubit)
        return self._neighbors[qubit]

    def _in_range(self, *qubits: int) -> bool:
        return all(0 <= q < self.num_qubits for q in qubits)

    def _check(self, *qubits: int) -> None:
        for q in qubits:
            if not (0 <= q < self.num_qubits):
                raise DeviceError(f"qubit {q} outside device {self.name}")

    # -- metrics ---------------------------------------------------------------

    @property
    def coupling_complexity(self) -> float:
        """The paper's coupling-complexity metric (Section 3).

        Ratio of available CNOT couplings to the ``n*(n-1)`` ordered
        two-qubit permutations.  1.0 for the ideal simulator.
        """
        if self.num_qubits < 2:
            return 1.0
        if self.all_to_all:
            return 1.0
        permutations = self.num_qubits * (self.num_qubits - 1)
        return len(self._directed) / permutations

    def is_connected(self) -> bool:
        """True if the undirected routing graph is a single component
        (restricted to qubits that have at least one coupling)."""
        active = [q for q in range(self.num_qubits) if self._neighbors[q]]
        if not active:
            return self.num_qubits <= 1
        seen = {active[0]}
        frontier = deque([active[0]])
        while frontier:
            q = frontier.popleft()
            for adjacent in self._neighbors[q]:
                if adjacent not in seen:
                    seen.add(adjacent)
                    frontier.append(adjacent)
        return all(q in seen for q in active)

    # -- shortest paths (used by CTR) -----------------------------------------------

    def _routing_rows(self, source: int) -> Tuple[Dict[int, int], Dict[int, int]]:
        """The memoized (distance row, parent row) for ``source``.

        Computed with the paper's connectivity-tree construction
        (Fig. 4): breadth-first layers rooted at ``source``, terminating
        branches at already-seen nodes — but run to exhaustion once and
        cached, instead of once per destination.  Neighbor order is the
        sorted-tuple order of ``_neighbors``, so reconstructed paths are
        identical to what the per-query BFS used to return.
        """
        rows = self._distance_rows.get(source)
        if rows is not None:
            return rows, self._parent_rows[source]
        self.bfs_runs += 1
        distance: Dict[int, int] = {source: 0}
        parent: Dict[int, int] = {source: source}
        frontier = deque([source])
        while frontier:
            q = frontier.popleft()
            step = distance[q] + 1
            for adjacent in self._neighbors[q]:
                if adjacent in parent:
                    continue  # branch terminates: node already in the tree
                parent[adjacent] = q
                distance[adjacent] = step
                frontier.append(adjacent)
        self._distance_rows[source] = distance
        self._parent_rows[source] = parent
        return distance, parent

    def shortest_path(self, source: int, destination: int) -> Optional[List[int]]:
        """Shortest undirected path from ``source`` to ``destination``.

        O(path length) after the first query from ``source``: paths are
        reconstructed from the memoized per-source parent table (see
        :meth:`_routing_rows`).  Returns ``None`` when the qubits lie in
        different components.
        """
        self._check(source, destination)
        if source == destination:
            return [source]
        _, parent = self._routing_rows(source)
        if destination not in parent:
            return None
        path = [destination]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def distance(self, a: int, b: int) -> Optional[int]:
        """Undirected hop distance, or None if disconnected.

        O(1) after the first query from source ``a`` (one BFS fills the
        whole distance row; maps are immutable so it never invalidates).
        """
        self._check(a, b)
        distance, _ = self._routing_rows(a)
        return distance.get(b)

    def cheapest_path(
        self,
        source: int,
        destination: int,
        edge_cost,
    ) -> Optional[List[int]]:
        """Minimum-cost undirected path under a custom edge cost.

        ``edge_cost(a, b)`` must return a non-negative float for the
        undirected link between adjacent ``a`` and ``b``.  Used by the
        noise-aware CTR variant, which weighs links by calibrated CNOT
        error instead of hop count.  Dijkstra with a binary heap.
        """
        import heapq

        self._check(source, destination)
        if source == destination:
            return [source]
        best: Dict[int, float] = {source: 0.0}
        parent: Dict[int, int] = {}
        heap = [(0.0, source)]
        visited = set()
        while heap:
            cost, q = heapq.heappop(heap)
            if q in visited:
                continue
            visited.add(q)
            if q == destination:
                path = [destination]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            for adjacent in self._neighbors[q]:
                if adjacent in visited:
                    continue
                step = float(edge_cost(q, adjacent))
                if step < 0:
                    raise DeviceError("edge costs must be non-negative")
                total = cost + step
                if total < best.get(adjacent, float("inf")):
                    best[adjacent] = total
                    parent[adjacent] = q
                    heapq.heappush(heap, (total, adjacent))
        return None

    def __repr__(self) -> str:
        return (
            f"CouplingMap({self.name!r}, qubits={self.num_qubits}, "
            f"couplings={len(self.directed_edges)}, "
            f"complexity={self.coupling_complexity:.4f})"
        )
