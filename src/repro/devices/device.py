"""Device descriptions: a coupling map plus a technology library.

A :class:`Device` bundles everything the back-end needs to target a
physical machine: the coupling map, the native gate set, and the cost
function annotated on the technology library (Section 2.2).  The module
also maintains the tool's *device registry* so that new topologies can be
"added to the device library" (Section 5) and then selected by name.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..core.cost import CostFunction, TRANSMON_COST
from ..core.exceptions import DeviceError
from .coupling import CouplingMap

#: The IBM transmon native gate set (Section 3): the discrete library
#: plus the physical phase (RZ) and amplitude (RX/RY) rotations.
TRANSMON_GATE_SET: Tuple[str, ...] = (
    "I",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "RZ",
    "RX",
    "RY",
    "CNOT",
)


@dataclass(frozen=True)
class Device:
    """A synthesis target: name, coupling map, gate library, cost function."""

    name: str
    coupling_map: CouplingMap
    release_date: str = ""
    retired: bool = False
    gate_set: Tuple[str, ...] = TRANSMON_GATE_SET
    cost_function: CostFunction = TRANSMON_COST

    @property
    def num_qubits(self) -> int:
        """Physical qubit count."""
        return self.coupling_map.num_qubits

    @property
    def coupling_complexity(self) -> float:
        """The Table 2 metric for this device."""
        return self.coupling_map.coupling_complexity

    @property
    def is_simulator(self) -> bool:
        """True when the device imposes no coupling restrictions."""
        return self.coupling_map.all_to_all

    def supports_gate(self, name: str) -> bool:
        """True if ``name`` is in this device's native library."""
        return name in self.gate_set

    def with_cost_function(self, cost_function: CostFunction) -> "Device":
        """Return a copy annotated with a different cost function."""
        return replace(self, cost_function=cost_function)

    def __str__(self) -> str:
        kind = "simulator" if self.is_simulator else "device"
        return (
            f"<{kind} {self.name}: {self.num_qubits} qubits, "
            f"complexity {self.coupling_complexity:.4f}>"
        )


_REGISTRY: Dict[str, Device] = {}


def register_device(device: Device, overwrite: bool = False) -> Device:
    """Add ``device`` to the global registry used by :func:`get_device`.

    This is the extension point the paper describes: "custom transmon
    devices with different coupling maps can be added to the tool to
    provide additional targets during synthesis".
    """
    key = device.name.lower()
    if key in _REGISTRY and not overwrite:
        raise DeviceError(f"device {device.name!r} already registered")
    _REGISTRY[key] = device
    return device


def get_device(name: str) -> Device:
    """Look up a registered device by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise DeviceError(f"unknown device {name!r}; known devices: {known}")


def available_devices() -> Tuple[str, ...]:
    """Names of all registered devices, sorted."""
    return tuple(sorted(_REGISTRY))
