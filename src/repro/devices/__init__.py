"""Device library: coupling maps, IBM Q targets, topology builders."""

from .coupling import CouplingMap
from .device import (
    Device,
    TRANSMON_GATE_SET,
    available_devices,
    get_device,
    register_device,
)
from .ibm import (
    IBMQ16,
    IBMQX2,
    IBMQX3,
    IBMQX4,
    IBMQX5,
    PAPER_DEVICES,
    SIMULATOR,
)
from .calibration import Calibration, fidelity_cost, synthetic_calibration
from .builders import (
    PROPOSED96,
    grid_device,
    ion_device,
    ladder_device,
    linear_device,
    proposed_96q_device,
    ring_device,
    star_device,
)

__all__ = [
    "Calibration",
    "fidelity_cost",
    "synthetic_calibration",
    "CouplingMap",
    "Device",
    "TRANSMON_GATE_SET",
    "available_devices",
    "get_device",
    "register_device",
    "IBMQX2",
    "IBMQX3",
    "IBMQX4",
    "IBMQX5",
    "IBMQ16",
    "SIMULATOR",
    "PAPER_DEVICES",
    "PROPOSED96",
    "grid_device",
    "ion_device",
    "ladder_device",
    "linear_device",
    "proposed_96q_device",
    "ring_device",
    "star_device",
]
