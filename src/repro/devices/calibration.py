"""Device calibration data and fidelity-derived cost functions.

Section 2.2 of the paper: "when actual devices are targeted, the cost
function may also incorporate other terms ... We are experimenting with
other metrics, such as qubit and operator fidelity, rather than
decoherence times within our cost evaluations."

This module supplies that experiment: a :class:`Calibration` carries
per-qubit single-gate error rates, per-edge CNOT error rates and
readout errors (the quantities IBM publishes for each backend), and
:func:`fidelity_cost` turns them into a location-aware cost function —
``-log`` of the estimated circuit success probability, so lower cost
still means better, and costs of sequential gates add.

Real backend calibrations are not downloadable offline, so
:func:`synthetic_calibration` generates reproducible per-device data in
the published ranges (single-qubit error ~1e-3, CNOT error ~2e-2,
deterministic per device name).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..core.circuit import QuantumCircuit
from ..core.cost import CostFunction
from ..core.exceptions import DeviceError
from .device import Device


@dataclass(frozen=True)
class Calibration:
    """Error-rate data for one device."""

    device_name: str
    single_qubit_error: Dict[int, float]
    cnot_error: Dict[Tuple[int, int], float]
    readout_error: Dict[int, float] = field(default_factory=dict)

    def gate_error(self, gate) -> float:
        """Error probability of one gate at its physical location."""
        if gate.name == "CNOT":
            key = (gate.qubits[0], gate.qubits[1])
            error = self.cnot_error.get(key)
            if error is None:
                raise DeviceError(
                    f"no CNOT calibration for edge {key} on {self.device_name}"
                )
            return error
        if gate.num_qubits == 1:
            qubit = gate.qubits[0]
            if qubit not in self.single_qubit_error:
                raise DeviceError(
                    f"no calibration for q{qubit} on {self.device_name}"
                )
            return self.single_qubit_error[qubit]
        raise DeviceError(
            f"calibration covers the native library only, got {gate.name}"
        )

    def success_probability(self, circuit: QuantumCircuit) -> float:
        """Naive multiplicative success estimate: prod(1 - error)."""
        probability = 1.0
        for gate in circuit:
            probability *= 1.0 - self.gate_error(gate)
        return probability


def _unit_hash(text: str) -> float:
    """Deterministic pseudo-random float in [0, 1) from a string."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


def synthetic_calibration(
    device: Device,
    single_qubit_base: float = 1e-3,
    cnot_base: float = 2e-2,
    spread: float = 0.5,
) -> Calibration:
    """Reproducible synthetic calibration in published IBM Q ranges.

    Each qubit/edge gets ``base * (1 + spread * u)`` with ``u`` a
    deterministic hash of the device name and location, so runs are
    repeatable and devices differ.
    """
    singles = {
        q: single_qubit_base
        * (1.0 + spread * _unit_hash(f"{device.name}/q{q}"))
        for q in range(device.num_qubits)
    }
    cnots = {
        (control, target): cnot_base
        * (1.0 + spread * _unit_hash(f"{device.name}/cx{control}-{target}"))
        for control, target in device.coupling_map.directed_edges
    }
    readout = {
        q: 2e-2 * (1.0 + spread * _unit_hash(f"{device.name}/ro{q}"))
        for q in range(device.num_qubits)
    }
    return Calibration(device.name, singles, cnots, readout)


def fidelity_cost(calibration: Calibration) -> CostFunction:
    """A nonlinear, location-aware cost: ``-log(success probability)``.

    Additive over gates (so the optimizer's "lower is better" guard
    works unchanged) and sensitive to *which* physical CNOT edge a gate
    uses — demonstrating the paper's pluggable-cost-function design
    beyond the linear Eqn. 2.
    """

    def evaluate(circuit: QuantumCircuit) -> float:
        total = 0.0
        for gate in circuit:
            total += -math.log(max(1e-12, 1.0 - calibration.gate_error(gate)))
        return total

    return CostFunction(name=f"fidelity[{calibration.device_name}]", custom=evaluate)
