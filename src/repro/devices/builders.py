"""Parametric topology builders and the paper's proposed 96-qubit machine.

The back-end is topology-agnostic: anything that can be written as a
coupling map can be targeted.  These helpers construct the common shapes
used in the literature (linear nearest-neighbour, rings, grids, stars)
plus the Fig. 7 machine.

Fig. 7 reconstruction
---------------------
The paper's 96-qubit machine is only published as a drawing ("inspired by
the ibmqx5 machine", qubits q0..q95).  ibmqx5 is a 2x8 ladder: two rows
of eight qubits with rungs between them.  We reconstruct Fig. 7 as the
natural extension of that ladder to 96 qubits — a 6x16 grid (six rows of
sixteen), with every horizontal and vertical nearest-neighbour pair
coupled in a single deterministic direction (transmon CNOTs are
unidirectional).  The Table 7 benchmarks place controls at q1..q9,
q21..q29, q41..q49, q61..q69 and targets at q25/q45/q65/q85, which fall
in adjacent rows of this grid exactly as the paper's drawing suggests.
This substitution is recorded in DESIGN.md §4.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..core.exceptions import DeviceError
from .coupling import CouplingMap
from .device import Device, register_device


def linear_device(num_qubits: int, name: str = None, bidirectional: bool = False) -> Device:
    """A linear nearest-neighbour chain ``0 - 1 - ... - n-1``.

    With ``bidirectional=False`` each link allows CNOT only from the lower
    index to the higher one (matching unidirectional transmon couplings).
    """
    edges = [(q, q + 1) for q in range(num_qubits - 1)]
    if bidirectional:
        edges += [(q + 1, q) for q in range(num_qubits - 1)]
    return _device_from_edges(num_qubits, edges, name or f"linear{num_qubits}")


def ring_device(num_qubits: int, name: str = None) -> Device:
    """A unidirectional ring ``0 -> 1 -> ... -> n-1 -> 0``."""
    if num_qubits < 3:
        raise DeviceError("a ring needs at least 3 qubits")
    edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
    return _device_from_edges(num_qubits, edges, name or f"ring{num_qubits}")


def star_device(num_qubits: int, name: str = None) -> Device:
    """A star: qubit 0 in the centre controls every leaf."""
    if num_qubits < 2:
        raise DeviceError("a star needs at least 2 qubits")
    edges = [(0, q) for q in range(1, num_qubits)]
    return _device_from_edges(num_qubits, edges, name or f"star{num_qubits}")


def grid_device(rows: int, cols: int, name: str = None) -> Device:
    """A ``rows x cols`` grid with unidirectional nearest-neighbour links.

    Qubit ``(r, c)`` has index ``r*cols + c``.  Each undirected grid edge
    receives a deterministic direction: from the lower index when the
    source's ``(row + col)`` parity is even, otherwise reversed.  This
    mimics the mixed CNOT orientations of the real IBM ladders.
    """
    if rows < 1 or cols < 1:
        raise DeviceError("grid dimensions must be positive")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            here = r * cols + c
            if c + 1 < cols:
                right = here + 1
                edges.append((here, right) if (r + c) % 2 == 0 else (right, here))
            if r + 1 < rows:
                below = here + cols
                edges.append((here, below) if (r + c) % 2 == 0 else (below, here))
    return _device_from_edges(rows * cols, edges, name or f"grid{rows}x{cols}")


def ladder_device(rungs: int, name: str = None) -> Device:
    """A 2-row ladder with ``rungs`` columns (ibmqx5 is ``ladder_device(8)``
    up to CNOT orientations)."""
    return grid_device(2, rungs, name or f"ladder{rungs}")


def proposed_96q_device() -> Device:
    """The paper's Fig. 7 96-qubit ibmqx5-inspired machine (see module
    docstring for the reconstruction rationale)."""
    device = grid_device(6, 16, name="proposed96")
    return device


def ion_device(num_qubits: int, name: str = None) -> Device:
    """A trapped-ion machine: all-to-all connectivity (ions in a shared
    trap couple pairwise through the phonon bus), native gate set
    {RX, RY, RZ, RXX}, and a cost function that surcharges the slow
    two-qubit Moelmer-Sorensen interaction."""
    from ..backend.rebase import ION_GATE_SET
    from ..core.cost import CostFunction

    ion_cost = CostFunction(
        name="ion-ms", base_weight=1.0, extra_weights={"RXX": 2.0}
    )
    return Device(
        name=name or f"ion{num_qubits}",
        coupling_map=CouplingMap.fully_connected(
            num_qubits, name=name or f"ion{num_qubits}"
        ),
        gate_set=tuple(ION_GATE_SET),
        cost_function=ion_cost,
    )


def _device_from_edges(num_qubits: int, edges: Iterable[Tuple[int, int]], name: str) -> Device:
    coupling = CouplingMap.from_edge_list(num_qubits, edges, name=name)
    return Device(name=name, coupling_map=coupling)


#: The registered Fig. 7 machine, available as ``get_device("proposed96")``.
PROPOSED96 = register_device(proposed_96q_device())
