"""Process-parallel batch compilation with deterministic result order.

:func:`compile_many` fans a list of ``(circuit, device, options)`` jobs
across a :class:`concurrent.futures.ProcessPoolExecutor`:

* **Deterministic ordering** — results come back in job-submission
  order regardless of which worker finished first.
* **Chunked dispatch** — jobs are shipped in contiguous chunks to
  amortize pickling overhead; chunk size adapts to the job count.
* **Serial fallback** — ``workers=1`` runs fully in-process (no pool,
  no pickling), as do individual jobs that cannot be pickled (e.g. a
  device annotated with a lambda cost function).
* **Per-job error capture** — a failing cell produces a structured
  :class:`JobError` in its slot; it never crashes the pool or masks the
  other cells.
* **Content-addressed caching** — pass a
  :class:`~repro.batch.cache.CompilationCache` and repeated cells are
  served without compiling (see :mod:`repro.batch.cache` for the key).

The coordinating process owns the cache; worker processes only ever
compile.  Fresh results are cached on the way back, so a second call
with the same jobs is pure cache hits.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from ..compiler import CompilationResult, compile_circuit

if TYPE_CHECKING:
    from ..analysis.diagnostics import Diagnostic
from ..core.circuit import QuantumCircuit
from ..core.exceptions import ReproError
from ..devices.device import Device, get_device
from .cache import CompilationCache, job_cache_key

#: Options accepted by :func:`repro.compiler.compile_circuit`, the only
#: keys a job's options mapping may carry.
_KNOWN_OPTIONS = frozenset(
    {
        "optimize",
        "verify",
        "placement",
        "cost_function",
        "verify_samples",
        "mcx_mode",
        "analyze",
        "strict",
    }
)


@dataclass(frozen=True)
class CompileJob:
    """One cell of a compilation grid: a circuit bound for a device."""

    circuit: QuantumCircuit
    device: Device
    options: Tuple[Tuple[str, object], ...] = ()
    label: str = ""

    @classmethod
    def make(
        cls,
        circuit: QuantumCircuit,
        device: Union[Device, str],
        options: Optional[Dict] = None,
        label: str = "",
    ) -> "CompileJob":
        """Normalize user input into a job (resolves device names,
        validates option keys)."""
        if isinstance(device, str):
            device = get_device(device)
        options = dict(options or {})
        unknown = set(options) - _KNOWN_OPTIONS
        if unknown:
            raise ReproError(
                f"unknown compile option(s): {', '.join(sorted(unknown))}"
            )
        if not label:
            label = f"{circuit.name or 'circuit'}@{device.name}"
        return cls(
            circuit=circuit,
            device=device,
            options=tuple(sorted(options.items(), key=lambda kv: kv[0])),
            label=label,
        )

    @property
    def option_dict(self) -> Dict:
        return dict(self.options)

    def cache_key(self) -> Optional[str]:
        """Content address of this job (``None`` if uncacheable)."""
        return job_cache_key(self.circuit, self.device, self.option_dict)

    def run(self) -> CompilationResult:
        """Execute this job in the current process."""
        return compile_circuit(self.circuit, self.device, **self.option_dict)


@dataclass(frozen=True)
class JobError:
    """Structured capture of one failed cell."""

    exception_type: str
    message: str
    traceback_text: str = ""

    @classmethod
    def from_exception(cls, error: BaseException) -> "JobError":
        return cls(
            exception_type=type(error).__name__,
            message=str(error),
            traceback_text=traceback.format_exc(),
        )

    @property
    def not_synthesizable(self) -> bool:
        """True for the paper's N/A cells (circuit wider than the device
        or otherwise not mappable) as opposed to genuine failures."""
        return self.exception_type == "NotSynthesizableError"

    def __str__(self) -> str:
        return f"{self.exception_type}: {self.message}"


@dataclass
class JobResult:
    """Outcome of one job, in submission order within the batch."""

    index: int
    job: CompileJob
    result: Optional[CompilationResult] = None
    error: Optional[JobError] = None
    from_cache: bool = False
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> CompilationResult:
        """The result, raising a ``ReproError`` if the job failed."""
        if self.error is not None:
            raise ReproError(
                f"job {self.job.label!r} failed: {self.error}"
            )
        return self.result


@dataclass
class BatchReport:
    """Everything one :func:`compile_many` invocation produced."""

    results: List[JobResult]
    workers: int
    wall_seconds: float
    cache_stats: Optional[Dict] = None
    serial_fallbacks: int = 0
    chunk_size: int = 0
    extra: Dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> JobResult:
        return self.results[index]

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.results)

    def successes(self) -> List[JobResult]:
        return [entry for entry in self.results if entry.ok]

    def errors(self) -> List[JobResult]:
        return [entry for entry in self.results if not entry.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for entry in self.results if entry.from_cache)

    def diagnostics(self) -> List[Tuple[str, "Diagnostic"]]:
        """All stage-contract findings across the batch, as
        ``(job label, diagnostic)`` pairs in submission order."""
        found: List[Tuple[str, "Diagnostic"]] = []
        for entry in self.results:
            if entry.result is None:
                continue
            for diagnostic in entry.result.diagnostics:
                found.append((entry.job.label, diagnostic))
        return found

    def summary(self) -> str:
        parts = [
            f"{len(self.results)} jobs",
            f"{len(self.errors())} failed",
            f"{self.cache_hits} cached",
            f"workers={self.workers}",
            f"{self.wall_seconds:.2f}s",
        ]
        flagged = self.diagnostics()
        if flagged:
            parts.insert(2, f"{len(flagged)} diagnostics")
        return ", ".join(parts)


JobLike = Union[
    CompileJob,
    Tuple[QuantumCircuit, Union[Device, str]],
    Tuple[QuantumCircuit, Union[Device, str], Dict],
]


def _normalize(jobs: Iterable[JobLike]) -> List[CompileJob]:
    normalized: List[CompileJob] = []
    for job in jobs:
        if isinstance(job, CompileJob):
            normalized.append(job)
        elif isinstance(job, tuple) and len(job) in (2, 3):
            options = job[2] if len(job) == 3 else None
            normalized.append(CompileJob.make(job[0], job[1], options))
        else:
            raise ReproError(
                "jobs must be CompileJob or (circuit, device[, options]) "
                f"tuples, got {type(job).__name__}"
            )
    return normalized


def _execute_packed(packed: bytes) -> List[Tuple[int, str, bytes]]:
    """Worker entry point: run a pickled chunk of (index, job) pairs.

    Every outcome — success or failure — is pickled *individually* so a
    single unpicklable result cannot poison the whole chunk.
    """
    out: List[Tuple[int, str, bytes]] = []
    for index, job in pickle.loads(packed):
        try:
            result = job.run()
            out.append((index, "ok", pickle.dumps(result)))
        except BaseException as error:  # captured, never crashes the pool
            out.append(
                (index, "error", pickle.dumps(JobError.from_exception(error)))
            )
    return out


def default_worker_count() -> int:
    """Worker count when the caller asks for ``workers=None``: the CPU
    count, capped at 8 (compilation is CPU-bound; more buys nothing)."""
    return min(os.cpu_count() or 1, 8)


def compile_many(
    jobs: Iterable[JobLike],
    workers: Optional[int] = 1,
    cache: Optional[CompilationCache] = None,
    chunk_size: Optional[int] = None,
) -> BatchReport:
    """Compile every job, optionally in parallel, with per-job errors.

    ``workers=1`` (the default) is fully serial and allocation-free;
    ``workers=None`` picks :func:`default_worker_count`.  Results are
    returned in submission order.  With a ``cache``, previously-compiled
    cells are served without compiling and fresh results are stored back.
    """
    started = time.perf_counter()
    job_list = _normalize(jobs)
    if workers is None:
        workers = default_worker_count()
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")

    results: List[Optional[JobResult]] = [None] * len(job_list)
    pending: List[Tuple[int, CompileJob, Optional[str]]] = []
    for index, job in enumerate(job_list):
        key = job.cache_key() if cache is not None else None
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            results[index] = JobResult(
                index=index, job=job, result=cached, from_cache=True
            )
        else:
            pending.append((index, job, key))

    serial_fallbacks = 0
    parallel: List[Tuple[int, CompileJob, Optional[str]]] = []
    serial: List[Tuple[int, CompileJob, Optional[str]]] = []
    if workers > 1 and len(pending) > 1:
        for entry in pending:
            if _picklable(entry[1]):
                parallel.append(entry)
            else:
                serial.append(entry)
                serial_fallbacks += 1
    else:
        serial = pending

    used_chunk = 0
    if parallel:
        used_chunk = chunk_size or max(1, len(parallel) // (workers * 4) or 1)
        chunks = [
            parallel[i : i + used_chunk]
            for i in range(0, len(parallel), used_chunk)
        ]
        key_of = {index: key for index, _, key in parallel}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            packed = [
                pickle.dumps([(index, job) for index, job, _ in chunk])
                for chunk in chunks
            ]
            for chunk_out in pool.map(_execute_packed, packed):
                for index, status, payload in chunk_out:
                    job = job_list[index]
                    if status == "ok":
                        result = pickle.loads(payload)
                        if cache is not None:
                            cache.put(key_of[index], result)
                        results[index] = JobResult(
                            index=index,
                            job=job,
                            result=result,
                            seconds=result.synthesis_seconds,
                        )
                    else:
                        results[index] = JobResult(
                            index=index, job=job, error=pickle.loads(payload)
                        )

    for index, job, key in serial:
        cell_started = time.perf_counter()
        try:
            result = job.run()
        except BaseException as error:
            results[index] = JobResult(
                index=index, job=job, error=JobError.from_exception(error)
            )
        else:
            if cache is not None:
                cache.put(key, result)
            results[index] = JobResult(
                index=index,
                job=job,
                result=result,
                seconds=time.perf_counter() - cell_started,
            )

    if any(entry is None for entry in results):
        raise ReproError("internal error: batch left unfilled job slots")
    return BatchReport(
        results=results,
        workers=workers,
        wall_seconds=time.perf_counter() - started,
        cache_stats=cache.stats() if cache is not None else None,
        serial_fallbacks=serial_fallbacks,
        chunk_size=used_chunk,
    )


def _picklable(job: CompileJob) -> bool:
    try:
        pickle.dumps(job)
        return True
    except Exception:
        return False
