"""Process-parallel batch compilation with deterministic result order.

:func:`compile_many` fans a list of ``(circuit, device, options)`` jobs
across a :class:`concurrent.futures.ProcessPoolExecutor`:

* **Deterministic ordering** — results come back in job-submission
  order regardless of which worker finished first.
* **Chunked dispatch** — jobs are shipped in contiguous chunks to
  amortize pickling overhead; chunk size adapts to the job count.
* **Serial fallback** — ``workers=1`` runs fully in-process (no pool,
  no pickling), as do individual jobs that cannot be pickled (e.g. a
  device annotated with a lambda cost function).
* **Per-job error capture** — a failing cell produces a structured
  :class:`JobError` in its slot; it never crashes the pool or masks the
  other cells.
* **Content-addressed caching** — pass a
  :class:`~repro.batch.cache.CompilationCache` and repeated cells are
  served without compiling (see :mod:`repro.batch.cache` for the key).

Fault tolerance (the batch is a long-running production surface, so a
single sick job must never lose the rest):

* **Per-job wall-clock timeouts** — ``timeout=seconds`` arms a
  ``SIGALRM``-based guard around each job *inside the worker*, so a
  runaway compilation raises
  :class:`~repro.core.exceptions.JobTimeoutError` instead of stalling
  the batch.  A coordinator-side backstop reclaims the pool when a
  worker is hard-hung (stuck in a signal-proof state) and requeues the
  unstarted jobs.
* **Bounded retry with backoff** — transient failures (timeouts, worker
  crashes, :class:`~repro.core.exceptions.TransientJobError`) are
  retried up to ``retries`` times with exponential backoff; genuine
  compile errors are recorded immediately, never retried.
* **Broken-pool recovery** — a dying worker (``BrokenProcessPool``)
  used to abort the whole batch; now the pool is rebuilt, surviving
  jobs are requeued, and after ``max_pool_restarts`` rebuilds the
  engine degrades gracefully to serial in-process execution so the
  batch always completes with per-job outcomes.
* **Interrupt flush** — Ctrl-C during a batch fills the unfinished
  slots with ``KeyboardInterrupt`` job errors and returns the partial
  report (``BatchReport.interrupted``) instead of losing completed work.
* **Deterministic fault injection** — the ``REPRO_FAULT_INJECT``
  environment hook (:mod:`repro.batch.faults`) kills, hangs or flakes
  workers on demand so every recovery path above is itself tested.

The coordinating process owns the cache; worker processes only ever
compile.  Fresh results are cached on the way back, so a second call
with the same jobs is pure cache hits.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from ..compiler import CompilationResult, compile_circuit

if TYPE_CHECKING:
    from ..analysis.diagnostics import Diagnostic
from ..core.circuit import QuantumCircuit
from ..core.exceptions import JobTimeoutError, ReproError
from ..devices.device import Device, get_device
from ..obs import MetricsRegistry, get_metrics
from . import faults
from .cache import CompilationCache, job_cache_key

#: Options accepted by :func:`repro.compiler.compile_circuit`, the only
#: keys a job's options mapping may carry.
_KNOWN_OPTIONS = frozenset(
    {
        "optimize",
        "verify",
        "placement",
        "cost_function",
        "verify_samples",
        "verify_strategy",
        "mcx_mode",
        "analyze",
        "strict",
        "trace",
        "known_zero",
        "route",
        "restore_layout",
    }
)

#: Exception type names the engine treats as transient (retryable).
TRANSIENT_ERROR_TYPES = frozenset(
    {
        "JobTimeoutError",
        "WorkerCrashError",
        "TransientJobError",
        "FaultInjectedError",
        "BrokenProcessPool",
        "OSError",
    }
)


@dataclass(frozen=True)
class CompileJob:
    """One cell of a compilation grid: a circuit bound for a device."""

    circuit: QuantumCircuit
    device: Device
    options: Tuple[Tuple[str, object], ...] = ()
    label: str = ""

    @classmethod
    def make(
        cls,
        circuit: QuantumCircuit,
        device: Union[Device, str],
        options: Optional[Dict] = None,
        label: str = "",
    ) -> "CompileJob":
        """Normalize user input into a job (resolves device names,
        validates option keys)."""
        if isinstance(device, str):
            device = get_device(device)
        options = dict(options or {})
        unknown = set(options) - _KNOWN_OPTIONS
        if unknown:
            raise ReproError(
                f"unknown compile option(s): {', '.join(sorted(unknown))}"
            )
        if "known_zero" in options:
            # Normalize to a hashable, order-independent form so equal
            # jobs compare (and cache-key) identically.
            options["known_zero"] = tuple(
                sorted(int(q) for q in options["known_zero"] or ())
            )
        if not label:
            label = f"{circuit.name or 'circuit'}@{device.name}"
        return cls(
            circuit=circuit,
            device=device,
            options=tuple(sorted(options.items(), key=lambda kv: kv[0])),
            label=label,
        )

    @property
    def option_dict(self) -> Dict:
        return dict(self.options)

    def cache_key(self) -> Optional[str]:
        """Content address of this job (``None`` if uncacheable)."""
        return job_cache_key(self.circuit, self.device, self.option_dict)

    def run(self) -> CompilationResult:
        """Execute this job in the current process."""
        return compile_circuit(self.circuit, self.device, **self.option_dict)


@dataclass(frozen=True)
class JobError:
    """Structured capture of one failed cell."""

    exception_type: str
    message: str
    traceback_text: str = ""

    @classmethod
    def from_exception(cls, error: BaseException) -> "JobError":
        return cls(
            exception_type=type(error).__name__,
            message=str(error),
            traceback_text=traceback.format_exc(),
        )

    @property
    def not_synthesizable(self) -> bool:
        """True for the paper's N/A cells (circuit wider than the device
        or otherwise not mappable) as opposed to genuine failures."""
        return self.exception_type == "NotSynthesizableError"

    @property
    def transient(self) -> bool:
        """True when this failure class is retryable (timeout, worker
        crash, injected flakiness) rather than a deterministic error."""
        return self.exception_type in TRANSIENT_ERROR_TYPES

    @property
    def timed_out(self) -> bool:
        return self.exception_type == "JobTimeoutError"

    def __str__(self) -> str:
        return f"{self.exception_type}: {self.message}"


@dataclass
class JobResult:
    """Outcome of one job, in submission order within the batch."""

    index: int
    job: CompileJob
    result: Optional[CompilationResult] = None
    error: Optional[JobError] = None
    from_cache: bool = False
    seconds: float = 0.0
    #: Execution attempts consumed (1 = first try succeeded or failed
    #: non-transiently; >1 = the job was retried).
    attempts: int = 1
    #: True when the final outcome was a wall-clock timeout.
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def unwrap(self) -> CompilationResult:
        """The result, raising a ``ReproError`` if the job failed."""
        if self.error is not None:
            raise ReproError(
                f"job {self.job.label!r} failed: {self.error}"
            )
        return self.result


@dataclass
class BatchReport:
    """Everything one :func:`compile_many` invocation produced."""

    results: List[JobResult]
    workers: int
    wall_seconds: float
    #: *This run's* cache contribution: counter keys (hits, misses,
    #: stores, ...) are deltas over the batch, ``hit_rate`` is computed
    #: over those deltas, and the cache's cumulative counters ride along
    #: under ``"lifetime"``.  Earlier versions reported the raw lifetime
    #: counters here, which made a warm run on a long-lived cache look
    #: like a 0% hit rate.
    cache_stats: Optional[Dict] = None
    #: Merged metrics snapshot (``{"counters": ..., "gauges": ...}``)
    #: across every job in the batch — including worker-process deltas
    #: shipped back with each result (QMDD table stats, optimizer
    #: rounds, timeout-degrade tallies).
    metrics: Dict = field(default_factory=dict)
    serial_fallbacks: int = 0
    chunk_size: int = 0
    #: Total retry executions across the batch (0 = no transient faults).
    retry_count: int = 0
    #: Jobs whose final outcome was a wall-clock timeout.
    timeout_count: int = 0
    #: Times a broken worker pool was rebuilt mid-batch.
    pool_restarts: int = 0
    #: True when pool recovery was exhausted and the remaining jobs ran
    #: serially in the coordinating process.
    degraded_serial: bool = False
    #: True when the batch was interrupted (Ctrl-C); completed slots are
    #: real results, unfinished slots carry ``KeyboardInterrupt`` errors.
    interrupted: bool = False
    #: Jobs that ran with a requested timeout the platform could not
    #: enforce (no ``SIGALRM``, or serial execution off the main
    #: thread) — they degraded to unbounded execution with a
    #: ``REPRO712`` warning instead of failing with ``ValueError``.
    timeout_unenforced: int = 0
    extra: Dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> JobResult:
        return self.results[index]

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.results)

    def successes(self) -> List[JobResult]:
        return [entry for entry in self.results if entry.ok]

    def errors(self) -> List[JobResult]:
        return [entry for entry in self.results if not entry.ok]

    def timeouts(self) -> List[JobResult]:
        return [entry for entry in self.results if entry.timed_out]

    def retried(self) -> List[JobResult]:
        return [entry for entry in self.results if entry.retried]

    @property
    def cache_hits(self) -> int:
        return sum(1 for entry in self.results if entry.from_cache)

    def diagnostics(self) -> List[Tuple[str, "Diagnostic"]]:
        """All stage-contract findings across the batch, as
        ``(job label, diagnostic)`` pairs in submission order."""
        found: List[Tuple[str, "Diagnostic"]] = []
        for entry in self.results:
            if entry.result is None:
                continue
            for diagnostic in entry.result.diagnostics:
                found.append((entry.job.label, diagnostic))
        return found

    def health(self) -> "DiagnosticReport":
        """Batch-execution health findings (timeouts, retries, crashes,
        degradation) as located diagnostics — see
        :func:`repro.analysis.batch_health.batch_health_report`."""
        from ..analysis.batch_health import batch_health_report

        return batch_health_report(self)

    def summary(self) -> str:
        parts = [
            f"{len(self.results)} jobs",
            f"{len(self.errors())} failed",
            f"{self.cache_hits} cached",
            f"workers={self.workers}",
            f"{self.wall_seconds:.2f}s",
        ]
        flagged = self.diagnostics()
        if flagged:
            parts.insert(2, f"{len(flagged)} diagnostics")
        if self.retry_count:
            parts.append(f"{self.retry_count} retries")
        if self.timeout_count:
            parts.append(f"{self.timeout_count} timeouts")
        if self.timeout_unenforced:
            parts.append(
                f"{self.timeout_unenforced} timeout(s) unenforced"
            )
        if self.pool_restarts:
            parts.append(f"{self.pool_restarts} pool restarts")
        if self.degraded_serial:
            parts.append("degraded to serial")
        if self.interrupted:
            parts.append("INTERRUPTED")
        return ", ".join(parts)


if TYPE_CHECKING:
    from ..analysis.diagnostics import DiagnosticReport


JobLike = Union[
    CompileJob,
    Tuple[QuantumCircuit, Union[Device, str]],
    Tuple[QuantumCircuit, Union[Device, str], Dict],
]


def _normalize(jobs: Iterable[JobLike]) -> List[CompileJob]:
    normalized: List[CompileJob] = []
    for job in jobs:
        if isinstance(job, CompileJob):
            normalized.append(job)
        elif isinstance(job, tuple) and len(job) in (2, 3):
            options = job[2] if len(job) == 3 else None
            normalized.append(CompileJob.make(job[0], job[1], options))
        else:
            raise ReproError(
                "jobs must be CompileJob or (circuit, device[, options]) "
                f"tuples, got {type(job).__name__}"
            )
    return normalized


@contextmanager
def _alarm_guard(timeout: Optional[float], label: str):
    """Raise :class:`JobTimeoutError` if the body runs past ``timeout``.

    Uses ``SIGALRM`` (POSIX, main thread only) — exact wall-clock
    enforcement measured where the job actually runs, immune to pool
    queueing delays.  Where the alarm cannot be armed (Windows, a
    coordinator running serial jobs on a non-main thread, or a platform
    whose ``signal.signal`` refuses the handler), the guard **degrades
    to no-timeout and accounts for it**: the ``batch.timeout_unenforced``
    metric is incremented, which surfaces as
    :attr:`BatchReport.timeout_unenforced` and a ``REPRO712`` warning
    diagnostic in :meth:`BatchReport.health` — never a raised
    ``ValueError`` killing the job.  The coordinator's hard-hang
    backstop still applies either way.
    """
    if timeout is None or timeout <= 0:
        yield
        return
    armed = False
    previous = None
    if (
        hasattr(signal, "SIGALRM")
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    ):
        def _on_alarm(signum, frame):
            raise JobTimeoutError(
                f"job {label!r} exceeded {timeout:g}s wall-clock timeout"
            )

        try:
            previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout)
            armed = True
        except (ValueError, OSError, AttributeError):
            # signal.signal raced a thread check / platform refused the
            # itimer: restore what we can and fall through to degraded.
            if previous is not None:
                try:
                    signal.signal(signal.SIGALRM, previous)
                except (ValueError, OSError):
                    pass
    if not armed:
        get_metrics().inc("batch.timeout_unenforced")
        yield
        return
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_packed(packed: bytes) -> List[Tuple[int, str, bytes, Dict]]:
    """Worker entry point: run a pickled chunk of (index, job) pairs.

    Every outcome — success or failure — is pickled *individually* so a
    single unpicklable result cannot poison the whole chunk.  The
    per-job timeout is enforced here, in the worker, via the alarm
    guard.

    Each outcome carries the worker's **metrics delta** for that job — a
    before/after snapshot difference of the worker-process registry
    (QMDD table stats, optimizer rounds, timeout-degrade tallies, ...).
    The coordinator merges these into :attr:`BatchReport.metrics`;
    without the shipping step every worker-side counter dies with its
    process and the batch reports zeros.
    """
    timeout, entries = pickle.loads(packed)
    registry = get_metrics()
    out: List[Tuple[int, str, bytes, Dict]] = []
    for index, job in entries:
        before = registry.snapshot()
        try:
            with _alarm_guard(timeout, job.label):
                faults.fire("worker", job.label)
                result = job.run()
            payload = ("ok", pickle.dumps(result))
        except BaseException as error:  # captured, never crashes the pool
            payload = ("error", pickle.dumps(JobError.from_exception(error)))
        delta = MetricsRegistry.delta(before, registry.snapshot())
        out.append((index, payload[0], payload[1], delta))
    return out


def default_worker_count() -> int:
    """Worker count when the caller asks for ``workers=None``: the CPU
    count, capped at 8 (compilation is CPU-bound; more buys nothing)."""
    return min(os.cpu_count() or 1, 8)


@dataclass
class _Pending:
    """Coordinator-side state of one not-yet-recorded job."""

    index: int
    job: CompileJob
    key: Optional[str]
    #: Transient failures consumed so far (retry budget accounting).
    failures: int = 0


class _Batch:
    """One :func:`compile_many` invocation's mutable coordinator state."""

    def __init__(
        self,
        job_list: List[CompileJob],
        cache: Optional[CompilationCache],
        timeout: Optional[float],
        retries: int,
        retry_backoff: float,
    ):
        self.job_list = job_list
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.results: List[Optional[JobResult]] = [None] * len(job_list)
        self.retry_count = 0
        self.timeout_count = 0
        self.pool_restarts = 0
        self.degraded_serial = False
        self.interrupted = False
        #: Merged per-job metrics deltas (worker snapshots shipped back
        #: with each result, serial deltas captured in-process).
        self.metrics = MetricsRegistry()

    # -- recording ---------------------------------------------------------

    def record_ok(
        self,
        entry: _Pending,
        result: CompilationResult,
        seconds: float,
        metrics_delta: Optional[Dict] = None,
    ) -> None:
        self.metrics.merge(metrics_delta)
        if self.cache is not None:
            self.cache.put(entry.key, result)
        self.results[entry.index] = JobResult(
            index=entry.index,
            job=entry.job,
            result=result,
            seconds=seconds,
            attempts=entry.failures + 1,
        )

    def record_error(
        self,
        entry: _Pending,
        error: JobError,
        metrics_delta: Optional[Dict] = None,
    ) -> None:
        self.metrics.merge(metrics_delta)
        timed_out = error.timed_out
        if timed_out:
            self.timeout_count += 1
        # `failures` already counts the final failed attempt (charged by
        # should_retry before landing here); the floor covers the rare
        # dispatch-side failures recorded without a retry decision.
        self.results[entry.index] = JobResult(
            index=entry.index,
            job=entry.job,
            error=error,
            attempts=max(1, entry.failures),
            timed_out=timed_out,
        )

    def should_retry(self, entry: _Pending, error: JobError) -> bool:
        """Consume one transient failure; True when the job has retry
        budget left and the failure class is retryable."""
        entry.failures += 1
        if error.transient and entry.failures <= self.retries:
            self.retry_count += 1
            return True
        return False

    def backoff(self, entry: _Pending) -> None:
        if self.retry_backoff > 0:
            time.sleep(self.retry_backoff * (2 ** min(entry.failures - 1, 6)))

    # -- serial execution --------------------------------------------------

    def run_serial(self, entries: List[_Pending]) -> None:
        """Execute ``entries`` in-process, honoring timeout and retries.

        ``KeyboardInterrupt`` propagates to :func:`compile_many`'s
        interrupt handler; everything else is captured per job.
        """
        registry = get_metrics()
        for entry in entries:
            while True:
                started = time.perf_counter()
                before = registry.snapshot()
                try:
                    with _alarm_guard(self.timeout, entry.job.label):
                        faults.fire("serial", entry.job.label)
                        result = entry.job.run()
                except KeyboardInterrupt:
                    raise
                except BaseException as error:
                    delta = MetricsRegistry.delta(before, registry.snapshot())
                    captured = JobError.from_exception(error)
                    if self.should_retry(entry, captured):
                        self.metrics.merge(delta)
                        self.backoff(entry)
                        continue
                    self.record_error(entry, captured, delta)
                else:
                    self.record_ok(
                        entry,
                        result,
                        time.perf_counter() - started,
                        MetricsRegistry.delta(before, registry.snapshot()),
                    )
                break


def compile_many(
    jobs: Iterable[JobLike],
    workers: Optional[int] = 1,
    cache: Optional[CompilationCache] = None,
    chunk_size: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    retry_backoff: float = 0.05,
    max_pool_restarts: int = 2,
) -> BatchReport:
    """Compile every job, optionally in parallel, with per-job errors.

    ``workers=1`` (the default) is fully serial and allocation-free;
    ``workers=None`` picks :func:`default_worker_count`.  Results are
    returned in submission order.  With a ``cache``, previously-compiled
    cells are served without compiling and fresh results are stored back.

    ``timeout`` bounds each job's wall-clock seconds (``None`` = no
    bound; forces chunk size 1 so one slow job cannot hide others'
    deadlines).  Transient failures are retried up to ``retries`` times
    with exponential ``retry_backoff``.  A broken worker pool is rebuilt
    up to ``max_pool_restarts`` times before the engine degrades to
    serial execution; the batch always returns a complete report.
    """
    started = time.perf_counter()
    job_list = _normalize(jobs)
    if workers is None:
        workers = default_worker_count()
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    if timeout is not None and timeout <= 0:
        raise ReproError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ReproError(f"retries must be >= 0, got {retries}")

    state = _Batch(job_list, cache, timeout, retries, retry_backoff)
    cache_before = cache.stats() if cache is not None else None
    pending: List[_Pending] = []
    for index, job in enumerate(job_list):
        key = job.cache_key() if cache is not None else None
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            state.results[index] = JobResult(
                index=index, job=job, result=cached, from_cache=True
            )
        else:
            pending.append(_Pending(index=index, job=job, key=key))

    serial_fallbacks = 0
    parallel: List[_Pending] = []
    serial: List[_Pending] = []
    if workers > 1 and len(pending) > 1:
        for entry in pending:
            if _picklable(entry.job):
                parallel.append(entry)
            else:
                serial.append(entry)
                serial_fallbacks += 1
    else:
        serial = pending

    used_chunk = 0
    try:
        if parallel:
            used_chunk = _pick_chunk_size(
                chunk_size, len(parallel), workers, timeout
            )
            leftovers = _run_pool_rounds(
                state, parallel, workers, used_chunk, max_pool_restarts
            )
            if leftovers:
                state.degraded_serial = True
                serial = serial + leftovers
        state.run_serial(serial)
    except KeyboardInterrupt:
        state.interrupted = True
        interrupt_error = JobError(
            exception_type="KeyboardInterrupt",
            message="batch interrupted before this job completed",
        )
        for index, job in enumerate(job_list):
            if state.results[index] is None:
                state.results[index] = JobResult(
                    index=index, job=job, error=interrupt_error
                )

    if any(entry is None for entry in state.results):
        raise ReproError("internal error: batch left unfilled job slots")
    cache_stats = None
    if cache is not None:
        lifetime = cache.stats()
        cache_stats = CompilationCache.stats_delta(cache_before, lifetime)
        cache_stats["lifetime"] = lifetime
        for name in CompilationCache.COUNTER_KEYS:
            state.metrics.inc(f"cache.{name}", cache_stats.get(name, 0))
    return BatchReport(
        results=state.results,
        workers=workers,
        wall_seconds=time.perf_counter() - started,
        cache_stats=cache_stats,
        metrics=state.metrics.snapshot(),
        serial_fallbacks=serial_fallbacks,
        chunk_size=used_chunk,
        retry_count=state.retry_count,
        timeout_count=state.timeout_count,
        pool_restarts=state.pool_restarts,
        degraded_serial=state.degraded_serial,
        interrupted=state.interrupted,
        timeout_unenforced=int(
            state.metrics.counter("batch.timeout_unenforced")
        ),
    )


def _pick_chunk_size(
    chunk_size: Optional[int],
    job_count: int,
    workers: int,
    timeout: Optional[float],
) -> int:
    """Adaptive chunking, except under a timeout where chunks must be
    single jobs (a chunk's deadline is only meaningful per job)."""
    if timeout is not None:
        return 1
    return chunk_size or max(1, job_count // (workers * 4) or 1)


def _run_pool_rounds(
    state: _Batch,
    entries: List[_Pending],
    workers: int,
    chunk_size: int,
    max_pool_restarts: int,
) -> List[_Pending]:
    """Drive pool execution rounds until every entry is recorded or
    deferred.  Returns entries that must finish serially (pool recovery
    exhausted, or a job suspected of repeatedly killing workers)."""
    queue: List[_Pending] = list(entries)
    leftovers: List[_Pending] = []
    while queue:
        if state.pool_restarts > max_pool_restarts:
            leftovers.extend(queue)
            return leftovers
        round_entries, queue = queue, []
        requeue, deferred = _run_one_pool(
            state, round_entries, workers, chunk_size
        )
        leftovers.extend(deferred)
        if requeue:
            # All requeued entries just consumed a transient failure;
            # back off once per round, scaled to the worst offender.
            state.backoff(max(requeue, key=lambda e: e.failures))
            queue = requeue
    return leftovers


def _run_one_pool(
    state: _Batch,
    entries: List[_Pending],
    workers: int,
    chunk_size: int,
) -> Tuple[List[_Pending], List[_Pending]]:
    """Execute ``entries`` on one pool instance.

    Returns ``(requeue, deferred)``: jobs to retry on a fresh pool and
    jobs that must not return to a pool (crash budget exhausted — they
    finish serially so a poison job cannot keep killing workers while
    innocents starve).
    """
    by_index = {entry.index: entry for entry in entries}
    chunks = [
        entries[i : i + chunk_size]
        for i in range(0, len(entries), chunk_size)
    ]
    requeue: List[_Pending] = []
    deferred: List[_Pending] = []
    broken = False
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        future_map = {}
        for position, chunk in enumerate(chunks):
            packed = pickle.dumps(
                (state.timeout, [(e.index, e.job) for e in chunk])
            )
            try:
                future_map[pool.submit(_execute_packed, packed)] = chunk
            except BrokenProcessPool:
                # A fast killer murdered its worker while we were still
                # submitting.  Everything not yet handed to the pool
                # never started, so it requeues blame-free; the chunks
                # already in flight are charged by the drain below.
                broken = True
                for unsent in chunks[position:]:
                    requeue.extend(unsent)
                break
        outstanding = set(future_map)
        while outstanding:
            budget = None
            if state.timeout is not None:
                # Worker-side alarms fire at `timeout`; give them
                # headroom before declaring the pool hard-hung.
                budget = state.timeout + max(1.0, state.timeout)
            done, _ = wait(
                outstanding, timeout=budget, return_when=FIRST_COMPLETED
            )
            if not done:
                # No worker made progress past every alarm deadline:
                # hard hang.  Reclaim the pool; unstarted jobs requeue
                # blame-free, running jobs are charged a timeout.
                _reclaim_hung_pool(
                    state, pool, outstanding, future_map, requeue
                )
                state.pool_restarts += 1
                return requeue, deferred
            for future in done:
                outstanding.discard(future)
                chunk = future_map.pop(future)
                try:
                    chunk_out = future.result()
                except BrokenProcessPool:
                    broken = True
                    _charge_crash(state, chunk, requeue, deferred)
                except KeyboardInterrupt:
                    raise
                except BaseException as error:
                    # Dispatch-side failure (e.g. result unpicklable at
                    # the chunk level): deterministic, record as-is.
                    captured = JobError.from_exception(error)
                    for entry in chunk:
                        state.record_error(entry, captured)
                else:
                    for index, status, payload, metrics_delta in chunk_out:
                        entry = by_index[index]
                        if status == "ok":
                            result = pickle.loads(payload)
                            state.record_ok(
                                entry,
                                result,
                                result.synthesis_seconds,
                                metrics_delta,
                            )
                            continue
                        captured = pickle.loads(payload)
                        if state.should_retry(entry, captured):
                            state.metrics.merge(metrics_delta)
                            requeue.append(entry)
                        else:
                            state.record_error(entry, captured, metrics_delta)
            if broken:
                # The pool poisons every remaining future once a worker
                # dies; drain them as crash victims and rebuild.
                for future in outstanding:
                    chunk = future_map.pop(future)
                    if future.cancel():
                        requeue.extend(chunk)  # never started: blame-free
                        continue
                    try:
                        chunk_out = future.result(timeout=5.0)
                    except Exception:
                        _charge_crash(state, chunk, requeue, deferred)
                        continue
                    # Raced to completion before the pool broke.
                    for index, status, payload, metrics_delta in chunk_out:
                        entry = by_index[index]
                        if status == "ok":
                            result = pickle.loads(payload)
                            state.record_ok(
                                entry,
                                result,
                                result.synthesis_seconds,
                                metrics_delta,
                            )
                        else:
                            captured = pickle.loads(payload)
                            if state.should_retry(entry, captured):
                                state.metrics.merge(metrics_delta)
                                requeue.append(entry)
                            else:
                                state.record_error(
                                    entry, captured, metrics_delta
                                )
                outstanding.clear()
                state.pool_restarts += 1
        return requeue, deferred
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _charge_crash(
    state: _Batch,
    chunk: List[_Pending],
    requeue: List[_Pending],
    deferred: List[_Pending],
) -> None:
    """A chunk was in flight when its worker died: charge each job one
    transient failure.  Within budget → retry on a fresh pool; beyond →
    defer to serial execution (the job may be the killer; rerunning it
    in a pool would just murder another worker)."""
    crash = JobError(
        exception_type="WorkerCrashError",
        message="worker process died while this job was in flight",
    )
    for entry in chunk:
        if state.should_retry(entry, crash):
            requeue.append(entry)
        else:
            deferred.append(entry)


def _reclaim_hung_pool(
    state: _Batch,
    pool: ProcessPoolExecutor,
    outstanding,
    future_map,
    requeue: List[_Pending],
) -> None:
    """Forcefully recover from a hard-hung pool (workers stuck where
    even ``SIGALRM`` cannot reach).  Cancellable futures requeue
    blame-free; the rest are charged a timeout."""
    timeout_error = JobError(
        exception_type="JobTimeoutError",
        message=(
            "worker hard-hung past the job timeout; "
            "pool reclaimed by the coordinator"
        ),
    )
    for future in list(outstanding):
        chunk = future_map.pop(future)
        if future.cancel():
            requeue.extend(chunk)
            continue
        for entry in chunk:
            if state.should_retry(entry, timeout_error):
                requeue.append(entry)
            else:
                state.record_error(entry, timeout_error)
    outstanding.clear()
    # Terminate the stuck worker processes so shutdown cannot block.
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _picklable(job: CompileJob) -> bool:
    try:
        pickle.dumps(job)
        return True
    except Exception:
        return False
