"""Deterministic fault injection for the batch engine's recovery paths.

Fault tolerance that is never exercised is fault tolerance that does not
work.  This module lets tests (and cautious operators) inject worker
faults *deterministically* through the environment, so the engine's
timeout, retry, broken-pool and serial-degradation paths are themselves
under test — the same philosophy as the compiler's own sabotage suite
(``tests/integration/test_failure_injection.py``), one layer up.

``REPRO_FAULT_INJECT`` holds a comma-separated list of fault specs::

    action:target[:limit]

* ``action`` — what to do when the fault fires:

  - ``kill``       exit the worker process immediately (``os._exit``);
                   in a serial/coordinator context this degrades to
                   raising :class:`FaultInjectedError` instead, so an
                   injected fault can never take down the coordinator.
  - ``hang``       sleep far past any timeout (interruptible by the
                   worker's alarm guard — exercises the *soft* timeout).
  - ``hang-hard``  block ``SIGALRM`` first, then sleep — the alarm guard
                   cannot fire, exercising the coordinator's hard-hang
                   backstop (pool reclaim).
  - ``flaky``      raise :class:`TransientJobError` (exercises retry).
  - ``interrupt``  raise ``KeyboardInterrupt`` (exercises Ctrl-C flush).
  - ``miscompile`` corrupt the mapper's output (drop the last CNOT) —
                   fired from :mod:`repro.backend.mapper`, this is the
                   seeded miscompile the differential fuzz harness must
                   catch and shrink.

* ``target`` — substring matched against the fault point's label (a job
  label such as ``bell@ibmqx4`` or a circuit name); ``*`` matches every
  label.

* ``limit`` — optional maximum number of firings.  Enforcing a limit
  across *processes* needs shared state: set
  ``REPRO_FAULT_INJECT_STATE`` to a directory and each firing claims one
  slot file atomically (``O_CREAT | O_EXCL``), so "kill the worker once,
  then succeed on retry" is expressible.  Without a state directory a
  limited spec counts firings per process.

Faults fire at named *points*: ``worker`` (inside a pool worker, before
the job runs), ``serial`` (the coordinator's in-process execution path)
and ``mapper`` (inside ``map_circuit``).  Process-lethal actions only
act literally at the ``worker`` point.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.exceptions import FaultInjectedError, ReproError

#: Environment variable holding the fault spec list.
FAULT_ENV = "REPRO_FAULT_INJECT"
#: Environment variable naming the shared firing-state directory.
FAULT_STATE_ENV = "REPRO_FAULT_INJECT_STATE"

_ACTIONS = frozenset(
    {"kill", "hang", "hang-hard", "flaky", "interrupt", "miscompile"}
)

#: Exit status of a worker deliberately killed by a ``kill`` fault, so a
#: test failure log is unambiguous about who pulled the trigger.
KILL_EXIT_STATUS = 86

#: Per-process firing counts for limited specs without a state directory.
_LOCAL_FIRINGS: Dict[str, int] = {}


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``action:target[:limit]`` clause."""

    action: str
    target: str
    limit: Optional[int] = None

    @property
    def key(self) -> str:
        return f"{self.action}:{self.target}"

    def matches(self, label: str) -> bool:
        return self.target == "*" or self.target in label


def parse_specs(text: str) -> List[FaultSpec]:
    """Parse a ``REPRO_FAULT_INJECT`` value; raises on malformed specs
    (silently ignoring a typo'd fault would un-test the recovery path)."""
    specs: List[FaultSpec] = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) == 2:
            action, target = parts
            limit = None
        elif len(parts) == 3:
            action, target = parts[:2]
            try:
                limit = int(parts[2])
            except ValueError:
                raise ReproError(f"bad fault-injection limit in {clause!r}")
            if limit < 1:
                raise ReproError(f"fault-injection limit must be >= 1: {clause!r}")
        else:
            raise ReproError(
                f"bad fault-injection spec {clause!r} "
                "(expected action:target[:limit])"
            )
        if action not in _ACTIONS:
            raise ReproError(
                f"unknown fault-injection action {action!r} "
                f"(known: {', '.join(sorted(_ACTIONS))})"
            )
        specs.append(FaultSpec(action=action, target=target, limit=limit))
    return specs


def active_specs() -> List[FaultSpec]:
    """The currently configured fault specs (empty when inactive)."""
    text = os.environ.get(FAULT_ENV, "")
    if not text:
        return []
    return parse_specs(text)


def injection_active() -> bool:
    return bool(os.environ.get(FAULT_ENV))


def _claim_firing(spec: FaultSpec) -> bool:
    """Atomically claim one firing slot for a limited spec.

    Returns False when the spec's fuse is blown (limit exhausted).
    Unlimited specs always fire.
    """
    if spec.limit is None:
        return True
    state_dir = os.environ.get(FAULT_STATE_ENV)
    if not state_dir:
        count = _LOCAL_FIRINGS.get(spec.key, 0)
        if count >= spec.limit:
            return False
        _LOCAL_FIRINGS[spec.key] = count + 1
        return True
    os.makedirs(state_dir, exist_ok=True)
    slug = spec.key.replace("*", "any").replace("/", "_").replace(":", "_")
    for slot in range(spec.limit):
        path = os.path.join(state_dir, f"{slug}.{slot}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.write(fd, str(os.getpid()).encode())
        os.close(fd)
        return True
    return False


def fire(point: str, label: str) -> bool:
    """Fire any matching fault at ``point`` for ``label``.

    Returns True when a ``miscompile`` fault matched (the caller — the
    mapper — performs the corruption itself); other actions either raise
    or never return.  No-op (False) when injection is inactive or no
    spec matches.
    """
    if not injection_active():
        return False
    for spec in active_specs():
        if spec.action == "miscompile":
            if point != "mapper" or not spec.matches(label):
                continue
        elif point == "mapper" or not spec.matches(label):
            continue
        if not _claim_firing(spec):
            continue
        if spec.action == "miscompile":
            return True
        _act(spec, point, label)
    return False


def _act(spec: FaultSpec, point: str, label: str) -> None:
    if spec.action == "kill":
        if point == "worker":
            os._exit(KILL_EXIT_STATUS)
        raise FaultInjectedError(
            f"injected kill fault for {label!r} (serial context)"
        )
    if spec.action == "hang":
        time.sleep(3600)
        raise FaultInjectedError(f"injected hang for {label!r} returned")
    if spec.action == "hang-hard":
        if point == "worker" and hasattr(signal, "pthread_sigmask"):
            signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
            time.sleep(3600)
            raise FaultInjectedError(f"injected hard hang for {label!r} returned")
        raise FaultInjectedError(
            f"injected hard hang for {label!r} (serial context)"
        )
    if spec.action == "flaky":
        raise FaultInjectedError(f"injected transient failure for {label!r}")
    if spec.action == "interrupt":
        raise KeyboardInterrupt(f"injected interrupt for {label!r}")
    raise ReproError(f"unhandled fault action {spec.action!r}")
