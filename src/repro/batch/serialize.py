"""JSON-safe (de)serialization of circuits and compilation results.

The on-disk tier of the batch compilation cache (:mod:`repro.batch.cache`)
persists one JSON document per cached cell.  The document stores the full
gate cascades — not just metrics — so a cache hit reconstructs a
:class:`~repro.compiler.CompilationResult` whose QASM output is
byte-identical to what a fresh compilation would have produced.

Devices are stored by *name* and resolved through the device registry on
load; a payload referencing an unregistered device fails to deserialize
(the cache treats that as a miss and recompiles).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.diagnostics import DiagnosticReport
from ..compiler import CompilationResult
from ..core.circuit import QuantumCircuit
from ..core.cost import CircuitMetrics
from ..core.gates import intern_gate
from ..devices.device import get_device
from ..verify.equivalence import VerificationReport

#: Schema version of cache payloads.  Bump on any incompatible change so
#: stale cache files read as misses instead of mis-deserializing.
#: v2: added the ``diagnostics`` list (stage-contract findings).
#: v3: added the optional ``trace`` span summary (see
#: :mod:`repro.obs.trace`), so a profiled compile survives the cache.
#: v4: added the optional ``dataflow`` facts dict (known-zero wires,
#: constant-propagation stats, exit basis facts).
#: v5: added the routing metadata (``route`` strategy and the
#: ``output_permutation`` left by dynamic-layout routing) — without it
#: a cached sabre result would replay as an unpermuted circuit.
PAYLOAD_VERSION = 5


def circuit_to_payload(circuit: QuantumCircuit) -> Dict:
    """Encode ``circuit`` as JSON-safe primitives."""
    return {
        "num_qubits": circuit.num_qubits,
        "name": circuit.name,
        "gates": [
            [gate.name, list(gate.qubits), list(gate.params)]
            for gate in circuit
        ],
    }


def circuit_from_payload(payload: Dict) -> QuantumCircuit:
    """Rebuild a circuit encoded by :func:`circuit_to_payload`."""
    gates = [
        intern_gate(name, tuple(qubits), tuple(params))
        for name, qubits, params in payload["gates"]
    ]
    return QuantumCircuit(
        payload["num_qubits"], gates, name=payload.get("name", "")
    )


def _metrics_to_payload(metrics: CircuitMetrics) -> Dict:
    return {
        "t_count": metrics.t_count,
        "gate_volume": metrics.gate_volume,
        "cost": metrics.cost,
    }


def _metrics_from_payload(payload: Dict) -> CircuitMetrics:
    return CircuitMetrics(
        t_count=payload["t_count"],
        gate_volume=payload["gate_volume"],
        cost=payload["cost"],
    )


def result_to_payload(result: CompilationResult) -> Dict:
    """Encode a full compilation result as JSON-safe primitives."""
    verification = None
    if result.verification is not None:
        verification = {
            "method": result.verification.method,
            "equivalent": result.verification.equivalent,
            "detail": result.verification.detail,
        }
    return {
        "version": PAYLOAD_VERSION,
        "device": result.device.name,
        "original": circuit_to_payload(result.original),
        "unoptimized": circuit_to_payload(result.unoptimized),
        "optimized": circuit_to_payload(result.optimized),
        "unoptimized_metrics": _metrics_to_payload(result.unoptimized_metrics),
        "optimized_metrics": _metrics_to_payload(result.optimized_metrics),
        "verification": verification,
        "synthesis_seconds": result.synthesis_seconds,
        "placement": {str(k): v for k, v in result.placement.items()},
        "output_permutation": {
            str(k): v for k, v in result.output_permutation.items()
        },
        "route": result.route,
        "diagnostics": result.diagnostics.to_payload(),
        "trace": result.trace,
        "dataflow": result.dataflow,
    }


def result_from_payload(payload: Dict) -> Optional[CompilationResult]:
    """Rebuild a compilation result; ``None`` if the payload is from an
    incompatible schema version."""
    if payload.get("version") != PAYLOAD_VERSION:
        return None
    verification = None
    if payload.get("verification") is not None:
        verification = VerificationReport(
            method=payload["verification"]["method"],
            equivalent=payload["verification"]["equivalent"],
            detail=payload["verification"].get("detail", ""),
        )
    return CompilationResult(
        original=circuit_from_payload(payload["original"]),
        device=get_device(payload["device"]),
        unoptimized=circuit_from_payload(payload["unoptimized"]),
        optimized=circuit_from_payload(payload["optimized"]),
        unoptimized_metrics=_metrics_from_payload(payload["unoptimized_metrics"]),
        optimized_metrics=_metrics_from_payload(payload["optimized_metrics"]),
        verification=verification,
        synthesis_seconds=payload["synthesis_seconds"],
        placement={int(k): v for k, v in payload.get("placement", {}).items()},
        output_permutation={
            int(k): v
            for k, v in payload.get("output_permutation", {}).items()
        },
        route=payload.get("route", "ctr"),
        diagnostics=DiagnosticReport.from_payload(
            payload.get("diagnostics", ())
        ),
        trace=payload.get("trace"),
        dataflow=payload.get("dataflow"),
    )
