"""Content-addressed compilation cache (in-memory LRU + optional disk).

A cache key addresses one compilation *cell* by content, not identity:

* the circuit **fingerprint** (SHA-256 over width and the exact gate
  cascade, :meth:`~repro.core.circuit.QuantumCircuit.fingerprint`);
* the **device identity** (name, width, gate set, and the device's
  annotated cost function);
* the **cost-function identity** of any explicit override;
* every compile **option** that can change the output (optimize flag,
  verify method and strategy, placement, MCX lowering mode, sample
  count).

Two grid cells with the same key provably run the identical compilation,
so the second one is served from cache — the paper's Tables 3 vs 4 and
5 vs 6 reuse the same compilations, as do repeated benchmark runs.

Jobs whose cost function carries an opaque ``custom`` callable have no
stable content identity and are **never cached** (``cache_key`` returns
``None``); they always compile fresh.

Tiers: an in-memory LRU (default 512 entries) backed by an optional
on-disk JSON store (default directory ``.repro_cache/``).  Disk entries
are sharded two-level (``ab/abcdef....json``) and survive processes, so
a second benchmark run starts warm.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional

from ..compiler import CompilationResult
from ..core.circuit import QuantumCircuit
from ..core.cost import CostFunction
from ..devices.device import Device
from .serialize import result_from_payload, result_to_payload

#: Default on-disk store location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Age beyond which an orphaned ``*.tmp.<pid>`` file is removed even if
#: its pid appears alive (pid reuse makes liveness alone unreliable).
STALE_TEMP_SECONDS = 3600.0


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; unknown/forbidden pids read as alive
    so the sweep stays conservative."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OverflowError, OSError):
        return True
    return True


def cost_function_identity(cost_function: Optional[CostFunction]) -> Optional[str]:
    """A stable string identity for ``cost_function``.

    Returns ``None`` when the function has no content identity (an opaque
    ``custom`` callable) — such jobs must not be cached.
    """
    if cost_function is None:
        return "default"
    if cost_function.custom is not None:
        return None
    weights = ";".join(
        f"{name}={weight!r}"
        for name, weight in sorted(cost_function.extra_weights.items())
    )
    return f"{cost_function.name}|{cost_function.base_weight!r}|{weights}"


def device_identity(device: Device) -> Optional[str]:
    """Device part of the cache key: name, width, library, cost function."""
    cost_id = cost_function_identity(device.cost_function)
    if cost_id is None:
        return None
    return "{}|{}|{}|{}".format(
        device.name, device.num_qubits, ",".join(device.gate_set), cost_id
    )


def job_cache_key(
    circuit: QuantumCircuit, device: Device, options: Dict
) -> Optional[str]:
    """Content-address one compilation, or ``None`` if uncacheable.

    ``options`` are the keyword arguments handed to
    :func:`repro.compiler.compile_circuit`.
    """
    dev_id = device_identity(device)
    if dev_id is None:
        return None
    cost_id = cost_function_identity(options.get("cost_function"))
    if cost_id is None:
        return None
    placement = options.get("placement")
    if isinstance(placement, dict):
        placement_id = ",".join(
            f"{k}:{v}" for k, v in sorted(placement.items())
        )
    else:
        placement_id = str(placement)
    parts = (
        circuit.fingerprint(),
        dev_id,
        cost_id,
        f"optimize={options.get('optimize', True)}",
        f"verify={options.get('verify', True)}",
        f"placement={placement_id}",
        f"mcx_mode={options.get('mcx_mode', 'barenco')}",
        f"verify_samples={options.get('verify_samples', 32)}",
        f"verify_strategy={options.get('verify_strategy', 'miter')}",
        "known_zero={}".format(
            ",".join(map(str, sorted(options.get("known_zero", ()) or ())))
        ),
        f"route={options.get('route', 'ctr')}",
        f"restore_layout={options.get('restore_layout', False)}",
    )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class CompilationCache:
    """Two-tier (memory LRU + optional disk) store of compilation results.

    Thread-/process-safety model: the cache is **thread-safe** — an
    :class:`~threading.RLock` guards the memory ``OrderedDict`` and
    every counter, so a threaded coordinator (``repro serve``) can share
    one warm cache across concurrent requests without losing entries or
    corrupting the LRU order.  Disk I/O happens *outside* the lock
    (reads and writes never serialize each other); disk writes go
    through a temp-file rename so concurrent writers — threads or whole
    processes sharing one directory — at worst recompute.
    """

    #: Disk stores between amortized eviction sweeps (when
    #: ``max_disk_entries`` is set).  Over-budget detection does not
    #: wait for this: the observed on-disk count is extrapolated per
    #: write and a sweep triggers as soon as it crosses the cap.
    _EVICT_EVERY = 32

    def __init__(
        self,
        max_entries: int = 512,
        directory: Optional[str] = None,
        max_disk_entries: Optional[int] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_disk_entries is not None and max_disk_entries < 1:
            raise ValueError("max_disk_entries must be positive")
        self.max_entries = max_entries
        self.directory = directory
        self.max_disk_entries = max_disk_entries
        self._memory: "OrderedDict[str, CompilationResult]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.stores = 0
        self.disk_writes = 0
        self.disk_evictions = 0
        #: On-disk entry count at the last observation (glob), plus the
        #: writes this instance has made since — the estimate that
        #: triggers an eviction sweep the moment the cap is crossed.
        self._disk_observed = 0
        self._writes_since_observe = 0
        self.temp_files_swept = self._sweep_stale_temps()
        if self.max_disk_entries is not None:
            self._evict_disk()

    # -- lookup ------------------------------------------------------------

    def get(self, key: Optional[str]) -> Optional[CompilationResult]:
        """Cached result for ``key``, or ``None`` (miss / uncacheable)."""
        if key is None:
            return None
        with self._lock:
            result = self._memory.get(key)
            if result is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                self.memory_hits += 1
                return result
        result = self._disk_get(key)  # I/O outside the lock
        with self._lock:
            if result is not None:
                self.hits += 1
                self.disk_hits += 1
                self._memory_put(key, result)
                return result
            self.misses += 1
            return None

    def put(self, key: Optional[str], result: CompilationResult) -> None:
        """Store ``result`` under ``key`` in every tier (no-op if ``key``
        is ``None``)."""
        if key is None:
            return
        with self._lock:
            self.stores += 1
            self._memory_put(key, result)
        self._disk_put(key, result)

    def __contains__(self, key: Optional[str]) -> bool:
        """True iff :meth:`get` would return a result for ``key``.

        Membership agrees with *readability*: a disk path whose payload
        is truncated, corrupt, or from an incompatible schema version is
        not a member, exactly as :meth:`get` would treat it as a miss.
        (An earlier version answered ``os.path.exists``, which said
        ``True`` for entries ``get`` could never return.)  Probing does
        not touch the hit/miss counters or the LRU order.
        """
        if key is None:
            return False
        with self._lock:
            if key in self._memory:
                return True
        return self._disk_get(key) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # -- memory tier -------------------------------------------------------

    def _memory_put(self, key: str, result: CompilationResult) -> None:
        with self._lock:
            self._memory[key] = result
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)

    # -- disk tier ---------------------------------------------------------

    def _sweep_stale_temps(self) -> int:
        """Remove orphaned ``<key>.json.tmp.<pid>`` files left behind by
        a process that crashed mid-write (the ``os.replace`` in
        :meth:`_disk_put` never ran).

        A temp file is stale when its writer pid is dead, or when it is
        older than :data:`STALE_TEMP_SECONDS` (pid reuse guard).  The
        sweep is concurrency-safe: a racing writer's fresh temp file has
        a live pid and recent mtime so it is left alone, and racing
        sweepers tolerate files vanishing underneath them.
        """
        if not self.directory or not os.path.isdir(self.directory):
            return 0
        removed = 0
        own_pid = os.getpid()
        now = time.time()
        pattern = os.path.join(glob.escape(self.directory), "*", "*.tmp.*")
        for path in glob.glob(pattern):
            suffix = path.rsplit(".tmp.", 1)[-1]
            try:
                pid = int(suffix)
            except ValueError:
                pid = None
            try:
                age = now - os.stat(path).st_mtime
            except OSError:
                continue  # vanished under a concurrent sweeper
            stale = age > STALE_TEMP_SECONDS or (
                pid is not None and pid != own_pid and not _pid_alive(pid)
            )
            if not stale:
                continue
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass  # already reclaimed by a concurrent sweeper
        return removed

    def _path(self, key: str) -> str:
        directory = self.directory or ""
        return os.path.join(directory, key[:2], f"{key}.json")

    def _disk_get(self, key: str) -> Optional[CompilationResult]:
        if not self.directory:
            return None
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            return result_from_payload(payload)
        except (OSError, ValueError, KeyError):
            return None

    def _disk_put(self, key: str, result: CompilationResult) -> None:
        if not self.directory:
            return
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            temp = f"{path}.tmp.{os.getpid()}"
            with open(temp, "w") as handle:
                json.dump(result_to_payload(result), handle)
            os.replace(temp, path)
        except OSError:
            return  # a full/read-only disk degrades to memory-only caching
        with self._lock:
            self.disk_writes += 1
            self._writes_since_observe += 1
            if self.max_disk_entries is None:
                return
            # Extrapolate the on-disk count from the last observation
            # plus our own writes since (overwrites of an existing key
            # overcount, which merely refreshes the observation early).
            # Sweep the moment the estimate crosses the cap — the old
            # ``disk_writes % _EVICT_EVERY`` amortization was
            # per-process, so N concurrent writers sharing a directory
            # could overshoot the budget by ~N×_EVICT_EVERY before any
            # of them swept.  The periodic sweep is kept to re-observe
            # what *other* writers have been adding.
            over_budget = (
                self._disk_observed + self._writes_since_observe
                > self.max_disk_entries
            )
            if over_budget or self._writes_since_observe >= self._EVICT_EVERY:
                self._evict_disk()

    def _disk_paths(self) -> list:
        if not self.directory or not os.path.isdir(self.directory):
            return []
        pattern = os.path.join(glob.escape(self.directory), "*", "*.json")
        return glob.glob(pattern)

    def _evict_disk(self) -> None:
        """Trim the disk tier to ``max_disk_entries``, oldest-mtime
        first, from the *observed* on-disk count (a fresh glob, so
        entries written by concurrent threads, caches, or processes
        sharing the directory are seen and counted against the budget).
        Runs at open, whenever the extrapolated count crosses the cap,
        and every :data:`_EVICT_EVERY` stores as a staleness backstop.
        """
        with self._lock:
            paths = self._disk_paths()
            excess = len(paths) - (self.max_disk_entries or 0)
            removed = 0
            if excess > 0:
                def mtime(path):
                    try:
                        return os.stat(path).st_mtime
                    except OSError:
                        return 0.0
                for path in sorted(paths, key=mtime)[:excess]:
                    try:
                        os.remove(path)
                        removed += 1
                        self.disk_evictions += 1
                    except OSError:
                        pass  # concurrent eviction/read; tier stays usable
            self._disk_observed = len(paths) - removed
            self._writes_since_observe = 0

    # -- reporting ---------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when no lookups)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    #: The monotonically-accumulating keys of :meth:`stats` — the ones
    #: :meth:`stats_delta` subtracts.  Everything else is a level or a
    #: configuration flag and passes through from the later snapshot.
    COUNTER_KEYS = (
        "hits",
        "misses",
        "memory_hits",
        "disk_hits",
        "stores",
        "disk_writes",
        "disk_evictions",
    )

    def stats(self) -> Dict[str, object]:
        """Lifetime counters snapshot for logs and ``BENCH_runtime.json``.

        ``disk_enabled`` reports the *configured* state (a directory was
        given), independent of whether the lazily-created directory
        exists yet; ``disk_opened`` reports whether it actually exists
        on disk right now.  For a single batch's share of these
        counters, use :meth:`stats_delta` (what
        :attr:`repro.batch.BatchReport.cache_stats` reports).

        The snapshot is taken under the cache lock, so concurrent
        threads always see a consistent set of counters (hits + misses
        equals the lookups made so far, never a torn intermediate).
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "stores": self.stores,
                "hit_rate": round(self.hit_rate, 4),
                "memory_entries": len(self._memory),
                "disk_enabled": bool(self.directory),
                "disk_opened": bool(
                    self.directory and os.path.isdir(self.directory)
                ),
                "disk_entries": len(self._disk_paths()),
                "disk_writes": self.disk_writes,
                "disk_evictions": self.disk_evictions,
                "temp_files_swept": self.temp_files_swept,
                "orphans_swept": self.temp_files_swept,
            }

    def to_dict(self) -> Dict[str, object]:
        """Alias of :meth:`stats` (the JSON-facing name)."""
        return self.stats()

    @classmethod
    def stats_delta(
        cls, before: Optional[Dict], after: Dict
    ) -> Dict[str, object]:
        """What one run contributed: counter keys are subtracted
        (``after - before``), levels and flags pass through from
        ``after``, and ``hit_rate`` is recomputed over the delta — so a
        warm second batch honestly reports its own 100% hit rate instead
        of averaging against history."""
        delta = dict(after)
        if before:
            for key in cls.COUNTER_KEYS:
                delta[key] = after.get(key, 0) - before.get(key, 0)
        lookups = delta.get("hits", 0) + delta.get("misses", 0)
        delta["hit_rate"] = (
            round(delta.get("hits", 0) / lookups, 4) if lookups else 0.0
        )
        return delta
