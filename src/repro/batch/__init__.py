"""Batch compilation engine: parallel fan-out + content-addressed cache.

Quickstart::

    from repro.batch import CompilationCache, compile_many

    cache = CompilationCache(directory=".repro_cache")
    report = compile_many(
        [(circuit, "ibmqx4"), (circuit, "ibmqx5", {"verify": False})],
        workers=4,
        cache=cache,
    )
    for entry in report:          # submission order, always
        if entry.ok:
            print(entry.job.label, entry.result.optimized_metrics)
        else:
            print(entry.job.label, "failed:", entry.error)

See :mod:`repro.batch.engine` for the execution model and
:mod:`repro.batch.cache` for what the cache key covers.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    CompilationCache,
    cost_function_identity,
    device_identity,
    job_cache_key,
)
from .engine import (
    TRANSIENT_ERROR_TYPES,
    BatchReport,
    CompileJob,
    JobError,
    JobResult,
    compile_many,
    default_worker_count,
)
from .serialize import (
    circuit_from_payload,
    circuit_to_payload,
    result_from_payload,
    result_to_payload,
)

__all__ = [
    "BatchReport",
    "CompilationCache",
    "CompileJob",
    "DEFAULT_CACHE_DIR",
    "JobError",
    "JobResult",
    "TRANSIENT_ERROR_TYPES",
    "circuit_from_payload",
    "circuit_to_payload",
    "compile_many",
    "cost_function_identity",
    "default_worker_count",
    "device_identity",
    "job_cache_key",
    "result_from_payload",
    "result_to_payload",
]
