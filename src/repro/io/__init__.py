"""Circuit and function file formats: QASM 2.0, .qc, .real, PLA/ESOP."""

import os

from ..core.circuit import QuantumCircuit
from ..core.exceptions import ParseError
from .qasm import parse_qasm, read_qasm, to_qasm, write_qasm
from .qc import parse_qc, read_qc, to_qc, write_qc
from .real_fmt import parse_real, read_real, to_real, write_real
from .pla import Cube, CubeList, parse_pla, read_pla, to_pla


def read_circuit(path: str, name: str = "") -> QuantumCircuit:
    """Load a circuit, dispatching on extension (.qasm, .qc, .real) —
    the multi-format input stage of the tool's front door (Fig. 2)."""
    ext = os.path.splitext(path)[1].lower()
    if ext == ".qasm":
        return read_qasm(path, name=name)
    if ext == ".qc":
        return read_qc(path, name=name)
    if ext == ".real":
        return read_real(path, name=name)
    raise ParseError(f"unknown circuit format {ext!r} (expected .qasm/.qc/.real)")


__all__ = [
    "read_circuit",
    "parse_qasm",
    "read_qasm",
    "to_qasm",
    "write_qasm",
    "parse_qc",
    "read_qc",
    "to_qc",
    "write_qc",
    "parse_real",
    "read_real",
    "to_real",
    "write_real",
    "Cube",
    "CubeList",
    "parse_pla",
    "read_pla",
    "to_pla",
]
