"""PLA / ESOP cube-list format (Berkeley espresso style).

The classical front-end of the compiler (Fig. 2) accepts switching
functions as minimized ESOP cube lists — the input representation of the
Fazel-Thornton cascade generator [ref 1].  The format::

    .i 3
    .o 2
    .type esop
    1-0 10
    011 01
    .e

Each row is a cube: input literals (``0`` negative, ``1`` positive,
``-`` absent) and, per output, whether the cube feeds that output.  With
``.type esop`` the outputs are exclusive-or sums of their cubes; other
``.type`` values (or none) are treated as inclusive OR of *disjoint*
cubes, which the front-end converts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.exceptions import ParseError


class Cube:
    """One product term: per-variable literal in {0, 1, None=absent}."""

    __slots__ = ("literals",)

    def __init__(self, literals: Tuple[Optional[int], ...]):
        self.literals = tuple(literals)

    @classmethod
    def from_string(
        cls, text: str, filename: Optional[str] = None,
        line: Optional[int] = None,
    ) -> "Cube":
        mapping = {"0": 0, "1": 1, "-": None, "~": None}
        try:
            return cls(tuple(mapping[ch] for ch in text))
        except KeyError as exc:
            raise ParseError(
                f"bad cube character {exc.args[0]!r} in {text!r}",
                filename, line, code="REPRO605",
            )

    @property
    def num_vars(self) -> int:
        return len(self.literals)

    def covers(self, assignment: int) -> bool:
        """True if the cube evaluates to 1 on ``assignment`` (bit i of the
        assignment = variable i, variable 0 as MSB)."""
        n = len(self.literals)
        for position, literal in enumerate(self.literals):
            if literal is None:
                continue
            bit = (assignment >> (n - 1 - position)) & 1
            if bit != literal:
                return False
        return True

    @property
    def care_count(self) -> int:
        """Number of bound literals (cube 'degree')."""
        return sum(1 for literal in self.literals if literal is not None)

    def __str__(self) -> str:
        return "".join(
            "-" if lit is None else str(lit) for lit in self.literals
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, Cube) and self.literals == other.literals

    def __hash__(self):
        return hash(self.literals)


class CubeList:
    """A multi-output ESOP: cubes paired with output masks."""

    def __init__(self, num_inputs: int, num_outputs: int,
                 rows: Optional[List[Tuple[Cube, int]]] = None):
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.rows: List[Tuple[Cube, int]] = list(rows or [])

    def add(self, cube: Cube, output_mask: int) -> None:
        """Append a cube feeding the outputs set in ``output_mask``
        (bit 0 = output 0)."""
        if cube.num_vars != self.num_inputs:
            raise ParseError("cube width mismatch", code="REPRO606")
        self.rows.append((cube, output_mask))

    def evaluate(self, assignment: int) -> int:
        """Output bit-vector for one input assignment (ESOP semantics)."""
        result = 0
        for cube, mask in self.rows:
            if cube.covers(assignment):
                result ^= mask
        return result

    def cubes_for_output(self, output: int) -> List[Cube]:
        """All cubes feeding a given output index."""
        return [cube for cube, mask in self.rows if mask & (1 << output)]

    def __len__(self) -> int:
        return len(self.rows)


def parse_pla(text: str, filename: Optional[str] = None) -> CubeList:
    """Parse espresso-style PLA/ESOP text into a :class:`CubeList`."""
    num_inputs = num_outputs = None
    esop = False
    rows: List[Tuple[Cube, int]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            directive, _, rest = line.partition(" ")
            directive = directive.lower()
            if directive in (".i", ".o"):
                try:
                    count = int(rest)
                except ValueError:
                    raise ParseError(
                        f"{directive} expects an integer, got {rest!r}",
                        filename,
                        line_no,
                        code="REPRO605",
                    )
                if count < 0:
                    raise ParseError(
                        f"{directive} must be non-negative", filename,
                        line_no, code="REPRO605",
                    )
                if directive == ".i":
                    num_inputs = count
                else:
                    num_outputs = count
            elif directive == ".type":
                esop = rest.strip().lower() == "esop"
            elif directive == ".e":
                break
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ParseError(f"bad PLA row {line!r}", filename, line_no,
                             code="REPRO604")
        if num_inputs is None or num_outputs is None:
            raise ParseError(".i/.o must precede cube rows", filename, line_no,
                             code="REPRO604")
        cube = Cube.from_string(parts[0], filename, line_no)
        if cube.num_vars != num_inputs:
            raise ParseError(
                f"cube {parts[0]!r} has {cube.num_vars} literals, expected "
                f"{num_inputs}",
                filename,
                line_no,
                code="REPRO606",
            )
        mask = 0
        for position, ch in enumerate(parts[1]):
            if ch == "1":
                mask |= 1 << position
            elif ch not in "0-~":
                raise ParseError(f"bad output character {ch!r}", filename,
                                 line_no, code="REPRO605")
        rows.append((cube, mask))
    if num_inputs is None or num_outputs is None:
        raise ParseError("missing .i/.o declarations", filename,
                         code="REPRO606")
    cubelist = CubeList(num_inputs, num_outputs, rows)
    # Non-ESOP PLAs are sums of cubes; we accept them only when the cubes
    # are pairwise disjoint per output (then OR == XOR and ESOP semantics
    # coincide).  Checking all pairs is cheap for benchmark-sized PLAs.
    if not esop:
        _require_disjoint(cubelist, filename)
    return cubelist


def _require_disjoint(cubelist: CubeList, filename) -> None:
    for output in range(cubelist.num_outputs):
        cubes = cubelist.cubes_for_output(output)
        for i in range(len(cubes)):
            for j in range(i + 1, len(cubes)):
                if _intersect(cubes[i], cubes[j]):
                    raise ParseError(
                        "PLA is not .type esop and cubes overlap; minimize "
                        "to an ESOP (or disjoint SOP) first",
                        filename,
                        code="REPRO606",
                    )


def _intersect(a: Cube, b: Cube) -> bool:
    return all(
        la is None or lb is None or la == lb
        for la, lb in zip(a.literals, b.literals)
    )


def read_pla(path: str) -> CubeList:
    """Parse a ``.pla``/``.esop`` file."""
    with open(path) as handle:
        return parse_pla(handle.read(), filename=path)


def to_pla(cubelist: CubeList, esop: bool = True) -> str:
    """Emit espresso-style text for ``cubelist``."""
    lines = [f".i {cubelist.num_inputs}", f".o {cubelist.num_outputs}"]
    if esop:
        lines.append(".type esop")
    for cube, mask in cubelist.rows:
        bits = "".join(
            "1" if mask & (1 << o) else "0" for o in range(cubelist.num_outputs)
        )
        lines.append(f"{cube} {bits}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
