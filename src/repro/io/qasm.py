"""OpenQASM 2.0 reader and writer.

The compiler's final output is "the final implementation-specific quantum
circuit represented as Quantum Assembly Language, or QASM, code"
(Section 4, Fig. 2).  This module emits OpenQASM 2.0 for any circuit in
the IR and parses the subset of QASM that the IR can represent:

* ``qreg``/``creg`` declarations (multiple qregs are concatenated),
* the gates ``id x y z h s sdg t tdg cx cz swap ccx``,
* ``measure`` and ``barrier`` statements (recorded or skipped),
* ``//`` comments and the ``OPENQASM``/``include`` headers.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..core.circuit import QuantumCircuit
from ..core.exceptions import ParseError
from ..core.exceptions import CircuitError
from ..core.gates import Gate


def _build_gate(name, operands, params, filename, line_no):
    """Construct a gate, converting IR validation errors (bad arity,
    duplicate operands, ...) into located ParseErrors."""
    try:
        return Gate(name, tuple(operands), tuple(params))
    except CircuitError as error:
        raise ParseError(str(error), filename, line_no, code="REPRO607")

#: QASM gate name -> IR gate name.
_QASM_TO_IR = {
    "id": "I",
    "x": "X",
    "y": "Y",
    "z": "Z",
    "h": "H",
    "s": "S",
    "sdg": "SDG",
    "t": "T",
    "tdg": "TDG",
    "cx": "CNOT",
    "cz": "CZ",
    "swap": "SWAP",
    "ccx": "TOFFOLI",
}

#: IR gate name -> QASM gate name.
_IR_TO_QASM = {ir: qasm for qasm, ir in _QASM_TO_IR.items()}

#: Parametric QASM gates -> IR rotations (u1 is the phase-rotation alias).
_QASM_PARAMETRIC = {"rz": "RZ", "u1": "RZ", "rx": "RX", "ry": "RY"}
_IR_PARAMETRIC = {"RZ": "rz", "RX": "rx", "RY": "ry"}

_TOKEN_RE = re.compile(r"(\w+)\s*\[\s*(\d+)\s*\]")
_PARAM_CALL_RE = re.compile(r"(\w+)\s*\(([^)]*)\)\s*(.*)")


def _eval_angle(text: str, filename, line_no) -> float:
    """Evaluate a QASM angle expression: numbers, ``pi``, + - * / and
    parentheses (e.g. ``pi/2``, ``-3*pi/4``, ``0.25``)."""
    import ast
    import math

    try:
        tree = ast.parse(text.strip(), mode="eval")
    except SyntaxError:
        raise ParseError(f"bad angle expression {text!r}", filename, line_no,
                         code="REPRO605")

    def walk(node):
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name) and node.id == "pi":
            return math.pi
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            value = walk(node.operand)
            return -value if isinstance(node.op, ast.USub) else value
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
        ):
            left, right = walk(node.left), walk(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            return left / right
        raise ParseError(f"unsupported angle expression {text!r}", filename,
                             line_no, code="REPRO605")

    return walk(tree)


def parse_qasm(text: str, name: str = "", filename: Optional[str] = None) -> QuantumCircuit:
    """Parse OpenQASM 2.0 source into a circuit.

    Measurements are dropped (the IR models the unitary part); unknown
    gates raise :class:`ParseError`.
    """
    registers: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
    total_qubits = 0
    gates: List[Gate] = []

    def qubit_of(token: str, line_no: int) -> int:
        match = _TOKEN_RE.fullmatch(token.strip())
        if not match:
            raise ParseError(f"bad qubit reference {token!r}", filename, line_no,
                             code="REPRO604")
        reg, index = match.group(1), int(match.group(2))
        if reg not in registers:
            raise ParseError(f"unknown register {reg!r}", filename, line_no,
                             code="REPRO601")
        offset, size = registers[reg]
        if index >= size:
            raise ParseError(
                f"index {index} out of range for register {reg!r}", filename,
                line_no, code="REPRO601",
            )
        return offset + index

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//", 1)[0].strip()
        if not line:
            continue
        for statement in filter(None, (s.strip() for s in line.split(";"))):
            lowered = statement.lower()
            if lowered.startswith("openqasm") or lowered.startswith("include"):
                continue
            if lowered.startswith("creg") or lowered.startswith("barrier"):
                continue
            if lowered.startswith("measure"):
                continue
            if lowered.startswith("qreg"):
                match = _TOKEN_RE.search(statement)
                if not match:
                    raise ParseError("bad qreg declaration", filename, line_no,
                                     code="REPRO604")
                reg, size = match.group(1), int(match.group(2))
                if reg in registers:
                    raise ParseError(f"register {reg!r} redefined", filename,
                                     line_no, code="REPRO602")
                registers[reg] = (total_qubits, size)
                total_qubits += size
                continue
            call = _PARAM_CALL_RE.match(statement)
            if call and call.group(1).lower() in _QASM_PARAMETRIC:
                mnemonic = call.group(1).lower()
                angle = _eval_angle(call.group(2), filename, line_no)
                operand_text = call.group(3)
                if not operand_text.strip():
                    raise ParseError(
                        f"gate {mnemonic!r} missing operands", filename,
                        line_no, code="REPRO604",
                    )
                operands = [qubit_of(tok, line_no) for tok in operand_text.split(",")]
                gates.append(
                    _build_gate(
                        _QASM_PARAMETRIC[mnemonic], operands, (angle,),
                        filename, line_no,
                    )
                )
                continue
            parts = statement.split(None, 1)
            mnemonic = parts[0].lower()
            if mnemonic not in _QASM_TO_IR:
                raise ParseError(f"unsupported gate {mnemonic!r}", filename, line_no,
                                 code="REPRO603")
            if len(parts) < 2:
                raise ParseError(f"gate {mnemonic!r} missing operands", filename,
                                 line_no, code="REPRO604")
            operands = [qubit_of(tok, line_no) for tok in parts[1].split(",")]
            gates.append(_build_gate(_QASM_TO_IR[mnemonic], operands, (),
                                     filename, line_no))

    circuit = QuantumCircuit(total_qubits, name=name)
    circuit.extend(gates)
    return circuit


def read_qasm(path: str, name: str = "") -> QuantumCircuit:
    """Parse a ``.qasm`` file."""
    with open(path) as handle:
        return parse_qasm(handle.read(), name=name or _stem(path), filename=path)


def to_qasm(
    circuit: QuantumCircuit,
    register: str = "q",
    include_measure: bool = False,
) -> str:
    """Emit OpenQASM 2.0 for ``circuit``.

    MCX gates have no single QASM 2.0 mnemonic; lower them first
    (:func:`repro.backend.lower_mcx_gates`) or they raise here.
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg {register}[{circuit.num_qubits}];",
    ]
    if include_measure:
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit:
        operands = ", ".join(f"{register}[{q}]" for q in gate.qubits)
        if gate.name in _IR_PARAMETRIC:
            lines.append(
                f"{_IR_PARAMETRIC[gate.name]}({gate.params[0]!r}) {operands};"
            )
            continue
        mnemonic = _IR_TO_QASM.get(gate.name)
        if mnemonic is None:
            raise ParseError(
                f"gate {gate.name} has no OpenQASM 2.0 representation; "
                "decompose it first"
            )
        lines.append(f"{mnemonic} {operands};")
    if include_measure:
        lines.append(f"measure {register} -> c;")
    return "\n".join(lines) + "\n"


def write_qasm(circuit: QuantumCircuit, path: str, **kwargs) -> None:
    """Write ``circuit`` to ``path`` as OpenQASM 2.0."""
    with open(path, "w") as handle:
        handle.write(to_qasm(circuit, **kwargs))


def _stem(path: str) -> str:
    import os

    return os.path.splitext(os.path.basename(path))[0]
