""".qc circuit format reader/writer.

The ``.qc`` format is the technology-independent quantum circuit format
used by the paper's first benchmark set ("these benchmarks were input
into the synthesis tool as technology-independent .qc files").  A file
declares named wires and lists gates between ``BEGIN`` and ``END``::

    .v a b c d
    .i a b c
    .o d
    BEGIN
    H d
    tof a b c
    T* d
    cnot a d
    END

Supported mnemonics (case-insensitive): ``H X Y Z S S* T T*``, ``cnot``
(2 wires), ``tof`` (NOT/CNOT/Toffoli/MCX by operand count), ``t1..tN``
(MCX with N-1 controls), ``swap``, ``id``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..core.circuit import QuantumCircuit
from ..core.exceptions import ParseError
from ..core.gates import Gate, MCX

_SINGLE = {
    "h": "H",
    "x": "X",
    "not": "X",
    "y": "Y",
    "z": "Z",
    "s": "S",
    "s*": "SDG",
    "t": "T",
    "t*": "TDG",
    "id": "I",
}


def parse_qc(text: str, name: str = "", filename: Optional[str] = None) -> QuantumCircuit:
    """Parse ``.qc`` source into a circuit."""
    wires: Dict[str, int] = {}
    gates: List[Gate] = []
    in_body = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if upper == "BEGIN":
            in_body = True
            continue
        if upper == "END":
            in_body = False
            continue
        if line.startswith("."):
            directive, _, rest = line.partition(" ")
            if directive.lower() == ".v":
                for token in rest.split():
                    if token in wires:
                        raise ParseError(f"wire {token!r} redeclared",
                                         filename, line_no, code="REPRO602")
                    wires[token] = len(wires)
            # .i/.o/.c/.ol declare port roles; wire order comes from .v
            continue
        if not in_body:
            continue
        tokens = line.split()
        mnemonic = tokens[0].lower()
        operands = tokens[1:]
        indices = []
        for token in operands:
            if token not in wires:
                raise ParseError(f"unknown wire {token!r}", filename, line_no,
                                 code="REPRO601")
            indices.append(wires[token])
        _dispatch(mnemonic, indices, gates, filename, line_no)
    circuit = QuantumCircuit(len(wires), name=name)
    circuit.extend(gates)
    return circuit


def _dispatch(mnemonic, indices, gates, filename, line_no):
    from ..core.exceptions import CircuitError

    try:
        if mnemonic in _SINGLE:
            if len(indices) != 1:
                raise ParseError(
                    f"{mnemonic} expects one wire, got {len(indices)}",
                    filename, line_no, code="REPRO604",
                )
            gates.append(Gate(_SINGLE[mnemonic], tuple(indices)))
        elif mnemonic == "cnot":
            if len(indices) != 2:
                raise ParseError("cnot expects two wires", filename, line_no,
                                 code="REPRO604")
            gates.append(Gate("CNOT", tuple(indices)))
        elif mnemonic == "swap":
            if len(indices) != 2:
                raise ParseError("swap expects two wires", filename, line_no,
                                 code="REPRO604")
            gates.append(Gate("SWAP", tuple(indices)))
        elif mnemonic == "tof" or re.fullmatch(r"t\d+", mnemonic):
            expected = int(mnemonic[1:]) if mnemonic != "tof" else len(indices)
            if len(indices) != expected:
                raise ParseError(
                    f"{mnemonic} expects {expected} wires, got {len(indices)}",
                    filename,
                    line_no,
                    code="REPRO604",
                )
            if len(indices) == 1:
                gates.append(Gate("X", tuple(indices)))
            else:
                gates.append(MCX(*indices))
        else:
            raise ParseError(f"unsupported mnemonic {mnemonic!r}", filename,
                             line_no, code="REPRO603")
    except CircuitError as error:
        raise ParseError(str(error), filename, line_no, code="REPRO607")


def read_qc(path: str, name: str = "") -> QuantumCircuit:
    """Parse a ``.qc`` file."""
    import os

    with open(path) as handle:
        stem = os.path.splitext(os.path.basename(path))[0]
        return parse_qc(handle.read(), name=name or stem, filename=path)


def to_qc(circuit: QuantumCircuit) -> str:
    """Emit ``.qc`` source for ``circuit`` (wires named q0..qn-1)."""
    names = [f"q{i}" for i in range(circuit.num_qubits)]
    reverse_single = {ir: qc for qc, ir in _SINGLE.items() if qc != "not" and qc != "x"}
    reverse_single["X"] = "X"
    lines = [".v " + " ".join(names), "BEGIN"]
    for gate in circuit:
        operands = " ".join(names[q] for q in gate.qubits)
        if gate.name in reverse_single:
            lines.append(f"{reverse_single[gate.name].upper()} {operands}")
        elif gate.name == "CNOT":
            lines.append(f"cnot {operands}")
        elif gate.name == "SWAP":
            lines.append(f"swap {operands}")
        elif gate.name in ("TOFFOLI", "MCX"):
            lines.append(f"t{gate.num_qubits} {operands}")
        elif gate.name == "CZ":
            raise ParseError("CZ has no .qc mnemonic; decompose it first")
        else:
            lines.append(f"{gate.name} {operands}")
    lines.append("END")
    return "\n".join(lines) + "\n"


def write_qc(circuit: QuantumCircuit, path: str) -> None:
    """Write ``circuit`` to ``path`` in ``.qc`` format."""
    with open(path, "w") as handle:
        handle.write(to_qc(circuit))
