"""RevLib ``.real`` format reader/writer.

RevLib (the paper's reference [24], source of the Table 5 Toffoli-cascade
benchmarks) distributes reversible circuits in the ``.real`` format::

    .version 2.0
    .numvars 3
    .variables a b c
    .constants ---
    .garbage ---
    .begin
    t3 a b c
    t2 a b
    t1 a
    .end

Gate lines are ``t<n>`` (generalized Toffoli: n-1 controls, last operand
target), ``f<n>`` (generalized Fredkin: n-2 controls, last two operands
swapped) and ``v``/``v+`` (unsupported here: not in the Toffoli-cascade
class the paper uses).  Negative controls, written ``-a``, are handled by
conjugating with NOT gates.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..core.circuit import QuantumCircuit
from ..core.exceptions import ParseError
from ..core.gates import Gate, MCX, SWAP, X


def parse_real(text: str, name: str = "", filename: Optional[str] = None) -> QuantumCircuit:
    """Parse ``.real`` source into a circuit of X/CNOT/Toffoli/MCX/SWAP."""
    variables: List[str] = []
    index_of: Dict[str, int] = {}
    gates: List[Gate] = []
    declared = None
    in_body = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered.startswith(".numvars"):
            fields = line.split()
            if len(fields) != 2 or not fields[1].isdigit():
                raise ParseError(".numvars expects one integer", filename,
                                 line_no, code="REPRO605")
            declared = int(fields[1])
            continue
        if lowered.startswith(".variables"):
            for token in line.split()[1:]:
                if token in index_of:
                    raise ParseError(f"variable {token!r} redeclared",
                                     filename, line_no, code="REPRO602")
                index_of[token] = len(variables)
                variables.append(token)
            continue
        if lowered.startswith(".begin"):
            in_body = True
            continue
        if lowered.startswith(".end"):
            in_body = False
            continue
        if line.startswith("."):
            continue  # .version/.constants/.garbage/.inputs/.outputs etc.
        if not in_body:
            continue
        tokens = line.split()
        mnemonic = tokens[0].lower()
        operand_tokens = tokens[1:]
        positive, negative = _operands(operand_tokens, index_of, filename, line_no)
        if len(set(positive)) != len(positive):
            raise ParseError(
                f"duplicate operands in {mnemonic}", filename, line_no,
                code="REPRO607",
            )

        match = re.fullmatch(r"t(\d+)", mnemonic)
        if match:
            expected = int(match.group(1))
            if len(operand_tokens) != expected:
                raise ParseError(
                    f"{mnemonic} expects {expected} operands", filename,
                    line_no, code="REPRO604",
                )
            lines_all = positive  # in declaration order: controls..., target
            gates.extend(X(q) for q in negative)
            if len(lines_all) == 1:
                gates.append(X(lines_all[0]))
            else:
                gates.append(MCX(*lines_all))
            gates.extend(X(q) for q in negative)
            continue
        match = re.fullmatch(r"f(\d+)", mnemonic)
        if match:
            expected = int(match.group(1))
            if len(operand_tokens) != expected or expected < 2:
                raise ParseError(
                    f"{mnemonic} expects {expected} operands", filename,
                    line_no, code="REPRO604",
                )
            controls = positive[:-2]
            a, b = positive[-2:]
            gates.extend(X(q) for q in negative)
            gates.extend(_fredkin(controls, a, b))
            gates.extend(X(q) for q in negative)
            continue
        raise ParseError(f"unsupported .real gate {mnemonic!r}", filename,
                         line_no, code="REPRO603")

    if declared is not None and declared != len(variables):
        raise ParseError(
            f".numvars {declared} but {len(variables)} variables declared",
            filename, code="REPRO606",
        )
    circuit = QuantumCircuit(len(variables), name=name)
    circuit.extend(gates)
    return circuit


def _operands(
    tokens: List[str], index_of: Dict[str, int], filename, line_no
) -> Tuple[List[int], List[int]]:
    """Resolve operand tokens; returns (lines in order, negated lines)."""
    ordered: List[int] = []
    negated: List[int] = []
    for token in tokens:
        negative = token.startswith("-")
        label = token[1:] if negative else token
        if label not in index_of:
            raise ParseError(f"unknown variable {label!r}", filename, line_no,
                             code="REPRO601")
        index = index_of[label]
        ordered.append(index)
        if negative:
            negated.append(index)
    return ordered, negated


def _fredkin(controls: List[int], a: int, b: int) -> List[Gate]:
    """Controlled-SWAP as Toffoli/CNOT gates:
    ``CSWAP = CNOT(b,a) . MCX(controls+a -> b) . CNOT(b,a)``."""
    from ..core.gates import CNOT

    middle = MCX(*(list(controls) + [a, b])) if controls else Gate("CNOT", (a, b))
    wrapped = CNOT(b, a)
    return [wrapped, middle, wrapped]


def read_real(path: str, name: str = "") -> QuantumCircuit:
    """Parse a ``.real`` file."""
    import os

    with open(path) as handle:
        stem = os.path.splitext(os.path.basename(path))[0]
        return parse_real(handle.read(), name=name or stem, filename=path)


def to_real(circuit: QuantumCircuit) -> str:
    """Emit ``.real`` source; only classical-reversible circuits qualify."""
    if not circuit.is_classical_reversible:
        raise ParseError(".real holds reversible cascades only")
    names = [chr(ord("a") + i) if i < 26 else f"x{i}" for i in range(circuit.num_qubits)]
    lines = [
        ".version 2.0",
        f".numvars {circuit.num_qubits}",
        ".variables " + " ".join(names),
        ".begin",
    ]
    for gate in circuit:
        operands = " ".join(names[q] for q in gate.qubits)
        if gate.name == "X":
            lines.append(f"t1 {operands}")
        elif gate.name in ("CNOT", "TOFFOLI", "MCX"):
            lines.append(f"t{gate.num_qubits} {operands}")
        elif gate.name == "SWAP":
            lines.append(f"f2 {operands}")
        elif gate.name == "I":
            continue
        else:
            raise ParseError(f"gate {gate.name} not representable in .real")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_real(circuit: QuantumCircuit, path: str) -> None:
    """Write ``circuit`` to ``path`` in ``.real`` format."""
    with open(path, "w") as handle:
        handle.write(to_real(circuit))
