"""CNOT orientation reversal (paper Fig. 6).

Transmon couplings are unidirectional: a physical link allows CNOT in one
fixed direction only.  The identity

    CNOT(c, t) = (H_c . H_t) CNOT(t, c) (H_c . H_t)

realizes the opposite orientation at the price of four Hadamards, turning
one unsupported CNOT into five native gates.
"""

from __future__ import annotations

from typing import List

from ..core.exceptions import SynthesisError
from ..core.gates import CNOT, Gate, H
from ..devices.coupling import CouplingMap


def reversed_cnot(control: int, target: int) -> List[Gate]:
    """The Fig. 6 network: CNOT(control, target) expressed with the
    physically available CNOT(target, control)."""
    return [
        H(control),
        H(target),
        CNOT(target, control),
        H(control),
        H(target),
    ]


def orient_cnot(control: int, target: int, coupling_map: CouplingMap) -> List[Gate]:
    """Emit CNOT(control, target) using only natively-oriented CNOTs.

    Returns a single gate when the orientation is native, the 5-gate
    Fig. 6 network when only the reverse orientation exists, and raises
    :class:`SynthesisError` when the qubits are not adjacent at all (the
    caller should have rerouted with CTR first).
    """
    if coupling_map.allows(control, target):
        return [CNOT(control, target)]
    if coupling_map.allows(target, control):
        return reversed_cnot(control, target)
    raise SynthesisError(
        f"qubits {control} and {target} are not coupled on "
        f"{coupling_map.name}; reroute with CTR before orienting"
    )
