"""Dynamic-layout SABRE-style routing (the alternative to CTR).

CTR (:mod:`repro.backend.ctr`, the paper's Figs. 3-5) legalizes each
CNOT in isolation: swap the control's state next to the target, execute,
and swap *all the way back*, so a CNOT at coupling distance ``d`` pays
``2(d-1)`` SWAPs — half of them only to restore the original wire
assignment.  The router in this module instead lets the layout move, in
the style of Li, Ding & Xie's SABRE: it maintains a logical→physical
layout, inserts SWAPs chosen by a lookahead heuristic (front-gate
distance plus a decaying extended-set term over upcoming CNOTs, scored
with the O(1) :meth:`CouplingMap.distance` tables), and never swaps
back.  Each distant CNOT costs only ``d-1`` SWAPs; the price is that the
routed circuit ends with its wires *permuted*.

The router therefore returns the mapped circuit **plus its final output
permutation** (:class:`RoutingResult`).  Consumers have two options:

* verification-aware (the default compile path): hand the permutation to
  :func:`repro.verify.verify_equivalent`, which composes the inverse
  permutation into the miter / prescreen / sampling paths via
  :func:`permutation_restore_gates`;
* wire-identity (``restore_layout=True`` on :func:`map_circuit`): append
  the device-legal uncompute tail of :func:`routed_restore_gates`, which
  costs gates but leaves every state on its original wire.

Every candidate SWAP is required to strictly reduce the current front
gate's coupling distance, so routing one CNOT terminates after exactly
``d-1`` SWAPs and the extended-set term only arbitrates *which* shortest
route the layout drifts along — sabre can never spend more SWAPs on a
single CNOT than CTR does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.circuit import QuantumCircuit
from ..core.exceptions import SynthesisError
from ..core.gates import SWAP, Gate, intern_gate
from ..devices.coupling import CouplingMap
from .ctr import swap_gates
from .reversal import orient_cnot

__all__ = [
    "RoutingResult",
    "permutation_restore_gates",
    "route_sabre",
    "routed_restore_gates",
]

#: How many upcoming CNOTs the lookahead scores (the "extended set").
EXTENDED_SET_SIZE = 8

#: Geometric weight decay across the extended set: the k-th upcoming
#: CNOT contributes ``EXTENDED_SET_DECAY ** (k + 1)`` of its distance.
EXTENDED_SET_DECAY = 0.5

#: How far ahead (in gates) the extended-set scan looks for CNOTs.
_LOOKAHEAD_WINDOW = 64


@dataclass
class RoutingResult:
    """What one dynamic-layout routing run produced."""

    #: The coupling-legal circuit (native 1q gates + oriented CNOTs).
    circuit: QuantumCircuit
    #: Final layout as ``{input wire -> output wire}``: the state that
    #: entered on wire ``v`` leaves the routed circuit on wire
    #: ``output_permutation[v]``.  Identity entries are omitted, so an
    #: empty dict means the layout ended where it started.
    output_permutation: Dict[int, int] = field(default_factory=dict)
    #: SWAPs inserted (each expands to 3 CNOTs plus orientation fixes).
    swap_count: int = 0


def route_sabre(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    extended_set_size: int = EXTENDED_SET_SIZE,
    decay: float = EXTENDED_SET_DECAY,
) -> RoutingResult:
    """Route an expanded (1q + CNOT) circuit with a moving layout.

    ``circuit`` must already be placed on physical wires and expanded to
    single-qubit gates plus CNOTs (the output of
    :func:`repro.backend.mapper.expand_to_library`).  Wires are tracked
    from the identity layout; the returned permutation says where each
    input wire's state ended up.
    """
    num_qubits = circuit.num_qubits
    if num_qubits > coupling_map.num_qubits:
        raise SynthesisError(
            f"cannot route {num_qubits} wires on "
            f"{coupling_map.num_qubits}-qubit {coupling_map.name}"
        )
    # layout[v] = physical wire currently holding input-wire v's state;
    # holder[p] = the input wire whose state physical wire p holds.
    layout = list(range(coupling_map.num_qubits))
    holder = list(range(coupling_map.num_qubits))
    gates: List[Gate] = []
    swap_count = 0
    program = list(circuit)

    def apply_swap(a: int, b: int) -> None:
        """Emit SWAP(a, b) as native gates and move the layout."""
        nonlocal swap_count
        gates.extend(swap_gates(a, b, coupling_map))
        swap_count += 1
        u, w = holder[a], holder[b]
        holder[a], holder[b] = w, u
        layout[u], layout[w] = b, a

    def extended_set(start: int) -> List[Tuple[int, int]]:
        """Operand pairs of the next few CNOTs after ``start``."""
        pairs: List[Tuple[int, int]] = []
        stop = min(len(program), start + _LOOKAHEAD_WINDOW)
        for index in range(start, stop):
            gate = program[index]
            if gate.name == "CNOT":
                pairs.append((gate.qubits[0], gate.qubits[1]))
                if len(pairs) >= extended_set_size:
                    break
        return pairs

    def score_swap(
        a: int, b: int, control: int, target: int,
        lookahead: List[Tuple[int, int]],
    ) -> float:
        """Heuristic cost of the layout after SWAP(a, b): front-gate
        distance plus the decayed distances of upcoming CNOTs."""

        def pos(v: int) -> int:
            p = layout[v]
            if p == a:
                return b
            if p == b:
                return a
            return p

        def dist(x: int, y: int) -> float:
            d = coupling_map.distance(pos(x), pos(y))
            # Disconnected pairs surface later as routing errors; here
            # they simply cannot attract the layout.
            return float(coupling_map.num_qubits * 2 if d is None else d)

        total = dist(control, target)
        weight = 1.0
        for c, t in lookahead:
            weight *= decay
            total += weight * dist(c, t)
        return total

    for index, gate in enumerate(program):
        if gate.name != "CNOT":
            if gate.num_qubits > 1:
                raise SynthesisError(
                    f"unexpected multi-qubit gate {gate} during routing"
                )
            q = gate.qubits[0]
            gates.append(intern_gate(gate.name, (layout[q],), gate.params))
            continue
        control, target = gate.qubits
        lookahead: Optional[List[Tuple[int, int]]] = None
        while True:
            pc, pt = layout[control], layout[target]
            if coupling_map.coupled(pc, pt):
                gates.extend(orient_cnot(pc, pt, coupling_map))
                break
            distance = coupling_map.distance(pc, pt)
            if distance is None:
                raise SynthesisError(
                    f"no SWAP path between q{pc} and q{pt} on "
                    f"{coupling_map.name}: qubits lie in disconnected "
                    f"components"
                )
            if lookahead is None:
                lookahead = extended_set(index + 1)
            best: Optional[Tuple[float, int, int]] = None
            seen: Set[Tuple[int, int]] = set()
            for endpoint in (pc, pt):
                for neighbor in coupling_map.neighbors(endpoint):
                    a, b = min(endpoint, neighbor), max(endpoint, neighbor)
                    if (a, b) in seen:
                        continue
                    seen.add((a, b))

                    def through(wire: int) -> int:
                        if wire == a:
                            return b
                        if wire == b:
                            return a
                        return wire

                    after = coupling_map.distance(through(pc), through(pt))
                    # Only swaps that strictly shorten the front gate's
                    # route are admissible: this caps the CNOT at d-1
                    # SWAPs (CTR pays 2(d-1)) and guarantees progress.
                    if after is None or after >= distance:
                        continue
                    candidate = (
                        score_swap(a, b, control, target, lookahead), a, b
                    )
                    if best is None or candidate < best:
                        best = candidate
            if best is None:
                # Every neighbor stalls (possible only on adversarial
                # directed maps); fall back to the BFS route's first hop.
                path = coupling_map.shortest_path(pc, pt)
                if path is None or len(path) < 2:
                    raise SynthesisError(
                        f"no SWAP path between q{pc} and q{pt} on "
                        f"{coupling_map.name}"
                    )
                apply_swap(path[0], path[1])
            else:
                apply_swap(best[1], best[2])

    permutation = {
        v: layout[v]
        for v in range(coupling_map.num_qubits)
        if layout[v] != v
    }
    # Routing happens on device wires: even a narrow input circuit may
    # leave states on higher physical wires, so the routed circuit is
    # always device-wide.
    routed = QuantumCircuit._trusted(
        coupling_map.num_qubits, gates, name=circuit.name
    )
    return RoutingResult(
        circuit=routed,
        output_permutation=permutation,
        swap_count=swap_count,
    )


def permutation_restore_gates(
    output_permutation: Dict[int, int], num_qubits: int
) -> List[Gate]:
    """Wire-space SWAPs that undo ``output_permutation`` when appended.

    The returned gates implement the *inverse* permutation: after the
    routed circuit leaves input-wire ``v``'s state on wire ``π(v)``,
    appending these SWAPs returns every state to its input wire.  They
    are plain ``SWAP`` gates with no coupling-map legality — this tail
    exists so the verifier can compare a permuted output against its
    source (QMDD, dense, sparse and the classical prescreen all apply
    ``SWAP`` natively); it is never emitted into a device circuit.  Use
    :func:`routed_restore_gates` for a device-legal tail.
    """
    current = {
        v: output_permutation.get(v, v) for v in range(num_qubits)
    }
    holder = {p: v for v, p in current.items()}
    if len(holder) != num_qubits:
        raise SynthesisError(
            f"output permutation is not a bijection: {output_permutation}"
        )
    gates: List[Gate] = []
    for v in range(num_qubits):
        p = current[v]
        if p == v:
            continue
        gates.append(SWAP(v, p))
        displaced = holder[v]
        current[v], current[displaced] = v, p
        holder[v], holder[p] = v, displaced
    return gates


def routed_restore_gates(
    output_permutation: Dict[int, int], coupling_map: CouplingMap
) -> List[Gate]:
    """A device-legal uncompute tail for ``output_permutation``.

    Selection-sorts the layout home one wire at a time; each
    transposition of two (possibly distant) wires is realized CTR-style
    — swap along the coupling route to adjacency, swap, swap back — so
    only the two intended states move and every SWAP sits on a coupled
    edge.  This is the ``restore_layout=True`` escape hatch for
    consumers that need wire identity on hardware; it typically costs
    more than the permutation was worth, which is why the default path
    reports the permutation instead.
    """
    current = {
        v: output_permutation.get(v, v)
        for v in range(coupling_map.num_qubits)
    }
    holder = {p: v for v, p in current.items()}
    gates: List[Gate] = []
    for v in range(coupling_map.num_qubits):
        p = current[v]
        if p == v:
            continue
        gates.extend(_transposition_gates(v, p, coupling_map))
        displaced = holder[v]
        current[v], current[displaced] = v, p
        holder[v], holder[p] = v, displaced
    return gates


def _transposition_gates(
    x: int, y: int, coupling_map: CouplingMap
) -> List[Gate]:
    """Exchange the states of wires ``x`` and ``y`` (only) using SWAPs
    on coupled edges: route to adjacency, swap, route back."""
    path = coupling_map.shortest_path(x, y)
    if path is None:
        raise SynthesisError(
            f"cannot restore layout: q{x} and q{y} are disconnected on "
            f"{coupling_map.name}"
        )
    gates: List[Gate] = []
    forward = list(zip(path, path[1:]))[:-1]
    for a, b in forward:
        gates.extend(swap_gates(a, b, coupling_map))
    gates.extend(swap_gates(path[-2], path[-1], coupling_map))
    for a, b in reversed(forward):
        gates.extend(swap_gates(a, b, coupling_map))
    return gates
