"""Generalized-Toffoli (MCX / ``T_n``) decomposition into Toffoli cascades.

The paper (Section 4, item 3) lowers generalized Toffoli gates with the
constructions of Barenco et al. [ref 11]:

* **Lemma 7.2 (V-chain)** — a ``C^k X`` with ``k >= 3`` controls can be
  built from ``4(k-2)`` Toffoli gates using ``k-2`` *dirty* work qubits
  (their state is arbitrary and is restored).  The network sweeps a
  "V" of Toffolis down and up twice; the double sweep cancels the
  contribution of the unknown ancilla values.

* **Lemma 7.3 (split)** — with only a single borrowable qubit ``b``,
  ``C^k X`` factors into two smaller multi-controlled gates applied twice:
  ``C^k X = A B A B`` where ``A = C^m X(c_1..c_m -> b)`` and
  ``B = C^{k-m+1} X(b, c_{m+1}..c_k -> t)``.  Each half finds enough dirty
  ancillas among the other half's idle controls, so the recursion bottoms
  out in Lemma 7.2 V-chains.

When the device offers *no* spare qubit at all (``n == k+1``) the gate
cannot be expressed with Toffolis alone — the paper reports such cases as
``N/A`` and we raise :class:`NotSynthesizableError` accordingly.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..core.exceptions import NotSynthesizableError
from ..core.gates import CNOT, Gate, TOFFOLI, X


def mcx_to_toffoli(
    controls: Sequence[int], target: int, ancillas: Sequence[int]
) -> List[Gate]:
    """Decompose ``X`` on ``target`` controlled by ``controls`` into a
    NOT/CNOT/Toffoli cascade, borrowing dirty work qubits from
    ``ancillas`` (which must be disjoint from the gate's own qubits).

    Every ancilla is returned to its initial state, whatever it was.
    """
    control_list = list(controls)
    spare = [a for a in ancillas if a != target and a not in control_list]
    k = len(control_list)
    if k == 0:
        return [X(target)]
    if k == 1:
        return [CNOT(control_list[0], target)]
    if k == 2:
        return [TOFFOLI(control_list[0], control_list[1], target)]
    if len(spare) >= k - 2:
        return _v_chain(control_list, target, spare[: k - 2])
    if spare:
        return _split(control_list, target, spare[0])
    raise NotSynthesizableError(
        f"T_{k + 1} gate (X with {k} controls) needs at least one spare "
        "qubit on the device to decompose into Toffoli gates (Barenco "
        "Lemma 7.3); none available"
    )


def toffoli_count(num_controls: int, num_ancillas: int) -> int:
    """Number of Toffolis :func:`mcx_to_toffoli` will emit (for planning).

    Mirrors the decomposition's branch structure without building gates.
    """
    k = num_controls
    if k <= 1:
        return 0
    if k == 2:
        return 1
    if num_ancillas >= k - 2:
        return 4 * (k - 2)
    if num_ancillas >= 1:
        m = _split_point(k)
        first = toffoli_count(m, k - m + 1)
        second = toffoli_count(k - m + 1, m)
        return 2 * (first + second)
    raise NotSynthesizableError("no ancilla available")


def _v_chain(controls: List[int], target: int, ancillas: Sequence[int]) -> List[Gate]:
    """Barenco Lemma 7.2: ``4(k-2)`` Toffolis with ``k-2`` dirty ancillas.

    With controls ``c_1..c_k``, ancillas ``a_1..a_{k-2}`` and writing
    ``a_{k-1} := target``, the ladder gates are
    ``G_i = Toffoli(c_i, a_{i-2}, a_{i-1})`` for ``i = 3..k`` and
    ``M = Toffoli(c_1, c_2, a_1)``.  The network is ``D U D U`` where
    ``D = G_k G_{k-1} ... G_3`` and ``U = M G_3 ... G_{k-1}``.
    """
    k = len(controls)
    chain = list(ancillas) + [target]  # chain[i-2] == a_{i-1} for gate G_i

    def ladder_gate(i: int) -> Gate:  # G_i, i in 3..k
        return TOFFOLI(controls[i - 1], chain[i - 3], chain[i - 2])

    descend = [ladder_gate(i) for i in range(k, 2, -1)]
    ascend = [TOFFOLI(controls[0], controls[1], chain[0])]
    ascend += [ladder_gate(i) for i in range(3, k)]
    return descend + ascend + descend + ascend


def _split_point(k: int) -> int:
    """Barenco Lemma 7.3 split size: first half takes ``ceil(k/2)``
    controls, which guarantees both halves find enough dirty ancillas
    among each other's idle qubits."""
    return math.ceil(k / 2)


def _split(controls: List[int], target: int, borrow: int) -> List[Gate]:
    """Barenco Lemma 7.3: ``C^k X = A B A B`` through one borrowed qubit."""
    k = len(controls)
    m = _split_point(k)
    first_controls = controls[:m]
    second_controls = [borrow] + controls[m:]
    # Dirty ancillas for each half come from the other half's idle qubits.
    first = mcx_to_toffoli(first_controls, borrow, controls[m:] + [target])
    second = mcx_to_toffoli(second_controls, target, first_controls)
    return first + second + first + second


def lower_mcx_gates(gates: Sequence[Gate], num_qubits: int) -> List[Gate]:
    """Lower every MCX in ``gates`` to Toffolis, borrowing dirty ancillas
    from whichever of the ``num_qubits`` wires the gate does not touch.

    Ancillas are chosen lowest-index-first; the device-aware mapper makes
    a smarter, distance-based choice (see :mod:`repro.backend.mapper`).
    """
    lowered: List[Gate] = []
    for gate in gates:
        if gate.name == "MCX":
            busy = set(gate.qubits)
            free = [q for q in range(num_qubits) if q not in busy]
            lowered.extend(mcx_to_toffoli(gate.controls, gate.target, free))
        else:
            lowered.append(gate)
    return lowered
