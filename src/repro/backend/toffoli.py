"""Toffoli decomposition into the transmon one- and two-qubit library.

The paper (Section 4, item 4) decomposes every Toffoli with the standard
Clifford+T network from Nielsen & Chuang [ref 8], Fig. 4.9:

    q_c1: ─────────────●────────────●────●───T───●──
    q_c2: ────●────────┼───────●────┼────⊕──T†───⊕──
    q_t : ─H──⊕──T†────⊕───T───⊕──T†⊕──T─────H──────

which costs 7 T/T† gates, 6 CNOTs and 2 Hadamards (15 gates total) and
needs no ancilla.  CZ and SWAP, also outside the native library, are
expanded here too.
"""

from __future__ import annotations

from typing import List

from ..core.gates import CNOT, Gate, H, T, Tdg


def toffoli_network(c1: int, c2: int, t: int) -> List[Gate]:
    """The 15-gate Clifford+T realization of Toffoli(c1, c2, t)."""
    return [
        H(t),
        CNOT(c2, t),
        Tdg(t),
        CNOT(c1, t),
        T(t),
        CNOT(c2, t),
        Tdg(t),
        CNOT(c1, t),
        T(c2),
        T(t),
        H(t),
        CNOT(c1, c2),
        T(c1),
        Tdg(c2),
        CNOT(c1, c2),
    ]


def cz_network(a: int, b: int) -> List[Gate]:
    """CZ via the identity ``CZ(a,b) = H_b CNOT(a,b) H_b``."""
    return [H(b), CNOT(a, b), H(b)]


def swap_network(a: int, b: int) -> List[Gate]:
    """SWAP via three alternating CNOTs (Fig. 3); orientation fixing for
    unidirectional links happens later in the mapping pipeline."""
    return [CNOT(a, b), CNOT(b, a), CNOT(a, b)]


def expand_non_native(gate: Gate) -> List[Gate]:
    """Expand one non-native gate (TOFFOLI/CZ/SWAP) to library gates.

    Native gates pass through unchanged; MCX must be lowered to Toffolis
    first (see :mod:`repro.backend.mcx`).
    """
    if gate.name == "TOFFOLI":
        c1, c2, t = gate.qubits
        return toffoli_network(c1, c2, t)
    if gate.name == "CZ":
        return cz_network(*gate.qubits)
    if gate.name == "SWAP":
        return swap_network(*gate.qubits)
    return [gate]
