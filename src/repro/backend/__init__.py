"""Technology-mapping back-end: reversal, CTR, decompositions, pipeline."""

from .reversal import orient_cnot, reversed_cnot
from .ctr import (
    ConnectivityTree,
    cnot_with_ctr,
    cnot_with_noise_aware_ctr,
    find_swap_path,
    route_cost_in_swaps,
    swap_gates,
)
from .toffoli import cz_network, expand_non_native, swap_network, toffoli_network
from .mcx import lower_mcx_gates, mcx_to_toffoli, toffoli_count
from .rebase import ION_GATE_SET, cnot_as_rxx, hadamard_as_rotations, rebase_to_ion
from .relative_phase import (
    margolus,
    margolus_dagger,
    mcx_relative_phase,
    rccx_network,
)
from .mapper import (
    ROUTE_STRATEGIES,
    MappingOutcome,
    check_conformance,
    expand_to_library,
    identity_placement,
    legalize_cnots,
    lower_mcx_for_device,
    map_circuit,
    map_circuit_outcome,
)
from .router import (
    RoutingResult,
    permutation_restore_gates,
    route_sabre,
    routed_restore_gates,
)
from .placement import (
    choose_placement,
    greedy_placement,
    interaction_graph,
    placement_cost,
    refine_placement,
)

__all__ = [
    "orient_cnot",
    "reversed_cnot",
    "ConnectivityTree",
    "cnot_with_ctr",
    "cnot_with_noise_aware_ctr",
    "find_swap_path",
    "route_cost_in_swaps",
    "swap_gates",
    "cz_network",
    "expand_non_native",
    "swap_network",
    "toffoli_network",
    "lower_mcx_gates",
    "mcx_to_toffoli",
    "toffoli_count",
    "ION_GATE_SET",
    "cnot_as_rxx",
    "hadamard_as_rotations",
    "rebase_to_ion",
    "margolus",
    "margolus_dagger",
    "mcx_relative_phase",
    "rccx_network",
    "choose_placement",
    "greedy_placement",
    "interaction_graph",
    "placement_cost",
    "refine_placement",
    "MappingOutcome",
    "ROUTE_STRATEGIES",
    "RoutingResult",
    "check_conformance",
    "expand_to_library",
    "identity_placement",
    "legalize_cnots",
    "lower_mcx_for_device",
    "map_circuit",
    "map_circuit_outcome",
    "permutation_restore_gates",
    "route_sabre",
    "routed_restore_gates",
]
