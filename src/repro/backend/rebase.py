"""Rebasing to other technology platforms (trapped-ion Moelmer-Sorensen).

The paper's conclusion: "in future work, the compiler will be expanded
to target other quantum technology platforms".  This module implements
the first such target — trapped-ion machines, whose native entangler is
the XX (Moelmer-Sorensen) interaction rather than the transmon CNOT,
and whose single-qubit operations are arbitrary rotations.

The key identity (verified against dense unitaries in the tests):

    CNOT(c, t) = e^{i*pi/4} * RY(pi/2, c) . RXX(pi/4; c, t)
                 . RX(-pi/2, c) . RX(-pi/2, t) . RY(-pi/2, c)

(in circuit order: RY first).  The global phase makes rebased circuits
equal to their sources only up to ``e^{i*pi/4}`` per CNOT, so
verification uses the QMDD global-phase mode.
"""

from __future__ import annotations

import math
from typing import List

from ..core.circuit import QuantumCircuit
from ..core.exceptions import SynthesisError
from ..core.gates import Gate, RX, RXX, RY

_HALF_PI = math.pi / 2.0

#: Single-qubit library gates as Z/X/Y rotation angles (up to global
#: phase): name -> (axis, angle).
_SINGLE_AS_ROTATION = {
    "X": ("RX", math.pi),
    "Y": ("RY", math.pi),
    "Z": ("RZ", math.pi),
    "S": ("RZ", _HALF_PI),
    "SDG": ("RZ", -_HALF_PI),
    "T": ("RZ", math.pi / 4.0),
    "TDG": ("RZ", -math.pi / 4.0),
}


def cnot_as_rxx(control: int, target: int) -> List[Gate]:
    """The Moelmer-Sorensen realization of CNOT (up to global phase)."""
    return [
        RY(_HALF_PI, control),
        RXX(math.pi / 4.0, control, target),
        RX(-_HALF_PI, control),
        RX(-_HALF_PI, target),
        RY(-_HALF_PI, control),
    ]


def hadamard_as_rotations(qubit: int) -> List[Gate]:
    """H = RY(pi/2) then RX(pi) (up to global phase)."""
    return [RY(_HALF_PI, qubit), RX(math.pi, qubit)]


def rebase_to_ion(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite a transmon-library circuit into the ion library
    {RX, RY, RZ, RXX}.

    The input must already be mapped to one- and two-qubit gates (run
    the standard pipeline first); the result equals the input up to a
    global phase.
    """
    rebased = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        name = gate.name
        if name == "I":
            continue
        if name in ("RX", "RY", "RZ", "RXX"):
            rebased.append(gate)
        elif name == "H":
            rebased.extend(hadamard_as_rotations(gate.qubits[0]))
        elif name in _SINGLE_AS_ROTATION:
            axis, angle = _SINGLE_AS_ROTATION[name]
            rebased.append(Gate(axis, gate.qubits, (angle,)))
        elif name == "CNOT":
            rebased.extend(cnot_as_rxx(gate.qubits[0], gate.qubits[1]))
        else:
            raise SynthesisError(
                f"rebase_to_ion expects a mapped 1q+CNOT circuit, got {gate}"
            )
    return rebased


#: The ion native gate set.
ION_GATE_SET = ("I", "RX", "RY", "RZ", "RXX")
