"""Initial qubit placement optimization.

The paper maps logical qubit *i* to physical qubit *i* and lists
cost-aware placement as future work: "More optimizations ... especially
those that aim to minimize cost by finding ideal qubit placement on a
QC, will also be added."  This module implements that extension:

* :func:`interaction_graph` — weighted logical interaction counts.
* :func:`greedy_placement` — seed the most-interacting logical qubit on
  the physically best-connected qubit, then place each next logical
  qubit (by interaction weight with already-placed ones) on the free
  physical qubit minimizing distance-weighted routing cost.
* :func:`refine_placement` — pairwise-exchange hill climbing on the
  routing-cost estimate until no swap of two assignments helps.
* :func:`choose_placement` — the strategy front door used by the
  compiler (``"identity"``, ``"greedy"``, or ``"refined"``).

The cost model scores a placement by
``sum over logical CNOT pairs (weight * swaps_needed(phys_a, phys_b))``
where ``swaps_needed`` is the coupling-graph distance minus one — the
number of SWAPs CTR will insert each way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.circuit import QuantumCircuit
from ..core.exceptions import NotSynthesizableError, SynthesisError
from ..devices.device import Device


def interaction_graph(circuit: QuantumCircuit) -> Dict[Tuple[int, int], int]:
    """Count multi-qubit interactions between logical qubit pairs.

    Every pair of operands inside one gate counts once; the counts drive
    placement (heavily-interacting pairs should sit close together).
    """
    weights: Dict[Tuple[int, int], int] = {}
    for gate in circuit:
        qubits = gate.qubits
        if len(qubits) < 2:
            continue
        for i in range(len(qubits)):
            for j in range(i + 1, len(qubits)):
                key = (min(qubits[i], qubits[j]), max(qubits[i], qubits[j]))
                weights[key] = weights.get(key, 0) + 1
    return weights


def placement_cost(
    placement: Dict[int, int],
    weights: Dict[Tuple[int, int], int],
    device: Device,
) -> float:
    """Distance-weighted routing-cost estimate of a placement."""
    total = 0.0
    for (a, b), weight in weights.items():
        pa = placement.get(a, a)
        pb = placement.get(b, b)
        distance = device.coupling_map.distance(pa, pb)
        if distance is None:
            return float("inf")
        total += weight * max(0, distance - 1)
    return total


def greedy_placement(circuit: QuantumCircuit, device: Device) -> Dict[int, int]:
    """Interaction-driven greedy placement (see module docstring)."""
    if circuit.num_qubits > device.num_qubits:
        raise NotSynthesizableError(
            f"{circuit.name or 'circuit'} needs {circuit.num_qubits} qubits; "
            f"{device.name} has {device.num_qubits}"
        )
    weights = interaction_graph(circuit)
    logical_order = _logical_by_total_weight(circuit, weights)
    coupling = device.coupling_map

    placement: Dict[int, int] = {}
    used_physical: set = set()

    def physical_candidates() -> List[int]:
        return [q for q in range(device.num_qubits) if q not in used_physical]

    for logical in logical_order:
        placed_partners = [
            (other, weight)
            for (a, b), weight in weights.items()
            for other in ((b if a == logical else a),)
            if logical in (a, b) and other in placement
        ]
        if not placed_partners:
            # Seed (or isolated qubit): pick the best-connected free qubit.
            best = max(
                physical_candidates(),
                key=lambda q: (len(coupling.neighbors(q)), -q),
            )
        else:
            def score(candidate: int) -> float:
                total = 0.0
                for other, weight in placed_partners:
                    distance = coupling.distance(candidate, placement[other])
                    if distance is None:
                        return float("inf")
                    total += weight * max(0, distance - 1)
                return total

            best = min(physical_candidates(), key=lambda q: (score(q), q))
        placement[logical] = best
        used_physical.add(best)
    return placement


def _logical_by_total_weight(
    circuit: QuantumCircuit, weights: Dict[Tuple[int, int], int]
) -> List[int]:
    totals = {q: 0 for q in range(circuit.num_qubits)}
    for (a, b), weight in weights.items():
        totals[a] += weight
        totals[b] += weight
    return sorted(totals, key=lambda q: (-totals[q], q))


def refine_placement(
    placement: Dict[int, int],
    circuit: QuantumCircuit,
    device: Device,
    max_passes: int = 10,
) -> Dict[int, int]:
    """Pairwise-exchange hill climbing on :func:`placement_cost`.

    Considers swapping every pair of logical assignments (and moving a
    logical qubit to any free physical qubit) until a full pass finds no
    improvement.

    Scoring is *incremental*: per-pair contributions are kept between
    candidate moves and only the pairs incident to the moved logicals
    are rescored, so one candidate costs O(degree) distance lookups
    instead of a full O(|weights|) rescore.  Contributions are
    integer-valued (integer interaction weight times integer SWAP
    count), so the running total is exact and the accepted moves — and
    the final placement — are identical to a full rescore.
    """
    weights = interaction_graph(circuit)
    current = dict(placement)
    coupling = device.coupling_map
    logicals = list(current)
    free = [q for q in range(device.num_qubits) if q not in current.values()]

    incident: Dict[int, List[Tuple[Tuple[int, int], int]]] = {}
    for pair, weight in weights.items():
        incident.setdefault(pair[0], []).append((pair, weight))
        incident.setdefault(pair[1], []).append((pair, weight))

    def contribution(pair: Tuple[int, int], weight: int) -> Optional[float]:
        """This pair's cost term under ``current`` (None = disconnected)."""
        a, b = pair
        distance = coupling.distance(current.get(a, a), current.get(b, b))
        if distance is None:
            return None
        return weight * max(0, distance - 1)

    contributions: Dict[Tuple[int, int], Optional[float]] = {}
    finite_total = 0.0
    infinite_pairs = 0
    for pair, weight in weights.items():
        term = contribution(pair, weight)
        contributions[pair] = term
        if term is None:
            infinite_pairs += 1
        else:
            finite_total += term
    best_cost = float("inf") if infinite_pairs else finite_total

    def rescore(
        moved: Tuple[int, ...]
    ) -> Tuple[float, List[Tuple[Tuple[int, int], Optional[float]]]]:
        """Candidate cost after ``current`` was mutated, touching only
        the pairs incident to the moved logicals; returns the cost and
        the contribution updates to apply on acceptance."""
        total = finite_total
        infinite = infinite_pairs
        updates: List[Tuple[Tuple[int, int], Optional[float]]] = []
        seen: Set[Tuple[int, int]] = set()
        for logical in moved:
            for pair, weight in incident.get(logical, ()):
                if pair in seen:
                    continue
                seen.add(pair)
                old = contributions[pair]
                new = contribution(pair, weight)
                if old is None:
                    infinite -= 1
                else:
                    total -= old
                if new is None:
                    infinite += 1
                else:
                    total += new
                updates.append((pair, new))
        return (float("inf") if infinite else total), updates

    def accept(
        updates: List[Tuple[Tuple[int, int], Optional[float]]]
    ) -> None:
        nonlocal finite_total, infinite_pairs
        for pair, new in updates:
            old = contributions[pair]
            if old is None:
                infinite_pairs -= 1
            else:
                finite_total -= old
            if new is None:
                infinite_pairs += 1
            else:
                finite_total += new
            contributions[pair] = new

    for _ in range(max_passes):
        improved = False
        for i in range(len(logicals)):
            for j in range(i + 1, len(logicals)):
                a, b = logicals[i], logicals[j]
                current[a], current[b] = current[b], current[a]
                cost, updates = rescore((a, b))
                if cost < best_cost:
                    best_cost = cost
                    accept(updates)
                    improved = True
                else:
                    current[a], current[b] = current[b], current[a]
        for a in logicals:
            for index, spare in enumerate(free):
                old_physical = current[a]
                current[a] = spare
                cost, updates = rescore((a,))
                if cost < best_cost:
                    best_cost = cost
                    accept(updates)
                    free[index] = old_physical
                    improved = True
                else:
                    current[a] = old_physical
        if not improved:
            break
    return current


def choose_placement(
    circuit: QuantumCircuit, device: Device, strategy: str = "identity"
) -> Dict[int, int]:
    """Produce a placement by strategy name.

    ``identity`` reproduces the paper's behaviour; ``greedy`` runs the
    interaction-driven placement; ``refined`` additionally hill-climbs.
    """
    if strategy == "identity":
        if circuit.num_qubits > device.num_qubits:
            raise NotSynthesizableError(
                f"circuit needs {circuit.num_qubits} qubits; "
                f"{device.name} has {device.num_qubits}"
            )
        return {q: q for q in range(circuit.num_qubits)}
    if strategy == "greedy":
        return greedy_placement(circuit, device)
    if strategy == "refined":
        return refine_placement(greedy_placement(circuit, device), circuit, device)
    raise SynthesisError(f"unknown placement strategy {strategy!r}")
