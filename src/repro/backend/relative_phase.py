"""Relative-phase multi-controlled gates (Margolus-style).

A *relative-phase* Toffoli implements ``D . CCX`` for some diagonal
``D``: its classical (basis-state) action is exactly a Toffoli, but
amplitudes pick up input-dependent phases.  When such gates appear in
compute/uncompute pairs — the normal usage of single-target gates in
hierarchical synthesis [paper refs 6, 23] — the phases cancel, so
relative-phase realizations are legitimate and substantially cheaper:
the Margolus gate needs 4 T (vs 7) and 3 CNOT (vs 6).

This module supplies:

* :func:`margolus` — the classic 4-T relative-phase Toffoli (3 qubits,
  no ancilla; flips the phase of |101> only).
* :func:`rccx_network` — alias used by the expander.
* :func:`mcx_relative_phase` — a dirty V-chain built from Margolus
  gates: because the chain applies each relative-phase Toffoli in
  compute/uncompute pairs, all intermediate phases cancel and **the
  overall gate is an exact MCX** — at roughly 4/7 the T cost of the
  standard chain.  Only the *outermost* target application stays a true
  Toffoli, preserving exactness.

The exactness of every construction is covered by unit tests against
dense unitaries; the ``mcx_relative_phase`` chain is also what makes
cheap-but-exact mapping possible (see ``use_relative_phase`` in the
compiler facade).
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.exceptions import NotSynthesizableError
from ..core.gates import CNOT, Gate, H, T, TOFFOLI, Tdg, X


def margolus(c1: int, c2: int, t: int) -> List[Gate]:
    """The Margolus relative-phase Toffoli: 4 T/T†, 3 CNOT, 2 H.

    Acts as Toffoli on computational basis states but multiplies the
    |c1 c2 t> = |101> amplitude by -1.
    """
    return [
        H(t),
        T(t),
        CNOT(c2, t),
        Tdg(t),
        CNOT(c1, t),
        T(t),
        CNOT(c2, t),
        Tdg(t),
        H(t),
    ]


def margolus_dagger(c1: int, c2: int, t: int) -> List[Gate]:
    """Inverse of :func:`margolus` (reversed adjoints)."""
    return [gate.inverse() for gate in reversed(margolus(c1, c2, t))]


def rccx_network(c1: int, c2: int, t: int) -> List[Gate]:
    """Alias of :func:`margolus` for expander symmetry with
    :func:`repro.backend.toffoli.toffoli_network`."""
    return margolus(c1, c2, t)


def mcx_relative_phase(
    controls: Sequence[int], target: int, ancillas: Sequence[int]
) -> List[Gate]:
    """Exact MCX via a Margolus-ladder dirty V-chain.

    Structure (k controls, k-2 dirty ancillas a_1..a_{k-2}):

        ladder_down   : Margolus gates loading AND-prefixes toward a_{k-2}
        centre        : true Toffoli (c_k, a_{k-2} -> target)
        ladder_up     : Margolus† gates undoing the prefixes
        ... and the ladder pair once more to cancel dirty-ancilla terms.

    Every Margolus appears an even number of times in compute/uncompute
    position on the same operands, so all relative phases cancel and the
    network equals MCX *exactly* — verified against dense unitaries in
    the tests.  T cost: 7 + (4(k-2) - 2) * 4 instead of 4(k-2) * 7.
    """
    controls = list(controls)
    ancillas = [a for a in ancillas if a != target and a not in controls]
    k = len(controls)
    if k == 0:
        return [X(target)]
    if k == 1:
        return [CNOT(controls[0], target)]
    if k == 2:
        return [TOFFOLI(controls[0], controls[1], target)]
    if len(ancillas) < k - 2:
        if not ancillas:
            raise NotSynthesizableError(
                f"T_{k + 1} gate (X with {k} controls) needs at least one "
                "spare qubit on the device; none available"
            )
        # Ancilla-starved: fall back to the exact Barenco split (its
        # halves recurse through mcx_to_toffoli, still exact).
        from .mcx import mcx_to_toffoli

        return mcx_to_toffoli(controls, target, ancillas)
    chain = list(ancillas[: k - 2])

    # Barenco Lemma 7.2 reads C A C A with C = Toffoli(c_k, a_{k-2}, t)
    # and A = B M B^dagger, where B is the descending ladder
    # G_{k-1}..G_3 (G_i on (c_i, a_{i-2}, a_{i-1})) and M acts on
    # (c_1, c_2, a_1).  The ladder gates appear in compute/uncompute
    # pairs, so replacing them (and M) with Margolus gates leaves the
    # network equal to  D . MCX  for some diagonal D — a relative-phase
    # MCX whose classical action is exact.
    def load(i: int) -> List[Gate]:
        return margolus(controls[i - 1], chain[i - 3], chain[i - 2])

    def unload(i: int) -> List[Gate]:
        return margolus_dagger(controls[i - 1], chain[i - 3], chain[i - 2])

    centre = TOFFOLI(controls[k - 1], chain[k - 3], target)

    block: List[Gate] = []
    for i in range(k - 1, 2, -1):
        block.extend(load(i))
    block.extend(margolus(controls[0], controls[1], chain[0]))
    for i in range(3, k):
        block.extend(unload(i))

    return [centre] + block + [centre] + block
