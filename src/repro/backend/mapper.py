"""The technology-mapping back-end pipeline (Section 4 of the paper).

Given a technology-independent circuit and a target :class:`Device`, the
mapper applies, in order, the procedures enumerated in Section 4:

1. *Placement* — logical qubits are assigned to physical qubits
   (identity placement by default; the paper lists smarter placement as
   future work).
2. *Generalized-Toffoli lowering* — every MCX becomes a Toffoli cascade
   (Barenco), borrowing dirty ancillas from idle device qubits chosen
   nearest the gate's target to keep later rerouting cheap.
3. *Gate-library expansion* — Toffoli / CZ / SWAP become one- and
   two-qubit transmon-library gates (Nielsen & Chuang networks).
4. *CNOT legalization* — with ``route="ctr"`` (the paper's procedure)
   each CNOT is orientation-reversed (Fig. 6) and/or rerouted with CTR
   (Figs. 3-5) so it satisfies the device's coupling map; with
   ``route="sabre"`` the dynamic-layout router
   (:mod:`repro.backend.router`) legalizes the whole stream with a
   moving layout and reports the final output permutation instead of
   swapping back.

The result is the *unoptimized mapping* of the paper's tables; the local
optimizer (:mod:`repro.optimize`) then produces the optimized mapping.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.circuit import QuantumCircuit
from ..core.exceptions import NotSynthesizableError, SynthesisError
from ..devices.device import Device
from .ctr import cnot_with_ctr, route_cost_in_swaps
from .mcx import mcx_to_toffoli
from .toffoli import expand_non_native

#: Routing strategies accepted by ``map_circuit(route=...)``.
ROUTE_STRATEGIES = ("ctr", "sabre")


def identity_placement(circuit: QuantumCircuit, device: Device) -> Dict[int, int]:
    """Logical qubit *i* goes to physical qubit *i*.

    Raises :class:`NotSynthesizableError` when the circuit needs more
    qubits than the device has — the paper's ``N/A`` table entries.
    """
    if circuit.num_qubits > device.num_qubits:
        raise NotSynthesizableError(
            f"{circuit.name or 'circuit'} uses {circuit.num_qubits} qubits "
            f"but {device.name} has only {device.num_qubits}"
        )
    return {q: q for q in range(circuit.num_qubits)}


def lower_mcx_for_device(
    circuit: QuantumCircuit, device: Device, mcx_mode: str = "barenco"
) -> QuantumCircuit:
    """Lower every generalized Toffoli to a Toffoli cascade, borrowing
    dirty ancillas from idle device qubits nearest the gate's target.

    ``mcx_mode="barenco"`` uses the pure-Toffoli dirty V-chain (the
    paper's procedure); ``"relative_phase"`` substitutes Margolus gates
    for the compute/uncompute ladder pairs — still an *exact* MCX, at
    roughly two-thirds the T-count (see
    :mod:`repro.backend.relative_phase`).
    """
    if mcx_mode == "barenco":
        lower = mcx_to_toffoli
    elif mcx_mode == "relative_phase":
        from .relative_phase import mcx_relative_phase

        lower = mcx_relative_phase
    else:
        raise SynthesisError(f"unknown mcx_mode {mcx_mode!r}")
    lowered = QuantumCircuit(device.num_qubits, name=circuit.name)
    for index, gate in enumerate(circuit):
        if gate.name != "MCX":
            lowered.append(gate)
            continue
        busy = set(gate.qubits)
        # Only qubits the coupling graph actually connects to the target
        # can serve as dirty ancillas: a borrowed qubit in another
        # component can never be routed into the V-chain, and offering
        # it to the decomposition used to surface later as a confusing
        # "no SWAP path" routing error instead of a located diagnosis.
        reach: Dict[int, int] = {}
        for q in range(device.num_qubits):
            if q in busy:
                continue
            distance = device.coupling_map.distance(q, gate.target)
            if distance is not None:
                reach[q] = distance
        free = sorted(reach, key=lambda q: (reach[q], q))
        if len(gate.controls) >= 3 and not free:
            raise NotSynthesizableError(
                f"MCX with {len(gate.controls)} controls needs a dirty "
                f"ancilla, but no free qubit of {device.name} is "
                f"connected to target q{gate.target}",
                code="REPRO302",
                gate_index=index,
            )
        lowered.extend(lower(gate.controls, gate.target, free))
    return lowered


def expand_to_library(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand Toffoli/CZ/SWAP gates into the transmon gate library."""
    expanded = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        expanded.extend(expand_non_native(gate))
    return expanded


def legalize_cnots(circuit: QuantumCircuit, device: Device) -> QuantumCircuit:
    """Make every CNOT conform to the device coupling map via orientation
    reversal and CTR rerouting.  Single-qubit gates pass through."""
    coupling_map = device.coupling_map
    legal = QuantumCircuit(device.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.name == "CNOT":
            control, target = gate.qubits
            legal.extend(cnot_with_ctr(control, target, coupling_map))
        elif gate.num_qubits > 1:
            raise SynthesisError(
                f"unexpected multi-qubit gate {gate} after library expansion"
            )
        else:
            legal.append(gate)
    return legal


def map_circuit_outcome(
    circuit: QuantumCircuit,
    device: Device,
    placement: Optional[Dict[int, int]] = None,
    mcx_mode: str = "barenco",
    contracts: Optional[Any] = None,
    tracer: Optional[Any] = None,
    route: str = "ctr",
    restore_layout: bool = False,
) -> "MappingOutcome":
    """Run the full Section 4 mapping pipeline; returns a
    :class:`MappingOutcome` carrying the unoptimized technology-dependent
    circuit on ``device.num_qubits`` wires plus its routing metadata.

    ``route`` selects CNOT legalization: ``"ctr"`` (the paper's
    Connectivity-Tree Reroute, every CNOT restores the layout) or
    ``"sabre"`` (the dynamic-layout router of
    :mod:`repro.backend.router`, which reports the final output
    permutation on :attr:`MappingOutcome.output_permutation` instead of
    swapping back).  With ``restore_layout=True`` the sabre path appends
    the device-legal uncompute SWAP tail, trading gates for wire
    identity; the reported permutation is then empty again.

    ``contracts`` is an optional
    :class:`repro.analysis.contracts.StageContracts` recorder; when
    given, the post-lowering stage contract (Barenco dirty-ancilla
    restoration) runs on the lowered cascade with the placed circuit's
    wires marked active.

    ``tracer`` is an optional :class:`repro.obs.Tracer`; when given,
    each mapping sub-stage (place, lower, expand, route, rebase) records
    a span with its output gate count; the ``map.route`` span also
    carries the strategy and the number of SWAPs it inserted.
    """
    if tracer is None:
        from ..obs import NULL_TRACER

        tracer = NULL_TRACER

    if route not in ROUTE_STRATEGIES:
        raise SynthesisError(
            f"unknown route strategy {route!r} "
            f"(expected one of {', '.join(ROUTE_STRATEGIES)})"
        )
    if placement is None:
        placement = identity_placement(circuit, device)
    _validate_placement(placement, circuit, device)
    with tracer.span("map.place"):
        placed = circuit.remapped(placement, num_qubits=device.num_qubits)
    with tracer.span("map.lower", mcx_mode=mcx_mode) as span:
        lowered = lower_mcx_for_device(placed, device, mcx_mode=mcx_mode)
        span.set(gates=len(lowered))
    if contracts is not None:
        with tracer.span("analyze.lowered"):
            contracts.check(
                "lowered", lowered, active_qubits=placed.used_qubits
            )
    with tracer.span("map.expand") as span:
        expanded = expand_to_library(lowered)
        span.set(gates=len(expanded))
    output_permutation: Dict[int, int] = {}
    with tracer.span("map.route", route=route) as span:
        if route == "sabre":
            from .router import route_sabre, routed_restore_gates

            routing = route_sabre(expanded, device.coupling_map)
            legal = routing.circuit
            swap_count = routing.swap_count
            output_permutation = routing.output_permutation
            if restore_layout and output_permutation:
                tail = routed_restore_gates(
                    output_permutation, device.coupling_map
                )
                legal = QuantumCircuit._trusted(
                    legal.num_qubits,
                    list(legal.gates) + tail,
                    name=legal.name,
                )
                swap_count += sum(1 for g in tail if g.name == "CNOT") // 3
                output_permutation = {}
        else:
            legal = legalize_cnots(expanded, device)
            swap_count = sum(
                2 * route_cost_in_swaps(
                    gate.qubits[0], gate.qubits[1], device.coupling_map
                )
                for gate in expanded
                if gate.name == "CNOT"
            )
        span.set(gates=len(legal), swaps=swap_count)
    if not device.supports_gate("CNOT"):
        # Non-transmon technology target (e.g. trapped-ion): rebase the
        # mapped 1q+CNOT circuit into the device's native library.
        from .rebase import rebase_to_ion

        with tracer.span("map.rebase") as span:
            legal = rebase_to_ion(legal)
            span.set(gates=len(legal))
    if os.environ.get("REPRO_FAULT_INJECT"):
        from ..batch import faults

        if faults.fire("mapper", circuit.name or ""):
            legal = _inject_miscompile(legal)
    return MappingOutcome(
        device=device,
        original=circuit,
        placement=placement,
        unoptimized=legal,
        output_permutation=output_permutation,
        route=route,
        swap_count=swap_count,
    )


def map_circuit(
    circuit: QuantumCircuit,
    device: Device,
    placement: Optional[Dict[int, int]] = None,
    mcx_mode: str = "barenco",
    contracts: Optional[Any] = None,
    tracer: Optional[Any] = None,
    route: str = "ctr",
    restore_layout: bool = False,
) -> QuantumCircuit:
    """Like :func:`map_circuit_outcome`, returning just the circuit.

    With ``route="sabre"`` and ``restore_layout=False`` the returned
    circuit's wires end *permuted* (see
    :attr:`MappingOutcome.output_permutation`); callers that need the
    permutation — notably for verification — should use
    :func:`map_circuit_outcome`.
    """
    return map_circuit_outcome(
        circuit,
        device,
        placement,
        mcx_mode=mcx_mode,
        contracts=contracts,
        tracer=tracer,
        route=route,
        restore_layout=restore_layout,
    ).unoptimized


def _inject_miscompile(circuit: QuantumCircuit) -> QuantumCircuit:
    """Deterministically corrupt a mapped circuit by dropping its last
    entangling gate (falling back to the last gate of any arity).

    Only reachable through the ``miscompile`` action of the
    ``REPRO_FAULT_INJECT`` hook (:mod:`repro.batch.faults`): the seeded
    mapper bug that proves the differential fuzz harness's QMDD oracle
    actually catches miscompiles and that the shrinker can reduce them.
    """
    victim = None
    for index in range(len(circuit) - 1, -1, -1):
        if circuit[index].num_qubits >= 2:
            victim = index
            break
    if victim is None and len(circuit):
        victim = len(circuit) - 1
    if victim is None:
        return circuit
    gates = list(circuit.gates)
    del gates[victim]
    return QuantumCircuit._trusted(
        circuit.num_qubits, gates, name=circuit.name
    )


def _validate_placement(
    placement: Dict[int, int], circuit: QuantumCircuit, device: Device
) -> None:
    physical = list(placement.values())
    if len(set(physical)) != len(physical):
        raise SynthesisError("placement maps two logical qubits to one physical qubit")
    for logical in circuit.used_qubits:
        target = placement.get(logical, logical)
        if not (0 <= target < device.num_qubits):
            raise NotSynthesizableError(
                f"logical qubit {logical} placed on q{target}, outside "
                f"{device.name} (0..{device.num_qubits - 1})"
            )


def check_conformance(circuit: QuantumCircuit, device: Device) -> List[str]:
    """Return a list of violations of the device's constraints (empty when
    the circuit is executable as-is).  Used by tests and the compiler's
    own self-check after mapping."""
    violations: List[str] = []
    for index, gate in enumerate(circuit):
        if not device.supports_gate(gate.name):
            violations.append(f"gate {index}: {gate} not in {device.name} library")
        elif gate.name == "CNOT":
            control, target = gate.qubits
            if not device.coupling_map.allows(control, target):
                violations.append(
                    f"gate {index}: CNOT(q{control}, q{target}) violates "
                    f"{device.name} coupling map"
                )
        elif gate.name == "RXX":
            a, b = gate.qubits
            if not device.coupling_map.coupled(a, b):
                violations.append(
                    f"gate {index}: RXX(q{a}, q{b}) violates "
                    f"{device.name} coupling map"
                )
    return violations


@dataclass
class MappingOutcome:
    """Everything the compiler records about one mapping run."""

    device: Device
    original: QuantumCircuit
    placement: Dict[int, int]
    unoptimized: QuantumCircuit
    #: Final wire permutation ``{input wire -> output wire}`` left by
    #: dynamic-layout routing (identity entries omitted; always empty
    #: for ``route="ctr"`` or ``restore_layout=True``).
    output_permutation: Dict[int, int] = field(default_factory=dict)
    #: Routing strategy that produced :attr:`unoptimized`.
    route: str = "ctr"
    #: SWAPs the router inserted (CTR counts both directions of every
    #: reroute; each SWAP expands to 3 CNOTs plus orientation fixes).
    swap_count: int = 0
