"""The technology-mapping back-end pipeline (Section 4 of the paper).

Given a technology-independent circuit and a target :class:`Device`, the
mapper applies, in order, the procedures enumerated in Section 4:

1. *Placement* — logical qubits are assigned to physical qubits
   (identity placement by default; the paper lists smarter placement as
   future work).
2. *Generalized-Toffoli lowering* — every MCX becomes a Toffoli cascade
   (Barenco), borrowing dirty ancillas from idle device qubits chosen
   nearest the gate's target to keep later rerouting cheap.
3. *Gate-library expansion* — Toffoli / CZ / SWAP become one- and
   two-qubit transmon-library gates (Nielsen & Chuang networks).
4. *CNOT legalization* — each CNOT is orientation-reversed (Fig. 6)
   and/or rerouted with CTR (Figs. 3-5) so it satisfies the device's
   coupling map.

The result is the *unoptimized mapping* of the paper's tables; the local
optimizer (:mod:`repro.optimize`) then produces the optimized mapping.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.circuit import QuantumCircuit
from ..core.exceptions import NotSynthesizableError, SynthesisError
from ..devices.device import Device
from .ctr import cnot_with_ctr
from .mcx import mcx_to_toffoli
from .toffoli import expand_non_native


def identity_placement(circuit: QuantumCircuit, device: Device) -> Dict[int, int]:
    """Logical qubit *i* goes to physical qubit *i*.

    Raises :class:`NotSynthesizableError` when the circuit needs more
    qubits than the device has — the paper's ``N/A`` table entries.
    """
    if circuit.num_qubits > device.num_qubits:
        raise NotSynthesizableError(
            f"{circuit.name or 'circuit'} uses {circuit.num_qubits} qubits "
            f"but {device.name} has only {device.num_qubits}"
        )
    return {q: q for q in range(circuit.num_qubits)}


def lower_mcx_for_device(
    circuit: QuantumCircuit, device: Device, mcx_mode: str = "barenco"
) -> QuantumCircuit:
    """Lower every generalized Toffoli to a Toffoli cascade, borrowing
    dirty ancillas from idle device qubits nearest the gate's target.

    ``mcx_mode="barenco"`` uses the pure-Toffoli dirty V-chain (the
    paper's procedure); ``"relative_phase"`` substitutes Margolus gates
    for the compute/uncompute ladder pairs — still an *exact* MCX, at
    roughly two-thirds the T-count (see
    :mod:`repro.backend.relative_phase`).
    """
    if mcx_mode == "barenco":
        lower = mcx_to_toffoli
    elif mcx_mode == "relative_phase":
        from .relative_phase import mcx_relative_phase

        lower = mcx_relative_phase
    else:
        raise SynthesisError(f"unknown mcx_mode {mcx_mode!r}")
    lowered = QuantumCircuit(device.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.name != "MCX":
            lowered.append(gate)
            continue
        busy = set(gate.qubits)
        free = [q for q in range(device.num_qubits) if q not in busy]
        free.sort(key=lambda q: _distance_or_big(device, q, gate.target))
        lowered.extend(lower(gate.controls, gate.target, free))
    return lowered


def _distance_or_big(device: Device, a: int, b: int) -> int:
    distance = device.coupling_map.distance(a, b)
    return device.num_qubits * 2 if distance is None else distance


def expand_to_library(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand Toffoli/CZ/SWAP gates into the transmon gate library."""
    expanded = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        expanded.extend(expand_non_native(gate))
    return expanded


def legalize_cnots(circuit: QuantumCircuit, device: Device) -> QuantumCircuit:
    """Make every CNOT conform to the device coupling map via orientation
    reversal and CTR rerouting.  Single-qubit gates pass through."""
    coupling_map = device.coupling_map
    legal = QuantumCircuit(device.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.name == "CNOT":
            control, target = gate.qubits
            legal.extend(cnot_with_ctr(control, target, coupling_map))
        elif gate.num_qubits > 1:
            raise SynthesisError(
                f"unexpected multi-qubit gate {gate} after library expansion"
            )
        else:
            legal.append(gate)
    return legal


def map_circuit(
    circuit: QuantumCircuit,
    device: Device,
    placement: Optional[Dict[int, int]] = None,
    mcx_mode: str = "barenco",
    contracts=None,
    tracer=None,
) -> QuantumCircuit:
    """Run the full Section 4 mapping pipeline; returns the unoptimized
    technology-dependent circuit on ``device.num_qubits`` wires.

    ``contracts`` is an optional
    :class:`repro.analysis.contracts.StageContracts` recorder; when
    given, the post-lowering stage contract (Barenco dirty-ancilla
    restoration) runs on the lowered cascade with the placed circuit's
    wires marked active.

    ``tracer`` is an optional :class:`repro.obs.Tracer`; when given,
    each mapping sub-stage (place, lower, expand, route, rebase) records
    a span with its output gate count.
    """
    if tracer is None:
        from ..obs import NULL_TRACER as tracer  # noqa: F811

    if placement is None:
        placement = identity_placement(circuit, device)
    _validate_placement(placement, circuit, device)
    with tracer.span("map.place"):
        placed = circuit.remapped(placement, num_qubits=device.num_qubits)
    with tracer.span("map.lower", mcx_mode=mcx_mode) as span:
        lowered = lower_mcx_for_device(placed, device, mcx_mode=mcx_mode)
        span.set(gates=len(lowered))
    if contracts is not None:
        with tracer.span("analyze.lowered"):
            contracts.check(
                "lowered", lowered, active_qubits=placed.used_qubits
            )
    with tracer.span("map.expand") as span:
        expanded = expand_to_library(lowered)
        span.set(gates=len(expanded))
    with tracer.span("map.route") as span:
        legal = legalize_cnots(expanded, device)
        span.set(gates=len(legal))
    if not device.supports_gate("CNOT"):
        # Non-transmon technology target (e.g. trapped-ion): rebase the
        # mapped 1q+CNOT circuit into the device's native library.
        from .rebase import rebase_to_ion

        with tracer.span("map.rebase") as span:
            legal = rebase_to_ion(legal)
            span.set(gates=len(legal))
    if os.environ.get("REPRO_FAULT_INJECT"):
        from ..batch import faults

        if faults.fire("mapper", circuit.name or ""):
            legal = _inject_miscompile(legal)
    return legal


def _inject_miscompile(circuit: QuantumCircuit) -> QuantumCircuit:
    """Deterministically corrupt a mapped circuit by dropping its last
    entangling gate (falling back to the last gate of any arity).

    Only reachable through the ``miscompile`` action of the
    ``REPRO_FAULT_INJECT`` hook (:mod:`repro.batch.faults`): the seeded
    mapper bug that proves the differential fuzz harness's QMDD oracle
    actually catches miscompiles and that the shrinker can reduce them.
    """
    victim = None
    for index in range(len(circuit) - 1, -1, -1):
        if circuit[index].num_qubits >= 2:
            victim = index
            break
    if victim is None and len(circuit):
        victim = len(circuit) - 1
    if victim is None:
        return circuit
    gates = list(circuit.gates)
    del gates[victim]
    return QuantumCircuit._trusted(
        circuit.num_qubits, gates, name=circuit.name
    )


def _validate_placement(
    placement: Dict[int, int], circuit: QuantumCircuit, device: Device
) -> None:
    physical = list(placement.values())
    if len(set(physical)) != len(physical):
        raise SynthesisError("placement maps two logical qubits to one physical qubit")
    for logical in circuit.used_qubits:
        target = placement.get(logical, logical)
        if not (0 <= target < device.num_qubits):
            raise NotSynthesizableError(
                f"logical qubit {logical} placed on q{target}, outside "
                f"{device.name} (0..{device.num_qubits - 1})"
            )


def check_conformance(circuit: QuantumCircuit, device: Device) -> List[str]:
    """Return a list of violations of the device's constraints (empty when
    the circuit is executable as-is).  Used by tests and the compiler's
    own self-check after mapping."""
    violations: List[str] = []
    for index, gate in enumerate(circuit):
        if not device.supports_gate(gate.name):
            violations.append(f"gate {index}: {gate} not in {device.name} library")
        elif gate.name == "CNOT":
            control, target = gate.qubits
            if not device.coupling_map.allows(control, target):
                violations.append(
                    f"gate {index}: CNOT(q{control}, q{target}) violates "
                    f"{device.name} coupling map"
                )
        elif gate.name == "RXX":
            a, b = gate.qubits
            if not device.coupling_map.coupled(a, b):
                violations.append(
                    f"gate {index}: RXX(q{a}, q{b}) violates "
                    f"{device.name} coupling map"
                )
    return violations


@dataclass
class MappingOutcome:
    """Everything the compiler records about one mapping run."""

    device: Device
    original: QuantumCircuit
    placement: Dict[int, int]
    unoptimized: QuantumCircuit
