"""Connectivity-Tree Reroute (CTR) — Section 4, Figs. 3-5 of the paper.

CTR makes an arbitrary CNOT executable on a device whose coupling map
does not couple the two operands:

1. Build a connectivity tree rooted at the control qubit by expanding
   coupling-map neighbours breadth-first, terminating a branch whenever a
   node already appears in the tree (Fig. 4 pseudocode).  The expansion
   stops as soon as the target enters the tree — the root-to-target tree
   path is then the shortest SWAP route.
2. SWAP the control's quantum state along the route until it sits on a
   qubit coupled with the target (``swap_and_CNOT``).
3. Execute the CNOT (reversing its orientation with Hadamards if the
   link points the wrong way, Fig. 6).
4. SWAP the control state back along the route in reverse
   (``swap_back``), preserving the circuit's original qubit assignment.

SWAPs are compiled to three CNOTs (Fig. 3); on a unidirectional link one
of the three must be orientation-reversed, so a SWAP costs at most
3 CNOT + 4 H = 7 gates, matching the paper's bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.exceptions import SynthesisError
from ..core.gates import Gate
from ..devices.coupling import CouplingMap
from .reversal import orient_cnot

if TYPE_CHECKING:
    from ..devices.calibration import Calibration


def swap_gates(a: int, b: int, coupling_map: CouplingMap) -> List[Gate]:
    """Compile SWAP(a, b) for a coupled pair into native CNOTs (+ H).

    Uses the Fig. 3 identity ``SWAP = CNOT(a,b) CNOT(b,a) CNOT(a,b)``;
    whichever of the two orientations is not native is realized with the
    Fig. 6 Hadamard reversal, giving at most 7 gates.
    """
    if not coupling_map.coupled(a, b):
        raise SynthesisError(
            f"cannot SWAP uncoupled qubits {a}, {b} on {coupling_map.name}"
        )
    gates: List[Gate] = []
    gates.extend(orient_cnot(a, b, coupling_map))
    gates.extend(orient_cnot(b, a, coupling_map))
    gates.extend(orient_cnot(a, b, coupling_map))
    return gates


def find_swap_path(control: int, target: int, coupling_map: CouplingMap) -> List[int]:
    """The connectivity-tree search of Fig. 4.

    Returns the qubit sequence ``[control, ..., target]`` along the
    shortest undirected route.  Raises when the device graph does not
    connect the two qubits.
    """
    path = coupling_map.shortest_path(control, target)
    if path is None:
        raise SynthesisError(
            f"no SWAP path between q{control} and q{target} on "
            f"{coupling_map.name}: qubits lie in disconnected components"
        )
    return path


def cnot_with_ctr(
    control: int,
    target: int,
    coupling_map: CouplingMap,
    path: Optional[List[int]] = None,
) -> List[Gate]:
    """Emit a native-gate sequence implementing CNOT(control, target).

    This is the full ``CNOT_w_CTR`` routine of Fig. 4: if the operands
    are already coupled only orientation fixing happens; otherwise the
    control's state is swapped next to the target, the CNOT executes, and
    the state swaps back.  A precomputed ``path`` (e.g. from the
    noise-aware router) overrides the BFS shortest path.
    """
    if coupling_map.coupled(control, target):
        return orient_cnot(control, target, coupling_map)

    if path is None:
        path = find_swap_path(control, target, coupling_map)
    # path = [control, w1, ..., wk, target]; move control's state to wk.
    gates: List[Gate] = []
    forward_pairs = [(path[i], path[i + 1]) for i in range(len(path) - 2)]
    for a, b in forward_pairs:  # swap_and_CNOT
        gates.extend(swap_gates(a, b, coupling_map))
    gates.extend(orient_cnot(path[-2], target, coupling_map))
    for a, b in reversed(forward_pairs):  # swap_back
        gates.extend(swap_gates(a, b, coupling_map))
    return gates


def cnot_with_noise_aware_ctr(
    control: int,
    target: int,
    coupling_map: CouplingMap,
    calibration: "Calibration",
) -> List[Gate]:
    """CTR variant that routes along the *most reliable* SWAP path.

    Instead of hop count, each undirected link is weighted by the
    calibrated error of the CNOTs a SWAP across it will execute
    (``-log`` of the link's survival probability, so path costs add).
    Extends the paper's cost-function philosophy into routing itself.
    """
    if coupling_map.coupled(control, target):
        return orient_cnot(control, target, coupling_map)

    def link_cost(a: int, b: int) -> float:
        import math

        # A SWAP uses the native orientation twice and the reversed
        # orientation once (Fig. 3 + Fig. 6), whichever direction exists.
        if coupling_map.allows(a, b):
            error = calibration.cnot_error[(a, b)]
        else:
            error = calibration.cnot_error[(b, a)]
        return -3.0 * math.log(max(1e-12, 1.0 - error))

    path = coupling_map.cheapest_path(control, target, link_cost)
    if path is None:
        raise SynthesisError(
            f"no SWAP path between q{control} and q{target} on "
            f"{coupling_map.name}"
        )
    return cnot_with_ctr(control, target, coupling_map, path=path)


def route_cost_in_swaps(control: int, target: int, coupling_map: CouplingMap) -> int:
    """Number of SWAPs CTR will spend (each way) for this CNOT: 0 when
    already coupled, otherwise path length minus 2."""
    if coupling_map.coupled(control, target):
        return 0
    return len(find_swap_path(control, target, coupling_map)) - 2


class ConnectivityTree:
    """Explicit connectivity tree, exposed for inspection and examples.

    :func:`cnot_with_ctr` uses the equivalent BFS in
    :meth:`CouplingMap.shortest_path`; this class materializes the tree
    of Fig. 5 so tools and tests can display the layers that CTR explores.
    """

    def __init__(self, coupling_map: CouplingMap, root: int) -> None:
        self.coupling_map = coupling_map
        self.root = root
        self.parent: Dict[int, Optional[int]] = {root: None}
        self.layers: List[List[int]] = [[root]]

    def grow_until(self, goal: int, max_layers: Optional[int] = None) -> bool:
        """Grow breadth-first layers (``build_branches``) until ``goal``
        joins the tree.  Returns True on success."""
        if goal in self.parent:
            return True
        limit = max_layers if max_layers is not None else self.coupling_map.num_qubits
        while len(self.layers) <= limit:
            frontier = self.layers[-1]
            next_layer: List[int] = []
            for node in frontier:
                for neighbor in self.coupling_map.neighbors(node):
                    if neighbor in self.parent:
                        continue  # already in tree: branch terminates
                    self.parent[neighbor] = node
                    next_layer.append(neighbor)
                    if neighbor == goal:
                        self.layers.append(next_layer)
                        return True
            if not next_layer:
                return False
            self.layers.append(next_layer)
        return goal in self.parent

    def path_to(self, goal: int) -> List[int]:
        """Root-to-goal path through the tree (grow first)."""
        if not self.grow_until(goal):
            raise SynthesisError(
                f"q{goal} unreachable from q{self.root} on {self.coupling_map.name}"
            )
        path = [goal]
        parent = self.parent[goal]
        while parent is not None:
            path.append(parent)
            parent = self.parent[parent]
        path.reverse()
        return path
