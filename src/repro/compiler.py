"""End-to-end compiler facade (the paper's Fig. 2 flow).

:func:`compile_circuit` runs the whole tool on an already-quantum input:
map to the device, optimize under its cost function, formally verify,
and report the paper's metric triples.  :func:`compile_classical_function`
adds the classical front-end: truth table -> minimized ESOP -> reversible
cascade -> the same back-end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Union

from .analysis.contracts import StageContracts
from .analysis.diagnostics import DiagnosticReport
from .core.circuit import QuantumCircuit
from .core.cost import CircuitMetrics, CostFunction
from .devices.device import Device, get_device
from .backend.mapper import identity_placement, map_circuit_outcome
from .obs import NULL_TRACER, Tracer, get_metrics
from .optimize.local import LocalOptimizer
from .verify.equivalence import VerificationReport, require_equivalent
from .frontend.truth_table import TruthTable
from .frontend.cascade import synthesize_truth_table
from .core.exceptions import SynthesisError


@dataclass
class CompilationResult:
    """Everything one compiler invocation produced."""

    original: QuantumCircuit
    device: Device
    unoptimized: QuantumCircuit
    optimized: QuantumCircuit
    unoptimized_metrics: CircuitMetrics
    optimized_metrics: CircuitMetrics
    verification: Optional[VerificationReport]
    synthesis_seconds: float
    placement: Dict[int, int] = field(default_factory=dict)
    #: Final wire permutation ``{input wire -> output wire}`` left by
    #: dynamic-layout routing (``route="sabre"``): the state that
    #: entered physical wire ``v`` leaves :attr:`optimized` on wire
    #: ``output_permutation[v]``.  Empty for the CTR route (which swaps
    #: everything back) and under ``restore_layout=True``.  Verification
    #: already accounts for it; consumers reading output wires must
    #: apply it.
    output_permutation: Dict[int, int] = field(default_factory=dict)
    #: Routing strategy that produced the mapping (``"ctr"``/``"sabre"``).
    route: str = "ctr"
    #: Stage-contract findings recorded during this compile (empty when
    #: everything conformed or analysis was disabled).
    diagnostics: DiagnosticReport = field(default_factory=DiagnosticReport)
    #: Per-stage trace summary (see :mod:`repro.obs.trace`), present when
    #: the compile ran with ``trace=True`` or an explicit tracer.  A
    #: JSON-safe nested-span document; render with
    #: :func:`repro.obs.stage_rows` or export with
    #: :func:`repro.obs.write_chrome_trace`.
    trace: Optional[Dict] = None
    #: Dataflow facts of this compile (JSON-safe), present only when the
    #: caller asserted ``known_zero`` wires: the physical fact set, what
    #: constant propagation deleted/demoted, and the exit basis facts of
    #: the final circuit.  ``None`` on the default path — no analysis
    #: runs without facts.
    dataflow: Optional[Dict] = None

    @property
    def percent_cost_decrease(self) -> float:
        """The paper's Tables 4/6/8 quantity."""
        return self.unoptimized_metrics.percent_decrease_to(self.optimized_metrics)

    @property
    def qasm(self) -> str:
        """The final technology-dependent circuit as OpenQASM 2.0 — the
        tool's output artifact (Fig. 2)."""
        from .io.qasm import to_qasm

        return to_qasm(self.optimized)

    def row(self) -> str:
        """A paper-style table cell: unopt and opt ``T/gates/cost``."""
        return f"{self.unoptimized_metrics}  {self.optimized_metrics}"

    def __str__(self) -> str:
        verified = (
            "unverified"
            if self.verification is None
            else f"verified[{self.verification.method}]"
        )
        extra = f", {self.diagnostics.summary()}" if self.diagnostics else ""
        return (
            f"<compiled {self.original.name or 'circuit'} -> {self.device.name}: "
            f"unopt {self.unoptimized_metrics}, opt {self.optimized_metrics}, "
            f"{verified}, {self.synthesis_seconds * 1e3:.1f} ms{extra}>"
        )


def compile_circuit(
    circuit: QuantumCircuit,
    device: Union[Device, str],
    optimize: bool = True,
    verify: Union[bool, str] = True,
    placement: Union[None, str, Dict[int, int]] = None,
    cost_function: Optional[CostFunction] = None,
    verify_samples: int = 32,
    verify_strategy: str = "miter",
    mcx_mode: str = "barenco",
    analyze: bool = True,
    strict: bool = False,
    trace: bool = False,
    tracer: Optional[Tracer] = None,
    known_zero: Iterable[int] = (),
    route: str = "ctr",
    restore_layout: bool = False,
) -> CompilationResult:
    """Compile a technology-independent circuit for ``device``.

    ``verify`` may be False, True (method chosen automatically: QMDD when
    narrow enough, sparse sampling beyond), or an explicit method name
    (``"qmdd"``, ``"dense"``, ``"sampled"``).  Verification failure raises
    :class:`~repro.core.exceptions.VerificationError` — a mapped output
    never leaves the compiler unless it provably matches its source.
    ``verify_strategy`` picks the QMDD build: ``"miter"`` (incremental
    product against the identity — the fast path) or ``"two_sided"``
    (the paper's build-both-and-compare formulation).

    ``placement`` is an explicit logical→physical dict, a strategy name
    (``"identity"``, ``"greedy"``, ``"refined"`` — see
    :mod:`repro.backend.placement`), or None for the paper's default
    identity placement.

    ``analyze`` runs the static stage contracts
    (:mod:`repro.analysis.contracts`) after each pipeline stage: coupling
    legality and native-gate-set conformance post-mapping and
    post-optimization, Barenco ancilla restoration post-lowering, and
    the cost-monotonicity guard across the optimizer.  In the default
    mode findings are recorded on ``CompilationResult.diagnostics``;
    with ``strict=True`` any error-severity finding raises
    :class:`~repro.core.exceptions.ContractViolation` at the offending
    stage, before verification runs.

    ``trace=True`` (or an explicit ``tracer``) records nested per-stage
    spans — placement, lowering, routing, each optimizer fixpoint
    iteration with its cost delta, verification — and attaches the
    summary to :attr:`CompilationResult.trace`.  Tracing is default-off
    and its disabled cost is a few no-op calls per compile.

    ``known_zero`` asserts that the listed *logical* wires start in |0⟩
    (e.g. a fresh target wire of a single-target-gate cascade, or clean
    hardware ancillas).  The facts are translated through the placement,
    handed to the optimizer's dataflow constant-propagation pass (which
    may delete routing/decomposition gates that are provably inert on
    that subspace) and to verification, which then checks equivalence
    restricted to the same subspace.  Without facts this costs nothing.

    ``route`` selects CNOT legalization: ``"ctr"`` (the paper's
    Connectivity-Tree Reroute — every distant CNOT swaps there and
    back, wires keep their identity) or ``"sabre"`` (dynamic-layout
    routing — about half the SWAPs, but the output wires end permuted;
    the permutation is recorded on
    :attr:`CompilationResult.output_permutation` and verification
    composes its inverse into the equivalence check).  With
    ``restore_layout=True`` the sabre path appends the device-legal
    uncompute SWAP tail instead, for consumers that need wire identity.
    """
    if isinstance(device, str):
        device = get_device(device)
    cost = cost_function or device.cost_function
    contracts = (
        StageContracts(device=device, strict=strict)
        if analyze or strict
        else None
    )
    if tracer is None and trace:
        tracer = Tracer()
    t = tracer if tracer is not None else NULL_TRACER

    start = time.perf_counter()
    with t.span(
        "compile",
        circuit=circuit.name or "circuit",
        device=device.name,
        gates_in=len(circuit),
    ) as root:
        with t.span("placement"):
            if placement is None:
                placement = identity_placement(circuit, device)
            elif isinstance(placement, str):
                from .backend.placement import choose_placement

                placement = choose_placement(
                    circuit, device, strategy=placement
                )
        # Input facts arrive on logical wires; everything downstream of
        # placement (optimizer, verifier) sees physical indices.
        physical_zero = frozenset(
            placement[q]
            for q in known_zero
            if 0 <= q < circuit.num_qubits and q in placement
        )
        if contracts is not None:
            with t.span("analyze.input"):
                contracts.check("input", circuit)
        with t.span("map") as map_span:
            mapping = map_circuit_outcome(
                circuit,
                device,
                placement,
                mcx_mode=mcx_mode,
                contracts=contracts,
                tracer=tracer,
                route=route,
                restore_layout=restore_layout,
            )
            unoptimized = mapping.unoptimized
            output_permutation = mapping.output_permutation
            map_span.set(gates_out=len(unoptimized))
        if contracts is not None:
            with t.span("analyze.mapped"):
                contracts.check("mapped", unoptimized, device=device)
        dataflow_stats = None
        if optimize:
            optimizer = LocalOptimizer(
                cost,
                device.coupling_map,
                gate_set=device.gate_set,
                tracer=tracer,
                known_zero=physical_zero,
            )
            with t.span("optimize") as opt_span:
                optimized = optimizer.run(unoptimized)
                opt_report = getattr(optimizer, "last_report", None)
                dataflow_stats = getattr(optimizer, "last_dataflow", None)
                if opt_report is not None:
                    opt_span.set(
                        rounds=opt_report.rounds,
                        cost_before=opt_report.initial_cost,
                        cost_after=opt_report.final_cost,
                    )
        else:
            optimized = unoptimized
        elapsed = time.perf_counter() - start

        with t.span("metrics"):
            unoptimized_metrics = CircuitMetrics.of(unoptimized, cost)
            optimized_metrics = CircuitMetrics.of(optimized, cost)
        if contracts is not None:
            with t.span("analyze.optimized"):
                contracts.check("optimized", optimized, device=device)
                if optimize:
                    contracts.check_cost(
                        "optimized",
                        unoptimized_metrics.cost,
                        optimized_metrics.cost,
                    )

        report: Optional[VerificationReport] = None
        if verify:
            method = verify if isinstance(verify, str) else "auto"
            with t.span("verify") as verify_span:
                source = circuit.remapped(
                    placement, num_qubits=device.num_qubits
                )
                # Rebased technology targets (no native CNOT, e.g.
                # trapped-ion) equal their sources only up to a global
                # phase per entangler.
                phase_free = not device.supports_gate("CNOT")
                report = require_equivalent(
                    source, optimized, method=method, samples=verify_samples,
                    up_to_global_phase=phase_free,
                    strategy=verify_strategy,
                    known_zero=physical_zero,
                    output_permutation=output_permutation,
                )
                verify_span.set(
                    method=report.method, equivalent=report.equivalent
                )
        root.set(gates_out=len(optimized))

    dataflow_payload: Optional[Dict] = None
    if physical_zero:
        if dataflow_stats is not None:
            # The optimizer's propagation sweep already walked the final
            # circuit; reuse its exit facts instead of re-analyzing.
            exit_facts = dict(dataflow_stats.exit_facts)
        else:  # optimize=False: one explicit analysis pass
            from .analysis.dataflow_analyzers import dataflow_summary

            exit_facts = {
                wire: value
                for wire, value in dataflow_summary(
                    optimized, assume_zero=physical_zero
                )["exit_facts"].items()
                if value in ("zero", "one")
            }
        dataflow_payload = {
            "known_zero": sorted(physical_zero),
            "constant_propagation": (
                dataflow_stats.to_payload()
                if dataflow_stats is not None else None
            ),
            "exit_facts": exit_facts,
        }

    metrics = get_metrics()
    metrics.inc("compile.calls")
    metrics.inc("compile.seconds", elapsed)
    return CompilationResult(
        original=circuit,
        device=device,
        unoptimized=unoptimized,
        optimized=optimized,
        unoptimized_metrics=unoptimized_metrics,
        optimized_metrics=optimized_metrics,
        verification=report,
        synthesis_seconds=elapsed,
        placement=placement,
        output_permutation=output_permutation,
        route=route,
        diagnostics=(
            contracts.report if contracts is not None else DiagnosticReport()
        ),
        trace=tracer.to_summary() if tracer is not None else None,
        dataflow=dataflow_payload,
    )


def compile_classical_function(
    function: Union[TruthTable, str],
    device: Union[Device, str],
    num_inputs: Optional[int] = None,
    effort: str = "fprm",
    **kwargs,
) -> CompilationResult:
    """Full Fig. 2 flow for a classical switching function.

    ``function`` is a :class:`TruthTable` or a hex truth-table string (in
    which case ``num_inputs`` is required).  The front-end produces the
    reversible cascade; the back-end maps it to ``device``.
    """
    if isinstance(function, str):
        if num_inputs is None:
            raise SynthesisError("num_inputs required with a hex function name")
        table = TruthTable.from_hex(function, num_inputs)
        name = f"#{function}"
    else:
        table = function
        name = kwargs.pop("name", "classical")
    cascade = synthesize_truth_table(table, effort=effort, name=name)
    return compile_circuit(cascade, device, **kwargs)
