"""Command-line interface for the synthesis and compilation tool.

The paper describes a *prototype tool*; this CLI is its front door::

    repro devices                          # list synthesis targets
    repro info adder.qc                    # metrics of a circuit file
    repro compile adder.qc --device ibmqx5 -o adder_qx5.qasm
    repro compile --hex 033f --inputs 4 --device ibmqx3
    repro verify original.qc mapped.qasm   # formal equivalence check
    repro fuzz --seed 2019 --iterations 100  # differential fuzzing
    repro fuzz --replay tests/corpus         # regression corpus
    repro serve --port 8400 --cache-dir .repro_cache  # compile daemon

Also runnable as ``python -m repro ...``.

Ctrl-C anywhere exits with status 130; during a batch compile the
completed results are flushed first (see ``docs/robustness.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.exceptions import NotSynthesizableError, ReproError
from .devices import available_devices, get_device
from .io import read_circuit, to_qasm, to_qc, to_real
from .verify import verify_equivalent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Technology-dependent quantum logic synthesis with "
        "QMDD formal verification (Smith & Thornton, ISCA 2019).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    devices = commands.add_parser("devices", help="list synthesis targets")
    devices.set_defaults(handler=cmd_devices)

    info = commands.add_parser("info", help="show metrics of a circuit file")
    info.add_argument("input", help="circuit file (.qasm/.qc/.real)")
    info.set_defaults(handler=cmd_info)

    compile_cmd = commands.add_parser(
        "compile", help="map circuits or a classical function to a device"
    )
    compile_cmd.add_argument("inputs_files", nargs="*", metavar="input",
                             help="circuit file(s) (.qasm/.qc/.real); several "
                                  "files are batch-compiled together")
    compile_cmd.add_argument("--hex", dest="hex_name",
                             help="classical function as a hex truth table")
    compile_cmd.add_argument("--expr", dest="expressions", action="append",
                             help="classical function as a Boolean expression "
                                  "(repeatable for multi-output)")
    compile_cmd.add_argument("--inputs", type=int,
                             help="variable count for --hex")
    compile_cmd.add_argument("--device", required=True,
                             help="target device name (see `repro devices`)")
    compile_cmd.add_argument("-o", "--output", help="write result here "
                             "(.qasm/.qc/.real by extension; default stdout). "
                             "With several inputs: an output directory")
    compile_cmd.add_argument("--placement", default="identity",
                             choices=["identity", "greedy", "refined"])
    compile_cmd.add_argument("--no-optimize", action="store_true",
                             help="emit the raw mapping")
    compile_cmd.add_argument("--verify", default="auto",
                             choices=["auto", "qmdd", "dense", "sampled", "none"])
    compile_cmd.add_argument("--verify-strategy", dest="verify_strategy",
                             default="miter",
                             choices=["miter", "two_sided"],
                             help="QMDD build strategy: incremental miter "
                                  "against the identity (default, fast) or "
                                  "the paper's two-sided root comparison")
    compile_cmd.add_argument("--mcx-mode", default="barenco",
                             choices=["barenco", "relative_phase"],
                             help="generalized-Toffoli lowering strategy")
    compile_cmd.add_argument("--route", default="ctr",
                             choices=["ctr", "sabre"],
                             help="CNOT legalization: the paper's CTR "
                                  "(swap there and back, default) or the "
                                  "dynamic-layout sabre router (fewer SWAPs; "
                                  "output wires end permuted, see "
                                  "docs/performance.md)")
    compile_cmd.add_argument("--restore-layout", action="store_true",
                             help="with --route sabre: append the uncompute "
                                  "SWAP tail so wires keep their identity")
    compile_cmd.add_argument("--strict", action="store_true",
                             help="fail the compile on any stage-contract "
                                  "diagnostic (see `repro lint`)")
    compile_cmd.add_argument("--known-zero", dest="known_zero", default=None,
                             metavar="WIRES",
                             help="comma-separated logical wires asserted to "
                                  "start in |0> (e.g. '2' for a fresh STG "
                                  "target); enables dataflow constant "
                                  "propagation and subspace verification")
    compile_cmd.add_argument("--workers", type=int, default=1,
                             help="worker processes for batch compilation "
                                  "(default 1 = serial)")
    compile_cmd.add_argument("--cache-dir", default=None,
                             help="enable the persistent compilation cache "
                                  "in this directory (e.g. .repro_cache)")
    compile_cmd.add_argument("--timeout", type=float, default=None,
                             help="per-job wall-clock timeout in seconds "
                                  "(default: none)")
    compile_cmd.add_argument("--retries", type=int, default=1,
                             help="retry budget for transient job failures "
                                  "(timeouts, worker crashes; default 1)")
    compile_cmd.add_argument("--profile", action="store_true",
                             help="record per-stage spans and print a "
                                  "wall-time table plus the optimizer's "
                                  "per-iteration cost trajectory")
    compile_cmd.add_argument("--trace-out", dest="trace_out", metavar="FILE",
                             default=None,
                             help="write recorded spans as a Chrome "
                                  "trace_event file (load in chrome://tracing "
                                  "or Perfetto); implies tracing")
    compile_cmd.set_defaults(handler=cmd_compile)

    fuzz = commands.add_parser(
        "fuzz", help="differentially fuzz the compiler against the QMDD "
                     "oracle (see docs/robustness.md)"
    )
    fuzz.add_argument("--seed", type=int, default=2019,
                      help="campaign seed (same seed = same cases)")
    fuzz.add_argument("--iterations", type=int, default=50,
                      help="number of generated cases (default 50)")
    fuzz.add_argument("--budget-seconds", type=float, default=None,
                      help="stop after this much wall-clock time even if "
                           "iterations remain")
    fuzz.add_argument("--max-qubits", type=int, default=5,
                      help="generated circuit width bound (default 5)")
    fuzz.add_argument("--max-gates", type=int, default=12,
                      help="generated cascade length bound (default 12)")
    fuzz.add_argument("--device", action="append", dest="fuzz_devices",
                      help="restrict the device grid (repeatable; default: "
                           "linear5, t5, tokyo20)")
    fuzz.add_argument("--workers", type=int, default=1,
                      help="worker processes for the compile fan-out")
    fuzz.add_argument("--timeout", type=float, default=30.0,
                      help="per-case compile timeout in seconds (default 30)")
    fuzz.add_argument("--verify-strategy", dest="verify_strategy",
                      default="miter", choices=["miter", "two_sided"],
                      help="QMDD oracle build strategy (default miter)")
    fuzz.add_argument("--route", default=None, choices=["ctr", "sabre"],
                      help="pin the routing axis to one strategy "
                           "(default: the campaign sweeps both)")
    fuzz.add_argument("--corpus-dir", default=None,
                      help="save shrunk findings to this regression corpus "
                           "directory (e.g. tests/corpus)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report findings without minimizing them")
    fuzz.add_argument("--replay", metavar="DIR", default=None,
                      help="replay a regression corpus instead of fuzzing; "
                           "exits 1 if any entry still fails")
    fuzz.set_defaults(handler=cmd_fuzz)

    lint = commands.add_parser(
        "lint", help="statically analyze circuit files (no compilation)"
    )
    lint.add_argument("inputs", nargs="+", metavar="input",
                      help="circuit or function file(s) "
                           "(.qasm/.qc/.real/.pla)")
    lint.add_argument("--device", default=None,
                      help="also check coupling-map legality and native "
                           "gate-set conformance for this device")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero on warnings, not just errors")
    lint.add_argument("--format", dest="output_format", default="text",
                      choices=["text", "json"],
                      help="diagnostic output format (default text)")
    lint.add_argument("--dataflow", action="store_true",
                      help="also run the dataflow analyzers (liveness, "
                           "constant propagation; REPRO8xx)")
    lint.add_argument("--assume-zero", dest="assume_zero", default=None,
                      metavar="WIRES",
                      help="comma-separated wires assumed |0> at entry "
                           "(feeds the dataflow constants analyzer)")
    lint.add_argument("--assume-one", dest="assume_one", default=None,
                      metavar="WIRES",
                      help="comma-separated wires assumed |1> at entry")
    lint.add_argument("--observable", default=None, metavar="WIRES",
                      help="comma-separated wires observed at exit (feeds "
                           "the dataflow liveness analyzer)")
    lint.set_defaults(handler=cmd_lint)

    analyze = commands.add_parser(
        "analyze", help="dataflow report for one circuit file: basis-state "
                        "constants, liveness, abstract permutation"
    )
    analyze.add_argument("input", help="circuit or function file "
                                       "(.qasm/.qc/.real/.pla)")
    analyze.add_argument("--assume-zero", dest="assume_zero", default=None,
                         metavar="WIRES",
                         help="comma-separated wires assumed |0> at entry")
    analyze.add_argument("--assume-one", dest="assume_one", default=None,
                         metavar="WIRES",
                         help="comma-separated wires assumed |1> at entry")
    analyze.add_argument("--observable", default=None, metavar="WIRES",
                         help="comma-separated wires observed at exit")
    analyze.add_argument("--format", dest="output_format", default="text",
                         choices=["text", "json"],
                         help="report format (default text)")
    analyze.set_defaults(handler=cmd_analyze)

    serve = commands.add_parser(
        "serve", help="run the long-lived JSON-over-HTTP compile service "
                      "(shared warm cache; see docs/serving.md)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8400,
                       help="bind port (default 8400; 0 picks an ephemeral "
                            "port, announced on stdout)")
    serve.add_argument("--workers", type=int, default=None,
                       help="concurrent compile worker threads "
                            "(default: CPU count, capped at 8)")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="requests allowed to wait beyond the busy "
                            "workers before answering 429 (default 16)")
    serve.add_argument("--cache-dir", default=None,
                       help="persistent compilation cache directory "
                            "(default: memory-only)")
    serve.add_argument("--max-memory-entries", type=int, default=512,
                       help="memory-tier LRU capacity (default 512)")
    serve.add_argument("--max-disk-entries", type=int, default=None,
                       help="disk-tier entry budget (default: unbounded)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    serve.set_defaults(handler=cmd_serve)

    draw = commands.add_parser("draw", help="render a circuit file as ASCII art")
    draw.add_argument("input", help="circuit file (.qasm/.qc/.real)")
    draw.add_argument("--columns", type=int, default=24,
                      help="max drawing columns before truncation")
    draw.add_argument("--params", action="store_true",
                      help="show rotation angles")
    draw.set_defaults(handler=cmd_draw)

    verify = commands.add_parser(
        "verify", help="formally check two circuit files for equivalence"
    )
    verify.add_argument("first")
    verify.add_argument("second")
    verify.add_argument("--method", default="auto",
                        choices=["auto", "qmdd", "dense", "sampled"])
    verify.add_argument("--strategy", default="miter",
                        choices=["miter", "two_sided"],
                        help="QMDD build strategy (default miter)")
    verify.add_argument("--up-to-global-phase", action="store_true")
    verify.set_defaults(handler=cmd_verify)

    return parser


def cmd_devices(args) -> int:
    print(f"{'name':<12} {'qubits':>6} {'complexity':>11}  notes")
    for name in available_devices():
        device = get_device(name)
        notes = []
        if device.is_simulator:
            notes.append("simulator")
        if device.retired:
            notes.append("retired")
        print(
            f"{device.name:<12} {device.num_qubits:>6} "
            f"{device.coupling_complexity:>11.6f}  {', '.join(notes)}"
        )
    return 0


def cmd_info(args) -> int:
    circuit = read_circuit(args.input)
    from .core.cost import CircuitMetrics

    metrics = CircuitMetrics.of(circuit)
    print(f"file      : {args.input}")
    print(f"qubits    : {circuit.num_qubits}")
    print(f"gates     : {metrics.gate_volume}")
    print(f"T count   : {metrics.t_count}")
    print(f"CNOTs     : {circuit.cnot_count}")
    print(f"depth     : {circuit.depth()}")
    print(f"Eqn.2 cost: {metrics.cost:g}")
    print(f"histogram : {circuit.gate_histogram()}")
    return 0


def cmd_compile(args) -> int:
    verify = False if args.verify == "none" else args.verify
    tracing = bool(args.profile or args.trace_out)
    options = {
        "optimize": not args.no_optimize,
        "verify": verify,
        "verify_strategy": args.verify_strategy,
        "placement": args.placement,
        "mcx_mode": args.mcx_mode,
        "route": args.route,
        "restore_layout": args.restore_layout,
        "strict": args.strict,
        "trace": tracing,
    }
    if args.known_zero:
        try:
            options["known_zero"] = tuple(
                int(part) for part in args.known_zero.split(",") if part.strip()
            )
        except ValueError:
            print(f"error: --known-zero expects comma-separated wire "
                  f"indices, got {args.known_zero!r}", file=sys.stderr)
            return 2

    # Collect the circuits to compile (front-end synthesis happens here;
    # the back-end runs through the batch engine below).
    circuits = []
    if args.expressions:
        from .frontend import synthesize_expressions

        circuits.append(synthesize_expressions(args.expressions, name="expr"))
    elif args.hex_name:
        if args.inputs is None:
            print("error: --hex requires --inputs", file=sys.stderr)
            return 2
        from .frontend.cascade import synthesize_truth_table
        from .frontend.truth_table import TruthTable

        table = TruthTable.from_hex(args.hex_name, args.inputs)
        circuits.append(
            synthesize_truth_table(table, name=f"#{args.hex_name}")
        )
    elif args.inputs_files:
        circuits.extend(read_circuit(path) for path in args.inputs_files)
    else:
        print("error: provide a circuit file or --hex/--inputs", file=sys.stderr)
        return 2

    from .batch import CompilationCache, compile_many

    cache = (
        CompilationCache(directory=args.cache_dir) if args.cache_dir else None
    )
    report = compile_many(
        [(circuit, args.device, options) for circuit in circuits],
        workers=args.workers,
        cache=cache,
        timeout=args.timeout,
        retries=args.retries,
    )

    if report.interrupted:
        # Ctrl-C mid-batch: flush whatever finished, then exit 130 like
        # any interrupted Unix tool (128 + SIGINT).
        _emit_batch(report, args.output if len(report) > 1 else None, cache)
        print("interrupted: completed results flushed", file=sys.stderr)
        return 130

    if len(report) == 1:
        entry = report[0]
        if not entry.ok:
            _reraise(entry.error)
        status = _emit_single(entry.result, args.output)
        if tracing:
            _emit_observability(report, args.profile, args.trace_out)
        return status
    status = _emit_batch(report, args.output, cache)
    if tracing:
        _emit_observability(report, args.profile, args.trace_out)
    return status


def _reraise(error) -> None:
    """Surface a captured job error with the CLI's historical exit codes."""
    if error.not_synthesizable:
        raise NotSynthesizableError(error.message)
    raise ReproError(f"{error.exception_type}: {error.message}")


def _emit_single(result, output: Optional[str]) -> int:
    print(f"unoptimized : {result.unoptimized_metrics} (T/gates/cost)",
          file=sys.stderr)
    print(f"optimized   : {result.optimized_metrics}", file=sys.stderr)
    print(f"cost saved  : {result.percent_cost_decrease:.2f}%", file=sys.stderr)
    if result.verification is not None:
        verdict = "EQUIVALENT" if result.verification.equivalent else "MISMATCH"
        print(f"verification: {result.verification.method} -> {verdict}",
              file=sys.stderr)
    print(f"time        : {result.synthesis_seconds * 1e3:.1f} ms",
          file=sys.stderr)
    if result.diagnostics:
        print(f"diagnostics : {result.diagnostics.summary()}", file=sys.stderr)
        for diagnostic in result.diagnostics:
            print(f"  {diagnostic.render()}", file=sys.stderr)

    text = _render(result.optimized, output)
    if output:
        with open(output, "w") as handle:
            handle.write(text)
        print(f"wrote {output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _emit_batch(report, output: Optional[str], cache) -> int:
    """Summarize a multi-circuit batch; write one QASM file per input
    when ``output`` names a directory."""
    import os

    if output is not None and not os.path.isdir(output):
        print("error: with several inputs -o must be a directory",
              file=sys.stderr)
        return 2
    width = max(len(e.job.circuit.name or "circuit") for e in report)
    failures = 0
    for entry in report:
        name = entry.job.circuit.name or "circuit"
        if entry.ok:
            result = entry.result
            cached = " (cached)" if entry.from_cache else ""
            print(
                f"{name:<{width}}  {result.unoptimized_metrics}  ->  "
                f"{result.optimized_metrics}  "
                f"[{result.synthesis_seconds * 1e3:.1f} ms]{cached}",
                file=sys.stderr,
            )
            if output:
                stem = os.path.splitext(os.path.basename(name))[0] or "circuit"
                path = os.path.join(output, f"{stem}.qasm")
                with open(path, "w") as handle:
                    handle.write(_render(result.optimized, path))
                print(f"  wrote {path}", file=sys.stderr)
        else:
            failures += 1
            kind = "N/A" if entry.error.not_synthesizable else "error"
            print(f"{name:<{width}}  {kind}: {entry.error.message}",
                  file=sys.stderr)
    for label, diagnostic in report.diagnostics():
        print(f"  {label}: {diagnostic.render()}", file=sys.stderr)
    for diagnostic in report.health():
        print(f"  {diagnostic.render()}", file=sys.stderr)
    print(f"batch       : {report.summary()}", file=sys.stderr)
    return 1 if failures == len(report) else 0


def _emit_observability(report, profile: bool, trace_out: Optional[str]) -> None:
    """Render the ``--profile`` tables and/or the ``--trace-out`` Chrome
    trace for every traced result in ``report``.

    A cached hit may carry no trace (the stored compile ran without
    tracing); those entries are reported as such, not silently skipped.
    """
    from .obs import write_chrome_trace

    if profile:
        for entry in report:
            if not entry.ok:
                continue
            if not (entry.result.trace and entry.result.trace.get("spans")):
                print(
                    f"profile [{entry.job.label}]: no trace recorded "
                    "(cached result from an unprofiled compile)",
                    file=sys.stderr,
                )
                continue
            _print_profile(entry.job.label, entry.result.trace)
        if report.metrics.get("counters") or report.metrics.get("gauges"):
            _print_metrics(report.metrics)
    if trace_out:
        traced = [
            (entry.job.label, entry.result.trace)
            for entry in report
            if entry.ok and entry.result.trace
            and entry.result.trace.get("spans")
        ]
        if traced:
            count = write_chrome_trace(
                trace_out,
                [trace for _, trace in traced],
                labels=[label for label, _ in traced],
            )
            print(f"wrote {trace_out} ({count} trace events)", file=sys.stderr)
        else:
            print(f"no traces recorded; {trace_out} not written",
                  file=sys.stderr)


def _print_profile(label: str, trace) -> None:
    """One entry's stage table and optimizer cost trajectory."""
    from .obs import optimizer_trajectory, stage_rows

    print(f"profile [{label}]:", file=sys.stderr)
    print(f"  {'stage':<30} {'ms':>9}  {'share':>6}", file=sys.stderr)
    for row in stage_rows(trace):
        name = "  " * row["depth"] + row["name"]
        attrs = " ".join(
            f"{key}={value}" for key, value in row["attrs"].items()
        )
        print(
            f"  {name:<30} {row['seconds'] * 1e3:>9.2f}  "
            f"{row['share'] * 100:>5.1f}%" + (f"  {attrs}" if attrs else ""),
            file=sys.stderr,
        )
    rounds = optimizer_trajectory(trace)
    if rounds:
        print("  optimizer trajectory:", file=sys.stderr)
        for step in rounds:
            verdict = "accepted" if step.get("accepted") else "rejected"
            print(
                f"    round {step.get('round', '?')}: "
                f"cost {step.get('cost_before', '?')} -> "
                f"{step.get('cost_after', '?')}  "
                f"gates {step.get('gates_before', '?')} -> "
                f"{step.get('gates_after', '?')}  "
                f"[{step['seconds'] * 1e3:.2f} ms, {verdict}]",
                file=sys.stderr,
            )


def _print_metrics(snapshot) -> None:
    """The batch's merged metrics registry, counters then gauges."""
    print("metrics:", file=sys.stderr)
    for name, value in sorted(snapshot.get("counters", {}).items()):
        rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
        print(f"  {name:<30} {rendered}", file=sys.stderr)
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        print(f"  {name:<30} {value} (gauge)", file=sys.stderr)


def _render(circuit, output_path: Optional[str]) -> str:
    if output_path and output_path.endswith(".qc"):
        return to_qc(circuit)
    if output_path and output_path.endswith(".real"):
        return to_real(circuit)
    return to_qasm(circuit)


def cmd_lint(args) -> int:
    """Run the static analyzer suite over circuit files; no compilation.

    Exit codes: 0 clean (or warnings without ``--strict``), 1 when any
    error-severity diagnostic is found (or any finding with ``--strict``),
    2 on usage problems (unknown device, unreadable file).
    """
    import json

    from .analysis import (
        DATAFLOW_LINT_ANALYZERS,
        DEFAULT_LINT_ANALYZERS,
        Diagnostic,
        DiagnosticReport,
        lint_circuit,
    )
    from .core.exceptions import ParseError

    try:
        device = get_device(args.device) if args.device else None
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    names = list(DEFAULT_LINT_ANALYZERS)
    options = {}
    if getattr(args, "dataflow", False):
        names.extend(DATAFLOW_LINT_ANALYZERS)
    for key in ("assume_zero", "assume_one", "observable"):
        value = getattr(args, key, None)
        if value is not None:
            options[key] = value
    documents = []
    errors = warnings = 0
    for path in args.inputs:
        try:
            circuit = _load_lintable(path)
        except ParseError as error:
            report = DiagnosticReport([error.diagnostic])
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
        else:
            try:
                report = lint_circuit(
                    circuit, device=device, names=names,
                    options=options or None,
                )
            except ReproError:
                # User-facing input problems keep their historical exit
                # path (main() prints them and exits 1).
                raise
            except Exception as error:
                # An analyzer raising anything else is a bug in the
                # analyzer, not in the user's input: report one located
                # diagnostic instead of a traceback, and exit 2 (usage/
                # tool failure, distinct from "lint found problems").
                crash = Diagnostic.make(
                    "REPRO901",
                    f"analyzer crashed while linting this file: "
                    f"{type(error).__name__}: {error}",
                    filename=path,
                    hint="this is an analyzer bug, not a problem with "
                         "the input; please report it",
                )
                print(crash.render(), file=sys.stderr)
                return 2
        errors += len(report.errors())
        warnings += len(report.warnings())
        documents.append({
            "file": path,
            "diagnostics": report.to_payload(),
            "summary": report.summary(),
        })
        if args.output_format == "text":
            status = report.summary() if report else "clean"
            print(f"{path}: {status}")
            for diagnostic in report:
                print(f"  {diagnostic.render()}")
    if args.output_format == "json":
        print(json.dumps(
            {
                "files": documents,
                "errors": errors,
                "warnings": warnings,
            },
            indent=2,
        ))
    elif len(args.inputs) > 1:
        print(f"total: {errors} error(s), {warnings} warning(s)")
    if errors or (args.strict and warnings):
        return 1
    return 0


def _load_lintable(path: str):
    """Read any lintable input: circuit formats directly, ``.pla``/
    ``.esop`` switching functions through the front-end cascade, and
    fuzz-corpus ``.json`` entries by their embedded circuit."""
    import os

    ext = os.path.splitext(path)[1].lower()
    if ext in (".pla", ".esop"):
        from .frontend.cascade import cascade_from_cubes
        from .io import read_pla

        return cascade_from_cubes(read_pla(path), name=path)
    if ext == ".json":
        import json

        from .batch.serialize import circuit_from_payload

        with open(path) as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "circuit" not in payload:
            raise ReproError(
                f"{path}: not a fuzz-corpus entry (no 'circuit' key)"
            )
        return circuit_from_payload(payload["circuit"])
    return read_circuit(path)


def cmd_analyze(args) -> int:
    """Print the dataflow digest of one circuit: constant-propagation
    facts, liveness (when ``--observable`` is given), and the abstract
    permutation.  Exit 0 always (this is a report, not a gate)."""
    import json

    from .analysis import dataflow_summary

    circuit = _load_lintable(args.input)

    def wires(text):
        if text is None:
            return ()
        return tuple(int(part) for part in text.split(",") if part.strip())

    summary = dataflow_summary(
        circuit,
        assume_zero=wires(args.assume_zero),
        assume_one=wires(args.assume_one),
        observable=(
            wires(args.observable) if args.observable is not None else None
        ),
    )
    if args.output_format == "json":
        print(json.dumps(summary, indent=2))
        return 0
    print(f"file        : {args.input}")
    print(f"width       : {summary['width']}  gates: {summary['gates']}")
    if summary["assume_zero"] or summary["assume_one"]:
        print(f"assumptions : zero={summary['assume_zero']} "
              f"one={summary['assume_one']}")
    print(f"inert gates : {len(summary['inert_gates'])}")
    for record in summary["inert_gates"]:
        print(f"  [{record['gate_index']}] {record['gate']}: "
              f"{record['reason']}")
    print(f"demotable   : {len(summary['demotable_gates'])}")
    for record in summary["demotable_gates"]:
        print(f"  [{record['gate_index']}] {record['gate']} -> "
              f"{record['replacement']}: {record['reason']}")
    if summary["exit_facts"]:
        facts = ", ".join(
            f"{wire}={value}" for wire, value in summary["exit_facts"].items()
        )
        print(f"exit facts  : {facts}")
    if "observable" in summary:
        print(f"observable  : {summary['observable']}")
        print(f"dead gates  : {len(summary['dead_gates'])}")
        for record in summary["dead_gates"]:
            print(f"  [{record['gate_index']}] {record['gate']}")
        print(f"live at entry: {summary['live_at_entry']}")
    perm = summary["permutation"]
    if perm["exact"]:
        shape = "identity" if perm["identity"] else (
            f"{perm['moved_states']}/{perm['size']} states moved"
        )
        print(f"permutation : exact ({shape})")
    else:
        print(f"permutation : ⊤ ({perm['reason']})")
    return 0


def cmd_fuzz(args) -> int:
    """Differential fuzzing front-end: campaign mode by default,
    ``--replay DIR`` to re-check a saved regression corpus.

    Exit codes: 0 clean, 1 on findings (or still-failing corpus
    entries), 130 when interrupted.
    """
    from .fuzz import (
        FuzzConfig,
        entry_from_finding,
        replay_corpus,
        run_fuzz,
        save_entry,
    )

    if args.replay:
        outcomes = replay_corpus(args.replay)
        if not outcomes:
            print(f"corpus {args.replay}: no entries", file=sys.stderr)
            return 0
        failures = 0
        for outcome in outcomes:
            if not outcome.passed:
                failures += 1
            print(outcome.describe())
        print(
            f"replayed {len(outcomes)} entries, {failures} still failing",
            file=sys.stderr,
        )
        return 1 if failures else 0

    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        budget_seconds=args.budget_seconds,
        max_qubits=args.max_qubits,
        max_gates=args.max_gates,
        devices=list(args.fuzz_devices) if args.fuzz_devices else None,
        workers=args.workers,
        timeout=args.timeout,
        verify_strategy=args.verify_strategy,
        route=args.route,
    )
    report = run_fuzz(
        config,
        on_event=lambda message: print(message, file=sys.stderr),
        shrink=not args.no_shrink,
    )
    for finding in report.findings:
        print(finding.describe())
        for gate in finding.minimal_circuit:
            print(f"    {gate}")
    if report.timing_line():
        print(f"timing: {report.timing_line()}", file=sys.stderr)
    if report.metrics.get("counters") or report.metrics.get("gauges"):
        _print_metrics(report.metrics)
    if args.corpus_dir:
        for finding in report.findings:
            path = save_entry(args.corpus_dir, entry_from_finding(finding))
            print(f"saved {path}", file=sys.stderr)
    if report.interrupted:
        return 130
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Run the compile-service daemon until SIGTERM/Ctrl-C; both drain
    in-flight requests first.  Exit 0 after SIGTERM, 130 after Ctrl-C.
    """
    import os

    from .serve import ServeConfig, run_server

    config = ServeConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_dir=args.cache_dir,
        max_memory_entries=args.max_memory_entries,
        max_disk_entries=args.max_disk_entries,
        allow_test_delay=os.environ.get("REPRO_SERVE_TEST_DELAY") == "1",
    )
    return run_server(
        config,
        host=args.host,
        port=args.port,
        verbose=not args.quiet,
    )


def cmd_draw(args) -> int:
    from .drawing import draw_circuit

    circuit = read_circuit(args.input)
    print(draw_circuit(circuit, max_columns=args.columns,
                       show_params=args.params))
    return 0


def cmd_verify(args) -> int:
    first = read_circuit(args.first)
    second = read_circuit(args.second)
    report = verify_equivalent(
        first, second, method=args.method,
        up_to_global_phase=args.up_to_global_phase,
        strategy=args.strategy,
    )
    verdict = "EQUIVALENT" if report.equivalent else "NOT EQUIVALENT"
    print(f"{verdict} (method={report.method} {report.detail})")
    return 0 if report.equivalent else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # Batch paths flush completed work and return 130 themselves;
        # this is the backstop for every other command.
        print("interrupted", file=sys.stderr)
        return 130
    except NotSynthesizableError as error:
        print(f"N/A: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
