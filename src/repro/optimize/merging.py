"""Phase-run merging: collapse runs of diagonal gates on each qubit.

Part of the paper's optimization item 6 (rewriting by logically identical
circuit identities): any sequence of T/S/Z/S†/T† acting on the same qubit
— even when interleaved with gates they commute through, such as the
*controls* of CNOTs — multiplies to a single Z-rotation by a multiple of
π/4 and is re-emitted as at most two library gates (usually one or zero).

Examples: ``T T -> S``, ``S S -> Z``, ``T S T -> Z``, ``T T† -> (nothing)``,
``Z S -> S†`` (exactly, including phase: diag(1,-1)·diag(1,i) = diag(1,-i)).
All merges are phase-exact, so they preserve equivalence in the strict
(not merely global-phase) sense that QMDD verification checks.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate
from .phase import emit_phase, gate_exponent, is_phase_gate


def merge_phase_runs(gates: Sequence[Gate], gate_set=None) -> List[Gate]:
    """One merging sweep.

    Phase gates (including RZ rotations) are withheld in per-qubit
    accumulators and flushed (as a minimal gate sequence) just before the
    first gate that does not commute with a Z-rotation on that qubit, or
    at the end of the cascade.  CNOT/Toffoli/MCX *controls* and other
    diagonal gates do not flush, so phases merge across them.  Runs that
    sum to a multiple of pi/4 re-emit as library gates; other angles
    emit one RZ.
    """
    kept: List[Gate] = []
    pending: dict = {}  # qubit -> accumulated exponent (units of pi/4)

    def flush(qubit: int) -> None:
        exponent = pending.pop(qubit, 0.0)
        kept.extend(emit_phase(exponent, qubit, gate_set))

    for gate in gates:
        if is_phase_gate(gate):
            qubit = gate.qubits[0]
            pending[qubit] = (pending.get(qubit, 0.0) + gate_exponent(gate)) % 8.0
            continue
        for qubit in list(pending):
            if qubit in gate.qubits and not _z_commutes_through(gate, qubit):
                flush(qubit)
        kept.append(gate)
    for qubit in sorted(pending):
        flush(qubit)
    return kept


def _z_commutes_through(gate: Gate, qubit: int) -> bool:
    """True if a Z-rotation on ``qubit`` commutes with ``gate``."""
    if gate.is_diagonal:
        return True
    if gate.name in ("CNOT", "TOFFOLI", "MCX") and qubit in gate.controls:
        return True
    return False


def merge_phases(circuit: QuantumCircuit, gate_set=None) -> QuantumCircuit:
    """Merge phase runs to fixpoint; returns a new circuit.

    ``gate_set`` restricts the emitted gates (see
    :func:`repro.optimize.phase.emit_phase`)."""
    gates: List[Gate] = list(circuit)
    while True:
        merged = merge_phase_runs(gates, gate_set)
        if merged == gates:
            return QuantumCircuit._trusted(
                circuit.num_qubits, merged, name=circuit.name
            )
        gates = merged
