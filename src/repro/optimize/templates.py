"""Circuit-identity rewrites (Section 4, optimization item 6).

These rules replace a partition of gates with a logically identical but
cheaper partition.  Each rule fires only when the gates of the partition
are *adjacent on the qubits they touch* (no intervening gate acts on any
involved qubit), which guarantees the rewrite is local and exact.

Implemented identities (all phase-exact):

* ``H X H  -> Z``  and  ``H Z H -> X``        (Hadamard conjugation)
* ``H_c H_t CNOT(t,c) H_c H_t -> CNOT(c,t)``  (Fig. 6 un-reversal) —
  applied only when the improved orientation is legal on the target
  device, so optimization never breaks coupling-map conformance.
* ``CNOT(a,b) X(a) CNOT(a,b) -> X(a) X(b)``   (control-X propagation)
* ``CNOT(a,b) Z(b) CNOT(a,b) -> Z(a) Z(b)``   (target-Z propagation)

Rules are cost-guarded by the driver in :mod:`repro.optimize.local`:
a rewrite is kept only if the technology cost function decreases.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..core.circuit import QuantumCircuit
from ..core.gates import CNOT, Gate, H, X, Z
from ..devices.coupling import CouplingMap

#: A rule takes (gates, index, coupling_map) and, if its pattern starts at
#: ``index``, returns (indices_consumed, replacement_gates).
Rule = Callable[
    [Sequence[Gate], int, Optional[CouplingMap]],
    Optional[Tuple[List[int], List[Gate]]],
]


#: How far ahead a rule may look for the next gate on a qubit.  Bounds a
#: template sweep to O(n * window); in mapped circuits partner gates are
#: always nearby, so the window does not cost reductions in practice.
LOOKAHEAD_WINDOW = 64


def _next_on_qubits(gates: Sequence[Gate], start: int, qubits: set) -> Optional[int]:
    """Index of the first gate after ``start`` touching any of ``qubits``
    (searching at most :data:`LOOKAHEAD_WINDOW` gates ahead)."""
    limit = min(len(gates), start + 1 + LOOKAHEAD_WINDOW)
    for j in range(start + 1, limit):
        if not qubits.isdisjoint(gates[j].support):
            return j
    return None


def _chain_on_qubits(
    gates: Sequence[Gate], start: int, qubits: set, length: int
) -> Optional[List[int]]:
    """Indices of the next ``length`` consecutive gates on ``qubits``
    starting at ``start`` (which must itself touch them)."""
    indices = [start]
    while len(indices) < length:
        nxt = _next_on_qubits(gates, indices[-1], qubits)
        if nxt is None:
            return None
        indices.append(nxt)
    return indices


def rule_hadamard_conjugation(gates, index, coupling_map=None):
    """``H P H -> conjugate(P)`` on one qubit, for P in {X, Z}."""
    first = gates[index]
    if first.name != "H":
        return None
    qubit = first.qubits[0]
    chain = _chain_on_qubits(gates, index, {qubit}, 3)
    if chain is None:
        return None
    middle, last = gates[chain[1]], gates[chain[2]]
    if last.name != "H" or last.qubits != first.qubits:
        return None
    if middle.qubits != first.qubits:
        return None
    if middle.name == "X":
        return chain, [Z(qubit)]
    if middle.name == "Z":
        return chain, [X(qubit)]
    return None


def _prev_on_qubits(gates: Sequence[Gate], start: int, qubits: set) -> Optional[int]:
    """Index of the last gate before ``start`` touching any of ``qubits``
    (searching at most :data:`LOOKAHEAD_WINDOW` gates back)."""
    floor = max(-1, start - 1 - LOOKAHEAD_WINDOW)
    for j in range(start - 1, floor, -1):
        if not qubits.isdisjoint(gates[j].support):
            return j
    return None


def rule_cnot_unreversal(gates, index, coupling_map=None):
    """Collapse the 5-gate Fig. 6 reversal back to one CNOT when legal.

    Pattern: an H on each operand immediately before and after a CNOT
    (per-qubit timelines), rewritten to the opposite-orientation CNOT.
    On a restricted device the rewrite fires only if the coupling map
    allows the new orientation.
    """
    anchor = gates[index]
    if anchor.name != "H":
        return None
    a = anchor.qubits[0]
    cnot_at = _next_on_qubits(gates, index, {a})
    if cnot_at is None:
        return None
    cnot = gates[cnot_at]
    if cnot.name != "CNOT" or a not in cnot.qubits:
        return None
    b = cnot.qubits[0] if cnot.qubits[1] == a else cnot.qubits[1]
    # H on the partner qubit immediately before the CNOT.
    before_b = _prev_on_qubits(gates, cnot_at, {b})
    if before_b is None or gates[before_b] != H(b):
        return None
    # H on both qubits immediately after the CNOT.
    after_a = _next_on_qubits(gates, cnot_at, {a})
    after_b = _next_on_qubits(gates, cnot_at, {b})
    if after_a is None or after_b is None or after_a == after_b:
        return None
    if gates[after_a] != H(a) or gates[after_b] != H(b):
        return None
    control, target = cnot.qubits
    new_control, new_target = target, control  # reversed orientation
    if coupling_map is not None and not coupling_map.allows(new_control, new_target):
        return None
    consumed = [index, before_b, cnot_at, after_a, after_b]
    return consumed, [CNOT(new_control, new_target)]


def rule_cnot_x_propagation(gates, index, coupling_map=None):
    """``CNOT(a,b) X(a) CNOT(a,b) -> X(a) X(b)`` (and the Z dual on b)."""
    first = gates[index]
    if first.name != "CNOT":
        return None
    a, b = first.qubits
    chain = _chain_on_qubits(gates, index, {a, b}, 3)
    if chain is None:
        return None
    middle, last = gates[chain[1]], gates[chain[2]]
    if last != first:
        return None
    if middle.name == "X" and middle.qubits == (a,):
        return chain, [X(a), X(b)]
    if middle.name == "Z" and middle.qubits == (b,):
        return chain, [Z(a), Z(b)]
    return None


#: Default rule set, in application order.
DEFAULT_RULES: Tuple[Rule, ...] = (
    rule_hadamard_conjugation,
    rule_cnot_unreversal,
    rule_cnot_x_propagation,
)


def apply_templates(
    circuit: QuantumCircuit,
    coupling_map: Optional[CouplingMap] = None,
    rules: Sequence[Rule] = DEFAULT_RULES,
    gate_set=None,
) -> QuantumCircuit:
    """One template sweep: try every rule at every position, left to right.

    Matches are applied greedily; the driver iterates sweeps to fixpoint.
    """
    gates: List[Gate] = list(circuit)
    index = 0
    while index < len(gates):
        matched = None
        for rule in rules:
            matched = rule(gates, index, coupling_map)
            if matched is not None:
                break
        if matched is not None and gate_set is not None:
            consumed, replacement = matched
            if any(g.name not in gate_set for g in replacement):
                matched = None  # rewrite would leave the device library
        if matched is None:
            index += 1
            continue
        consumed, replacement = matched
        consumed_set = set(consumed)
        rebuilt: List[Gate] = []
        inserted = False
        for position, gate in enumerate(gates):
            if position in consumed_set:
                if not inserted:
                    rebuilt.extend(replacement)
                    inserted = True
                continue
            rebuilt.append(gate)
        gates = rebuilt
        # Resume slightly earlier: the rewrite may enable a new match that
        # starts just before the replaced partition.
        index = max(0, min(consumed) - LOOKAHEAD_WINDOW)
    return QuantumCircuit._trusted(circuit.num_qubits, gates, name=circuit.name)
