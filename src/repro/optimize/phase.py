"""Algebra of the library's diagonal phase gates.

``T, S, Z, S†, T†`` are all powers of the same Z-rotation: ``T = Z^(1/4)``
etc.  Representing each as an exponent of ``e^(i*pi/4)`` on the |1>
amplitude lets the optimizer merge any run of phase gates on one qubit
into at most one library gate:

=======  ==================
gate     exponent (mod 8)
=======  ==================
I        0
T        1
S        2
Z        4
S†       6
T†       7
=======  ==================

Exponents 3 and 5 (``TS`` and its adjoint) have no single-gate library
representative; such runs are emitted as two gates.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.gates import Gate

#: gate name -> phase exponent in units of pi/4 (mod 8).
PHASE_EXPONENT = {
    "I": 0,
    "T": 1,
    "S": 2,
    "Z": 4,
    "SDG": 6,
    "TDG": 7,
}

#: exponent -> single library gate name (None for the representable-by-two cases).
_EXPONENT_GATE = {
    0: None,  # identity: emit nothing
    1: "T",
    2: "S",
    3: None,  # S then T
    4: "Z",
    5: None,  # Z then T
    6: "SDG",
    7: "TDG",
}

#: exponent -> minimal gate-name sequence realizing it.
EXPONENT_GATES = {
    0: (),
    1: ("T",),
    2: ("S",),
    3: ("S", "T"),
    4: ("Z",),
    5: ("SDG", "TDG"),
    6: ("SDG",),
    7: ("TDG",),
}


def is_phase_gate(gate: Gate) -> bool:
    """True for single-qubit diagonal gates (I, T, S, Z, S†, T†, RZ)."""
    return gate.name in PHASE_EXPONENT or gate.name == "RZ"


def gate_exponent(gate: Gate) -> float:
    """Phase exponent of a diagonal single-qubit gate in units of pi/4.

    Discrete library gates give integers; RZ gives ``theta / (pi/4)``.
    """
    import math

    if gate.name == "RZ":
        return gate.params[0] / (math.pi / 4.0)
    return float(PHASE_EXPONENT[gate.name])


def emit_phase(exponent: float, qubit: int, gate_set=None) -> List[Gate]:
    """Minimal gate sequence for ``diag(1, e^{i*pi*exponent/4})``.

    Integer exponents (mod 8) come out as discrete library gates (or as
    one RZ when ``gate_set`` is given and lacks them — e.g. the ion
    library); anything else becomes a single RZ rotation.  An exponent
    within tolerance of a multiple of 8 emits nothing.
    """
    import math

    def as_rz() -> List[Gate]:
        angle = (exponent * math.pi / 4.0) % (2 * math.pi)
        if angle > math.pi:
            angle -= 2 * math.pi
        if abs(angle) < 1e-12:
            return []
        return [Gate("RZ", (qubit,), (angle,))]

    rounded = round(exponent)
    if abs(exponent - rounded) < 1e-9:
        discrete = merged_phase_gates(int(rounded) % 8, qubit)
        if gate_set is None or all(g.name in gate_set for g in discrete):
            return discrete
        return as_rz()
    return as_rz()


def merged_phase_gates(exponent: int, qubit: int) -> List[Gate]:
    """Minimal library gate sequence realizing ``diag(1, e^(i*pi*exponent/4))``
    on ``qubit``."""
    return [Gate(name, (qubit,)) for name in EXPONENT_GATES[exponent % 8]]


def single_gate_for(exponent: int) -> Optional[str]:
    """Library gate name for ``exponent`` (mod 8), or None when the phase
    needs zero or two gates."""
    return _EXPONENT_GATE[exponent % 8]
