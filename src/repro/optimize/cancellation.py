"""Identity-partition removal (Section 4, optimization item 5).

The basic local optimization removes partitions of gates that compose to
the identity.  The workhorse is commutation-aware *inverse-pair
cancellation*: while scanning the cascade, each gate looks backwards
through gates it provably commutes with; if it meets its own inverse the
pair annihilates.  Repeating to fixpoint removes nested identity blocks
(e.g. ``H H``, ``CNOT CNOT``, the back-to-back SWAP chains CTR leaves
behind) because every removal exposes new adjacent pairs.

Explicit identity gates (``I``) are always dropped.

Performance: the pairwise ``commutes_with`` / ``is_inverse_of`` verdicts
consulted by every backward walk are memoized at the gate layer (see
``repro.core.gates._commute_verdict``), so repeated sweeps over the same
cascade neighborhoods cost dictionary lookups, not re-derivation.  The
walk itself is bounded by a lookback window (:data:`LOOKBACK_WINDOW` by
default, overridable per call and via
:class:`~repro.optimize.local.LocalOptimizer`) which keeps a sweep
near-linear even on pathological all-commuting cascades.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate, _commute_verdict, _inverse_verdict

#: Default maximum number of gates a cancellation walk may commute
#: through; keeps a sweep near-linear on pathological all-commuting
#: cascades.  Override per call via the ``lookback`` argument or per
#: optimizer via ``LocalOptimizer(lookback_window=...)``.
LOOKBACK_WINDOW = 128


def cancel_inverse_pairs(
    gates: Sequence[Gate], lookback: Optional[int] = None
) -> List[Gate]:
    """One left-to-right cancellation sweep.

    Each incoming gate walks backwards over the kept gates *that share a
    qubit with it*: gates it commutes with are skipped; meeting its
    inverse cancels both; meeting anything else stops the walk.  Gates on
    disjoint qubits always commute, so the walk indexes the kept cascade
    per qubit and never visits them — a sweep is O(n * window) in
    same-support gates, independent of how many unrelated gates are
    interleaved.  ``lookback`` bounds the number of same-support gates a
    walk may commute through (``None`` uses :data:`LOOKBACK_WINDOW`).
    """
    window = LOOKBACK_WINDOW if lookback is None else max(0, int(lookback))
    # Kept gates with tombstones (None) for canceled entries, plus a
    # per-qubit index of positions so walks skip disjoint gates entirely.
    kept: List[Optional[Gate]] = []
    by_qubit: dict = {}
    for gate in gates:
        if gate.name == "I":
            continue
        support = gate.support
        # Head pointer into each qubit's position list, popping tombstones.
        heads = {}
        for q in support:
            stack = by_qubit.get(q)
            if stack is None:
                stack = by_qubit[q] = []
            h = len(stack) - 1
            while h >= 0 and kept[stack[h]] is None:
                stack.pop()
                h -= 1
            heads[q] = h
        canceled = False
        steps = 0
        while steps < window:
            position = -1
            for q in support:
                h = heads[q]
                if h >= 0:
                    candidate = by_qubit[q][h]
                    if candidate > position:
                        position = candidate
            if position < 0:
                break
            previous = kept[position]
            if _inverse_verdict(gate, previous):
                kept[position] = None
                canceled = True
                break
            if not _commute_verdict(gate, previous):
                break
            for q in support:
                h = heads[q]
                if h >= 0 and by_qubit[q][h] == position:
                    h -= 1
                    stack = by_qubit[q]
                    while h >= 0 and kept[stack[h]] is None:
                        h -= 1
                    heads[q] = h
            steps += 1
        if not canceled:
            index = len(kept)
            kept.append(gate)
            for q in support:
                by_qubit[q].append(index)
    return [gate for gate in kept if gate is not None]


def remove_identities(
    circuit: QuantumCircuit, lookback: Optional[int] = None
) -> QuantumCircuit:
    """Cancel inverse pairs to fixpoint; returns a new circuit."""
    gates: List[Gate] = list(circuit)
    while True:
        reduced = cancel_inverse_pairs(gates, lookback)
        if len(reduced) == len(gates):
            return QuantumCircuit._trusted(
                circuit.num_qubits, reduced, name=circuit.name
            )
        gates = reduced
