"""Identity-partition removal (Section 4, optimization item 5).

The basic local optimization removes partitions of gates that compose to
the identity.  The workhorse is commutation-aware *inverse-pair
cancellation*: while scanning the cascade, each gate looks backwards
through gates it provably commutes with; if it meets its own inverse the
pair annihilates.  Repeating to fixpoint removes nested identity blocks
(e.g. ``H H``, ``CNOT CNOT``, the back-to-back SWAP chains CTR leaves
behind) because every removal exposes new adjacent pairs.

Explicit identity gates (``I``) are always dropped.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate


def cancel_inverse_pairs(gates: Sequence[Gate]) -> List[Gate]:
    """One left-to-right cancellation sweep.

    Each incoming gate walks backwards over the kept gates: gates it
    commutes with are skipped; meeting its inverse cancels both; meeting
    anything else stops the walk.
    """
    kept: List[Gate] = []
    for gate in gates:
        if gate.name == "I":
            continue
        if not _try_cancel(kept, gate):
            kept.append(gate)
    return kept


#: Maximum number of gates a cancellation walk may commute through; keeps
#: a sweep near-linear on pathological all-commuting cascades.
LOOKBACK_WINDOW = 128


def _try_cancel(kept: List[Gate], gate: Gate) -> bool:
    """Cancel ``gate`` against some earlier gate if commutation allows.

    Returns True (and removes the partner from ``kept``) on success.
    """
    floor = max(-1, len(kept) - 1 - LOOKBACK_WINDOW)
    for j in range(len(kept) - 1, floor, -1):
        previous = kept[j]
        if gate.is_inverse_of(previous):
            del kept[j]
            return True
        if not gate.commutes_with(previous):
            return False
    return False


def remove_identities(circuit: QuantumCircuit) -> QuantumCircuit:
    """Cancel inverse pairs to fixpoint; returns a new circuit."""
    gates: List[Gate] = list(circuit)
    while True:
        reduced = cancel_inverse_pairs(gates)
        if len(reduced) == len(gates):
            return QuantumCircuit(circuit.num_qubits, reduced, name=circuit.name)
        gates = reduced
