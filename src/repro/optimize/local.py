"""The cost-guarded local optimization driver (Section 4, items 5-6).

The paper applies its two local optimizations "recursively until [the]
technology library cost function cannot be further reduced".
:class:`LocalOptimizer` implements exactly that loop:

1. cancel identity partitions (inverse pairs, through commutation);
2. merge phase-gate runs (``T T -> S`` etc.);
3. rewrite partitions by cheaper circuit identities (templates), with
   coupling-map awareness so mapped circuits stay executable;
4. measure the cost function; repeat while it decreased.

Every accepted round is guaranteed not to increase the cost: if a round
ever produced a costlier circuit (possible in principle with a hostile
custom cost function), the previous circuit is returned instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.circuit import QuantumCircuit
from ..core.cost import CostFunction, TRANSMON_COST
from ..devices.coupling import CouplingMap
from ..obs import NULL_TRACER, get_metrics
from .cancellation import remove_identities
from .merging import merge_phases
from .templates import apply_templates


@dataclass
class OptimizationReport:
    """Per-round cost trace of one optimization run."""

    initial_cost: float
    final_cost: float
    rounds: int
    cost_trace: List[float] = field(default_factory=list)

    @property
    def percent_decrease(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 100.0 * (self.initial_cost - self.final_cost) / self.initial_cost


class LocalOptimizer:
    """Fixpoint driver over the local optimization passes."""

    def __init__(
        self,
        cost_function: CostFunction = TRANSMON_COST,
        coupling_map: Optional[CouplingMap] = None,
        max_rounds: int = 50,
        enable_templates: bool = True,
        gate_set=None,
        lookback_window: Optional[int] = None,
        tracer=None,
    ):
        self.cost_function = cost_function
        self.coupling_map = coupling_map
        self.max_rounds = max_rounds
        self.enable_templates = enable_templates
        self.gate_set = set(gate_set) if gate_set is not None else None
        #: Commutation-walk bound for cancellation sweeps; ``None`` uses
        #: :data:`repro.optimize.cancellation.LOOKBACK_WINDOW`.
        self.lookback_window = lookback_window
        #: Optional :class:`repro.obs.Tracer`; when set, every fixpoint
        #: iteration records an ``optimize.round`` span carrying the
        #: round's cost and gate-count deltas.
        self.tracer = tracer
        self.last_report: Optional[OptimizationReport] = None

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Optimize ``circuit`` until the cost function stops decreasing."""
        t = self.tracer if self.tracer is not None else NULL_TRACER
        best = circuit
        best_cost = self.cost_function(best)
        trace = [best_cost]
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            with t.span("optimize.round", round=rounds) as span:
                candidate = remove_identities(best, self.lookback_window)
                candidate = merge_phases(candidate, self.gate_set)
                if self.enable_templates:
                    candidate = apply_templates(
                        candidate, self.coupling_map, gate_set=self.gate_set
                    )
                    # Templates can expose fresh inverse pairs; clean them
                    # now so the cost comparison sees the full benefit.
                    candidate = remove_identities(
                        candidate, self.lookback_window
                    )
                cost = self.cost_function(candidate)
                trace.append(cost)
                span.set(
                    cost_before=best_cost,
                    cost_after=cost,
                    gates_before=len(best),
                    gates_after=len(candidate),
                    accepted=cost < best_cost,
                )
            if cost < best_cost:
                best, best_cost = candidate, cost
            else:
                break
        self.last_report = OptimizationReport(
            initial_cost=trace[0],
            final_cost=best_cost,
            rounds=rounds,
            cost_trace=trace,
        )
        metrics = get_metrics()
        metrics.inc("optimizer.runs")
        metrics.inc("optimizer.rounds", rounds)
        metrics.inc("optimizer.cost_saved", trace[0] - best_cost)
        return best


def optimize_circuit(
    circuit: QuantumCircuit,
    cost_function: CostFunction = TRANSMON_COST,
    coupling_map: Optional[CouplingMap] = None,
) -> QuantumCircuit:
    """Convenience wrapper: run :class:`LocalOptimizer` once."""
    return LocalOptimizer(cost_function, coupling_map).run(circuit)
