"""The cost-guarded local optimization driver (Section 4, items 5-6).

The paper applies its two local optimizations "recursively until [the]
technology library cost function cannot be further reduced".
:class:`LocalOptimizer` implements exactly that loop:

1. cancel identity partitions (inverse pairs, through commutation);
2. merge phase-gate runs (``T T -> S`` etc.);
3. rewrite partitions by cheaper circuit identities (templates), with
   coupling-map awareness so mapped circuits stay executable;
4. measure the cost function; repeat while it decreased.

Every accepted round is guaranteed not to increase the cost: if a round
ever produced a costlier circuit (possible in principle with a hostile
custom cost function), the previous circuit is returned instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.circuit import QuantumCircuit
from ..core.cost import CostFunction, TRANSMON_COST
from ..devices.coupling import CouplingMap
from ..obs import NULL_TRACER, get_metrics
from .cancellation import remove_identities
from .dataflow import ConstantPropagationStats, propagate_constants
from .merging import merge_phases
from .templates import apply_templates


@dataclass
class OptimizationReport:
    """Per-round cost trace of one optimization run."""

    initial_cost: float
    final_cost: float
    rounds: int
    cost_trace: List[float] = field(default_factory=list)

    @property
    def percent_decrease(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 100.0 * (self.initial_cost - self.final_cost) / self.initial_cost


class LocalOptimizer:
    """Fixpoint driver over the local optimization passes."""

    def __init__(
        self,
        cost_function: CostFunction = TRANSMON_COST,
        coupling_map: Optional[CouplingMap] = None,
        max_rounds: int = 50,
        enable_templates: bool = True,
        gate_set=None,
        lookback_window: Optional[int] = None,
        tracer=None,
        known_zero=(),
        known_one=(),
    ):
        self.cost_function = cost_function
        self.coupling_map = coupling_map
        self.max_rounds = max_rounds
        self.enable_templates = enable_templates
        self.gate_set = set(gate_set) if gate_set is not None else None
        #: Input facts for the dataflow constant-propagation pass: wires
        #: asserted to start in |0⟩ / |1⟩.  Empty (the default) keeps the
        #: pass — and its analysis — entirely out of the loop; rewrites
        #: under facts are exact only on the asserted subspace, so the
        #: caller must verify with the same ``known_zero``.
        self.known_zero = frozenset(known_zero)
        self.known_one = frozenset(known_one)
        #: Commutation-walk bound for cancellation sweeps; ``None`` uses
        #: :data:`repro.optimize.cancellation.LOOKBACK_WINDOW`.
        self.lookback_window = lookback_window
        #: Optional :class:`repro.obs.Tracer`; when set, every fixpoint
        #: iteration records an ``optimize.round`` span carrying the
        #: round's cost and gate-count deltas.
        self.tracer = tracer
        self.last_report: Optional[OptimizationReport] = None
        #: Accumulated :class:`ConstantPropagationStats` of the last run
        #: (``None`` when no input facts were supplied).
        self.last_dataflow: Optional[ConstantPropagationStats] = None

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Optimize ``circuit`` until the cost function stops decreasing."""
        t = self.tracer if self.tracer is not None else NULL_TRACER
        facts = bool(self.known_zero or self.known_one)
        self.last_dataflow = (
            ConstantPropagationStats(self.known_zero, self.known_one)
            if facts else None
        )
        best = circuit
        best_cost = self.cost_function(best)
        trace = [best_cost]
        rounds = 0
        while rounds < self.max_rounds:
            rounds += 1
            with t.span("optimize.round", round=rounds) as span:
                candidate = remove_identities(best, self.lookback_window)
                candidate = merge_phases(candidate, self.gate_set)
                if self.enable_templates:
                    candidate = apply_templates(
                        candidate, self.coupling_map,
                        gate_set=self.gate_set,
                    )
                    # Templates can expose fresh inverse pairs; clean
                    # them now so the cost comparison sees the full
                    # benefit.
                    candidate = remove_identities(
                        candidate, self.lookback_window
                    )
                cost = self.cost_function(candidate)
                trace.append(cost)
                span.set(
                    cost_before=best_cost,
                    cost_after=cost,
                    gates_before=len(best),
                    gates_after=len(candidate),
                    accepted=cost < best_cost,
                )
            if cost < best_cost:
                best, best_cost = candidate, cost
            else:
                break
        # Dataflow constant propagation after the fixpoint: on the raw
        # mapping the facts are usually blocked by basis-changing
        # sandwiches (H conjugations), so the interesting deletions
        # appear only once templates have cleaned those up.  After a
        # rewrite a cancellation sweep (cheap, exact) cleans any
        # inverse pairs the deletion exposed and propagation runs
        # again over the smaller circuit; the common case — nothing to
        # rewrite — is one early-bailing sweep.  Accepted at equal
        # cost too (fewer gates, never costlier).
        while facts and rounds < self.max_rounds:
            rounds += 1
            with t.span("optimize.dataflow") as df_span:
                rewritten, stats = propagate_constants(
                    best, self.known_zero, self.known_one
                )
                df_span.set(
                    deleted=stats.deleted, demoted=stats.demoted,
                    gates_before=len(best), gates_after=len(rewritten),
                )
            assert self.last_dataflow is not None
            self.last_dataflow.merge(stats)
            if not stats.changed:
                break
            rewritten = remove_identities(rewritten, self.lookback_window)
            cost = self.cost_function(rewritten)
            if cost > best_cost:
                break
            best, best_cost = rewritten, cost
            trace.append(cost)
        self.last_report = OptimizationReport(
            initial_cost=trace[0],
            final_cost=best_cost,
            rounds=rounds,
            cost_trace=trace,
        )
        metrics = get_metrics()
        metrics.inc("optimizer.runs")
        metrics.inc("optimizer.rounds", rounds)
        metrics.inc("optimizer.cost_saved", trace[0] - best_cost)
        return best


def optimize_circuit(
    circuit: QuantumCircuit,
    cost_function: CostFunction = TRANSMON_COST,
    coupling_map: Optional[CouplingMap] = None,
    known_zero=(),
    known_one=(),
) -> QuantumCircuit:
    """Convenience wrapper: run :class:`LocalOptimizer` once."""
    return LocalOptimizer(
        cost_function, coupling_map, known_zero=known_zero, known_one=known_one
    ).run(circuit)
