"""Constant-propagation rewriting on top of the dataflow analysis.

:func:`propagate_constants` consumes the basis-state facts computed by
:class:`repro.analysis.domains.BasisStateDomain` and rewrites the
circuit: gates proved inert under the assumed input facts are deleted,
and multi-controlled gates whose controls are provably |1⟩ are demoted
to their cheaper residual (``TOFFOLI`` → ``CNOT`` → ``X``).

Soundness contract: every rewrite is exact *on the subspace* where the
assumed wires really start in |0⟩/|1⟩ (see ``docs/dataflow.md``).  By
unitarity no wire is constant for all inputs, so the pass does nothing
— and runs no analysis at all — unless the caller asserts facts; the
compiler's verification then re-checks the output restricted to that
same subspace (``verify_equivalent(known_zero=...)``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..analysis.domains import (
    BasisStateDomain,
    basis_transfer,
    classify_constant_gate,
)
from ..core.circuit import QuantumCircuit
from ..core.gates import Gate
from ..obs import get_metrics

__all__ = [
    "ConstantPropagationStats",
    "propagate_constants",
]


@dataclass
class ConstantPropagationStats:
    """What one :func:`propagate_constants` run did."""

    known_zero: FrozenSet[int]
    known_one: FrozenSet[int]
    deleted: int = 0
    demoted: int = 0
    #: Basis facts (``"qN" -> "zero"/"one"``) at the exit of the swept
    #: circuit, conditional on the assumed input facts.  Recorded so the
    #: compiler can report exit facts without a second analysis pass.
    exit_facts: Dict[str, str] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return bool(self.deleted or self.demoted)

    def merge(self, other: "ConstantPropagationStats") -> None:
        """Fold a later run's counts into this accumulator."""
        self.deleted += other.deleted
        self.demoted += other.demoted
        # The later run swept the later circuit: its exit facts win.
        self.exit_facts = dict(other.exit_facts)

    def to_payload(self) -> Dict:
        """JSON-safe encoding (rides on ``CompilationResult.dataflow``)."""
        return {
            "known_zero": sorted(self.known_zero),
            "known_one": sorted(self.known_one),
            "deleted": self.deleted,
            "demoted": self.demoted,
        }


def propagate_constants(
    circuit: QuantumCircuit,
    known_zero: Iterable[int] = (),
    known_one: Iterable[int] = (),
) -> Tuple[QuantumCircuit, ConstantPropagationStats]:
    """Delete/demote gates proved inert/demotable under the input facts.

    Returns ``(circuit, stats)``.  With no in-range facts this is an
    exact no-op (the input circuit object is returned unchanged and no
    analysis runs) — the default compile path costs nothing.

    One analysis pass is the fixpoint: the abstract transfer of a gate
    already models its rewritten form (a deleted gate's transfer leaves
    the state unchanged on the fact subspace, a demoted gate's transfer
    agrees with the original's), so downstream classifications account
    for upstream rewrites.

    The sweep is fused (transfer + classify in one walk) and bails out
    the moment no wire holds a basis fact any more: facts can only be
    destroyed, never re-created, once every ZERO/ONE is gone (flips and
    swaps need a basis operand to produce one), so the remaining suffix
    is provably untouched and copied verbatim.  Gates whose operands
    carry no basis fact are likewise skipped without transfer — the
    SUPER/TOP distinction their transfer would refine can never enable
    a later classification.  On typical mapped circuits the assumed
    fact dies within a few gates (basis-changing H sandwiches), so the
    pass degenerates to a short prefix walk.
    """
    width = circuit.num_qubits
    zeros = frozenset(q for q in known_zero if 0 <= q < width)
    ones = frozenset(q for q in known_one if 0 <= q < width)
    stats = ConstantPropagationStats(known_zero=zeros, known_one=ones)
    if not zeros and not ones:
        return circuit, stats
    started = time.perf_counter()
    state = BasisStateDomain(zeros, ones).initial(circuit)
    basis = set(zeros | ones)
    source = circuit.gates
    gates: List[Gate] = []
    for index, gate in enumerate(source):
        if not basis:
            gates.extend(source[index:])
            break
        if gate.name != "I" and basis.isdisjoint(gate.qubits):
            gates.append(gate)
            continue
        fact = classify_constant_gate(state, gate)
        if fact is None:
            gates.append(gate)
        elif fact.kind == "inert":
            stats.deleted += 1
        else:
            assert fact.replacement is not None
            gates.append(fact.replacement)
            stats.demoted += 1
        state = basis_transfer(state, gate)
        for q in gate.qubits:
            if state[q].is_basis:
                basis.add(q)
            else:
                basis.discard(q)
    stats.exit_facts = {
        f"q{q}": state[q].value for q in sorted(basis)
    }
    metrics = get_metrics()
    metrics.inc("dataflow.runs")
    metrics.inc("dataflow.basis-state.runs")
    metrics.inc("dataflow.seconds", time.perf_counter() - started)
    if not stats.changed:
        return circuit, stats
    metrics.inc("dataflow.gates_deleted", stats.deleted)
    metrics.inc("dataflow.gates_demoted", stats.demoted)
    return QuantumCircuit(width, gates, name=circuit.name), stats
