"""Local optimizations: identity removal, phase merging, circuit identities."""

from .cancellation import cancel_inverse_pairs, remove_identities
from .dataflow import ConstantPropagationStats, propagate_constants
from .merging import merge_phase_runs, merge_phases
from .templates import apply_templates, DEFAULT_RULES
from .local import LocalOptimizer, OptimizationReport, optimize_circuit
from .phase import PHASE_EXPONENT, is_phase_gate, merged_phase_gates

__all__ = [
    "cancel_inverse_pairs",
    "remove_identities",
    "ConstantPropagationStats",
    "propagate_constants",
    "merge_phase_runs",
    "merge_phases",
    "apply_templates",
    "DEFAULT_RULES",
    "LocalOptimizer",
    "OptimizationReport",
    "optimize_circuit",
    "PHASE_EXPONENT",
    "is_phase_gate",
    "merged_phase_gates",
]
