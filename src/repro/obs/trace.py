"""Nested-span tracing for the compilation pipeline.

A :class:`Tracer` records a tree of timed spans — one per pipeline
stage (place → lower → expand → route → optimize → verify), with
per-fixpoint-iteration spans inside the optimizer carrying cost and
gate-count deltas.  Spans nest lexically via ``with``::

    tracer = Tracer()
    with tracer.span("compile", device="ibmqx4"):
        with tracer.span("map"):
            ...
        with tracer.span("optimize") as span:
            span.set(rounds=3)

Two exports:

* :meth:`Tracer.to_summary` — a JSON-safe nested dict (stored on
  :attr:`repro.compiler.CompilationResult.trace`, serialized through the
  batch cache, rendered by ``repro compile --profile``);
* :func:`chrome_trace_events` — the same tree as Chrome ``trace_event``
  complete events, loadable in ``chrome://tracing`` / Perfetto
  (``repro compile --trace-out trace.json``).

Tracing is **default-off**: pipeline entry points take
``tracer=None`` and substitute :data:`NULL_TRACER`, whose ``span`` is a
constant no-op object — the disabled cost is one attribute access and a
no-op context enter/exit per instrumented site.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "chrome_trace_events",
    "write_chrome_trace",
    "stage_rows",
    "optimizer_trajectory",
]


class Span:
    """One timed, attributed region of the pipeline.

    ``start``/``end`` are ``time.perf_counter`` values relative to the
    owning tracer's origin, in seconds.  A span is its own context
    manager; entering pushes it on the tracer's stack so inner spans
    become children.
    """

    __slots__ = ("name", "start", "end", "attrs", "children", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict):
        self._tracer = tracer
        self.name = name
        self.start = 0.0
        self.end: Optional[float] = None
        self.attrs = attrs
        self.children: List["Span"] = []

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else self._tracer._now()
        return end - self.start

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop(self, failed=exc_type is not None)
        return False

    def to_summary(self) -> Dict:
        """JSON-safe encoding of this span and its subtree."""
        node: Dict = {
            "name": self.name,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.to_summary() for child in self.children]
        return node


class Tracer:
    """Records a forest of nested spans with a per-tracer time origin."""

    enabled = True

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def span(self, name: str, **attrs) -> Span:
        """A new span; use as ``with tracer.span("stage") as s:``."""
        return Span(self, name, attrs)

    def _push(self, span: Span) -> None:
        span.start = self._now()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span, failed: bool = False) -> None:
        span.end = self._now()
        if failed:
            span.attrs.setdefault("error", True)
        # Tolerate out-of-order exits (an exception unwinding through
        # several spans closes them inside-out, which is the same order).
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.end is None:
                dangling.end = span.end
        if self._stack:
            self._stack.pop()

    def to_summary(self) -> Dict:
        """The whole recorded forest as one JSON-safe document."""
        return {
            "version": 1,
            "spans": [span.to_summary() for span in self.roots],
        }


class _NullSpan:
    """The do-nothing span: context manager and attribute sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in when tracing is off; every span is the shared
    no-op span, so the disabled hot-path cost is a single call."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def to_summary(self) -> Dict:
        return {"version": 1, "spans": []}


#: Shared disabled tracer; ``tracer or NULL_TRACER`` is the idiom at
#: every instrumented entry point.
NULL_TRACER = NullTracer()


# -- Chrome trace_event export ---------------------------------------------


def chrome_trace_events(
    summary: Dict, pid: int = 1, tid: int = 1
) -> List[Dict]:
    """Flatten a :meth:`Tracer.to_summary` document into Chrome
    ``trace_event`` *complete* events (``ph: "X"``, microsecond
    timestamps), the format ``chrome://tracing`` and Perfetto load."""
    events: List[Dict] = []

    def walk(node: Dict) -> None:
        event = {
            "name": node["name"],
            "ph": "X",
            "ts": round(node.get("start", 0.0) * 1e6, 3),
            "dur": round(node.get("duration", 0.0) * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        if node.get("attrs"):
            event["args"] = node["attrs"]
        events.append(event)
        for child in node.get("children", ()):
            walk(child)

    for root in summary.get("spans", ()):
        walk(root)
    return events


def write_chrome_trace(
    path: str,
    summaries: Iterable[Dict],
    labels: Optional[Iterable[str]] = None,
) -> int:
    """Write one or more trace summaries as a Chrome trace file (JSON
    array of events, one ``tid`` lane per summary).  Returns the event
    count."""
    import json

    events: List[Dict] = []
    labels = list(labels) if labels is not None else []
    for tid, summary in enumerate(summaries, start=1):
        events.extend(chrome_trace_events(summary, tid=tid))
        label = labels[tid - 1] if tid - 1 < len(labels) else ""
        if label:
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": label},
            })
    with open(path, "w") as handle:
        json.dump(events, handle, indent=1)
    return len(events)


# -- human-readable digests -------------------------------------------------


def stage_rows(summary: Dict) -> List[Dict]:
    """Per-span rows for a ``--profile`` table: depth-indented name,
    wall milliseconds, share of the root span, and attributes."""
    rows: List[Dict] = []
    roots = summary.get("spans", ())
    total = sum(node.get("duration", 0.0) for node in roots) or 1.0

    def walk(node: Dict, depth: int) -> None:
        duration = node.get("duration", 0.0)
        rows.append({
            "name": node["name"],
            "depth": depth,
            "seconds": duration,
            "share": duration / total,
            "attrs": node.get("attrs", {}),
        })
        for child in node.get("children", ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return rows


def optimizer_trajectory(summary: Dict) -> List[Dict]:
    """The per-fixpoint-iteration optimizer records (``optimize.round``
    spans) in execution order, each with its cost/gate-count attrs."""
    found: List[Dict] = []

    def walk(node: Dict) -> None:
        if node["name"] == "optimize.round":
            entry = {"seconds": node.get("duration", 0.0)}
            entry.update(node.get("attrs", {}))
            found.append(entry)
        for child in node.get("children", ()):
            walk(child)

    for root in summary.get("spans", ()):
        walk(root)
    return found
