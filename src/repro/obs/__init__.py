"""Observability: stage tracing and the unified metrics registry.

The pipeline is judged by per-stage numbers (the paper's Tables 3–8 and
its Section 5 runtime claims), so the pipeline must be able to *show*
its per-stage numbers.  This package provides the two primitives and the
rest of the system threads them through:

* :class:`Tracer` / :class:`Span` — nested wall-clock spans over the
  compile pipeline, exportable as a JSON summary or a Chrome
  ``trace_event`` file (``repro compile --profile`` / ``--trace-out``);
* :class:`MetricsRegistry` — named counters and gauges with
  snapshot/merge semantics that survive process-pool boundaries (the
  batch engine ships each worker's delta back with the job result and
  merges at the coordinator).

See ``docs/observability.md`` for the span model, the metric-name
catalog, and the Chrome-trace howto.
"""

from .metrics import MetricsRegistry, Snapshot, get_metrics
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    chrome_trace_events,
    optimizer_trajectory,
    stage_rows,
    write_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "Snapshot",
    "get_metrics",
    "Tracer",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "chrome_trace_events",
    "write_chrome_trace",
    "stage_rows",
    "optimizer_trajectory",
]
