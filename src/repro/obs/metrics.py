"""Process-local metrics registry with snapshot/merge semantics.

The pipeline's counters used to live in scattered ad-hoc attributes —
QMDD :meth:`~repro.qmdd.manager.QMDDManager.stats`, the compilation
cache's hit/miss integers, the batch engine's retry/timeout tallies —
each with its own reporting path, and none of them surviving a trip
through a ``ProcessPoolExecutor`` worker.  :class:`MetricsRegistry`
unifies them behind one API:

* **counters** are monotonically-accumulating numbers (calls, hits,
  seconds); merging two snapshots *adds* them;
* **gauges** are point-in-time levels (table sizes, cache entries);
  merging keeps the *maximum* (the interesting statistic for "how big
  did the unique table get across workers").

Process-safety model: every process owns one registry
(:func:`get_metrics`).  A worker takes a :meth:`snapshot` before a job
and a :func:`delta <MetricsRegistry.delta>` after it, ships the delta
back inside the job result, and the coordinator :meth:`merge`\\ s it —
counters survive process boundaries *by construction* instead of being
silently dropped.  Snapshots are plain JSON-safe dicts, so they also
pickle cheaply and land in ``BENCH_runtime.json`` unchanged.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Union

Number = Union[int, float]

#: Snapshot shape: ``{"counters": {name: number}, "gauges": {name: number}}``.
Snapshot = Dict[str, Dict[str, Number]]


class MetricsRegistry:
    """A named set of counters and gauges with snapshot/merge support.

    Thread-safe within one process (a lock guards every mutation); the
    cross-process story is snapshot deltas merged at the coordinator,
    never shared mutable state.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins locally)."""
        with self._lock:
            self._gauges[name] = value

    def gauge_max(self, name: str, value: Number) -> None:
        """Raise gauge ``name`` to ``value`` if it is higher."""
        with self._lock:
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = value

    # -- reading -----------------------------------------------------------

    def counter(self, name: str, default: Number = 0) -> Number:
        with self._lock:
            return self._counters.get(name, default)

    def get_gauge(self, name: str, default: Number = 0) -> Number:
        with self._lock:
            return self._gauges.get(name, default)

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges)

    def __bool__(self) -> bool:
        return len(self) > 0

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> Snapshot:
        """A JSON-safe copy of every counter and gauge."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }

    def merge(self, snapshot: Optional[Snapshot]) -> None:
        """Fold a snapshot (typically a worker's delta) into this
        registry: counters add, gauges keep the maximum."""
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                current = self._gauges.get(name)
                if current is None or value > current:
                    self._gauges[name] = value

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()

    def since(self, before: Optional[Snapshot]) -> Snapshot:
        """What happened since ``before`` was snapshotted from *this*
        registry: :meth:`delta` against a fresh snapshot (``before=None``
        means everything so far).  The scrape idiom of a long-lived
        server's ``/metrics`` endpoint — each scrape reports only its
        own interval's counter movement, never history re-counted."""
        after = self.snapshot()
        if before is None:
            return after
        return self.delta(before, after)

    @staticmethod
    def delta(before: Snapshot, after: Snapshot) -> Snapshot:
        """What happened between two snapshots of the *same* registry:
        counter differences (zero-change entries dropped) plus the later
        gauge values."""
        counters: Dict[str, Number] = {}
        earlier = before.get("counters", {})
        for name, value in after.get("counters", {}).items():
            change = value - earlier.get(name, 0)
            if change:
                counters[name] = change
        return {
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
        }


#: The per-process registry.  Workers inherit a fresh one on fork/spawn
#: (module state is per-process), which is exactly what the delta
#: protocol wants: a worker's registry only ever contains its own work.
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """This process's registry (one per process, created at import)."""
    return _GLOBAL
