"""ASCII rendering of quantum circuits.

Renders a :class:`~repro.core.circuit.QuantumCircuit` as column-aligned
wire art, e.g.::

    q0: ─H─●────●─
           │    │
    q1: ───X─●──┼─
             │  │
    q2: ─────X──Z─

Gates are packed greedily into time columns (the same scheduling as
``QuantumCircuit.depth``), controls print as ``●``, X-targets as ``X``,
other targets by their gate letter, and vertical bars connect the
operands of multi-qubit gates.  Intended for examples, docs and
debugging of small circuits; wide circuits truncate gracefully.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .core.circuit import QuantumCircuit
from .core.gates import Gate

#: gate name -> short label used in the drawing.
_LABELS = {
    "I": "I",
    "X": "X",
    "Y": "Y",
    "Z": "Z",
    "H": "H",
    "S": "S",
    "SDG": "S†",
    "T": "T",
    "TDG": "T†",
    "RZ": "Rz",
    "RX": "Rx",
    "RY": "Ry",
}


def _columns(circuit: QuantumCircuit) -> List[List[Gate]]:
    """Greedy left-packing of gates into drawing columns.

    Multi-qubit gates reserve their whole wire *span* (not just their
    operands) so two spanning gates never overlap ambiguously within one
    column.
    """
    level: Dict[int, int] = {}
    columns: List[List[Gate]] = []
    for gate in circuit:
        qubits = gate.qubits
        if len(qubits) > 1:
            span = range(min(qubits), max(qubits) + 1)
        else:
            span = qubits
        start = max((level.get(q, 0) for q in span), default=0)
        while len(columns) <= start:
            columns.append([])
        columns[start].append(gate)
        for q in span:
            level[q] = start + 1
    return columns


def _gate_cells(gate: Gate) -> Dict[int, str]:
    """Per-qubit cell text for one gate."""
    name = gate.name
    if name in ("CNOT", "TOFFOLI", "MCX"):
        cells = {control: "●" for control in gate.controls}
        cells[gate.target] = "X"
        return cells
    if name == "CZ":
        return {gate.qubits[0]: "●", gate.qubits[1]: "Z"}
    if name == "SWAP":
        return {gate.qubits[0]: "x", gate.qubits[1]: "x"}
    if name == "RXX":
        return {gate.qubits[0]: "XX", gate.qubits[1]: "XX"}
    return {gate.qubits[0]: _LABELS.get(name, name)}


def draw_circuit(
    circuit: QuantumCircuit,
    max_columns: Optional[int] = 24,
    show_params: bool = False,
) -> str:
    """Render ``circuit`` as ASCII wire art (see module docstring).

    ``max_columns`` truncates long circuits with an ellipsis;
    ``show_params`` appends rotation angles to their labels.
    """
    n = circuit.num_qubits
    columns = _columns(circuit)
    truncated = max_columns is not None and len(columns) > max_columns
    if truncated:
        columns = columns[:max_columns]

    # Build cell text per column, then pad columns to equal width.
    rendered_columns: List[Dict[int, str]] = []
    connector_columns: List[Dict[int, bool]] = []
    for column in columns:
        cells: Dict[int, str] = {}
        connect: Dict[int, bool] = {}
        for gate in column:
            gate_cells = _gate_cells(gate)
            if show_params and gate.params:
                target = gate.qubits[0]
                angle = ",".join(f"{p:.3g}" for p in gate.params)
                gate_cells[target] = f"{gate_cells[target]}({angle})"
            cells.update(gate_cells)
            if gate.num_qubits > 1:
                low, high = min(gate.qubits), max(gate.qubits)
                for wire in range(low, high):
                    connect[wire] = True  # bar between wire and wire+1
        rendered_columns.append(cells)
        connector_columns.append(connect)

    label_width = len(f"q{n - 1}: ")
    wire_rows = [f"q{q}: ".ljust(label_width) for q in range(n)]
    gap_rows = [" " * label_width for _ in range(max(0, n - 1))]

    for cells, connect in zip(rendered_columns, connector_columns):
        width = max([len(text) for text in cells.values()] + [1])
        for q in range(n):
            text = cells.get(q)
            if text is None:
                # Pass-through wire; a gate spanning this wire (connector
                # bars both above and below) draws a crossing.
                through = connect.get(q - 1, False) and connect.get(q, False)
                body = ("┼" if through else "─").center(width, "─")
                wire_rows[q] += "─" + body + "─"
            else:
                wire_rows[q] += "─" + text.center(width, "─") + "─"
        for w in range(n - 1):
            bar = "│" if connect.get(w, False) else " "
            gap_rows[w] += " " + bar.center(width) + " "

    if truncated:
        for q in range(n):
            wire_rows[q] += " …"

    lines: List[str] = []
    for q in range(n):
        lines.append(wire_rows[q])
        if q < n - 1:
            lines.append(gap_rows[q])
    return "\n".join(lines)
