"""The replayable regression corpus of shrunk fuzz failures.

Every fuzz finding, once shrunk, is worth keeping forever: it is a
minimal input that once made the compiler produce a wrong (or crashing)
answer.  The corpus stores each one as a small JSON document under
``tests/corpus/`` — content-addressed filenames, deterministic payloads
— and the tier-1 suite replays the whole directory on every run, so a
fixed miscompile can never quietly return.

An entry records everything needed to re-run the cell without the
generator: the explicit (shrunk) gate list, the fuzz-grid device name,
the named option vector, plus provenance (case seed, original size,
failure detail) for humans reading the bug report.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..batch.engine import CompileJob
from ..batch.serialize import circuit_from_payload, circuit_to_payload
from ..core.circuit import QuantumCircuit
from ..core.exceptions import ReproError
from .harness import FuzzConfig, FuzzFinding, build_fuzz_device, oracle_check, resolve_options

__all__ = [
    "CORPUS_VERSION",
    "CorpusEntry",
    "ReplayOutcome",
    "entry_from_finding",
    "load_corpus",
    "replay_corpus",
    "replay_entry",
    "save_entry",
]

#: Bump on incompatible entry-schema changes; old entries are rejected
#: loudly (a silently skipped regression test is worse than a failure).
CORPUS_VERSION = 1


@dataclass
class CorpusEntry:
    """One minimal failing (historically) compilation cell."""

    kind: str
    device: str
    options: Dict[str, str]
    circuit: QuantumCircuit
    case_seed: int = 0
    detail: str = ""
    original_gates: int = 0

    @property
    def entry_id(self) -> str:
        """Content address: same cell -> same id, regardless of when or
        where it was found."""
        basis = "\n".join((
            self.kind,
            self.device,
            json.dumps(self.options, sort_keys=True),
            self.circuit.fingerprint(),
        ))
        return hashlib.sha256(basis.encode()).hexdigest()[:16]

    def to_payload(self) -> Dict:
        return {
            "version": CORPUS_VERSION,
            "id": self.entry_id,
            "kind": self.kind,
            "device": self.device,
            "options": dict(sorted(self.options.items())),
            "circuit": circuit_to_payload(self.circuit),
            "case_seed": self.case_seed,
            "detail": self.detail,
            "original_gates": self.original_gates,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "CorpusEntry":
        version = payload.get("version")
        if version != CORPUS_VERSION:
            raise ReproError(
                f"corpus entry version {version!r} unsupported "
                f"(expected {CORPUS_VERSION})"
            )
        return cls(
            kind=payload["kind"],
            device=payload["device"],
            options=dict(payload["options"]),
            circuit=circuit_from_payload(payload["circuit"]),
            case_seed=payload.get("case_seed", 0),
            detail=payload.get("detail", ""),
            original_gates=payload.get("original_gates", 0),
        )


def entry_from_finding(finding: FuzzFinding) -> CorpusEntry:
    """Convert a harness finding into its corpus form (minimal circuit)."""
    return CorpusEntry(
        kind=finding.kind,
        device=finding.device,
        options=dict(finding.options),
        circuit=finding.minimal_circuit,
        case_seed=finding.case_seed,
        detail=finding.detail,
        original_gates=(
            finding.shrunk.original_gates
            if finding.shrunk is not None
            else len(finding.circuit)
        ),
    )


def save_entry(directory: str, entry: CorpusEntry) -> str:
    """Write ``entry`` to ``directory`` (created if needed); returns the
    path.  Content-addressed name, atomic write: saving the same finding
    twice is idempotent and concurrent savers cannot corrupt a file."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{entry.entry_id}.json")
    temp = f"{path}.tmp.{os.getpid()}"
    with open(temp, "w") as handle:
        json.dump(entry.to_payload(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp, path)
    return path


def load_corpus(directory: str) -> List[CorpusEntry]:
    """All entries in ``directory``, sorted by id (deterministic order).
    Missing directory reads as an empty corpus; malformed entries raise."""
    if not os.path.isdir(directory):
        return []
    entries: List[CorpusEntry] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            raise ReproError(f"unreadable corpus entry {path}: {error}")
        entries.append(CorpusEntry.from_payload(payload))
    return entries


@dataclass
class ReplayOutcome:
    """Result of re-running one corpus entry against today's compiler."""

    entry: CorpusEntry
    passed: bool
    detail: str

    def describe(self) -> str:
        status = "pass" if self.passed else "STILL FAILING"
        return (
            f"{self.entry.entry_id} [{self.entry.kind} on "
            f"{self.entry.device}] {status}: {self.detail}"
        )


def replay_entry(
    entry: CorpusEntry, config: Optional[FuzzConfig] = None
) -> ReplayOutcome:
    """Re-run one entry: compile its circuit on its device/options and
    ask the oracle.  ``passed`` means the historical bug stays fixed —
    the cell compiles and the output is equivalent."""
    config = config or FuzzConfig()
    device = build_fuzz_device(entry.device)
    options = resolve_options(entry.options)
    try:
        result = CompileJob.make(entry.circuit, device, options).run()
    except Exception as error:
        return ReplayOutcome(
            entry=entry,
            passed=False,
            detail=f"compile raised {type(error).__name__}: {error}",
        )
    verdict = oracle_check(
        result,
        samples=config.oracle_samples,
        seed=config.seed,
        qmdd_width_limit=config.qmdd_width_limit,
        strategy=config.verify_strategy,
    )
    if not verdict.equivalent:
        return ReplayOutcome(
            entry=entry,
            passed=False,
            detail=f"oracle mismatch (method={verdict.method})",
        )
    return ReplayOutcome(
        entry=entry,
        passed=True,
        detail=f"equivalent (method={verdict.method})",
    )


def replay_corpus(
    directory: str, config: Optional[FuzzConfig] = None
) -> List[ReplayOutcome]:
    """Replay every entry under ``directory`` in deterministic order."""
    return [
        replay_entry(entry, config=config)
        for entry in load_corpus(directory)
    ]
