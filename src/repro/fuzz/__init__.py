"""Differential fuzzing of the compiler against its own QMDD oracle.

The robustness layer's offensive half: seeded random ESOP functions and
reversible cascades are compiled across a grid of coupling topologies
and cost functions, every output is checked against its source with the
QMDD equivalence oracle (sampled for wide cases), and any mismatch is
shrunk to a minimal failing cascade and banked in a replayable
regression corpus.

Quick use::

    from repro.fuzz import run_fuzz

    report = run_fuzz(seed=2019, iterations=100)
    for finding in report.findings:
        print(finding.describe())

CLI: ``repro fuzz --seed 2019 --iterations 100`` (and
``repro fuzz --replay tests/corpus`` to re-check the corpus).
"""

from .generators import (
    generate_case,
    random_cascade,
    random_cube_list,
    random_esop_cascade,
)
from .shrink import ShrinkResult, remove_qubit, shrink_case
from .harness import (
    COST_VARIANTS,
    FUZZ_DEVICES,
    FuzzConfig,
    FuzzFinding,
    FuzzReport,
    build_fuzz_device,
    oracle_check,
    run_fuzz,
)
from .corpus import (
    CORPUS_VERSION,
    CorpusEntry,
    ReplayOutcome,
    entry_from_finding,
    load_corpus,
    replay_corpus,
    replay_entry,
    save_entry,
)

__all__ = [
    "COST_VARIANTS",
    "CORPUS_VERSION",
    "CorpusEntry",
    "FUZZ_DEVICES",
    "FuzzConfig",
    "FuzzFinding",
    "FuzzReport",
    "ReplayOutcome",
    "ShrinkResult",
    "build_fuzz_device",
    "entry_from_finding",
    "generate_case",
    "load_corpus",
    "oracle_check",
    "random_cascade",
    "random_cube_list",
    "random_esop_cascade",
    "remove_qubit",
    "replay_corpus",
    "replay_entry",
    "run_fuzz",
    "save_entry",
    "shrink_case",
]
