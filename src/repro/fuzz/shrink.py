"""Greedy minimization of failing fuzz cases.

A raw fuzz failure is rarely a good bug report: a 12-gate cascade hides
which gate actually tickles the miscompile.  The shrinker reduces a
failing circuit to a (locally) minimal one that *still fails the same
way*, using the classic delta-debugging moves in greedy form:

* **Gate deletion** — drop one gate at a time, keeping any deletion
  after which the failure predicate still holds.
* **Qubit deletion** — drop one wire (and every gate touching it),
  compacting the remaining wires, again keeping what still fails.

Both passes repeat to a fixed point, so the result is 1-minimal under
the move set: removing any single remaining gate or wire makes the bug
disappear.  The predicate is evaluated by *recompiling* the candidate,
so shrinking is deterministic whenever the failure is — which seeded
generation and the seeded oracle guarantee.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate

__all__ = ["shrink_case", "remove_qubit", "ShrinkResult"]

#: Failure predicate: True when the candidate circuit still reproduces
#: the original failure (same oracle mismatch / same exception class).
FailsPredicate = Callable[[QuantumCircuit], bool]


class ShrinkResult:
    """Outcome of one shrink run."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        original_gates: int,
        evaluations: int,
        exhausted_budget: bool,
    ):
        self.circuit = circuit
        self.original_gates = original_gates
        self.evaluations = evaluations
        self.exhausted_budget = exhausted_budget

    @property
    def shrunk_gates(self) -> int:
        return len(self.circuit)

    def __repr__(self) -> str:
        return (
            f"<shrunk {self.original_gates} -> {self.shrunk_gates} gates "
            f"({self.evaluations} evaluations)>"
        )


def remove_qubit(
    circuit: QuantumCircuit, qubit: int
) -> Optional[QuantumCircuit]:
    """``circuit`` without wire ``qubit``: every gate touching it is
    dropped and higher wires shift down.  ``None`` when the removal is
    degenerate (last wire)."""
    if circuit.num_qubits <= 1 or not (0 <= qubit < circuit.num_qubits):
        return None
    kept = [gate for gate in circuit if qubit not in gate.support]
    mapping = {
        q: (q if q < qubit else q - 1)
        for q in range(circuit.num_qubits)
        if q != qubit
    }
    narrowed = QuantumCircuit(
        circuit.num_qubits - 1, name=circuit.name
    )
    for gate in kept:
        narrowed.append(Gate(
            gate.name,
            tuple(mapping[q] for q in gate.qubits),
            gate.params,
        ))
    return narrowed


def shrink_case(
    circuit: QuantumCircuit,
    still_fails: FailsPredicate,
    max_seconds: Optional[float] = None,
    max_evaluations: Optional[int] = None,
) -> ShrinkResult:
    """Greedily minimize ``circuit`` under ``still_fails``.

    ``still_fails(circuit)`` must be True on entry (the caller observed
    the failure); candidates for which the predicate raises are treated
    as not-failing.  ``max_seconds`` / ``max_evaluations`` bound the
    work — when exhausted, the best reduction so far is returned with
    ``exhausted_budget=True``.
    """
    started = time.perf_counter()
    evaluations = 0
    original_gates = len(circuit)

    def budget_left() -> bool:
        if max_seconds is not None:
            if time.perf_counter() - started > max_seconds:
                return False
        if max_evaluations is not None and evaluations >= max_evaluations:
            return False
        return True

    def check(candidate: QuantumCircuit) -> bool:
        nonlocal evaluations
        evaluations += 1
        try:
            return bool(still_fails(candidate))
        except Exception:
            return False

    current = circuit
    changed = True
    while changed and budget_left():
        changed = False
        # Gate deletion, last-to-first so indices stay valid as we drop.
        index = len(current) - 1
        while index >= 0 and budget_left():
            gates = list(current.gates)
            del gates[index]
            candidate = QuantumCircuit._trusted(
                current.num_qubits, gates, name=current.name
            )
            if check(candidate):
                current = candidate
                changed = True
            index -= 1
        # Qubit deletion (drops whole wires the failure does not need).
        for qubit in range(current.num_qubits - 1, -1, -1):
            if not budget_left():
                break
            candidate = remove_qubit(current, qubit)
            if candidate is not None and check(candidate):
                current = candidate
                changed = True
    return ShrinkResult(
        circuit=current,
        original_gates=original_gates,
        evaluations=evaluations,
        exhausted_budget=not budget_left(),
    )
