"""Seeded random inputs for the differential fuzz harness.

Two generator families, mirroring the tool's two front doors:

* **Reversible cascades** — random NOT/CNOT/Toffoli/MCX gate lists, the
  IR every back-end stage must map and optimize correctly.  These are
  classical-reversible by construction, so the QMDD oracle stays cheap
  and a mismatch is always a compiler bug, never numerics.
* **ESOP functions** — random cube lists fed through the Fazel-Thornton
  cascade generator (:mod:`repro.frontend.cascade`), exercising the
  polarity-tracking front-end path the fixed benchmark tables barely
  vary.

Everything is driven by an explicit ``random.Random`` (or an integer
seed): the same seed always yields the same circuit, which is what makes
a fuzz failure replayable and shrinkable.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from ..core.circuit import QuantumCircuit
from ..core.exceptions import ReproError
from ..core.gates import CNOT, MCX, TOFFOLI, Gate, X
from ..frontend.cascade import cascade_from_cubes
from ..io.pla import Cube, CubeList

__all__ = [
    "random_cascade",
    "random_cube_list",
    "random_esop_cascade",
    "generate_case",
]


def _rng(seed: Union[int, random.Random]) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_cascade(
    seed: Union[int, random.Random],
    num_qubits: int,
    num_gates: int,
    max_controls: int = 3,
    name: str = "",
) -> QuantumCircuit:
    """A random NOT/CNOT/Toffoli/MCX cascade on ``num_qubits`` wires.

    Gate arities are capped by the available width; ``max_controls``
    bounds MCX control counts (wide MCX gates explode the mapped size
    and slow the oracle without finding different bugs).
    """
    if num_qubits < 1:
        raise ReproError("random_cascade needs at least one qubit")
    rng = _rng(seed)
    gates: List[Gate] = []
    for _ in range(num_gates):
        arity_cap = min(num_qubits, max_controls + 1)
        arity = rng.randint(1, arity_cap)
        wires = rng.sample(range(num_qubits), arity)
        if arity == 1:
            gates.append(X(wires[0]))
        elif arity == 2:
            gates.append(CNOT(wires[0], wires[1]))
        elif arity == 3:
            gates.append(TOFFOLI(wires[0], wires[1], wires[2]))
        else:
            gates.append(MCX(*wires))
    return QuantumCircuit(num_qubits, gates, name=name or "fuzz-cascade")


def random_cube_list(
    seed: Union[int, random.Random],
    num_inputs: int,
    num_outputs: int,
    num_cubes: int,
) -> CubeList:
    """A random (multi-output) ESOP cube list.

    Literal polarity per variable is uniform over {positive, negative,
    don't-care}; each cube toggles a random non-empty output subset.
    Duplicate cubes are fine — ESOP semantics XOR them away, which is
    itself a path worth fuzzing.
    """
    rng = _rng(seed)
    cubes = CubeList(num_inputs, num_outputs, [])
    for _ in range(num_cubes):
        literals = tuple(
            rng.choice((None, 0, 1)) for _ in range(num_inputs)
        )
        mask = rng.randint(1, (1 << num_outputs) - 1)
        cubes.add(Cube(literals), mask)
    return cubes


def random_esop_cascade(
    seed: Union[int, random.Random],
    num_inputs: int,
    num_outputs: int,
    num_cubes: int,
    name: str = "",
) -> QuantumCircuit:
    """A reversible cascade synthesized from a random ESOP, on
    ``num_inputs + num_outputs`` wires."""
    rng = _rng(seed)
    cubes = random_cube_list(rng, num_inputs, num_outputs, num_cubes)
    circuit = cascade_from_cubes(cubes, name=name or "fuzz-esop")
    return circuit


def generate_case(
    case_seed: int,
    max_qubits: int = 5,
    max_gates: int = 12,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """One deterministic fuzz input from a single integer seed.

    Picks the family (cascade vs ESOP), the width and the size from the
    seed itself, so a corpus entry can be regenerated from nothing but
    ``case_seed`` and the two bounds.
    """
    rng = random.Random(case_seed)
    label = name or f"fuzz-{case_seed}"
    if rng.random() < 0.6:
        num_qubits = rng.randint(2, max(2, max_qubits))
        num_gates = rng.randint(1, max(1, max_gates))
        return random_cascade(rng, num_qubits, num_gates, name=label)
    num_outputs = rng.randint(1, 2)
    num_inputs = rng.randint(
        1, max(1, min(3, max_qubits - num_outputs))
    )
    num_cubes = rng.randint(1, max(1, max_gates // 2))
    return random_esop_cascade(
        rng, num_inputs, num_outputs, num_cubes, name=label
    )
