"""The differential fuzzing harness: generate → compile → QMDD oracle.

The paper's tool is *self-verifying* — every compilation closes with a
QMDD equivalence check (Section 5).  The harness weaponizes that oracle:
seeded random circuits (:mod:`repro.fuzz.generators`) are compiled
across a grid of coupling topologies (linear chain, T-shape, Tokyo-style
lattice) under varying cost functions and lowering modes, with
``verify=False`` so the harness owns the verdict; each output is then
checked against its source with :func:`repro.verify.verify_equivalent`
(canonical QMDD, falling back to seeded sampling for wide cases).

Any oracle mismatch or unexpected compile crash is a **finding**: it is
shrunk to a minimal failing cascade (:mod:`repro.fuzz.shrink`) and can
be saved to the replayable regression corpus (:mod:`repro.fuzz.corpus`).

Compilation runs through :func:`repro.batch.compile_many`, so the
harness inherits the batch engine's fault tolerance — a pathological
generated case that hangs the compiler is timed out and reported, never
allowed to stall the campaign.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..batch.engine import CompileJob, compile_many
from ..compiler import CompilationResult
from ..core.circuit import QuantumCircuit
from ..core.cost import TRANSMON_COST, CostFunction
from ..devices.builders import grid_device, linear_device
from ..devices.coupling import CouplingMap
from ..devices.device import Device
from ..obs import MetricsRegistry, get_metrics
from ..verify.equivalence import verify_equivalent
from .generators import generate_case
from .shrink import ShrinkResult, shrink_case

__all__ = [
    "FUZZ_DEVICES",
    "COST_VARIANTS",
    "FuzzConfig",
    "FuzzFinding",
    "FuzzReport",
    "build_fuzz_device",
    "oracle_check",
    "run_fuzz",
]


def _t_device(name: str = "t5") -> Device:
    """A 5-qubit T-shaped topology: a 4-qubit spine with one branch.

    ::

        0 -> 1 -> 2 -> 3
             |
             v
             4
    """
    return Device(
        name=name,
        coupling_map=CouplingMap(
            5, {0: [1], 1: [2, 4], 2: [3]}, name=name
        ),
    )


def _tokyo_device(name: str = "tokyo20") -> Device:
    """A Tokyo-style 20-qubit lattice: a 4x5 grid plus the diagonal
    couplings that distinguish the IBM Q20 Tokyo family from a plain
    grid."""
    base = grid_device(4, 5)
    diagonals = [
        (1, 7), (2, 6), (3, 9), (4, 8),
        (5, 11), (6, 10), (7, 13), (8, 12),
        (11, 17), (12, 16), (13, 19), (14, 18),
    ]
    couplings: Dict[int, List[int]] = {}
    for control, target in base.coupling_map.directed_edges:
        couplings.setdefault(control, []).append(target)
    for control, target in diagonals:
        couplings.setdefault(control, []).append(target)
    return Device(
        name=name, coupling_map=CouplingMap(20, couplings, name=name)
    )


#: The fuzzing device grid: name -> zero-argument builder.  Kept as
#: builders (not instances) so corpus entries can name their device and
#: replay resolves it fresh.
FUZZ_DEVICES: Dict[str, Callable[[], Device]] = {
    "linear5": lambda: linear_device(5),
    "t5": _t_device,
    "tokyo20": _tokyo_device,
}

#: Cost-function variants swept by the harness: name -> CostFunction
#: (None = the device's own default).  All are content-addressable so
#: fuzz jobs stay cacheable.
COST_VARIANTS: Dict[str, Optional[CostFunction]] = {
    "default": None,
    "cnot-heavy": TRANSMON_COST.with_weights(CNOT=1.0),
    "volume": CostFunction(name="gate-volume", base_weight=1.0),
}

_MCX_MODES = ("barenco", "relative_phase")
_PLACEMENTS = ("identity", "greedy")
_ROUTES = ("ctr", "sabre")

#: Failure classes the harness does NOT report: expected rejections and
#: batch-engine fault handling (reported separately via BatchReport).
_EXPECTED_JOB_ERRORS = frozenset(
    {
        "NotSynthesizableError",
        "JobTimeoutError",
        "KeyboardInterrupt",
    }
)


def build_fuzz_device(name: str) -> Device:
    """Resolve a fuzz-grid device by name, falling back to the global
    device registry (so a corpus entry can also target e.g. ibmqx4)."""
    builder = FUZZ_DEVICES.get(name)
    if builder is not None:
        return builder()
    from ..devices.device import get_device

    return get_device(name)


@dataclass
class FuzzConfig:
    """Bounds and knobs for one fuzz campaign."""

    seed: int = 2019
    iterations: int = 50
    budget_seconds: Optional[float] = None
    max_qubits: int = 5
    max_gates: int = 12
    devices: Optional[List[str]] = None
    workers: int = 1
    #: Per-job wall-clock bound, forwarded to the batch engine.
    timeout: Optional[float] = 30.0
    oracle_samples: int = 32
    qmdd_width_limit: int = 24
    #: QMDD build strategy for the oracle ("miter" or "two_sided").
    verify_strategy: str = "miter"
    #: Pin the routing axis to one strategy ("ctr"/"sabre"); ``None``
    #: (the default) lets every case draw its router like any other
    #: option axis, so the differential oracle covers both.
    route: Optional[str] = None
    shrink_seconds: float = 20.0
    batch_size: int = 8


@dataclass
class FuzzFinding:
    """One confirmed failure: a circuit the compiler got wrong."""

    kind: str  # "miscompile" (oracle mismatch) or "crash"
    label: str
    case_seed: int
    device: str
    options: Dict[str, str]
    detail: str
    circuit: QuantumCircuit
    shrunk: Optional[ShrinkResult] = None

    @property
    def minimal_circuit(self) -> QuantumCircuit:
        return self.shrunk.circuit if self.shrunk is not None else self.circuit

    def describe(self) -> str:
        gates = len(self.minimal_circuit)
        shrunk = (
            f", shrunk {self.shrunk.original_gates}->{gates} gates"
            if self.shrunk is not None
            else ""
        )
        return (
            f"{self.kind} on {self.device} "
            f"[{', '.join(f'{k}={v}' for k, v in sorted(self.options.items()))}]"
            f": {self.detail}{shrunk}"
        )

    def diagnostic(self):
        """This finding as a located ``REPRO710`` diagnostic, for tools
        that aggregate fuzz results with the static-analysis catalog."""
        from ..analysis.diagnostics import Diagnostic

        return Diagnostic.make(
            "REPRO710",
            f"{self.kind} on {self.device}: {self.detail} "
            f"(case seed {self.case_seed}, "
            f"{len(self.minimal_circuit)}-gate reproducer)",
            stage="fuzz",
            hint="replay the corpus entry and bisect the offending pass",
        )


@dataclass
class FuzzReport:
    """Everything one :func:`run_fuzz` campaign produced."""

    config: FuzzConfig
    cases_run: int = 0
    compiles: int = 0
    oracle_checks: int = 0
    expected_rejections: int = 0
    timeouts: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    wall_seconds: float = 0.0
    interrupted: bool = False
    #: Wall seconds per campaign phase (generate / compile / oracle /
    #: shrink), in execution order.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Merged metrics snapshot: batch-engine deltas (including what pool
    #: workers shipped back) plus the harness's own oracle/shrink work.
    metrics: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def timing_line(self) -> str:
        """The per-phase wall-time budget as one readable line."""
        if not self.phase_seconds:
            return ""
        return ", ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in self.phase_seconds.items()
        )

    def summary(self) -> str:
        parts = [
            f"{self.cases_run} cases",
            f"{self.compiles} compiles",
            f"{self.oracle_checks} oracle checks",
            f"{len(self.findings)} findings",
            f"{self.wall_seconds:.1f}s",
        ]
        if self.expected_rejections:
            parts.insert(3, f"{self.expected_rejections} expected rejections")
        if self.timeouts:
            parts.insert(3, f"{self.timeouts} timeouts")
        if self.interrupted:
            parts.append("INTERRUPTED")
        return ", ".join(parts)


def _case_options(
    rng: random.Random, route: Optional[str] = None
) -> Dict[str, str]:
    """Draw one option vector (as corpus-storable names)."""
    return {
        "cost": rng.choice(sorted(COST_VARIANTS)),
        "mcx_mode": rng.choice(_MCX_MODES),
        "placement": rng.choice(_PLACEMENTS),
        "route": route if route is not None else rng.choice(_ROUTES),
    }


def resolve_options(named: Dict[str, str]) -> Dict:
    """Expand a corpus-storable option vector into compile options.

    Corpus entries predating an axis replay with its default (e.g.
    ``route="ctr"``), so old findings keep reproducing bit-identically.
    """
    options: Dict = {
        "verify": False,
        "mcx_mode": named.get("mcx_mode", "barenco"),
        "placement": named.get("placement", "identity"),
        "route": named.get("route", "ctr"),
    }
    cost = COST_VARIANTS.get(named.get("cost", "default"))
    if cost is not None:
        options["cost_function"] = cost
    return options


def oracle_check(
    result: CompilationResult,
    samples: int = 32,
    seed: int = 2019,
    qmdd_width_limit: int = 24,
    strategy: str = "miter",
):
    """The differential oracle: does the optimized output implement the
    source?  QMDD when narrow enough, seeded sampling beyond — the same
    decision the compiler's own closing verification makes, but under
    the harness's control so a NO is a finding, not an exception."""
    source = result.original.remapped(
        result.placement, num_qubits=result.device.num_qubits
    )
    phase_free = not result.device.supports_gate("CNOT")
    return verify_equivalent(
        source,
        result.optimized,
        method="auto",
        up_to_global_phase=phase_free,
        qmdd_width_limit=qmdd_width_limit,
        samples=samples,
        seed=seed,
        strategy=strategy,
        output_permutation=result.output_permutation,
    )


def _still_miscompiles(
    device: Device, named_options: Dict[str, str], config: FuzzConfig
) -> Callable[[QuantumCircuit], bool]:
    """Failure predicate for the shrinker: recompile and re-ask the
    oracle.  A candidate that fails to compile at all does not count —
    that would shrink toward a different bug."""
    options = resolve_options(named_options)

    def predicate(candidate: QuantumCircuit) -> bool:
        if not len(candidate):
            return False
        try:
            job = CompileJob.make(candidate, device, options)
            result = job.run()
        except Exception:
            return False
        report = oracle_check(
            result,
            samples=config.oracle_samples,
            seed=config.seed,
            qmdd_width_limit=config.qmdd_width_limit,
            strategy=config.verify_strategy,
        )
        return not report.equivalent

    return predicate


def _still_crashes(
    device: Device,
    named_options: Dict[str, str],
    exception_type: str,
) -> Callable[[QuantumCircuit], bool]:
    """Failure predicate for crash findings: same exception class."""
    options = resolve_options(named_options)

    def predicate(candidate: QuantumCircuit) -> bool:
        if not len(candidate):
            return False
        try:
            CompileJob.make(candidate, device, options).run()
        except Exception as error:
            return type(error).__name__ == exception_type
        return False

    return predicate


def run_fuzz(
    config: Optional[FuzzConfig] = None,
    on_event: Optional[Callable[[str], None]] = None,
    shrink: bool = True,
    **overrides,
) -> FuzzReport:
    """Run one differential fuzzing campaign.

    ``config`` (or keyword overrides of :class:`FuzzConfig` fields)
    bounds the campaign by ``iterations`` and optionally
    ``budget_seconds`` — whichever is hit first.  ``on_event`` receives
    human-readable progress lines.  Ctrl-C stops the campaign cleanly:
    findings gathered so far are kept and ``report.interrupted`` is set.
    """
    if config is None:
        config = FuzzConfig(**overrides)
    elif overrides:
        raise TypeError("pass either config or keyword overrides, not both")
    emit = on_event or (lambda message: None)
    report = FuzzReport(config=config)
    started = time.perf_counter()
    master = random.Random(config.seed)
    device_names = list(config.devices or sorted(FUZZ_DEVICES))
    devices = {name: build_fuzz_device(name) for name in device_names}
    registry = MetricsRegistry()

    def charge(phase: str, since: float) -> None:
        report.phase_seconds[phase] = (
            report.phase_seconds.get(phase, 0.0)
            + (time.perf_counter() - since)
        )

    def out_of_budget() -> bool:
        if report.cases_run >= config.iterations:
            return True
        if config.budget_seconds is not None:
            return time.perf_counter() - started > config.budget_seconds
        return False

    try:
        while not out_of_budget():
            batch: List[Dict] = []
            generate_started = time.perf_counter()
            while len(batch) < config.batch_size and not out_of_budget():
                case_seed = master.randrange(2**32)
                circuit = generate_case(
                    case_seed,
                    max_qubits=config.max_qubits,
                    max_gates=config.max_gates,
                )
                eligible = [
                    name for name, device in devices.items()
                    if device.num_qubits >= circuit.num_qubits
                ]
                if not eligible:
                    continue
                named = _case_options(master, route=config.route)
                device_name = master.choice(sorted(eligible))
                batch.append({
                    "case_seed": case_seed,
                    "circuit": circuit,
                    "device_name": device_name,
                    "named_options": named,
                })
                report.cases_run += 1
            charge("generate", generate_started)
            if not batch:
                break
            jobs = [
                CompileJob.make(
                    case["circuit"],
                    devices[case["device_name"]],
                    resolve_options(case["named_options"]),
                    label=f"{case['circuit'].name}@{case['device_name']}",
                )
                for case in batch
            ]
            compile_started = time.perf_counter()
            batch_report = compile_many(
                jobs,
                workers=config.workers,
                timeout=config.timeout,
            )
            charge("compile", compile_started)
            registry.merge(batch_report.metrics)
            report.compiles += len(batch_report)
            if batch_report.interrupted:
                report.interrupted = True
            for case, entry in zip(batch, batch_report):
                # Oracle checks and shrinking run in this process; their
                # verify/qmdd counters land in the process-global
                # registry, so capture them as a delta.
                local_before = get_metrics().snapshot()
                oracle_started = time.perf_counter()
                finding = _judge(case, entry, config, report, emit)
                charge("oracle", oracle_started)
                if finding is not None:
                    if shrink:
                        shrink_started = time.perf_counter()
                        _shrink_finding(
                            finding, devices[case["device_name"]], config
                        )
                        charge("shrink", shrink_started)
                    report.findings.append(finding)
                    emit(f"FINDING {finding.describe()}")
                registry.merge(
                    MetricsRegistry.delta(
                        local_before, get_metrics().snapshot()
                    )
                )
            if report.interrupted:
                break
    except KeyboardInterrupt:
        report.interrupted = True
    report.wall_seconds = time.perf_counter() - started
    report.metrics = registry.snapshot()
    emit(f"fuzz done: {report.summary()}")
    return report


def _judge(
    case: Dict,
    entry,
    config: FuzzConfig,
    report: FuzzReport,
    emit: Callable[[str], None],
) -> Optional[FuzzFinding]:
    """Classify one compiled cell: finding, expected rejection, or pass."""
    if entry.error is not None:
        if entry.error.timed_out:
            report.timeouts += 1
            return None
        if entry.error.exception_type in _EXPECTED_JOB_ERRORS:
            report.expected_rejections += 1
            return None
        return FuzzFinding(
            kind="crash",
            label=entry.job.label,
            case_seed=case["case_seed"],
            device=case["device_name"],
            options=case["named_options"],
            detail=str(entry.error),
            circuit=case["circuit"],
        )
    verdict = oracle_check(
        entry.result,
        samples=config.oracle_samples,
        seed=config.seed,
        qmdd_width_limit=config.qmdd_width_limit,
        strategy=config.verify_strategy,
    )
    report.oracle_checks += 1
    if verdict.equivalent:
        return None
    return FuzzFinding(
        kind="miscompile",
        label=entry.job.label,
        case_seed=case["case_seed"],
        device=case["device_name"],
        options=case["named_options"],
        detail=(
            f"oracle mismatch (method={verdict.method} {verdict.detail})"
        ),
        circuit=case["circuit"],
    )


def _shrink_finding(
    finding: FuzzFinding, device: Device, config: FuzzConfig
) -> None:
    """Attach a shrunk minimal circuit to ``finding`` (best effort)."""
    if finding.kind == "miscompile":
        predicate = _still_miscompiles(device, finding.options, config)
    else:
        exception_type = finding.detail.split(":", 1)[0]
        predicate = _still_crashes(device, finding.options, exception_type)
    if not predicate(finding.circuit):
        return  # not deterministically reproducible; keep the original
    finding.shrunk = shrink_case(
        finding.circuit,
        predicate,
        max_seconds=config.shrink_seconds,
    )
