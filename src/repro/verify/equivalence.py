"""The compiler's verification facade.

The paper's compiler always closes with formal verification: "All outputs
were confirmed to be the same function as their original
technology-independent description by building the QMDD data structure
for each design and testing for equivalence" (Section 5).

:func:`verify_equivalent` chooses the strongest affordable method:

* **qmdd** (default) — canonical QMDD comparison; complete and exact.
* **dense** — numpy unitary comparison; complete, but <= ~12 qubits.
* **sampled** — sparse simulation on random basis inputs; exact per
  sample, used for very wide circuits (the 96-qubit Table 8 runs) where
  building the full QMDD is impractically slow in pure Python.
* **auto** — qmdd below ``qmdd_width_limit`` qubits, else sampled.
  Auto mode first tries the dataflow **abstract-permutation pre-screen**:
  when both circuits are classical-reversible within
  :data:`PRESCREEN_WIDTH_LIMIT` qubits, their exact truth tables are
  compared before any QMDD is built — disagreement is an immediate NO
  with a witness input, agreement is a proof, and ⊤ (non-classical or
  too wide) falls through to the miter path.

The qmdd method runs one of two strategies (see
``docs/performance.md``):

* **miter** (default) — apply the mapped circuit's gates followed by
  the original's inverse onto one running product and test it against
  the identity; for equivalent circuits the product collapses as it is
  built, so intermediate diagrams stay small.
* **two_sided** — the paper's original formulation: build both
  diagrams and compare root pointers.  Kept as the fallback and as the
  first recheck of a miter NO (the two builds take different float
  normalization paths, so they double-check each other near tolerance
  boundaries).

QMDD managers are pooled per process and per width
(:class:`~repro.qmdd.pool.ManagerPool`), so batch workers and fuzz
campaigns reuse warm gate/identity caches across checks under bounded
unique/operation tables.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional
import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.exceptions import VerificationError
from ..obs import get_metrics
from ..qmdd.equivalence import check_equivalence as qmdd_check
from ..qmdd.manager import QMDDManager
from ..qmdd.pool import get_manager_pool
from .permutation import evaluate, permutation
from .sparse_sim import run_sparse, sampled_equivalence

#: QMDD strategies accepted by ``verify_equivalent(strategy=...)``.
VERIFY_STRATEGIES = ("miter", "two_sided")

#: Width bound of the abstract-permutation pre-screen (the exact
#: permutation of both circuits is built; 2^width entries each).
PRESCREEN_WIDTH_LIMIT = 12

#: Work bound of the pre-screen: ``2^width * total_gates`` evaluation
#: steps.  Beyond it the screen abstains (⊤) and the QMDD path runs —
#: a "cheap NO" that costs more than the miter is no longer cheap.
_PRESCREEN_MAX_OPS = 1 << 20

#: Exhaustive-subspace bounds: sparse simulation of every admissible
#: basis input is attempted up to this many free (non-known-zero)
#: wires; classical circuits use the cheaper bitwise evaluator with a
#: work bound instead.
_SUBSPACE_EXHAUSTIVE_FREE = 10
_SUBSPACE_MAX_OPS = 1 << 22


@dataclass(frozen=True)
class VerificationReport:
    """How a circuit pair was verified and what the verdict was."""

    method: str
    equivalent: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.equivalent


def verify_equivalent(
    original: QuantumCircuit,
    mapped: QuantumCircuit,
    method: str = "auto",
    up_to_global_phase: bool = False,
    qmdd_width_limit: int = 24,
    samples: int = 32,
    seed: int = 2019,
    strategy: str = "miter",
    pool: bool = True,
    known_zero: Iterable[int] = (),
    prescreen: bool = True,
    output_permutation: Optional[Dict[int, int]] = None,
    _recheck: bool = False,
) -> VerificationReport:
    """Check that ``mapped`` implements ``original`` (ancilla wires must
    act as identity).  Returns a report; never raises on inequivalence —
    use :func:`require_equivalent` for that.

    ``seed`` drives the sampled method's basis-state choice, making wide
    verdicts reproducible (the differential fuzz harness depends on a
    failing case replaying identically).

    ``strategy`` selects the qmdd build (``"miter"`` or ``"two_sided"``)
    and ``pool=False`` opts out of the per-process manager pool (used by
    benchmarks that must measure cold builds).

    ``known_zero`` restricts the equivalence claim to the subspace where
    the listed wires start in |0⟩ (the compiler passes the facts it let
    the dataflow optimizer exploit).  A full-space YES implies the
    subspace YES; on a full-space NO the check re-asks the question on
    the admissible inputs only.

    When ``method == "auto"`` and both circuits are classical-reversible
    within :data:`PRESCREEN_WIDTH_LIMIT` qubits, the abstract-permutation
    pre-screen compares exact truth tables *before any QMDD is built*:
    disagreement is an immediate NO with a witness input, agreement is a
    proof (the permutation is the circuit's full semantics).  Pass
    ``prescreen=False`` to force the QMDD path.

    ``output_permutation`` declares that ``mapped`` ends with its wires
    permuted — dynamic-layout routing (``route="sabre"``) leaves input
    wire ``v``'s state on wire ``output_permutation[v]`` instead of
    spending SWAPs to restore it.  The check composes the *inverse*
    permutation into ``mapped`` (as a wire-space SWAP tail), so every
    path — miter, two-sided, prescreen, dense, sampled, subspace — sees
    both circuits in the same wire basis and ``known_zero`` facts keep
    their input-wire meaning."""
    if strategy not in VERIFY_STRATEGIES:
        raise VerificationError(
            f"unknown verification strategy {strategy!r} "
            f"(expected one of {', '.join(VERIFY_STRATEGIES)})"
        )
    if output_permutation and any(
        v != p for v, p in output_permutation.items()
    ):
        # Undo the routing permutation inside the comparison: append the
        # inverse-permutation SWAP tail to the mapped circuit.  SWAP is
        # native to every verification backend (QMDD apply, dense
        # matrices, sparse simulation, the classical prescreen), so all
        # downstream paths stay unchanged.
        from ..backend.router import permutation_restore_gates

        tail = permutation_restore_gates(
            output_permutation, mapped.num_qubits
        )
        mapped = QuantumCircuit(
            mapped.num_qubits,
            list(mapped.gates) + tail,
            name=mapped.name,
        )
    # Wires beyond the last touched qubit are identity in both circuits, so
    # verification can run on the narrower effective register.
    touched = [q for c in (original, mapped) for q in c.used_qubits]
    width = (max(touched) + 1) if touched else 1
    original = QuantumCircuit(width, original.gates, name=original.name)
    mapped = QuantumCircuit(width, mapped.gates, name=mapped.name)
    zeros = frozenset(q for q in known_zero if 0 <= q < width)
    if method == "auto":
        if prescreen and not _recheck:
            screened = _permutation_prescreen(original, mapped, width, zeros)
            if screened is not None:
                return screened
        method = "qmdd" if width <= qmdd_width_limit else "sampled"

    metrics = get_metrics()
    # Rechecks count under their own verify.recheck.* keys: a recheck is
    # a *consequence* of one NO verdict, not an independent check, and
    # folding it into verify.*_checks used to dilute hit-rate dashboards.
    counter_prefix = "verify.recheck." if _recheck else "verify."
    metrics.inc(f"{counter_prefix}{method}_checks")
    started = time.perf_counter()
    try:
        report = _verify(
            original, mapped, method, width,
            up_to_global_phase=up_to_global_phase, samples=samples, seed=seed,
            strategy=strategy, pool=pool,
        )
        if not report.equivalent and zeros and not _recheck:
            # The full-space check failed, but the claim is only about
            # the |0⟩-restricted subspace (e.g. after constant-
            # propagation deletions that are sound there by design).
            return _subspace_verify(
                original, mapped, width, zeros,
                up_to_global_phase=up_to_global_phase,
                samples=samples, seed=seed,
            )
        return report
    finally:
        metrics.inc(
            f"{counter_prefix}seconds", time.perf_counter() - started
        )


def _verify(
    original: QuantumCircuit,
    mapped: QuantumCircuit,
    method: str,
    width: int,
    up_to_global_phase: bool,
    samples: int,
    seed: int,
    strategy: str = "miter",
    pool: bool = True,
) -> VerificationReport:
    if method == "qmdd":
        metrics = get_metrics()
        if pool:
            manager_pool = get_manager_pool()
            manager = manager_pool.acquire(width)
            manager_pool.record_metrics(metrics)
        else:
            manager = QMDDManager(width)
        result = qmdd_check(
            original, mapped, num_qubits=width,
            up_to_global_phase=up_to_global_phase, manager=manager,
            strategy=strategy,
        )
        # Per-check managers used to take their unique-table and
        # operation-cache stats to the grave (worst of all inside pool
        # workers); record them in this process's registry so the batch
        # engine can ship them back to the coordinator.
        manager.record_metrics(metrics)
        equivalent = result.equivalent
        peak = getattr(result, "peak_nodes", 0)
        if peak:
            metrics.gauge_max("verify.miter_peak_nodes", peak)
        detail = (
            f"strategy={strategy} "
            f"nodes={result.nodes_first}/{result.nodes_second} "
            f"shared_root={result.shared_root}"
        )
        if not equivalent and strategy == "miter":
            # The miter and the two-sided build take different float
            # normalization paths; a miter NO near a tolerance boundary
            # is first re-asked with the paper's original formulation.
            metrics.inc("verify.recheck.qmdd_checks")
            two_sided = qmdd_check(
                original, mapped, num_qubits=width,
                up_to_global_phase=up_to_global_phase, manager=manager,
                strategy="two_sided",
            )
            manager.record_metrics(metrics)
            if two_sided.equivalent:
                equivalent = True
                detail += " (recheck:two_sided agreed equivalent)"
        if not equivalent:
            # Canonical float DDs can (rarely) produce a *false negative*
            # when two build paths normalize near a tolerance boundary —
            # never a false positive.  Re-check a NO verdict with an
            # independent method before declaring failure.
            if width <= 10:
                recheck = verify_equivalent(
                    original, mapped, method="dense",
                    up_to_global_phase=up_to_global_phase,
                    _recheck=True,
                )
            else:
                recheck = verify_equivalent(
                    original, mapped, method="sampled",
                    up_to_global_phase=up_to_global_phase, samples=samples,
                    seed=seed, _recheck=True,
                )
            if recheck.equivalent:
                equivalent = True
                detail += f" (recheck:{recheck.method} agreed equivalent)"
        return VerificationReport(
            method="qmdd",
            equivalent=equivalent,
            detail=detail,
        )
    if method == "dense":
        if width > 12:
            raise VerificationError("dense verification beyond 12 qubits")
        a = original.widened(width).unitary()
        b = mapped.widened(width).unitary()
        if up_to_global_phase:
            # Align phases on the largest entry of a.
            index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
            if abs(b[index]) > 1e-12:
                b = b * (a[index] / b[index])
        return VerificationReport(
            method="dense",
            equivalent=bool(np.allclose(a, b, atol=1e-8)),
            detail=f"dim={a.shape[0]}",
        )
    if method == "sampled":
        verdict = sampled_equivalence(
            original, mapped, samples=samples, seed=seed,
            up_to_global_phase=up_to_global_phase,
        )
        return VerificationReport(
            method="sampled",
            equivalent=verdict,
            detail=f"samples={samples}",
        )
    raise VerificationError(f"unknown verification method {method!r}")


def _permutation_prescreen(
    original: QuantumCircuit,
    mapped: QuantumCircuit,
    width: int,
    known_zero: FrozenSet[int],
) -> Optional[VerificationReport]:
    """The dataflow abstract-permutation pre-screen.

    Both circuits must be classical-reversible (their abstract
    permutation is exact, not ⊤) and narrow enough that building the
    2^width truth tables is cheaper than any QMDD.  Disagreement on an
    admissible input is a complete NO with that input as witness;
    agreement on every admissible input is a complete YES — for
    classical circuits the permutation *is* the unitary.  Returns
    ``None`` (⊤: fall through to the miter path) when either circuit is
    non-classical or the work bound is exceeded.
    """
    if width > PRESCREEN_WIDTH_LIMIT:
        return None
    if not (original.is_classical_reversible and mapped.is_classical_reversible):
        return None
    total_gates = len(original.gates) + len(mapped.gates)
    if (1 << width) * max(total_gates, 1) > _PRESCREEN_MAX_OPS:
        return None
    metrics = get_metrics()
    metrics.inc("verify.prescreen.checks")
    started = time.perf_counter()
    try:
        first = permutation(original)
        second = permutation(mapped)
        zero_mask = sum(1 << (width - 1 - q) for q in known_zero)
        for index in range(1 << width):
            if index & zero_mask:
                continue  # outside the known-zero subspace
            if first[index] != second[index]:
                metrics.inc("verify.prescreen.rejects")
                witness = format(index, f"0{width}b")
                expected = format(first[index], f"0{width}b")
                got = format(second[index], f"0{width}b")
                return VerificationReport(
                    method="prescreen",
                    equivalent=False,
                    detail=(
                        f"abstract permutations disagree on input "
                        f"|{witness}>: original -> |{expected}>, "
                        f"mapped -> |{got}>"
                    ),
                )
        metrics.inc("verify.prescreen.proofs")
        scope = (
            f"on the |0> subspace of q{{{','.join(map(str, sorted(known_zero)))}}}"
            if known_zero else "on all inputs"
        )
        return VerificationReport(
            method="prescreen",
            equivalent=True,
            detail=(
                f"exact classical permutations agree {scope} "
                f"(2^{width} states, no QMDD built)"
            ),
        )
    finally:
        metrics.inc("verify.prescreen.seconds", time.perf_counter() - started)


def _subspace_verify(
    original: QuantumCircuit,
    mapped: QuantumCircuit,
    width: int,
    known_zero: FrozenSet[int],
    up_to_global_phase: bool,
    samples: int,
    seed: int,
) -> VerificationReport:
    """Equivalence restricted to basis inputs with ``known_zero`` wires
    in |0⟩ (reached only after a full-space NO).

    By linearity, agreement on every admissible *basis* input proves
    equivalence on the whole subspace, so the exhaustive legs are exact
    proofs; beyond the exhaustive bounds the verdict degrades to
    restricted sampling (exact per sample, like the ``sampled`` method).
    """
    metrics = get_metrics()
    metrics.inc("verify.subspace_checks")
    started = time.perf_counter()
    try:
        free_positions = [
            width - 1 - q for q in range(width) if q not in known_zero
        ]
        free = len(free_positions)

        def scatter(packed: int) -> int:
            index = 0
            for offset, position in enumerate(free_positions):
                if packed & (1 << offset):
                    index |= 1 << position
            return index

        classical = (
            original.is_classical_reversible and mapped.is_classical_reversible
        )
        total_gates = len(original.gates) + len(mapped.gates)
        if classical and (1 << free) * max(total_gates, 1) <= _SUBSPACE_MAX_OPS:
            for packed in range(1 << free):
                index = scatter(packed)
                if evaluate(original, index) != evaluate(mapped, index):
                    witness = format(index, f"0{width}b")
                    return VerificationReport(
                        method="subspace",
                        equivalent=False,
                        detail=f"classical outputs differ on input |{witness}>",
                    )
            return VerificationReport(
                method="subspace",
                equivalent=True,
                detail=(
                    f"exhaustive classical check over 2^{free} admissible "
                    "inputs (exact on the subspace)"
                ),
            )
        if free <= _SUBSPACE_EXHAUSTIVE_FREE:
            for packed in range(1 << free):
                index = scatter(packed)
                state_a = run_sparse(original, index)
                state_b = run_sparse(mapped, index)
                if not state_a.equals(
                    state_b, up_to_global_phase=up_to_global_phase
                ):
                    witness = format(index, f"0{width}b")
                    return VerificationReport(
                        method="subspace",
                        equivalent=False,
                        detail=f"states differ on basis input |{witness}>",
                    )
            return VerificationReport(
                method="subspace",
                equivalent=True,
                detail=(
                    f"exhaustive sparse simulation over 2^{free} admissible "
                    "basis inputs (exact on the subspace by linearity)"
                ),
            )
        rng = random.Random(seed)
        for _ in range(samples):
            index = scatter(rng.getrandbits(free))
            state_a = run_sparse(original, index)
            state_b = run_sparse(mapped, index)
            if not state_a.equals(
                state_b, up_to_global_phase=up_to_global_phase
            ):
                witness = format(index, f"0{width}b")
                return VerificationReport(
                    method="subspace",
                    equivalent=False,
                    detail=f"states differ on basis input |{witness}>",
                )
        return VerificationReport(
            method="subspace",
            equivalent=True,
            detail=(
                f"{samples} sampled admissible basis inputs agree "
                "(subspace too wide for the exhaustive check)"
            ),
        )
    finally:
        metrics.inc("verify.subspace_seconds", time.perf_counter() - started)


def require_equivalent(
    original: QuantumCircuit,
    mapped: QuantumCircuit,
    method: str = "auto",
    up_to_global_phase: bool = False,
    **kwargs,
) -> VerificationReport:
    """Like :func:`verify_equivalent` but raises on failure."""
    report = verify_equivalent(
        original, mapped, method=method, up_to_global_phase=up_to_global_phase, **kwargs
    )
    if not report:
        raise VerificationError(
            f"{mapped.name or 'mapped circuit'} is NOT equivalent to "
            f"{original.name or 'original'} (method={report.method})"
        )
    return report
