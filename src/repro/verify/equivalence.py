"""The compiler's verification facade.

The paper's compiler always closes with formal verification: "All outputs
were confirmed to be the same function as their original
technology-independent description by building the QMDD data structure
for each design and testing for equivalence" (Section 5).

:func:`verify_equivalent` chooses the strongest affordable method:

* **qmdd** (default) — canonical QMDD comparison; complete and exact.
* **dense** — numpy unitary comparison; complete, but <= ~12 qubits.
* **sampled** — sparse simulation on random basis inputs; exact per
  sample, used for very wide circuits (the 96-qubit Table 8 runs) where
  building the full QMDD is impractically slow in pure Python.
* **auto** — qmdd below ``qmdd_width_limit`` qubits, else sampled.

The qmdd method runs one of two strategies (see
``docs/performance.md``):

* **miter** (default) — apply the mapped circuit's gates followed by
  the original's inverse onto one running product and test it against
  the identity; for equivalent circuits the product collapses as it is
  built, so intermediate diagrams stay small.
* **two_sided** — the paper's original formulation: build both
  diagrams and compare root pointers.  Kept as the fallback and as the
  first recheck of a miter NO (the two builds take different float
  normalization paths, so they double-check each other near tolerance
  boundaries).

QMDD managers are pooled per process and per width
(:class:`~repro.qmdd.pool.ManagerPool`), so batch workers and fuzz
campaigns reuse warm gate/identity caches across checks under bounded
unique/operation tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.exceptions import VerificationError
from ..obs import get_metrics
from ..qmdd.equivalence import check_equivalence as qmdd_check
from ..qmdd.manager import QMDDManager
from ..qmdd.pool import get_manager_pool
from .sparse_sim import sampled_equivalence

#: QMDD strategies accepted by ``verify_equivalent(strategy=...)``.
VERIFY_STRATEGIES = ("miter", "two_sided")


@dataclass(frozen=True)
class VerificationReport:
    """How a circuit pair was verified and what the verdict was."""

    method: str
    equivalent: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.equivalent


def verify_equivalent(
    original: QuantumCircuit,
    mapped: QuantumCircuit,
    method: str = "auto",
    up_to_global_phase: bool = False,
    qmdd_width_limit: int = 24,
    samples: int = 32,
    seed: int = 2019,
    strategy: str = "miter",
    pool: bool = True,
    _recheck: bool = False,
) -> VerificationReport:
    """Check that ``mapped`` implements ``original`` (ancilla wires must
    act as identity).  Returns a report; never raises on inequivalence —
    use :func:`require_equivalent` for that.

    ``seed`` drives the sampled method's basis-state choice, making wide
    verdicts reproducible (the differential fuzz harness depends on a
    failing case replaying identically).

    ``strategy`` selects the qmdd build (``"miter"`` or ``"two_sided"``)
    and ``pool=False`` opts out of the per-process manager pool (used by
    benchmarks that must measure cold builds)."""
    if strategy not in VERIFY_STRATEGIES:
        raise VerificationError(
            f"unknown verification strategy {strategy!r} "
            f"(expected one of {', '.join(VERIFY_STRATEGIES)})"
        )
    # Wires beyond the last touched qubit are identity in both circuits, so
    # verification can run on the narrower effective register.
    touched = [q for c in (original, mapped) for q in c.used_qubits]
    width = (max(touched) + 1) if touched else 1
    original = QuantumCircuit(width, original.gates, name=original.name)
    mapped = QuantumCircuit(width, mapped.gates, name=mapped.name)
    if method == "auto":
        method = "qmdd" if width <= qmdd_width_limit else "sampled"

    metrics = get_metrics()
    # Rechecks count under their own verify.recheck.* keys: a recheck is
    # a *consequence* of one NO verdict, not an independent check, and
    # folding it into verify.*_checks used to dilute hit-rate dashboards.
    counter_prefix = "verify.recheck." if _recheck else "verify."
    metrics.inc(f"{counter_prefix}{method}_checks")
    started = time.perf_counter()
    try:
        return _verify(
            original, mapped, method, width,
            up_to_global_phase=up_to_global_phase, samples=samples, seed=seed,
            strategy=strategy, pool=pool,
        )
    finally:
        metrics.inc(
            f"{counter_prefix}seconds", time.perf_counter() - started
        )


def _verify(
    original: QuantumCircuit,
    mapped: QuantumCircuit,
    method: str,
    width: int,
    up_to_global_phase: bool,
    samples: int,
    seed: int,
    strategy: str = "miter",
    pool: bool = True,
) -> VerificationReport:
    if method == "qmdd":
        metrics = get_metrics()
        if pool:
            manager_pool = get_manager_pool()
            manager = manager_pool.acquire(width)
            manager_pool.record_metrics(metrics)
        else:
            manager = QMDDManager(width)
        result = qmdd_check(
            original, mapped, num_qubits=width,
            up_to_global_phase=up_to_global_phase, manager=manager,
            strategy=strategy,
        )
        # Per-check managers used to take their unique-table and
        # operation-cache stats to the grave (worst of all inside pool
        # workers); record them in this process's registry so the batch
        # engine can ship them back to the coordinator.
        manager.record_metrics(metrics)
        equivalent = result.equivalent
        peak = getattr(result, "peak_nodes", 0)
        if peak:
            metrics.gauge_max("verify.miter_peak_nodes", peak)
        detail = (
            f"strategy={strategy} "
            f"nodes={result.nodes_first}/{result.nodes_second} "
            f"shared_root={result.shared_root}"
        )
        if not equivalent and strategy == "miter":
            # The miter and the two-sided build take different float
            # normalization paths; a miter NO near a tolerance boundary
            # is first re-asked with the paper's original formulation.
            metrics.inc("verify.recheck.qmdd_checks")
            two_sided = qmdd_check(
                original, mapped, num_qubits=width,
                up_to_global_phase=up_to_global_phase, manager=manager,
                strategy="two_sided",
            )
            manager.record_metrics(metrics)
            if two_sided.equivalent:
                equivalent = True
                detail += " (recheck:two_sided agreed equivalent)"
        if not equivalent:
            # Canonical float DDs can (rarely) produce a *false negative*
            # when two build paths normalize near a tolerance boundary —
            # never a false positive.  Re-check a NO verdict with an
            # independent method before declaring failure.
            if width <= 10:
                recheck = verify_equivalent(
                    original, mapped, method="dense",
                    up_to_global_phase=up_to_global_phase,
                    _recheck=True,
                )
            else:
                recheck = verify_equivalent(
                    original, mapped, method="sampled",
                    up_to_global_phase=up_to_global_phase, samples=samples,
                    seed=seed, _recheck=True,
                )
            if recheck.equivalent:
                equivalent = True
                detail += f" (recheck:{recheck.method} agreed equivalent)"
        return VerificationReport(
            method="qmdd",
            equivalent=equivalent,
            detail=detail,
        )
    if method == "dense":
        if width > 12:
            raise VerificationError("dense verification beyond 12 qubits")
        a = original.widened(width).unitary()
        b = mapped.widened(width).unitary()
        if up_to_global_phase:
            # Align phases on the largest entry of a.
            index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
            if abs(b[index]) > 1e-12:
                b = b * (a[index] / b[index])
        return VerificationReport(
            method="dense",
            equivalent=bool(np.allclose(a, b, atol=1e-8)),
            detail=f"dim={a.shape[0]}",
        )
    if method == "sampled":
        verdict = sampled_equivalence(
            original, mapped, samples=samples, seed=seed,
            up_to_global_phase=up_to_global_phase,
        )
        return VerificationReport(
            method="sampled",
            equivalent=verdict,
            detail=f"samples={samples}",
        )
    raise VerificationError(f"unknown verification method {method!r}")


def require_equivalent(
    original: QuantumCircuit,
    mapped: QuantumCircuit,
    method: str = "auto",
    up_to_global_phase: bool = False,
    **kwargs,
) -> VerificationReport:
    """Like :func:`verify_equivalent` but raises on failure."""
    report = verify_equivalent(
        original, mapped, method=method, up_to_global_phase=up_to_global_phase, **kwargs
    )
    if not report:
        raise VerificationError(
            f"{mapped.name or 'mapped circuit'} is NOT equivalent to "
            f"{original.name or 'original'} (method={report.method})"
        )
    return report
